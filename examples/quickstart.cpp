// Quickstart: fuse a synthetic hyper-spectral scene into a colour composite.
//
//   $ ./quickstart [width height bands]
//
// Generates a HYDICE-like foliated scene with vehicles (one camouflaged),
// runs the sequential spectral-screening PCT pipeline, reports what the
// fusion achieved, and writes quickstart_composite.ppm plus two raw band
// frames for comparison.
#include <cstdio>
#include <cstdlib>

#include "core/pct.h"
#include "hsi/image_io.h"
#include "hsi/metrics.h"
#include "hsi/scene.h"

using namespace rif;

int main(int argc, char** argv) {
  hsi::SceneConfig scene_config;
  scene_config.width = argc > 1 ? std::atoi(argv[1]) : 160;
  scene_config.height = argc > 2 ? std::atoi(argv[2]) : 160;
  scene_config.bands = argc > 3 ? std::atoi(argv[3]) : 64;
  scene_config.seed = 42;

  std::printf("generating %dx%dx%d synthetic HYDICE scene...\n",
              scene_config.width, scene_config.height, scene_config.bands);
  const hsi::Scene scene = hsi::generate_scene(scene_config);
  std::printf("  forest %lld px, grass %lld px, vehicles %lld px, "
              "camouflaged %lld px\n",
              static_cast<long long>(scene.count_of(hsi::Material::kForest)),
              static_cast<long long>(scene.count_of(hsi::Material::kGrass)),
              static_cast<long long>(scene.count_of(hsi::Material::kVehicle)),
              static_cast<long long>(
                  scene.count_of(hsi::Material::kCamouflage)));

  std::printf("running spectral-screening PCT fusion...\n");
  core::PctConfig config;
  const core::PctResult result = core::fuse(scene.cube, config);

  std::printf("  unique set: %zu spectrally distinct signatures "
              "(threshold %.2f rad)\n",
              result.unique_set_size, config.screening_threshold);
  std::printf("  leading eigenvalues: %.4g, %.4g, %.4g\n",
              result.eigenvalues[0], result.eigenvalues[1],
              result.eigenvalues[2]);

  const double camo_band = hsi::best_band_pair_contrast(
      scene.cube, scene.labels, hsi::Material::kCamouflage,
      hsi::Material::kForest);
  const double camo_fused =
      hsi::pair_contrast(result.composite, scene.labels,
                         hsi::Material::kCamouflage, hsi::Material::kForest);
  std::printf("  camouflage vs forest separability: best band %.2f -> "
              "composite %.2f (%.1fx)\n",
              camo_band, camo_fused, camo_fused / camo_band);

  hsi::write_ppm("quickstart_composite.ppm", result.composite);
  hsi::write_pgm("quickstart_band_visible.pgm",
                 hsi::extract_band(scene.cube, scene.band_near(550.0)),
                 scene.cube.width(), scene.cube.height());
  hsi::write_pgm("quickstart_band_swir.pgm",
                 hsi::extract_band(scene.cube, scene.band_near(1450.0)),
                 scene.cube.width(), scene.cube.height());
  std::printf("wrote quickstart_composite.ppm, quickstart_band_visible.pgm, "
              "quickstart_band_swir.pgm\n");
  return 0;
}
