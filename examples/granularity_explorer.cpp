// Granularity explorer: interactive version of the Figure 5 experiment.
//
//   $ ./granularity_explorer [workers] [max_multiplier]
//
// Sweeps the sub-cube count for a fixed worker count on the paper testbed
// and prints where the compute/communication overlap stops paying off —
// the knob the paper calls granularity control. Also prints the message
// and byte volumes so the trade-off is visible, not just the total.
#include <cstdio>
#include <cstdlib>

#include "core/distributed/fusion_job.h"
#include "support/table.h"

using namespace rif;

int main(int argc, char** argv) {
  const int workers = argc > 1 ? std::atoi(argv[1]) : 8;
  const int max_multiplier = argc > 2 ? std::atoi(argv[2]) : 6;

  std::printf("granularity sweep: %d workers, 320x320x105 cube\n\n", workers);

  Table table({"sub-cubes", "multiplier", "time(s)", "vs m=1", "messages",
               "data (MB)", "unique K"});
  double t1 = 0.0;
  for (int m = 1; m <= max_multiplier; ++m) {
    core::FusionJobConfig config;
    config.mode = core::ExecutionMode::kCostOnly;
    config.shape = {320, 320, 105};
    config.workers = workers;
    config.tiles_per_worker = m;
    config.deadline = from_seconds(500000);

    const core::FusionReport r = run_fusion_job(config);
    if (!r.completed) {
      std::printf("m=%d did not complete\n", m);
      return 1;
    }
    if (m == 1) t1 = r.elapsed_seconds;
    table.add_row({strf("%d", workers * m), strf("%dx", m),
                   strf("%.1f", r.elapsed_seconds),
                   strf("%+.1f%%", 100.0 * (r.elapsed_seconds / t1 - 1.0)),
                   strf("%llu", static_cast<unsigned long long>(
                                    r.network.messages_sent)),
                   strf("%.1f", r.network.bytes_sent / 1e6),
                   strf("%zu", r.outcome.unique_set_size)});
  }
  table.print();

  std::printf("\nfiner decomposition hides the distribution serialization "
              "behind computation,\nbut every extra sub-cube returns "
              "duplicate unique-set vectors for the manager's\nsequential "
              "merge — the gains flatten out (the paper's tail-off beyond "
              "~32\nsub-cubes at this problem size).\n");
  return 0;
}
