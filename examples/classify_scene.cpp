// Classification and target detection on fused imagery — the paper's §3
// closing remark made concrete: "Postprocessing steps can subsequently be
// applied to detect edges in the image and use structural information to
// detect and classify the vehicles."
//
//   $ ./classify_scene [seed]
//
// Pipeline: synthetic scene -> spectral-screening PCT fusion -> RX anomaly
// detection on the principal-component planes -> blob extraction ->
// detection scoring; plus SAM classification of the raw cube against a
// material library and its confusion summary. Also round-trips the cube
// through the ENVI-style disk format to exercise cube I/O.
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "core/parallel/parallel_pct.h"
#include "core/postprocess.h"
#include "core/sam_classifier.h"
#include "hsi/cube_io.h"
#include "hsi/image_io.h"
#include "hsi/scene.h"
#include "support/table.h"

using namespace rif;

int main(int argc, char** argv) {
  hsi::SceneConfig config;
  config.width = 160;
  config.height = 160;
  config.bands = 48;
  config.seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 77;
  const hsi::Scene scene = hsi::generate_scene(config);
  std::printf("scene: %dx%dx%d, seed %llu\n", config.width, config.height,
              config.bands,
              static_cast<unsigned long long>(config.seed));

  // Cube I/O round trip (what a real deployment would ingest).
  const std::string cube_path =
      (std::filesystem::temp_directory_path() / "classify_scene.dat").string();
  hsi::save_cube(cube_path, scene.cube, hsi::Interleave::kBil,
                 scene.wavelengths);
  const auto reloaded = hsi::load_cube(cube_path);
  std::printf("cube I/O round trip: %s\n",
              (reloaded && reloaded->raw() == scene.cube.raw()) ? "ok"
                                                                : "FAILED");

  // Fuse and detect.
  core::ParallelPctConfig pcfg;
  pcfg.threads = 8;
  const core::PctResult fused = core::fuse_parallel(*reloaded, pcfg);
  const auto rx = core::rx_anomaly(fused.component_planes, config.width,
                                   config.height);
  const auto mask = core::top_fraction_mask(rx, 0.02);
  const auto blobs = core::find_blobs(mask, config.width, config.height, 4);
  const auto score = core::score_detections(
      blobs, scene.labels, config.width, config.height,
      {hsi::Material::kVehicle, hsi::Material::kCamouflage});
  std::printf(
      "\nRX detection on PC planes: %zu blobs, %d/%d targets found, %d "
      "false alarms (recall %.0f%%)\n",
      blobs.size(), score.targets_detected, score.targets_present,
      score.false_alarms, 100.0 * score.recall());

  // Edge map of the composite (for the paper's "detect edges" remark).
  const auto edges = core::sobel_magnitude(core::luminance(fused.composite),
                                           config.width, config.height);
  hsi::write_pgm("classify_edges.pgm", edges, config.width, config.height);

  // SAM classification against the material library.
  const std::vector<hsi::Material> mats = {
      hsi::Material::kForest, hsi::Material::kGrass, hsi::Material::kSoil,
      hsi::Material::kRoad,   hsi::Material::kVehicle,
      hsi::Material::kShadow};
  std::vector<core::LibrarySignature> library;
  for (const auto m : mats) {
    library.push_back(
        {hsi::material_name(m), hsi::signature(m, scene.wavelengths)});
  }
  const core::SamResult sam = core::classify_sam(*reloaded, library);

  Table table({"material", "classified px", "truth px"});
  for (std::size_t s = 0; s < library.size(); ++s) {
    table.add_row({library[s].name,
                   strf("%lld", static_cast<long long>(sam.counts[s])),
                   strf("%lld", static_cast<long long>(
                                    scene.count_of(mats[s])))});
  }
  table.print();
  std::vector<int> mapping;
  for (const auto m : mats) mapping.push_back(static_cast<int>(m));
  std::printf("SAM pixel accuracy: %.1f%% (unclassified: %lld px — mostly "
              "the camouflage netting, which imitates foliage)\n",
              100.0 * core::sam_accuracy(sam, scene.labels, mapping),
              static_cast<long long>(sam.unclassified));

  hsi::write_ppm("classify_composite.ppm", fused.composite);
  std::printf("\nwrote classify_composite.ppm, classify_edges.pgm\n");
  std::filesystem::remove(cube_path);
  std::filesystem::remove(cube_path + ".hdr");
  return 0;
}
