// Battlefield attack scenario: sustained information-warfare attacks on the
// virtual cluster while a paper-scale fusion job runs.
//
//   $ ./attack_scenario [seed]
//
// A seeded Poisson process of host attacks (mean one strike per 30 virtual
// seconds) hits the 8-workstation pool while the 320x320x105 fusion job
// runs under three policies. The event timeline of the resilient run is
// printed from the simulation trace: attack, detection, state transfer,
// regeneration.
#include <cstdio>
#include <cstdlib>

#include "core/distributed/fusion_job.h"
#include "support/table.h"

using namespace rif;

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 9;

  std::printf("sustained-attack scenario (seed %llu)\n",
              static_cast<unsigned long long>(seed));
  std::printf("8 workstations + sensor host, 320x320x105 cube, attacks "
              "~every 30 s with 60 s repair\n\n");

  // Generate the attack script once (deterministic in the seed) so all
  // three policies face the same assault. Repairs model operators bringing
  // machines back, so the pool is never exhausted outright.
  Rng rng(seed);
  std::vector<cluster::FailureEvent> script;
  {
    // Use a scratch cluster/injector just to synthesize the script.
    sim::Simulation scratch_sim;
    cluster::Cluster scratch(scratch_sim);
    scratch.add_nodes(9);
    cluster::FailureInjector synth(scratch);
    script = synth.schedule_poisson(rng, from_seconds(10), from_seconds(290),
                                    from_seconds(30),
                                    {1, 2, 3, 4, 5, 6, 7, 8},
                                    /*repair_after=*/from_seconds(60));
  }
  std::printf("attack script (%zu strikes):", script.size());
  for (const auto& ev : script) {
    std::printf(" t=%.0fs->node%d", to_seconds(ev.time), ev.node);
  }
  std::printf("\n\n");

  struct Policy {
    const char* name;
    bool resilient;
    int replication;
    bool regenerate;
  };
  const Policy policies[] = {
      {"no protection", false, 1, false},
      {"replication only (level 2)", true, 2, false},
      {"computational resiliency", true, 2, true},
  };

  Table table({"policy", "completed", "time(s)", "detected", "regenerated"});
  core::FusionReport resilient_report;
  for (const Policy& policy : policies) {
    core::FusionJobConfig config;
    config.mode = core::ExecutionMode::kCostOnly;
    config.shape = {320, 320, 105};
    config.workers = 8;
    config.tiles_per_worker = 2;
    config.resilient = policy.resilient;
    config.replication = policy.replication;
    config.regenerate = policy.regenerate;
    config.failures = script;
    config.deadline = from_seconds(5000);

    const core::FusionReport r = run_fusion_job(config);
    table.add_row({policy.name, r.completed ? "yes" : "NO",
                   r.completed ? strf("%.1f", r.elapsed_seconds) : "-",
                   strf("%llu", static_cast<unsigned long long>(
                                    r.protocol.failures_detected)),
                   strf("%llu", static_cast<unsigned long long>(
                                    r.protocol.replicas_regenerated))});
    if (policy.regenerate) resilient_report = r;
  }
  table.print();

  std::printf("\nthe resilient system absorbed %d strikes and finished; "
              "replication alone\ndegrades until a worker loses both hosts, "
              "and the unprotected run dies on\nthe first strike.\n",
              resilient_report.crashes_injected);
  return 0;
}
