// Demo / CI smoke: a fusion job sharded across REAL worker processes.
//
// With no arguments the service spawns its workers as in-process threads
// over socketpairs (same protocol, one process). With argv[1] = path to the
// rif_worker binary it goes the whole way: fork/exec two rif_worker
// processes, point them at a Unix-domain socket, and let the service lease
// them in over the wire — tiles, covariance shards and colour tiles all
// travel as length-prefixed frames between processes.
//
// Either way the composite must be byte-identical to the two-pass
// shared-memory engine run with the same shard/tile counts — the socket
// transport may change WHERE the arithmetic runs, never a single bit of it.
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "core/parallel/parallel_pct.h"
#include "hsi/scene.h"
#include "service/service.h"

using namespace rif;

int main(int argc, char** argv) {
  const bool real_processes = argc > 1;
  const std::string worker_bin = real_processes ? argv[1] : "";

  std::printf("=== Remote fusion demo (%s workers) ===\n",
              real_processes ? "separate-process" : "in-process socketpair");

  hsi::SceneConfig scene_cfg;
  scene_cfg.width = 48;
  scene_cfg.height = 48;
  scene_cfg.bands = 16;
  scene_cfg.seed = 11;
  const hsi::Scene scene = hsi::generate_scene(scene_cfg);

  // One host node + two remote workers; a 3-worker job must lease remote
  // capacity, so its pixels travel the socket protocol.
  service::ServiceConfig cfg;
  cfg.worker_nodes = 1;
  cfg.execution_threads = 2;
  cfg.remote_workers = 2;

  const std::string sock_path =
      (std::filesystem::temp_directory_path() /
       ("rif_remote_" + std::to_string(::getpid()) + ".sock"))
          .string();
  std::vector<pid_t> children;
  if (real_processes) {
    cfg.remote_socket_path = sock_path;
    // Launch the workers BEFORE the service binds; their connect loop
    // retries until the listener appears.
    for (int i = 0; i < cfg.remote_workers; ++i) {
      const pid_t pid = ::fork();
      if (pid == 0) {
        ::execl(worker_bin.c_str(), worker_bin.c_str(), "--unix",
                sock_path.c_str(), "--retry-seconds", "15",
                static_cast<char*>(nullptr));
        std::perror("execl");
        _exit(127);
      }
      if (pid < 0) {
        std::perror("fork");
        return 1;
      }
      children.push_back(pid);
    }
  } else {
    cfg.remote_spawn_local = true;
  }

  service::FusionService service(cfg);
  service::JobRequest r;
  r.tenant = "edge";
  r.config.mode = core::ExecutionMode::kFull;
  r.config.shape = {scene_cfg.width, scene_cfg.height, scene_cfg.bands};
  r.config.cube = &scene.cube;
  r.config.workers = 3;
  r.config.tiles_per_worker = 2;
  const service::SubmitResult submitted = service.submit(std::move(r));
  if (!submitted.accepted()) {
    std::printf("job rejected: %s\n", service::to_string(submitted.rejected));
    return 1;
  }

  const service::ServiceReport report = service.run();

  // Reap the worker processes; a clean kGoodbye shutdown exits 0.
  bool workers_clean = true;
  for (const pid_t pid : children) {
    int status = 0;
    ::waitpid(pid, &status, 0);
    const bool clean = WIFEXITED(status) && WEXITSTATUS(status) == 0;
    std::printf("worker pid %d: %s\n", static_cast<int>(pid),
                clean ? "clean exit" : "UNCLEAN exit");
    workers_clean = workers_clean && clean;
  }
  std::filesystem::remove(sock_path);

  const service::JobRecord& rec =
      report.jobs[static_cast<std::size_t>(submitted.id)];
  std::printf("workers attached: %d, remote jobs: %d, fallbacks: %d, "
              "disconnects: %d\n",
              report.remote_workers_attached, report.remote_jobs,
              report.remote_fallbacks, report.remote_disconnects);
  std::printf("job: completed=%d remote_executed=%d shards=%d "
              "requeued_tiles=%d\n",
              rec.completed ? 1 : 0, rec.remote_executed ? 1 : 0,
              rec.remote_workers, rec.remote_requeued_tiles);

  if (!rec.completed || !rec.remote_executed || report.remote_jobs < 1) {
    std::printf("FAIL: job did not execute over the remote plane\n");
    return 1;
  }

  // Byte-identity oracle: the two-pass shared-memory engine with the same
  // shard count (live remote workers) and tile count (workers admitted *
  // tiles_per_worker).
  core::ParallelPctConfig expect_cfg;
  expect_cfg.threads = rec.remote_workers;
  expect_cfg.tiles = rec.workers * 2;
  const core::PctResult expected = core::fuse_parallel(scene.cube, expect_cfg);
  const bool bit_exact =
      rec.outcome.composite.data == expected.composite.data &&
      rec.outcome.unique_set_size == expected.unique_set_size &&
      rec.outcome.eigenvalues == expected.eigenvalues;
  std::printf("composite vs shared-memory engine: %s\n",
              bit_exact ? "byte-identical" : "MISMATCH");

  return (bit_exact && workers_clean && report.all_completed) ? 0 : 1;
}
