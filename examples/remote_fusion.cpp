// Demo / CI smoke: a fusion job sharded across REAL worker processes.
//
// With no arguments the service spawns its workers as in-process threads
// over socketpairs (same protocol, one process). With argv[1] = path to the
// rif_worker binary it goes the whole way: fork/exec two rif_worker
// processes, point them at a Unix-domain socket, and let the service lease
// them in over the wire — tiles, covariance shards and colour tiles all
// travel as length-prefixed frames between processes.
//
// Either way the composite must be byte-identical to the two-pass
// shared-memory engine run with the same shard/tile counts — the socket
// transport may change WHERE the arithmetic runs, never a single bit of it.
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/parallel/parallel_pct.h"
#include "hsi/scene.h"
#include "obs/flamegraph.h"
#include "obs/remote_telemetry.h"
#include "obs/span_tracer.h"
#include "obs/trace_check.h"
#include "service/service.h"
#include "support/log.h"

using namespace rif;

int main(int argc, char** argv) {
  const bool real_processes = argc > 1;
  const std::string worker_bin = real_processes ? argv[1] : "";

  std::printf("=== Remote fusion demo (%s workers) ===\n",
              real_processes ? "separate-process" : "in-process socketpair");

  hsi::SceneConfig scene_cfg;
  scene_cfg.width = 48;
  scene_cfg.height = 48;
  scene_cfg.bands = 16;
  scene_cfg.seed = 11;
  const hsi::Scene scene = hsi::generate_scene(scene_cfg);

  // One host node + two remote workers; a 3-worker job must lease remote
  // capacity, so its pixels travel the socket protocol.
  service::ServiceConfig cfg;
  cfg.worker_nodes = 1;
  cfg.execution_threads = 2;
  cfg.remote_workers = 2;
  // Telemetry-plane artifacts: a live NDJSON metrics feed during the run,
  // plus (after the run) one unified trace and a flamegraph report.
  cfg.scrape_period_seconds = 0.05;
  cfg.metrics_stream_path = "METRICS_remote.ndjson";

  const std::string sock_path =
      (std::filesystem::temp_directory_path() /
       ("rif_remote_" + std::to_string(::getpid()) + ".sock"))
          .string();
  std::vector<pid_t> children;
  if (real_processes) {
    cfg.remote_socket_path = sock_path;
    // Launch the workers BEFORE the service binds; their connect loop
    // retries until the listener appears.
    for (int i = 0; i < cfg.remote_workers; ++i) {
      const pid_t pid = ::fork();
      if (pid == 0) {
        ::execl(worker_bin.c_str(), worker_bin.c_str(), "--unix",
                sock_path.c_str(), "--retry-seconds", "15",
                static_cast<char*>(nullptr));
        std::perror("execl");
        _exit(127);
      }
      if (pid < 0) {
        std::perror("fork");
        return 1;
      }
      children.push_back(pid);
    }
  } else {
    cfg.remote_spawn_local = true;
  }

  obs::SpanTracer& tracer = obs::SpanTracer::instance();
  tracer.clear();
  tracer.set_enabled(true);

  service::FusionService service(cfg);
  service::JobRequest r;
  r.tenant = "edge";
  r.config.mode = core::ExecutionMode::kFull;
  r.config.shape = {scene_cfg.width, scene_cfg.height, scene_cfg.bands};
  r.config.cube = &scene.cube;
  r.config.workers = 3;
  r.config.tiles_per_worker = 2;
  const service::SubmitResult submitted = service.submit(std::move(r));
  if (!submitted.accepted()) {
    std::printf("job rejected: %s\n", service::to_string(submitted.rejected));
    return 1;
  }

  const service::ServiceReport report = service.run();
  tracer.set_enabled(false);

  // Reap the worker processes; a clean kGoodbye shutdown exits 0.
  bool workers_clean = true;
  for (const pid_t pid : children) {
    int status = 0;
    ::waitpid(pid, &status, 0);
    const bool clean = WIFEXITED(status) && WEXITSTATUS(status) == 0;
    std::printf("worker pid %d: %s\n", static_cast<int>(pid),
                clean ? "clean exit" : "UNCLEAN exit");
    workers_clean = workers_clean && clean;
  }
  std::filesystem::remove(sock_path);

  const service::JobRecord& rec =
      report.jobs[static_cast<std::size_t>(submitted.id)];
  std::printf("workers attached: %d, remote jobs: %d, fallbacks: %d, "
              "disconnects: %d\n",
              report.remote_workers_attached, report.remote_jobs,
              report.remote_fallbacks, report.remote_disconnects);
  std::printf("job: completed=%d remote_executed=%d shards=%d "
              "requeued_tiles=%d\n",
              rec.completed ? 1 : 0, rec.remote_executed ? 1 : 0,
              rec.remote_workers, rec.remote_requeued_tiles);

  if (!rec.completed || !rec.remote_executed || report.remote_jobs < 1) {
    std::printf("FAIL: job did not execute over the remote plane\n");
    return 1;
  }

  // --- Distributed telemetry plane ---------------------------------------
  // One unified trace: the coordinator's own wall/virtual lanes plus one
  // clock-aligned pid lane per worker, validated by the in-repo checker.
  const obs::RemoteTelemetryCollector* telemetry = service.remote_telemetry();
  if (telemetry == nullptr || telemetry->spans() == 0) {
    std::printf("FAIL: no remote telemetry collected (batches=%llu)\n",
                telemetry == nullptr
                    ? 0ULL
                    : static_cast<unsigned long long>(telemetry->batches()));
    return 1;
  }
  std::printf("telemetry: %llu batches, %llu spans, %llu rejected, "
              "%llu duplicate flushes, %llu log records\n",
              static_cast<unsigned long long>(telemetry->batches()),
              static_cast<unsigned long long>(telemetry->spans()),
              static_cast<unsigned long long>(telemetry->rejected()),
              static_cast<unsigned long long>(telemetry->duplicates()),
              static_cast<unsigned long long>(telemetry->log_records()));
  // Worker log shipment rides the same telemetry lane. The serve loop logs
  // its lifecycle at INFO, so records only exist when the fleet ran at
  // info or chattier — assert exactly then (CI runs with RIF_LOG=info).
  {
    const char* env = std::getenv("RIF_LOG");
    rif::LogLevel env_level = rif::LogLevel::kWarn;
    const bool verbose = env != nullptr && parse_log_level(env, &env_level) &&
                         env_level <= rif::LogLevel::kInfo;
    if (verbose && telemetry->log_records() == 0) {
      std::printf("FAIL: RIF_LOG=%s but the workers shipped no log records\n",
                  env);
      return 1;
    }
  }
  if (!obs::write_unified_trace("TRACE_remote.json", tracer, *telemetry)) {
    std::printf("FAIL: cannot write TRACE_remote.json\n");
    return 1;
  }
  const obs::TraceCheckResult tc =
      obs::check_chrome_trace_file("TRACE_remote.json");
  if (!tc.ok) {
    std::printf("FAIL: TRACE_remote.json invalid: %s\n", tc.error.c_str());
    return 1;
  }
  // Coordinator wall lane + two worker lanes at minimum (the virtual lane
  // appears too when the sim emitted spans).
  if (tc.pids < 3) {
    std::printf("FAIL: unified trace has %zu pid lanes, need >= 3\n", tc.pids);
    return 1;
  }
  std::printf("TRACE_remote.json: %zu events, %zu pid lanes, valid\n",
              tc.events, tc.pids);

  // Every completed remote job must have its END-of-job telemetry from
  // >= 1 worker (the service barriers on the flush carrying the whole-job
  // span — a mid-job periodic batch alone is a half lane).
  for (const service::JobRecord& jr : report.jobs) {
    if (!jr.remote_executed) continue;
    if (telemetry->nodes_with_job_end(jr.id).empty()) {
      std::printf("FAIL: remote job %d completed with no worker spans\n",
                  static_cast<int>(jr.id));
      return 1;
    }
  }

  // Clock alignment: every worker's whole-job span must land inside the
  // coordinator's remote_execute span on the shared wall timeline. The
  // slack absorbs the ping-echo estimate's error (same-machine: ~RTT/2).
  const std::vector<obs::FlameSpan> host_spans = obs::tracer_flame_spans(tracer);
  const std::vector<obs::FlameSpan> worker_spans =
      telemetry->flame_spans(tracer.epoch_ns());
  constexpr double kSlackUs = 2000.0;
  int job_spans_checked = 0;
  for (const obs::FlameSpan& ws : worker_spans) {
    if (ws.name != "remote.job") continue;
    bool nested = false;
    for (const obs::FlameSpan& hs : host_spans) {
      if (hs.name != "remote_execute") continue;
      if (ws.ts_us >= hs.ts_us - kSlackUs &&
          ws.ts_us + ws.dur_us <= hs.ts_us + hs.dur_us + kSlackUs) {
        nested = true;
        break;
      }
    }
    if (!nested) {
      std::printf("FAIL: worker remote.job span [%.0f, %.0f]us falls outside "
                  "every coordinator remote_execute span\n",
                  ws.ts_us, ws.ts_us + ws.dur_us);
      return 1;
    }
    ++job_spans_checked;
  }
  if (job_spans_checked == 0) {
    std::printf("FAIL: no remote.job spans in the worker lanes\n");
    return 1;
  }
  std::printf("clock alignment: %d remote.job span(s) nested inside "
              "remote_execute\n",
              job_spans_checked);

  // Flamegraph report: folded from the same spans the trace carries.
  if (report.flamegraph.rows.empty() ||
      report.flamegraph.find("remote.job") == nullptr) {
    std::printf("FAIL: report flamegraph missing remote.job row\n");
    return 1;
  }
  if (!obs::write_flamegraph("FLAME_remote.json", report.flamegraph)) {
    std::printf("FAIL: cannot write FLAME_remote.json\n");
    return 1;
  }
  std::printf("FLAME_remote.json: %zu rows\n", report.flamegraph.rows.size());

  // Live metrics stream: every line is a standalone JSON sample, and the
  // remote plane's per-node series appear once telemetry has merged.
  std::ifstream stream_in("METRICS_remote.ndjson");
  std::size_t stream_lines = 0;
  bool saw_remote_series = false;
  for (std::string line; std::getline(stream_in, line);) {
    if (line.empty()) continue;
    obs::JsonValue v;
    std::string err;
    if (!obs::parse_json(line, v, err)) {
      std::printf("FAIL: METRICS_remote.ndjson line %zu invalid: %s\n",
                  stream_lines + 1, err.c_str());
      return 1;
    }
    if (line.find("remote.worker.") != std::string::npos) {
      saw_remote_series = true;
    }
    ++stream_lines;
  }
  if (stream_lines == 0 || !saw_remote_series) {
    std::printf("FAIL: METRICS_remote.ndjson has %zu lines, remote series %s\n",
                stream_lines, saw_remote_series ? "present" : "MISSING");
    return 1;
  }
  std::printf("METRICS_remote.ndjson: %zu samples, remote.worker.* present\n",
              stream_lines);

  // Byte-identity oracle: the two-pass shared-memory engine with the same
  // shard count (live remote workers) and tile count (workers admitted *
  // tiles_per_worker).
  core::ParallelPctConfig expect_cfg;
  expect_cfg.threads = rec.remote_workers;
  expect_cfg.tiles = rec.workers * 2;
  const core::PctResult expected = core::fuse_parallel(scene.cube, expect_cfg);
  const bool bit_exact =
      rec.outcome.composite.data == expected.composite.data &&
      rec.outcome.unique_set_size == expected.unique_set_size &&
      rec.outcome.eigenvalues == expected.eigenvalues;
  std::printf("composite vs shared-memory engine: %s\n",
              bit_exact ? "byte-identical" : "MISMATCH");

  return (bit_exact && workers_clean && report.all_completed) ? 0 : 1;
}
