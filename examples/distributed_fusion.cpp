// Distributed fusion on the simulated cluster, with an attack mid-run.
//
//   $ ./distributed_fusion
//
// Runs the full (real-arithmetic) manager/worker pipeline twice on a
// simulated 4-worker LAN with level-2 worker replication: once undisturbed
// and once with a workstation killed mid-computation. Demonstrates the
// paper's core property: the attacked run detects the failure, regenerates
// the lost replica on a fresh host, and produces the bit-identical fused
// image — it just takes a little longer.
#include <cstdio>

#include "core/distributed/fusion_job.h"
#include "hsi/image_io.h"
#include "hsi/scene.h"

using namespace rif;

namespace {

core::FusionJobConfig make_config(const hsi::Scene& scene) {
  core::FusionJobConfig config;
  config.mode = core::ExecutionMode::kFull;
  config.cube = &scene.cube;
  config.shape = {scene.cube.width(), scene.cube.height(),
                  scene.cube.bands()};
  config.workers = 4;
  config.tiles_per_worker = 2;
  config.resilient = true;
  config.replication = 2;
  // Slow the virtual CPUs so the job spans enough virtual time for the
  // attack to land mid-computation.
  config.node.flops_per_second = 5e5;
  config.runtime.heartbeat_period = from_millis(50);
  config.runtime.failure_timeout = from_millis(200);
  config.deadline = from_seconds(10000);
  return config;
}

void report(const char* name, const core::FusionReport& r) {
  std::printf("%s:\n", name);
  std::printf("  completed: %s, virtual elapsed %.2f s\n",
              r.completed ? "yes" : "NO", r.elapsed_seconds);
  std::printf("  unique set %zu, tiles %d, failures detected %llu, replicas "
              "regenerated %llu, state moved %.1f KB\n",
              r.outcome.unique_set_size, r.outcome.tiles_colored,
              static_cast<unsigned long long>(r.protocol.failures_detected),
              static_cast<unsigned long long>(
                  r.protocol.replicas_regenerated),
              r.protocol.state_transfer_bytes / 1e3);
}

}  // namespace

int main() {
  hsi::SceneConfig scene_config;
  scene_config.width = 64;
  scene_config.height = 64;
  scene_config.bands = 24;
  scene_config.seed = 7;
  const hsi::Scene scene = hsi::generate_scene(scene_config);

  std::printf("distributed spectral-screening PCT on a simulated cluster\n");
  std::printf("(manager + 4 workers, level-2 replication, 100BaseT model)\n\n");

  const core::FusionReport clean = run_fusion_job(make_config(scene));
  report("undisturbed run", clean);

  core::FusionJobConfig attacked_config = make_config(scene);
  // Kill worker node 2 once the computation is well underway.
  attacked_config.failures = {
      {from_seconds(clean.elapsed_seconds * 0.4), 2, -1}};
  const core::FusionReport attacked = run_fusion_job(attacked_config);
  std::printf("\n");
  report("attacked run (worker host killed mid-run)", attacked);

  const bool identical =
      attacked.outcome.composite.data == clean.outcome.composite.data;
  std::printf("\nfused images bit-identical: %s\n",
              identical ? "YES" : "NO (bug!)");
  std::printf("resilience cost: %.2f s -> %.2f s (+%.1f%%)\n",
              clean.elapsed_seconds, attacked.elapsed_seconds,
              100.0 * (attacked.elapsed_seconds / clean.elapsed_seconds - 1));

  hsi::write_ppm("distributed_composite.ppm", attacked.outcome.composite);
  std::printf("wrote distributed_composite.ppm\n");
  return identical && clean.completed && attacked.completed ? 0 : 1;
}
