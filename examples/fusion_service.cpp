// Demo: a multi-tenant fusion service day.
//
// Three tenants share one 16-node virtual cluster: an interactive tenant
// submitting small high-priority jobs, a production tenant with mid-size
// normal jobs, and a batch tenant with big low-priority sweeps. The service
// queues, admits against free capacity, runs jobs concurrently on disjoint
// leases, and accounts per tenant.
#include <cstdio>

#include "service/service.h"
#include "support/table.h"

using namespace rif;

namespace {

core::FusionJobConfig job_config(int workers) {
  core::FusionJobConfig cfg;
  cfg.mode = core::ExecutionMode::kCostOnly;
  cfg.shape = {320, 320, 105};
  cfg.workers = workers;
  cfg.tiles_per_worker = 2;
  return cfg;
}

}  // namespace

int main() {
  std::printf("=== Multi-tenant fusion service demo ===\n");
  std::printf("cluster: 1 head + 16 worker nodes, 100BaseT LAN, "
              "first-fit admission\n\n");

  service::ServiceConfig cfg;
  cfg.worker_nodes = 16;
  service::FusionService service(cfg);

  // A morning of traffic: arrivals staggered over ten virtual minutes.
  int submitted = 0;
  const auto submit = [&](const char* tenant, int workers,
                          service::Priority priority, double arrival_s) {
    service::JobRequest r;
    r.tenant = tenant;
    r.config = job_config(workers);
    r.priority = priority;
    r.arrival = from_seconds(arrival_s);
    const auto result = service.submit(std::move(r));
    ++submitted;
    if (!result.accepted()) {
      std::printf("job %lld from %s rejected: %s\n",
                  static_cast<long long>(result.id), tenant,
                  service::to_string(result.rejected));
    }
  };

  for (int i = 0; i < 6; ++i) {
    submit("interactive", 2, service::Priority::kHigh, 30.0 * i);
  }
  for (int i = 0; i < 4; ++i) {
    submit("production", 8, service::Priority::kNormal, 60.0 + 90.0 * i);
  }
  for (int i = 0; i < 3; ++i) {
    submit("batch-sweep", 16, service::Priority::kBatch, 10.0 + 120.0 * i);
  }
  // One tenant asks for the impossible; the service refuses instead of
  // queueing it forever.
  submit("greedy", 64, service::Priority::kHigh, 0.0);

  const service::ServiceReport report = service.run();

  Table jobs({"job", "tenant", "prio", "P", "state", "wait(s)", "service(s)",
              "nodes"});
  for (const auto& r : report.jobs) {
    std::string nodes;
    for (const auto n : r.leased_nodes) {
      nodes += (nodes.empty() ? "" : ",") + std::to_string(n);
    }
    const char* state = r.completed ? "done"
                        : r.failed  ? "failed"
                                    : service::to_string(r.rejected);
    jobs.add_row({strf("%lld", static_cast<long long>(r.id)), r.tenant,
                  service::to_string(r.priority), strf("%d", r.workers),
                  state, strf("%.1f", r.wait_seconds),
                  strf("%.1f", r.service_seconds), nodes});
  }
  jobs.print();

  std::printf("\n");
  Table tenants({"tenant", "submitted", "completed", "rejected", "Gflops",
                 "mean wait(s)", "mean service(s)"});
  for (const auto& acc : report.tenants) {
    tenants.add_row({acc.tenant, strf("%llu", (unsigned long long)acc.jobs_submitted),
                     strf("%llu", (unsigned long long)acc.jobs_completed),
                     strf("%llu", (unsigned long long)acc.jobs_rejected),
                     strf("%.2f", acc.flops_charged * 1e-9),
                     strf("%.1f", acc.queue_wait.mean()),
                     strf("%.1f", acc.service_time.mean())});
  }
  tenants.print();

  std::printf("\nservice: %d/%d jobs completed, peak concurrency %d, "
              "makespan %.1fs, throughput %.3f jobs/s\n",
              report.jobs_completed, report.jobs_submitted,
              report.max_concurrent_jobs, report.makespan_seconds,
              report.throughput_jobs_per_sec);
  std::printf("latency: wait p50/p95/p99 = %.1f/%.1f/%.1f s, "
              "total p99 = %.1f s\n",
              report.wait_p50, report.wait_p95, report.wait_p99,
              report.latency_p99);
  return report.all_completed ? 0 : 1;
}
