// Demo: a multi-tenant fusion service day.
//
// Four tenants share one 16-node virtual cluster: an interactive tenant
// submitting small high-priority jobs, a production tenant with mid-size
// normal jobs, a batch tenant with big low-priority sweeps, and an
// archive tenant whose scene lives on disk and is fused out-of-core in
// Streaming mode under a host-memory budget. The service queues, admits
// against free capacity (and memory), runs jobs concurrently on disjoint
// leases, and accounts per tenant.
//
// Live ops plane (optional):
//   --ops-unix <path> | --ops-port <port>   expose the introspection
//                                           endpoint (tools/rif_ops talks
//                                           to it)
//   --linger <seconds>                      keep the process (and the ops
//                                           endpoint) alive after the run
//                                           so clients can attach and tail
//                                           the live metrics stream
// Without flags the demo behaves exactly as before — deterministic stdout,
// no sockets.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <thread>

#include "hsi/cube_io.h"
#include "hsi/scene.h"
#include "obs/chrome_trace.h"
#include "obs/span_tracer.h"
#include "obs/trace_check.h"
#include "service/service.h"
#include "support/table.h"

using namespace rif;

namespace {

core::FusionJobConfig job_config(int workers) {
  core::FusionJobConfig cfg;
  cfg.mode = core::ExecutionMode::kCostOnly;
  cfg.shape = {320, 320, 105};
  cfg.workers = workers;
  cfg.tiles_per_worker = 2;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  std::string ops_unix;
  std::uint16_t ops_port = 0;
  bool ops_enabled = false;
  double linger_seconds = 0.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--ops-unix") == 0 && i + 1 < argc) {
      ops_unix = argv[++i];
      ops_enabled = true;
    } else if (std::strcmp(argv[i], "--ops-port") == 0 && i + 1 < argc) {
      ops_port = static_cast<std::uint16_t>(std::strtoul(argv[++i], nullptr, 10));
      ops_enabled = true;
    } else if (std::strcmp(argv[i], "--linger") == 0 && i + 1 < argc) {
      linger_seconds = std::strtod(argv[++i], nullptr);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--ops-unix <path> | --ops-port <port>] "
                   "[--linger <seconds>]\n",
                   argv[0]);
      return 1;
    }
  }

  std::printf("=== Multi-tenant fusion service demo ===\n");
  std::printf("cluster: 1 head + 16 worker nodes, 100BaseT LAN, "
              "first-fit admission\n\n");

  // One tenant's scene lives on disk, not in memory: write it out first.
  hsi::SceneConfig scene_cfg;
  scene_cfg.width = 64;
  scene_cfg.height = 256;
  scene_cfg.bands = 16;
  const hsi::Scene scene = hsi::generate_scene(scene_cfg);
  const std::string cube_path =
      (std::filesystem::temp_directory_path() / "rif_service_archive.dat")
          .string();
  if (!hsi::save_cube(cube_path, scene.cube, hsi::Interleave::kBip,
                      scene.wavelengths)) {
    std::printf("cannot write %s\n", cube_path.c_str());
    return 1;
  }

  service::ServiceConfig cfg;
  cfg.worker_nodes = 16;
  cfg.execution_threads = 2;
  // Budget below the archive cube: only the STREAMED working set
  // (queue_depth chunk buffers) fits, which is the point.
  cfg.host_memory_budget = scene.cube.bytes() / 2;
  if (ops_enabled) {
    // The ops plane lives from construction to destruction, so a rif_ops
    // client can attach before, during, or (with --linger) after the run.
    cfg.ops_enabled = true;
    cfg.ops_port = ops_port;
    cfg.ops_socket_path = ops_unix;
  }
  service::FusionService service(cfg);
  if (ops_enabled && service.ops_server() != nullptr) {
    if (!ops_unix.empty()) {
      std::fprintf(stderr, "ops endpoint: unix %s\n", ops_unix.c_str());
    } else {
      std::fprintf(stderr, "ops endpoint: tcp 127.0.0.1:%u\n",
                   static_cast<unsigned>(service.ops_server()->port()));
    }
  }

  // Tracing on for the whole day: every job's lifecycle — submit, queue
  // wait, admission, execution down to per-chunk stages — lands on one
  // Perfetto-loadable timeline (load the exported file in
  // https://ui.perfetto.dev or chrome://tracing).
  obs::SpanTracer::instance().set_enabled(true);

  // A morning of traffic: arrivals staggered over ten virtual minutes.
  int submitted = 0;
  const auto submit = [&](const char* tenant, int workers,
                          service::Priority priority, double arrival_s) {
    service::JobRequest r;
    r.tenant = tenant;
    r.config = job_config(workers);
    r.priority = priority;
    r.arrival = from_seconds(arrival_s);
    const auto result = service.submit(std::move(r));
    ++submitted;
    if (!result.accepted()) {
      std::printf("job %lld from %s rejected: %s\n",
                  static_cast<long long>(result.id), tenant,
                  service::to_string(result.rejected));
    }
  };

  for (int i = 0; i < 6; ++i) {
    submit("interactive", 2, service::Priority::kHigh, 30.0 * i);
  }
  for (int i = 0; i < 4; ++i) {
    submit("production", 8, service::Priority::kNormal, 60.0 + 90.0 * i);
  }
  for (int i = 0; i < 3; ++i) {
    submit("batch-sweep", 16, service::Priority::kBatch, 10.0 + 120.0 * i);
  }
  // One tenant asks for the impossible; the service refuses instead of
  // queueing it forever.
  submit("greedy", 64, service::Priority::kHigh, 0.0);

  // The archive tenant streams its on-disk scene in bounded memory.
  {
    service::JobRequest r;
    r.tenant = "archive";
    r.config = job_config(4);
    r.mode = service::JobMode::kStreaming;
    r.cube_path = cube_path;
    r.chunk_lines = 16;
    r.arrival = from_seconds(45.0);
    const auto result = service.submit(std::move(r));
    ++submitted;
    if (!result.accepted()) {
      std::printf("archive streaming job rejected: %s\n",
                  service::to_string(result.rejected));
    }
  }

  const service::ServiceReport report = service.run();

  Table jobs({"job", "tenant", "prio", "P", "state", "wait(s)", "service(s)",
              "nodes"});
  for (const auto& r : report.jobs) {
    std::string nodes;
    for (const auto n : r.leased_nodes) {
      nodes += (nodes.empty() ? "" : ",") + std::to_string(n);
    }
    const char* state = r.completed ? "done"
                        : r.failed  ? "failed"
                                    : service::to_string(r.rejected);
    jobs.add_row({strf("%lld", static_cast<long long>(r.id)), r.tenant,
                  service::to_string(r.priority), strf("%d", r.workers),
                  state, strf("%.1f", r.wait_seconds),
                  strf("%.1f", r.service_seconds), nodes});
  }
  jobs.print();

  std::printf("\n");
  Table tenants({"tenant", "submitted", "completed", "rejected", "Gflops",
                 "mean wait(s)", "mean service(s)"});
  for (const auto& acc : report.tenants) {
    tenants.add_row({acc.tenant, strf("%llu", (unsigned long long)acc.jobs_submitted),
                     strf("%llu", (unsigned long long)acc.jobs_completed),
                     strf("%llu", (unsigned long long)acc.jobs_rejected),
                     strf("%.2f", acc.flops_charged * 1e-9),
                     strf("%.1f", acc.queue_wait.mean()),
                     strf("%.1f", acc.service_time.mean())});
  }
  tenants.print();

  std::printf("\nservice: %d/%d jobs completed, peak concurrency %d, "
              "makespan %.1fs, throughput %.3f jobs/s\n",
              report.jobs_completed, report.jobs_submitted,
              report.max_concurrent_jobs, report.makespan_seconds,
              report.throughput_jobs_per_sec);
  std::printf("latency: wait p50/p95/p99 = %.1f/%.1f/%.1f s, "
              "total p99 = %.1f s\n",
              report.wait_p50, report.wait_p95, report.wait_p99,
              report.latency_p99);
  if (report.streaming.jobs > 0) {
    // (stall seconds are real wall time and vary run to run; stdout stays
    // deterministic — see JobRecord::stream for the live counters.)
    std::printf("streaming: %d job(s), %.1f MB streamed, peak buffers "
                "%.2f MB (cube %.2f MB), simd=%s\n",
                report.streaming.jobs,
                static_cast<double>(report.streaming.bytes_read) / 1e6,
                static_cast<double>(report.streaming.max_peak_buffer_bytes) /
                    1e6,
                static_cast<double>(scene.cube.bytes()) / 1e6,
                report.simd_backend.c_str());
  }
  // Export the day's trace and prove it is schema-valid with the in-repo
  // checker. Span COUNTS are deterministic (they follow the virtual
  // timeline and the fixed chunk geometry); timings inside the file are
  // wall clock and vary, so stdout sticks to the counts.
  obs::SpanTracer::instance().set_enabled(false);
  const std::string trace_path =
      (std::filesystem::temp_directory_path() / "rif_service_trace.json")
          .string();
  bool trace_ok = false;
  if (obs::write_chrome_trace(trace_path)) {
    const obs::TraceCheckResult check = obs::check_chrome_trace_file(trace_path);
    trace_ok = check.ok;
    const auto count = [&](const char* name) {
      const auto it = check.span_counts.find(name);
      return it == check.span_counts.end() ? std::size_t{0} : it->second;
    };
    std::printf("\ntrace: %s — %s\n", trace_path.c_str(),
                check.ok ? "valid Chrome trace" : check.error.c_str());
    std::printf("trace spans: submit=%zu queue_wait=%zu execute=%zu "
                "host_execute=%zu chunk_read=%zu\n",
                count("submit"), count("queue_wait"), count("execute"),
                count("host_execute"), count("chunk_read"));
  } else {
    std::printf("\ntrace: cannot write %s\n", trace_path.c_str());
  }

  if (linger_seconds > 0.0) {
    // The service (and with it the ops endpoint and the metrics scraper)
    // stays alive so clients can attach now: status, metrics, logs,
    // flamegraph, and the live subscribe-metrics stream all keep working.
    std::fprintf(stderr, "lingering %.1fs for ops clients...\n",
                 linger_seconds);
    std::this_thread::sleep_for(
        std::chrono::duration<double>(linger_seconds));
  }

  std::filesystem::remove(trace_path);
  std::filesystem::remove(cube_path);
  std::filesystem::remove(cube_path + ".hdr");
  return report.all_completed && trace_ok ? 0 : 1;
}
