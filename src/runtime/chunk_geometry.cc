#include "runtime/chunk_geometry.h"

namespace rif::runtime {

const char* validate_chunk_geometry(int chunk_lines, int queue_depth) {
  if (chunk_lines < kMinChunkLines) {
    return "chunk_lines must be >= 1 (zero or negative chunks cannot make "
           "progress)";
  }
  if (chunk_lines > kMaxChunkLines) {
    return "chunk_lines exceeds 65536: a chunk that large defeats "
           "bounded-memory streaming (use the in-memory engines instead)";
  }
  if (queue_depth < kMinQueueDepth) {
    return "queue_depth must cover one filling + one draining + one queued "
           "chunk buffer (>= 3)";
  }
  if (queue_depth > kMaxQueueDepth) {
    return "queue_depth exceeds 256: that much read-ahead is a resident "
           "cube in disguise";
  }
  return nullptr;
}

}  // namespace rif::runtime
