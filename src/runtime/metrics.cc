#include "runtime/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace rif::runtime {

namespace {

/// Bucket index for a latency: ceil(log2(seconds)) shifted so that
/// ~1 microsecond lands in bucket 0; out-of-range clamps to the ends.
int bucket_index(double seconds) {
  if (!(seconds > 0.0)) return 0;
  const int b =
      static_cast<int>(std::ceil(std::log2(seconds))) + Histogram::kZeroBucket;
  return std::clamp(b, 0, Histogram::kBuckets - 1);
}

void atomic_add(std::atomic<double>& a, double delta) {
  double cur = a.load(std::memory_order_relaxed);
  while (
      !a.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (cur > v &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (cur < v &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

/// Minimal JSON number formatting: finite, shortest-ish representation.
std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

/// Series names are repo-chosen identifiers, but escape the JSON-special
/// characters anyway so a hostile tenant name cannot break the document.
std::string json_string(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  out.push_back('"');
  return out;
}

}  // namespace

void Histogram::observe(double seconds) {
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, seconds);
  atomic_min(min_, seconds);
  atomic_max(max_, seconds);
  buckets_[static_cast<std::size_t>(bucket_index(seconds))].fetch_add(
      1, std::memory_order_relaxed);
}

double Histogram::min() const {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::bucket_edge(int b) {
  return std::ldexp(1.0, b - kZeroBucket);
}

double Histogram::quantile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  const auto rank = static_cast<std::uint64_t>(
      std::clamp(q, 0.0, 1.0) * static_cast<double>(n - 1));
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += bucket(b);
    if (seen > rank) return bucket_edge(b);
  }
  return bucket_edge(kBuckets - 1);
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name, GaugeKind kind) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>(kind);
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

std::uint64_t MetricsRegistry::counter_value(const std::string& name) const {
  const Counter* c = find_counter(name);
  return c == nullptr ? 0 : c->value();
}

double MetricsRegistry::gauge_value(const std::string& name) const {
  const Gauge* g = find_gauge(name);
  return g == nullptr ? 0.0 : g->value();
}

void MetricsRegistry::merge_into(MetricsRegistry& target,
                                 const std::string& prefix) const {
  // Snapshot the series pointers under our lock, update the target outside
  // of it (target creation takes the target's own lock; series updates are
  // atomic). Self-merge is not supported and not needed.
  std::vector<std::pair<std::string, const Counter*>> counters;
  std::vector<std::pair<std::string, const Gauge*>> gauges;
  std::vector<std::pair<std::string, const Histogram*>> histograms;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, c] : counters_) counters.emplace_back(name, c.get());
    for (const auto& [name, g] : gauges_) gauges.emplace_back(name, g.get());
    for (const auto& [name, h] : histograms_) {
      histograms.emplace_back(name, h.get());
    }
  }
  for (const auto& [name, c] : counters) {
    target.counter(prefix + name).add(c->value());
  }
  for (const auto& [name, g] : gauges) {
    target.gauge(prefix + name, g->kind()).record(g->value());
  }
  for (const auto& [name, h] : histograms) {
    Histogram& t = target.histogram(prefix + name);
    const std::uint64_t n = h->count();
    if (n == 0) continue;
    // Bucket-wise merge preserving count/sum/min/max exactly.
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      const std::uint64_t bc = h->bucket(b);
      if (bc > 0) {
        t.buckets_[static_cast<std::size_t>(b)].fetch_add(
            bc, std::memory_order_relaxed);
      }
    }
    t.count_.fetch_add(n, std::memory_order_relaxed);
    atomic_add(t.sum_, h->sum());
    atomic_min(t.min_, h->min());
    atomic_max(t.max_, h->max());
  }
}

void MetricsRegistry::install_histogram(
    const std::string& name, std::uint64_t count, double sum, double min,
    double max, const std::vector<std::uint64_t>& buckets) {
  Histogram& h = histogram(name);
  // Plain stores: the installed state is a cumulative snapshot from another
  // process; nothing observes into this series concurrently with ingest
  // (the collector serializes installs per worker).
  for (int b = 0; b < Histogram::kBuckets; ++b) {
    const auto i = static_cast<std::size_t>(b);
    h.buckets_[i].store(i < buckets.size() ? buckets[i] : 0,
                        std::memory_order_relaxed);
  }
  h.count_.store(count, std::memory_order_relaxed);
  h.sum_.store(sum, std::memory_order_relaxed);
  h.min_.store(count == 0 ? std::numeric_limits<double>::infinity() : min,
               std::memory_order_relaxed);
  h.max_.store(max, std::memory_order_relaxed);
}

namespace {

HistogramSummary summarize(const Histogram& h) {
  HistogramSummary s;
  s.count = h.count();
  s.sum = h.sum();
  s.mean = s.count > 0 ? s.sum / static_cast<double>(s.count) : 0.0;
  s.min = h.min();
  s.max = h.max();
  s.p50 = h.quantile(0.50);
  s.p95 = h.quantile(0.95);
  s.p99 = h.quantile(0.99);
  return s;
}

}  // namespace

RegistrySnapshot MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  RegistrySnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    snap.histograms[name] = summarize(*h);
  }
  return snap;
}

std::string MetricsRegistry::to_json() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    os << (first ? "\n" : ",\n") << "    " << json_string(name) << ": "
       << c->value();
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    os << (first ? "\n" : ",\n") << "    " << json_string(name) << ": "
       << json_number(g->value());
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    const HistogramSummary s = summarize(*h);
    os << (first ? "\n" : ",\n") << "    " << json_string(name) << ": {"
       << "\"count\": " << s.count << ", \"sum\": " << json_number(s.sum)
       << ", \"mean\": " << json_number(s.mean)
       << ", \"min\": " << json_number(s.min)
       << ", \"max\": " << json_number(s.max)
       << ", \"p50\": " << json_number(s.p50)
       << ", \"p95\": " << json_number(s.p95)
       << ", \"p99\": " << json_number(s.p99) << "}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

}  // namespace rif::runtime
