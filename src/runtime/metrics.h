// Metrics registry of the adaptive runtime control plane.
//
// Everything the control plane reacts to — queue stalls, per-chunk stage
// latencies, pool busy/idle, per-tenant admission outcomes — flows through
// one MetricsRegistry of named series, so "observe" and "react" share a
// vocabulary: the ChunkAutotuner reads the same stall series a dashboard
// would, and the JSON snapshot exporter is the registry walked once.
//
// Three series kinds, all hot-path-cheap (one relaxed atomic op per
// update, no locks after creation):
//
//   * Counter   — monotone u64 (events, bytes). Merge: add.
//   * Gauge     — double with an aggregation kind chosen at creation:
//                 kSum accumulates (stall seconds), kMax keeps the
//                 high-water (peak buffer bytes). Merge follows the kind.
//   * Histogram — log2-bucketed latency distribution (count, sum, min,
//                 max, bucket counts; quantile estimates from buckets).
//                 Merge: bucket-wise add.
//
// Ownership/threading: the registry owns its series; references returned
// by counter()/gauge()/histogram() are stable for the registry's lifetime
// (series are never removed). Creation takes a mutex; wiring code looks a
// series up once and keeps the pointer. Updates are wait-free atomics and
// safe from any thread, including pool workers and the streaming reader.
//
// Scoping pattern: a per-job producer (one streamed run) writes into its
// own local registry, then merge_into() folds the job's series — counters
// added, max-gauges maxed, histogram buckets summed — into a long-lived
// service registry under a prefix. Per-job views (StreamingStats) and
// service-wide aggregates (StreamingTotals) are both reads of a registry,
// not separately maintained counter structs.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace rif::runtime {

class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// How a gauge combines updates (record) and merges across registries.
enum class GaugeKind {
  kSum,  ///< accumulates: stall seconds, busy seconds
  kMax,  ///< high-water: peak buffer bytes, max queue occupancy
};

class Gauge {
 public:
  explicit Gauge(GaugeKind kind) : kind_(kind) {}

  [[nodiscard]] GaugeKind kind() const { return kind_; }

  /// Fold `v` in following the gauge's kind: kSum adds, kMax maxes.
  void record(double v) { kind_ == GaugeKind::kSum ? add(v) : update_max(v); }

  /// Overwrite (last-write-wins snapshot value, e.g. a utilization ratio).
  void set(double v) { value_.store(v, std::memory_order_relaxed); }

  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  void add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  void update_max(double v) {
    double cur = value_.load(std::memory_order_relaxed);
    while (cur < v && !value_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }

  const GaugeKind kind_;
  std::atomic<double> value_{0.0};
};

/// Latency distribution in log2 buckets: bucket b counts observations in
/// (2^(b-1-kZeroBucket), 2^(b-kZeroBucket)] seconds, so the range spans
/// ~1 microsecond to ~64 seconds with the tails clamped into the end
/// buckets. Good to a factor of 2 — the resolution autotuning and
/// dashboards need, at the cost of one atomic increment.
class Histogram {
 public:
  /// 2^-20 s ~ 1us lower edge, 27 buckets => top edge 2^6 = 64 s.
  static constexpr int kZeroBucket = 20;
  static constexpr int kBuckets = 27;

  void observe(double seconds);

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  /// 0 when empty.
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const {
    return max_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bucket(int b) const {
    return buckets_[static_cast<std::size_t>(b)].load(
        std::memory_order_relaxed);
  }
  /// Upper edge (seconds) of bucket b.
  [[nodiscard]] static double bucket_edge(int b);

  /// Bucket-resolution quantile estimate: the upper edge of the bucket
  /// containing the q-th observation. 0 when empty.
  [[nodiscard]] double quantile(double q) const;

 private:
  friend class MetricsRegistry;  // merge support
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  /// +inf sentinel while empty, so concurrent first observations race
  /// safely through the same min-CAS as every later one.
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{0.0};
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
};

/// Point-in-time value of one histogram: totals plus the log2-bucket
/// quantile summary (p50/p95/p99 at bucket resolution) so a snapshot is
/// readable without access to the live buckets.
struct HistogramSummary {
  std::uint64_t count = 0;
  double sum = 0.0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Consistent-enough point-in-time copy of a whole registry (each series
/// read atomically; cross-series skew is bounded by the walk). This is
/// what the MetricsScraper samples on its period — delta computation and
/// timeline serialization work on plain values, never on live series.
struct RegistrySnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSummary> histograms;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create. References stay valid for the registry's lifetime.
  /// Re-requesting a gauge with a different kind keeps the original kind.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name, GaugeKind kind = GaugeKind::kSum);
  Histogram& histogram(const std::string& name);

  /// Lookup without creation; nullptr when the series does not exist.
  [[nodiscard]] const Counter* find_counter(const std::string& name) const;
  [[nodiscard]] const Gauge* find_gauge(const std::string& name) const;
  [[nodiscard]] const Histogram* find_histogram(const std::string& name) const;

  /// Convenience reads that treat a missing series as zero — the natural
  /// semantics for report builders ("no streamed job ran yet").
  [[nodiscard]] std::uint64_t counter_value(const std::string& name) const;
  [[nodiscard]] double gauge_value(const std::string& name) const;

  /// Fold every series of this registry into `target` under `prefix`:
  /// counters add, gauges follow their kind (kSum adds, kMax maxes),
  /// histograms merge bucket-wise. Creates missing target series with the
  /// source's gauge kinds.
  void merge_into(MetricsRegistry& target, const std::string& prefix) const;

  /// Overwrite histogram `name` with an externally shipped cumulative
  /// state (raw log2 buckets — `buckets` must hold Histogram::kBuckets
  /// entries, excess ignored, missing read as zero). Used by the remote
  /// telemetry ingest, where the worker's registry lives in another
  /// process and batches may be re-shipped: overwriting with the latest
  /// cumulative state is idempotent where merging would double-count.
  void install_histogram(const std::string& name, std::uint64_t count,
                         double sum, double min, double max,
                         const std::vector<std::uint64_t>& buckets);

  /// Every series' current value as plain data (see RegistrySnapshot).
  [[nodiscard]] RegistrySnapshot snapshot() const;

  /// One JSON object for dashboards:
  /// {"counters":{name:value,...},
  ///  "gauges":{name:value,...},
  ///  "histograms":{name:{"count":..,"sum":..,"mean":..,"min":..,"max":..,
  ///                      "p50":..,"p95":..,"p99":..},...}}
  /// Series appear sorted by name; values are finite numbers. The p50/95/99
  /// summaries come from the log2 buckets (upper-edge estimates), so the
  /// report is readable without post-processing the buckets.
  [[nodiscard]] std::string to_json() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace rif::runtime
