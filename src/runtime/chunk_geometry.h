// Shared bounds validation for the streaming pipeline's chunk geometry.
//
// Before this helper existed, submit-time validation (FusionService) and
// the engine (fuse_streaming) each clamped chunk_lines/queue_depth with
// their own ad-hoc checks, and they disagreed: the service rejected
// queue_depth < 3 while the engine CHECK-aborted, and neither bounded the
// knobs from above — a huge chunk_lines silently asked the reader for a
// near-whole-cube buffer, defeating the bounded-memory contract. Both
// callers (and the ChunkAutotuner's clamps) now share these bounds, so a
// bad request fails the same way everywhere: a clear error string instead
// of a crash or an absurd allocation.
#pragma once

namespace rif::runtime {

/// Image lines per chunk. The upper bound exists to keep one chunk buffer
/// an intentionally small I/O unit (64k lines of even a modest cube is
/// gigabytes — at that point the caller wants the in-memory engines).
inline constexpr int kMinChunkLines = 1;
inline constexpr int kMaxChunkLines = 65536;

/// Chunk buffers in flight. >= 3 covers one filling at the reader + one
/// draining at the compute stage + one queued between them; the upper
/// bound keeps "read-ahead" from quietly becoming "the whole cube,
/// resident".
inline constexpr int kMinQueueDepth = 3;
inline constexpr int kMaxQueueDepth = 256;

/// nullptr when the geometry is valid; otherwise a static human-readable
/// description of the violated bound (safe to log, never freed).
const char* validate_chunk_geometry(int chunk_lines, int queue_depth);

}  // namespace rif::runtime
