#include "runtime/autotuner.h"

#include <algorithm>
#include <cmath>

#include "runtime/chunk_geometry.h"
#include "support/check.h"

namespace rif::runtime {

ChunkAutotuner::ChunkAutotuner(const AutotuneConfig& config, int chunk_lines,
                               int queue_depth, std::uint64_t bytes_per_line)
    : config_(config), bytes_per_line_(std::max<std::uint64_t>(1, bytes_per_line)) {
  RIF_CHECK(config_.grow_factor > 1.0);
  RIF_CHECK(config_.epoch_chunks >= 1);
  RIF_CHECK(config_.dead_band >= 0.0);
  config_.min_chunk_lines = std::max(config_.min_chunk_lines, kMinChunkLines);
  config_.max_chunk_lines = std::min(config_.max_chunk_lines, kMaxChunkLines);
  config_.min_queue_depth = std::max(config_.min_queue_depth, kMinQueueDepth);
  config_.max_queue_depth = std::min(config_.max_queue_depth, kMaxQueueDepth);
  RIF_CHECK(config_.min_chunk_lines <= config_.max_chunk_lines);
  RIF_CHECK(config_.min_queue_depth <= config_.max_queue_depth);
  queue_depth_ =
      std::clamp(queue_depth, config_.min_queue_depth, config_.max_queue_depth);
  chunk_lines_ = clamp_chunk_lines(chunk_lines);
  initial_chunk_lines_ = chunk_lines_;
  initial_queue_depth_ = queue_depth_;
  effective_epoch_ = config_.epoch_chunks;
}

int ChunkAutotuner::clamp_chunk_lines(int lines) const {
  int hi = config_.max_chunk_lines;
  if (config_.memory_budget > 0) {
    // queue_depth full-size buffers must fit the budget.
    const std::uint64_t per_buffer =
        config_.memory_budget / static_cast<std::uint64_t>(queue_depth_);
    const std::uint64_t budget_lines = per_buffer / bytes_per_line_;
    hi = static_cast<int>(std::min<std::uint64_t>(
        hi, std::max<std::uint64_t>(1, budget_lines)));
  }
  return std::clamp(lines, std::min(config_.min_chunk_lines, hi), hi);
}

void ChunkAutotuner::observe(const TuneObservation& obs) {
  ++chunks_seen_;
  epoch_.read_seconds += obs.read_seconds;
  epoch_.reader_stall_seconds += obs.reader_stall_seconds;
  epoch_.compute_stall_seconds += obs.compute_stall_seconds;
  epoch_.compute_seconds += obs.compute_seconds;
  epoch_lines_ += obs.lines;
  if (++since_decision_ >= effective_epoch_) {
    since_decision_ = 0;
    decide();
  }
}

void ChunkAutotuner::decide() {
  if (frozen_) {
    epoch_ = {};
    epoch_lines_ = 0;
    return;
  }
  ++epoch_count_;
  const double total = epoch_.read_seconds + epoch_.reader_stall_seconds +
                       epoch_.compute_stall_seconds + epoch_.compute_seconds;
  const double rf =
      total > 0.0 ? epoch_.reader_stall_seconds / total : 0.0;
  const double cf =
      total > 0.0 ? epoch_.compute_stall_seconds / total : 0.0;
  // Epoch throughput as the consumer sees it: lines retired per second of
  // consumer wall (compute + waiting for the reader). 0 without line data.
  const double consumer_wall =
      epoch_.compute_seconds + epoch_.compute_stall_seconds;
  const double rate = epoch_lines_ > 0 && consumer_wall > 0.0
                          ? static_cast<double>(epoch_lines_) / consumer_wall
                          : 0.0;
  epoch_ = {};
  epoch_lines_ = 0;

  // Throughput veto: stall signs propose, measured rate disposes. If the
  // previous decision moved and this epoch is SLOWER than the one that
  // triggered the move, the move was wrong no matter what the stalls say
  // (e.g. tiny chunks starving the consumer on reader overhead reads as
  // "I/O-bound, shrink more") — undo it and park that direction.
  const auto park_index = [](int direction) { return direction > 0 ? 1 : 0; };
  bool vetoed = false;
  int forced = 0;
  if (last_applied_ != 0 && rate > 0.0 && rate_before_move_ > 0.0 &&
      rate < rate_before_move_ * (1.0 - config_.veto_threshold)) {
    vetoed = true;
    parked_[park_index(last_applied_)] = true;
    park_age_[park_index(last_applied_)] = 0;
    forced = -last_applied_;
    // Annealing: a contradiction between stalls and rate means we are in
    // the noise floor around an optimum — observe longer before the next
    // move, and after freeze_after_vetoes contradictions stop moving at
    // all (the undo below is this tuner's last word).
    ++vetoes_;
    effective_epoch_ =
        std::min(effective_epoch_ * 2, 8 * config_.epoch_chunks);
    if (vetoes_ >= config_.freeze_after_vetoes) frozen_ = true;
  }
  for (int side = 0; side < 2; ++side) {
    // Parole: the workload may have changed phase since the veto.
    if (parked_[side] && ++park_age_[side] >= config_.veto_hold_epochs) {
      parked_[side] = false;
    }
  }

  int signal = 0;
  if (forced != 0) {
    // The undo retracts a move, it does not start a trend.
    signal = forced;
    last_direction_ = 0;
    pending_reversal_ = 0;
  } else {
    if (rf > cf + config_.dead_band) {
      signal = +1;  // backpressure: compute-bound, grow chunks
    } else if (cf > rf + config_.dead_band) {
      signal = -1;  // starvation: I/O-bound, shrink chunks
    }
    // Reversal damping: one epoch pointing against the last acted-on move
    // is treated as noise; only a second consecutive epoch reverses
    // course. Balanced epochs clear the pending reversal — "consecutive"
    // is literal.
    if (signal != 0 && last_direction_ != 0 && signal == -last_direction_) {
      if (++pending_reversal_ < 2) signal = 0;
    } else {
      pending_reversal_ = 0;
    }
    if (signal != 0 && parked_[park_index(signal)]) {
      // The stalls keep pointing at a direction the rate already refuted:
      // the stall signature is misattributed (per-chunk overhead reads as
      // I/O-bound), so PROBE the opposite side — the only unexplored one.
      // Both sides parked = a bracketed local optimum: hold.
      signal = parked_[park_index(-signal)] ? 0 : -signal;
    }
  }

  int applied = 0;
  if (signal > 0) {
    const int grown = clamp_chunk_lines(static_cast<int>(
        std::ceil(static_cast<double>(chunk_lines_) * config_.grow_factor)));
    if (grown > chunk_lines_) {
      chunk_lines_ = grown;
      applied = +1;
    } else if (!vetoed && queue_depth_ > config_.min_queue_depth) {
      // Chunk growth is clamped: when the MEMORY BUDGET is what binds,
      // trade read-ahead depth for chunk width — compute-bound runs do
      // not need deep read-ahead, and a shallower queue frees budget for
      // the next growth step. Revert the depth cut if it bought no width
      // (growth was clamped by max_chunk_lines, not the budget): a trade
      // that only drains read-ahead is not a trade, and it would bypass
      // the veto/trajectory machinery as an invisible applied==0 move.
      --queue_depth_;
      const int regrown = clamp_chunk_lines(static_cast<int>(std::ceil(
          static_cast<double>(chunk_lines_) * config_.grow_factor)));
      if (regrown > chunk_lines_) {
        chunk_lines_ = regrown;
        applied = +1;
      } else {
        ++queue_depth_;
      }
    }
  } else if (signal < 0) {
    const int shrunk = clamp_chunk_lines(static_cast<int>(
        std::floor(static_cast<double>(chunk_lines_) / config_.grow_factor)));
    if (shrunk < chunk_lines_) {
      chunk_lines_ = shrunk;
      applied = -1;
    }
    // I/O-bound: deeper read-ahead helps hide disk latency, budget
    // allowing. An undo only retraces the chunk step, it leaves depth be.
    if (!vetoed && queue_depth_ < config_.max_queue_depth) {
      const std::uint64_t chunk_bytes =
          static_cast<std::uint64_t>(chunk_lines_) * bytes_per_line_;
      const std::uint64_t want =
          static_cast<std::uint64_t>(queue_depth_ + 1) * chunk_bytes;
      if (config_.memory_budget == 0 || want <= config_.memory_budget) {
        ++queue_depth_;
        if (applied == 0) applied = -1;
      }
    }
  }
  if (applied != 0 && !vetoed) {
    last_direction_ = applied;
    pending_reversal_ = 0;
  }
  // Judge only deliberate moves next epoch; an undo is never re-judged
  // (its "before" rate is the degraded one it is escaping).
  last_applied_ = vetoed ? 0 : applied;
  if (last_applied_ != 0) rate_before_move_ = rate;

  TuneDecision d;
  d.chunk_index = chunks_seen_;
  d.direction = applied;
  d.vetoed = vetoed;
  d.chunk_lines = chunk_lines_;
  d.queue_depth = queue_depth_;
  d.reader_stall_frac = rf;
  d.compute_stall_frac = cf;
  d.lines_per_second = rate;
  trajectory_.push_back(d);
}

void ChunkAutotuner::phase_boundary() {
  epoch_ = {};
  epoch_lines_ = 0;
  since_decision_ = 0;
  last_applied_ = 0;
  rate_before_move_ = 0.0;
  last_direction_ = 0;
  pending_reversal_ = 0;
}

AutotuneReport ChunkAutotuner::report() const {
  AutotuneReport r;
  r.enabled = true;
  r.initial_chunk_lines = initial_chunk_lines_;
  r.final_chunk_lines = chunk_lines_;
  r.initial_queue_depth = initial_queue_depth_;
  r.final_queue_depth = queue_depth_;
  r.trajectory = trajectory_;
  return r;
}

}  // namespace rif::runtime
