// ChunkAutotuner — the feedback controller of the adaptive runtime.
//
// The streaming engine's per-stage stall counters already answer "is this
// run I/O-bound or compute-bound?" (reader stall = backpressure =
// compute-bound; compute stall = starvation = I/O-bound); this controller
// closes the loop by retuning the chunk geometry BETWEEN chunks of a live
// run instead of leaving the answer in a report:
//
//   * reader-stalled  -> compute is the bottleneck and per-chunk overheads
//                        (fold of the unique sets, queue handoffs, task
//                        dispatch) are pure tax on it: GROW chunk_lines so
//                        fewer, larger chunks amortize the fixed costs and
//                        give each screening fan-out more parallel width.
//   * compute-stalled -> the disk is the bottleneck: SHRINK chunk_lines so
//                        compute starts sooner after each read and the
//                        pipeline interleaves at a finer grain, and prefer
//                        a deeper queue (more read-ahead) over wider
//                        chunks.
//
// Control discipline — the part that makes this usable on a live job:
//
//   * Decisions fire once per EPOCH (epoch_chunks observations), never per
//     chunk: single-chunk timings are noise (page cache hits, a tile
//     landing on a busy pool).
//   * Hysteresis, twice. A dead band on the stall-fraction gap means a
//     roughly balanced pipeline holds its geometry instead of hunting; and
//     a direction REVERSAL must be confirmed by two consecutive epochs
//     before it is acted on, so an oscillating signal (alternating
//     reader/compute-bound epochs) parks the tuner instead of thrashing
//     the chunk size — asserted on synthetic traces in tests.
//   * Throughput veto. Stall signs propose, measured throughput disposes:
//     after every move the next epoch's lines-per-second is compared with
//     the rate before it, and a move that made the pipeline slower is
//     UNDONE and its direction parked for a few epochs. This catches the
//     signature the stall signs alone misread — at very small chunks the
//     consumer starves on the reader's per-chunk overhead, which looks
//     like "I/O-bound, shrink more" and would feed back into ever-smaller
//     chunks; the rate veto turns the controller into a stall-informed
//     hill climb on actual throughput.
//   * Memory clamp: chunk_lines never grows past what memory_budget
//     affords at the current queue_depth (queue_depth x chunk_bytes <=
//     budget), and both knobs respect the shared chunk-geometry bounds.
//     The service passes the job's ADMITTED budget here, so a tuned job
//     cannot outgrow what the Scheduler let it in with.
//
// The controller is driven purely by per-chunk observations (deltas of
// the registry-backed stall/latency series), so it unit-tests on
// synthetic traces with no engine, no disk and no clock.
#pragma once

#include <cstdint>
#include <vector>

namespace rif::runtime {

struct AutotuneConfig {
  /// Starting chunk_lines when > 0; 0 = start from the caller's configured
  /// chunk_lines. The default starts NARROW on purpose: an undersized
  /// start is corrected in a few cheap epochs (many small chunks = many
  /// observations), while an oversized start wastes most of a pass before
  /// the first decision can even land — the reader is queue_depth chunks
  /// ahead of the controller.
  int initial_chunk_lines = 8;

  /// Clamp on tuned chunk_lines (further clamped to the shared
  /// chunk-geometry bounds and to the image height by the engine).
  int min_chunk_lines = 4;
  int max_chunk_lines = 2048;

  /// Clamp on tuned queue_depth.
  int min_queue_depth = 3;
  int max_queue_depth = 16;

  /// Multiplicative step per decision (> 1).
  double grow_factor = 2.0;

  /// Observations per decision epoch (>= 1).
  int epoch_chunks = 3;

  /// Dead band on |reader_stall_frac - compute_stall_frac|: inside it the
  /// pipeline counts as balanced and geometry holds.
  double dead_band = 0.10;

  /// Throughput veto: a move whose follow-up epoch rate (lines per second
  /// of consumer wall) drops by more than this fraction is undone and the
  /// direction parked for veto_hold_epochs. While one direction is parked
  /// a stall signal pointing at it PROBES the opposite side instead (the
  /// only unexplored one); with both sides parked the geometry holds — a
  /// discovered local optimum. Observations with no line counts (rate 0)
  /// never trigger the veto.
  double veto_threshold = 0.10;
  int veto_hold_epochs = 6;

  /// Annealing: every veto doubles the effective epoch length (capped at
  /// 8x) — a veto means the rate landscape contradicted the stall
  /// signature, i.e. the tuner is inside the noise floor around an
  /// optimum, so it should look longer before moving again — and after
  /// this many vetoes the geometry FREEZES for the rest of the run:
  /// further exploration can only cost throughput it already measured.
  int freeze_after_vetoes = 3;

  /// Peak-memory clamp (bytes) on queue_depth x chunk buffer; 0 = none.
  std::uint64_t memory_budget = 0;
};

/// Per-chunk timing deltas the engine feeds the controller.
struct TuneObservation {
  double read_seconds = 0.0;           ///< reader inside read_lines
  double reader_stall_seconds = 0.0;   ///< reader blocked (backpressure)
  double compute_stall_seconds = 0.0;  ///< compute blocked (starved)
  double compute_seconds = 0.0;        ///< screening + fold for the chunk
  int lines = 0;                       ///< image lines in the chunk (rate)
};

/// One decision point of a run (one epoch), recorded for benches/tests:
/// the tuned trajectory in BENCH_stream.json is a dump of these.
struct TuneDecision {
  int chunk_index = 0;   ///< observations consumed when the epoch closed
  int direction = 0;     ///< +1 grew, -1 shrank, 0 held
  bool vetoed = false;   ///< this decision undid the previous move
  int chunk_lines = 0;   ///< value after the decision
  int queue_depth = 0;   ///< value after the decision
  double reader_stall_frac = 0.0;
  double compute_stall_frac = 0.0;
  double lines_per_second = 0.0;  ///< epoch throughput (0 = no line data)
};

/// Everything a run's tuning did, attached to StreamingResult.
struct AutotuneReport {
  bool enabled = false;
  int initial_chunk_lines = 0;
  int final_chunk_lines = 0;
  int initial_queue_depth = 0;
  int final_queue_depth = 0;
  std::vector<TuneDecision> trajectory;
};

class ChunkAutotuner {
 public:
  /// `bytes_per_line` sizes the memory clamp (samples x bands x 4 for the
  /// streaming engine). Initial values are clamped into the configured and
  /// shared-geometry bounds immediately.
  ChunkAutotuner(const AutotuneConfig& config, int chunk_lines,
                 int queue_depth, std::uint64_t bytes_per_line);

  /// Feed one chunk's timing deltas; closes an epoch (and possibly moves
  /// the knobs) every config.epoch_chunks calls.
  void observe(const TuneObservation& obs);

  /// Current recommendations. chunk_lines may change after any observe();
  /// queue_depth recommendations are meant to be applied at a pass
  /// boundary (buffers are allocated per pass).
  [[nodiscard]] int chunk_lines() const { return chunk_lines_; }
  [[nodiscard]] int queue_depth() const { return queue_depth_; }
  /// Hard ceiling queue_depth() can ever reach — the configured maximum
  /// after the constructor clamped it into the shared geometry bounds.
  /// Size buffer pools from THIS, not from the raw caller config.
  [[nodiscard]] int max_queue_depth() const { return config_.max_queue_depth; }

  /// Tell the controller the workload changed phase (e.g. the streaming
  /// engine's screening pass gave way to the transform pass): the open
  /// epoch and the move-under-judgment are discarded so the first
  /// decision of the new phase cannot compare throughput across two
  /// different kernels and fire a spurious veto. Parks, annealing and a
  /// freeze persist — they describe the machine, not the phase.
  void phase_boundary();

  [[nodiscard]] const std::vector<TuneDecision>& trajectory() const {
    return trajectory_;
  }

  [[nodiscard]] AutotuneReport report() const;

 private:
  void decide();
  [[nodiscard]] int clamp_chunk_lines(int lines) const;

  AutotuneConfig config_;
  std::uint64_t bytes_per_line_;
  int initial_chunk_lines_;
  int initial_queue_depth_;
  int chunk_lines_;
  int queue_depth_;

  int chunks_seen_ = 0;
  int since_decision_ = 0;  ///< observations in the open epoch
  int effective_epoch_;     ///< annealed epoch length (doubles per veto)
  int vetoes_ = 0;
  bool frozen_ = false;
  int epoch_count_ = 0;
  TuneObservation epoch_;  ///< sums over the open epoch
  std::int64_t epoch_lines_ = 0;

  int last_direction_ = 0;     ///< last acted-on move
  int pending_reversal_ = 0;   ///< consecutive epochs asking to reverse
  int last_applied_ = 0;       ///< move applied by the PREVIOUS decision
  double rate_before_move_ = 0.0;  ///< epoch rate when that move fired
  bool parked_[2] = {false, false};  ///< rate-vetoed: [0]=shrink, [1]=grow
  int park_age_[2] = {0, 0};         ///< epochs since each veto fired
  std::vector<TuneDecision> trajectory_;
};

}  // namespace rif::runtime
