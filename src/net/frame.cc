#include "net/frame.h"

#include "support/check.h"

namespace rif::net {

namespace {

// The header is explicitly little-endian so the magic/length check behaves
// identically on any host; a mixed-endian peer then fails fast inside the
// envelope's bounds checks instead of desyncing the frame stream.
void put_u32_le(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 24) & 0xFF));
}

std::uint32_t get_u32_le(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

}  // namespace

std::vector<std::uint8_t> encode_frame(
    const std::vector<std::uint8_t>& payload) {
  RIF_CHECK_MSG(payload.size() <= kMaxFramePayload, "frame payload too large");
  std::vector<std::uint8_t> out;
  out.reserve(framed_size(payload.size()));
  put_u32_le(out, kFrameMagic);
  put_u32_le(out, static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

bool FrameAssembler::feed(const std::uint8_t* data, std::size_t n,
                          const Sink& sink) {
  if (corrupt_) return false;
  buf_.insert(buf_.end(), data, data + n);
  constexpr std::size_t kHeader = 2 * sizeof(std::uint32_t);
  std::size_t pos = 0;
  while (buf_.size() - pos >= kHeader) {
    const std::uint32_t magic = get_u32_le(buf_.data() + pos);
    const std::uint32_t length =
        get_u32_le(buf_.data() + pos + sizeof(std::uint32_t));
    if (magic != kFrameMagic || length > kMaxFramePayload) {
      corrupt_ = true;
      buf_.clear();
      return false;
    }
    if (buf_.size() - pos - kHeader < length) break;
    std::vector<std::uint8_t> payload(
        buf_.begin() + static_cast<std::ptrdiff_t>(pos + kHeader),
        buf_.begin() + static_cast<std::ptrdiff_t>(pos + kHeader + length));
    pos += kHeader + length;
    sink(std::move(payload));
  }
  buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos));
  return true;
}

}  // namespace rif::net
