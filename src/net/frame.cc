#include "net/frame.h"

#include <cstring>

#include "support/check.h"

namespace rif::net {

std::vector<std::uint8_t> encode_frame(
    const std::vector<std::uint8_t>& payload) {
  RIF_CHECK_MSG(payload.size() <= kMaxFramePayload, "frame payload too large");
  const std::uint32_t magic = kFrameMagic;
  const std::uint32_t length = static_cast<std::uint32_t>(payload.size());
  std::vector<std::uint8_t> out;
  out.reserve(framed_size(payload.size()));
  const auto* pm = reinterpret_cast<const std::uint8_t*>(&magic);
  const auto* pl = reinterpret_cast<const std::uint8_t*>(&length);
  out.insert(out.end(), pm, pm + sizeof(magic));
  out.insert(out.end(), pl, pl + sizeof(length));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

bool FrameAssembler::feed(const std::uint8_t* data, std::size_t n,
                          const Sink& sink) {
  if (corrupt_) return false;
  buf_.insert(buf_.end(), data, data + n);
  constexpr std::size_t kHeader = 2 * sizeof(std::uint32_t);
  std::size_t pos = 0;
  while (buf_.size() - pos >= kHeader) {
    std::uint32_t magic = 0;
    std::uint32_t length = 0;
    std::memcpy(&magic, buf_.data() + pos, sizeof(magic));
    std::memcpy(&length, buf_.data() + pos + sizeof(magic), sizeof(length));
    if (magic != kFrameMagic || length > kMaxFramePayload) {
      corrupt_ = true;
      buf_.clear();
      return false;
    }
    if (buf_.size() - pos - kHeader < length) break;
    std::vector<std::uint8_t> payload(
        buf_.begin() + static_cast<std::ptrdiff_t>(pos + kHeader),
        buf_.begin() + static_cast<std::ptrdiff_t>(pos + kHeader + length));
    pos += kHeader + length;
    sink(std::move(payload));
  }
  buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos));
  return true;
}

}  // namespace rif::net
