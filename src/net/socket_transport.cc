#include "net/socket_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "support/check.h"
#include "support/log.h"

namespace rif::net {

namespace {

bool set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

// ---------------------------------------------------------------------------
// SocketServer
// ---------------------------------------------------------------------------

SocketServer::~SocketServer() { stop(); }

bool SocketServer::listen_tcp(std::uint16_t port) {
  RIF_CHECK(listen_fd_ < 0);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0) {
    ::close(fd);
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  listen_fd_ = fd;
  return set_nonblocking(fd);
}

bool SocketServer::listen_unix(const std::string& path) {
  RIF_CHECK(listen_fd_ < 0);
  if (path.size() >= sizeof(sockaddr_un{}.sun_path)) return false;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return false;
  ::unlink(path.c_str());
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0) {
    ::close(fd);
    return false;
  }
  unix_path_ = path;
  listen_fd_ = fd;
  return set_nonblocking(fd);
}

void SocketServer::start(FrameFn on_frame, ClosedFn on_closed) {
  RIF_CHECK_MSG(!running_.load(), "server already started");
  on_frame_ = std::move(on_frame);
  on_closed_ = std::move(on_closed);
  RIF_CHECK(::pipe(wake_pipe_) == 0);
  RIF_CHECK(set_nonblocking(wake_pipe_[0]) && set_nonblocking(wake_pipe_[1]));
  running_.store(true);
  thread_ = std::thread([this] { loop(); });
}

void SocketServer::wake() {
  if (wake_pipe_[1] >= 0) {
    const char b = 1;
    [[maybe_unused]] const auto n = ::write(wake_pipe_[1], &b, 1);
  }
}

bool SocketServer::send(SessionId session,
                        const std::vector<std::uint8_t>& payload) {
  const std::vector<std::uint8_t> framed = encode_frame(payload);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(session);
    if (it == sessions_.end() || it->second.draining) return false;
    it->second.outbound.insert(it->second.outbound.end(), framed.begin(),
                               framed.end());
  }
  wake();
  return true;
}

bool SocketServer::send_limited(SessionId session,
                                const std::vector<std::uint8_t>& payload,
                                std::size_t max_pending_bytes) {
  const std::vector<std::uint8_t> framed = encode_frame(payload);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(session);
    if (it == sessions_.end() || it->second.draining) return false;
    if (it->second.outbound.size() - it->second.sent > max_pending_bytes) {
      return false;  // consumer is behind: drop, never queue further
    }
    it->second.outbound.insert(it->second.outbound.end(), framed.begin(),
                               framed.end());
  }
  wake();
  return true;
}

SessionId SocketServer::adopt(int fd) {
  RIF_CHECK(set_nonblocking(fd));
  SessionId id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = next_session_++;
    sessions_[id].fd = fd;
  }
  wake();
  return id;
}

void SocketServer::close_session(SessionId session) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(session);
    if (it == sessions_.end()) return;
    it->second.draining = true;
  }
  wake();
}

void SocketServer::abort_session(SessionId session) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(session);
    if (it == sessions_.end()) return;
    it->second.draining = true;
    it->second.abort = true;
  }
  wake();
}

int SocketServer::session_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(sessions_.size());
}

bool SocketServer::flush(Session& s) {
  while (s.sent < s.outbound.size()) {
    const auto n = ::send(s.fd, s.outbound.data() + s.sent,
                          s.outbound.size() - s.sent, MSG_NOSIGNAL);
    if (n > 0) {
      s.sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    if (n < 0 && errno == EINTR) continue;
    return false;  // peer gone
  }
  s.outbound.clear();
  s.sent = 0;
  return true;
}

void SocketServer::destroy_session(SessionId id) {
  int fd = -1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) return;
    fd = it->second.fd;
    sessions_.erase(it);
  }
  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
  if (on_closed_) on_closed_(id);
}

void SocketServer::loop() {
  std::vector<std::uint8_t> buf(1 << 16);
  while (running_.load()) {
    // Snapshot the session set and its write-interest under the lock, then
    // poll without it so senders are never blocked behind a poll().
    std::vector<pollfd> fds;
    std::vector<SessionId> ids;
    std::vector<SessionId> dead;
    fds.push_back({wake_pipe_[0], POLLIN, 0});
    if (listen_fd_ >= 0) fds.push_back({listen_fd_, POLLIN, 0});
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (auto& [id, s] : sessions_) {
        const bool pending = s.sent < s.outbound.size();
        if (s.abort || (s.draining && !pending)) {
          dead.push_back(id);
          continue;
        }
        short events = POLLIN;
        if (pending) events |= POLLOUT;
        ids.push_back(id);
        fds.push_back({s.fd, events, 0});
      }
    }
    for (const SessionId id : dead) destroy_session(id);

    const int ready = ::poll(fds.data(), fds.size(), 100);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) continue;

    std::size_t fi = 0;
    if (fds[fi].revents & POLLIN) {  // wake pipe
      char drain[64];
      while (::read(wake_pipe_[0], drain, sizeof(drain)) > 0) {
      }
    }
    ++fi;
    if (listen_fd_ >= 0) {
      if (fds[fi].revents & POLLIN) {
        for (;;) {
          const int cfd = ::accept(listen_fd_, nullptr, nullptr);
          if (cfd < 0) break;
          adopt(cfd);
        }
      }
      ++fi;
    }

    for (std::size_t i = 0; i < ids.size(); ++i) {
      const SessionId id = ids[i];
      const pollfd& p = fds[fi + i];
      bool close_now = false;
      if (p.revents & POLLOUT) {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = sessions_.find(id);
        if (it != sessions_.end() && !flush(it->second)) close_now = true;
      }
      if (p.revents & (POLLIN | POLLHUP | POLLERR)) {
        for (;;) {
          const auto n = ::recv(p.fd, buf.data(), buf.size(), 0);
          if (n > 0) {
            // Reassemble and dispatch WITHOUT the lock: the callback may
            // reentrantly send() on this or another session.
            bool ok = true;
            {
              std::lock_guard<std::mutex> lock(mu_);
              ok = sessions_.contains(id);
            }
            if (!ok) break;
            FrameAssembler* assembler = nullptr;
            {
              std::lock_guard<std::mutex> lock(mu_);
              assembler = &sessions_[id].assembler;
            }
            if (!assembler->feed(buf.data(), static_cast<std::size_t>(n),
                                 [this, id](std::vector<std::uint8_t> pl) {
                                   if (on_frame_) on_frame_(id, std::move(pl));
                                 })) {
              RIF_LOG_WARN("net", "session " << id
                                             << ": corrupt frame, closing");
              close_now = true;
              break;
            }
            continue;
          }
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          if (n < 0 && errno == EINTR) continue;
          close_now = true;  // EOF or hard error
          break;
        }
      }
      if (close_now) destroy_session(id);
    }
  }
}

void SocketServer::stop() {
  if (!running_.exchange(false)) {
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return;
  }
  wake();
  if (thread_.joinable()) thread_.join();
  // Best-effort flush of whatever is still queued, then close everything.
  std::vector<SessionId> ids;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, s] : sessions_) {
      flush(s);
      ids.push_back(id);
    }
  }
  for (const SessionId id : ids) destroy_session(id);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (!unix_path_.empty()) ::unlink(unix_path_.c_str());
  for (int& fd : wake_pipe_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
}

// ---------------------------------------------------------------------------
// SocketClient
// ---------------------------------------------------------------------------

SocketClient::~SocketClient() { close(); }

bool SocketClient::connect_tcp(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return false;
  }
  fd_ = fd;
  return true;
}

bool SocketClient::connect_unix(const std::string& path) {
  if (path.size() >= sizeof(sockaddr_un{}.sun_path)) return false;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return false;
  }
  fd_ = fd;
  return true;
}

bool SocketClient::send_frame(const std::vector<std::uint8_t>& payload) {
  if (fd_ < 0) return false;
  const std::vector<std::uint8_t> framed = encode_frame(payload);
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const auto n =
        ::send(fd_, framed.data() + sent, framed.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

bool SocketClient::read_frame(std::vector<std::uint8_t>& payload) {
  std::uint8_t buf[1 << 16];
  while (ready_.empty()) {
    if (fd_ < 0) return false;
    const auto n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      if (!assembler_.feed(buf, static_cast<std::size_t>(n),
                           [this](std::vector<std::uint8_t> pl) {
                             ready_.push_back(std::move(pl));
                           })) {
        return false;  // corrupt stream
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;  // EOF or error
  }
  payload = std::move(ready_.front());
  ready_.erase(ready_.begin());
  return true;
}

void SocketClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

// ---------------------------------------------------------------------------
// SocketTransport
// ---------------------------------------------------------------------------

void SocketTransport::bind_node(cluster::NodeId node, SessionId session) {
  std::lock_guard<std::mutex> lock(mu_);
  routes_[node] = session;
}

void SocketTransport::unbind_session(SessionId session) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = routes_.begin(); it != routes_.end();) {
    it = it->second == session ? routes_.erase(it) : std::next(it);
  }
}

SessionId SocketTransport::session_of(cluster::NodeId node) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = routes_.find(node);
  return it == routes_.end() ? kNoSession : it->second;
}

void SocketTransport::deliver(cluster::NodeId dst_node,
                              std::vector<std::uint8_t> frame) {
  if (handler_) handler_(dst_node, std::move(frame));
}

SimTime SocketTransport::send(cluster::NodeId /*src*/, cluster::NodeId dst,
                              std::vector<std::uint8_t> frame,
                              std::uint64_t /*charged_bytes*/) {
  const SessionId session = session_of(dst);
  if (session == kNoSession || !server_.send(session, frame)) {
    RIF_LOG_WARN("net", "frame to node " << dst << " dropped (no session)");
  }
  return 0;
}

}  // namespace rif::net
