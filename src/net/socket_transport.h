// Real byte-level transport: length-prefixed frames over Unix or TCP
// sockets, a nonblocking poll() event loop, graceful close.
//
// Split into three pieces:
//
//   SocketServer — owns the listening socket and all accepted sessions,
//     runs them on one background poll-loop thread (self-pipe wakeups, no
//     busy wait). Frames are reassembled per session (net/frame.h) and
//     handed to the on_frame callback ON THE POLL THREAD; sends from any
//     thread are queued and flushed when the fd is writable. adopt() lets a
//     test inject one end of a socketpair as a session.
//   SocketClient — blocking counterpart for worker processes: connect,
//     send_frame, read_frame. Single-threaded by design; the worker
//     protocol is strictly reactive.
//   SocketTransport — net::Transport over a SocketServer: node ids map to
//     sessions, send() frames the envelope onto the session's socket and
//     inbound frames invoke the transport handler. The byte charge is
//     ignored — real links bill by what actually crosses them.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cluster/node.h"
#include "net/frame.h"
#include "net/transport.h"

namespace rif::net {

/// Opaque id of one accepted connection.
using SessionId = std::int64_t;
inline constexpr SessionId kNoSession = -1;

class SocketServer {
 public:
  using FrameFn = std::function<void(SessionId, std::vector<std::uint8_t>)>;
  using ClosedFn = std::function<void(SessionId)>;

  SocketServer() = default;
  ~SocketServer();
  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Bind a TCP listener on 127.0.0.1:`port` (0 = ephemeral; see port()).
  /// Returns false on bind/listen failure.
  [[nodiscard]] bool listen_tcp(std::uint16_t port);
  /// Bind a Unix-domain listener at `path` (unlinked first).
  [[nodiscard]] bool listen_unix(const std::string& path);
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Install callbacks, then start the poll loop. Both run on the loop
  /// thread; reentrant send()/close_session() from them is allowed.
  void start(FrameFn on_frame, ClosedFn on_closed);

  /// Queue one frame for a session. Thread-safe. False if unknown session.
  bool send(SessionId session, const std::vector<std::uint8_t>& payload);

  /// send(), but REFUSE (return false, queue nothing) when the session
  /// already has more than `max_pending_bytes` of unsent outbound bytes.
  /// This is the slow-consumer guard for fan-out paths (the ops plane's
  /// subscribe-metrics push): a subscriber that stops reading loses frames
  /// instead of growing the queue or backpressuring the producer.
  bool send_limited(SessionId session,
                    const std::vector<std::uint8_t>& payload,
                    std::size_t max_pending_bytes);

  /// Adopt an already-connected fd (e.g. one end of a socketpair) as a
  /// session. Thread-safe. Returns its session id.
  SessionId adopt(int fd);

  /// Graceful close of one session: pending outbound frames are flushed,
  /// then the fd is shut down and on_closed fires. Thread-safe.
  void close_session(SessionId session);

  /// Immediate close: unsent outbound bytes are discarded and on_closed
  /// fires without waiting for a drain. close_session() stalls forever on
  /// a peer that stopped reading while our queue is non-empty — this is
  /// the hammer liveness supervision (and kill-fault injection) needs.
  /// Thread-safe.
  void abort_session(SessionId session);

  /// Stop the loop: flush pending writes best-effort, close everything,
  /// join the thread. on_closed fires for every open session.
  void stop();

  [[nodiscard]] int session_count() const;

 private:
  struct Session {
    int fd = -1;
    FrameAssembler assembler;
    std::vector<std::uint8_t> outbound;  ///< unsent framed bytes
    std::size_t sent = 0;                ///< prefix of outbound already sent
    bool draining = false;               ///< close once outbound empties
    bool abort = false;                  ///< close now, discard outbound
  };

  void loop();
  void wake();
  void destroy_session(SessionId id);
  [[nodiscard]] bool flush(Session& s);

  mutable std::mutex mu_;
  std::map<SessionId, Session> sessions_;
  SessionId next_session_ = 1;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::uint16_t port_ = 0;
  std::string unix_path_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  FrameFn on_frame_;
  ClosedFn on_closed_;
};

class SocketClient {
 public:
  SocketClient() = default;
  ~SocketClient();
  SocketClient(const SocketClient&) = delete;
  SocketClient& operator=(const SocketClient&) = delete;

  [[nodiscard]] bool connect_tcp(const std::string& host, std::uint16_t port);
  [[nodiscard]] bool connect_unix(const std::string& path);
  /// Wrap an already-connected fd (socketpair end).
  void adopt(int fd) { fd_ = fd; }

  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  /// Frame and send one payload; handles partial writes. False on error.
  [[nodiscard]] bool send_frame(const std::vector<std::uint8_t>& payload);

  /// Block until one full frame arrives. False on EOF/error/corruption.
  [[nodiscard]] bool read_frame(std::vector<std::uint8_t>& payload);

  void close();

 private:
  int fd_ = -1;
  FrameAssembler assembler_;
  std::vector<std::vector<std::uint8_t>> ready_;  ///< decoded, undelivered
};

/// net::Transport over real sockets. Destinations are registered
/// explicitly: bind_node(node, session) routes frames for `node` onto that
/// session. Inbound frames are decoded by the poll thread and handed to the
/// transport handler tagged with the receiving node.
class SocketTransport final : public Transport {
 public:
  explicit SocketTransport(SocketServer& server) : server_(server) {}

  void bind_node(cluster::NodeId node, SessionId session);
  void unbind_session(SessionId session);
  [[nodiscard]] SessionId session_of(cluster::NodeId node) const;

  /// Feed an inbound frame (from the server's on_frame) to the handler.
  void deliver(cluster::NodeId dst_node, std::vector<std::uint8_t> frame);

  SimTime send(cluster::NodeId src, cluster::NodeId dst,
               std::vector<std::uint8_t> frame,
               std::uint64_t charged_bytes) override;

 private:
  SocketServer& server_;
  mutable std::mutex mu_;
  std::map<cluster::NodeId, SessionId> routes_;
};

}  // namespace rif::net
