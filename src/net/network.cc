#include "net/network.h"

#include <algorithm>

#include "sim/trace.h"

namespace rif::net {

SimTime Network::send(NodeId src, NodeId dst, std::uint64_t bytes,
                      std::function<void()> deliver) {
  auto& sim = cluster_.simulation();
  ++stats_.messages_sent;
  stats_.bytes_sent += bytes;
  cluster_.trace().record(
      {sim.now(), sim::TraceKind::kMessageSent, src, dst,
       static_cast<std::int64_t>(bytes), {}});

  SimTime deliver_at;
  if (src == dst) {
    // Loop-back: no NIC involvement, negligible fixed cost.
    deliver_at = sim.now() + from_micros(1);
  } else {
    const auto [nic_time, latency] = cost(src, dst, bytes);
    const bool control = bytes <= kControlLaneBytes;
    SimTime& busy = control ? control_busy_until_[src] : uplink_slot(src);
    const SimTime start = std::max(busy, sim.now());
    busy = start + nic_time;
    deliver_at = busy + latency;
    if (!control) {
      // Converging bulk flows serialize on the receiver's link.
      const SimTime occupancy = downlink_time(bytes);
      SimTime& down = downlink_busy_until_[dst];
      deliver_at = std::max(deliver_at, down) + occupancy;
      down = deliver_at;
    }
  }

  const bool lost =
      loss_probability_ > 0.0 && loss_rng_.uniform() < loss_probability_;
  const bool cut = partitioned(src, dst);

  sim.schedule_at(
      deliver_at, [this, src, dst, bytes, lost, cut,
                   deliver = std::move(deliver)] {
        auto& s = cluster_.simulation();
        if (lost || cut || !cluster_.node(dst).alive()) {
          ++stats_.messages_dropped;
          cluster_.trace().record({s.now(), sim::TraceKind::kMessageDropped,
                                   src, dst,
                                   static_cast<std::int64_t>(bytes),
                                   lost   ? "lost"
                                   : cut  ? "partitioned"
                                          : "dst-dead"});
          return;
        }
        ++stats_.messages_delivered;
        cluster_.trace().record({s.now(), sim::TraceKind::kMessageDelivered,
                                 src, dst,
                                 static_cast<std::int64_t>(bytes), {}});
        deliver();
      });
  return deliver_at;
}

void Network::set_partitioned(NodeId a, NodeId b, bool partitioned) {
  const std::pair<NodeId, NodeId> key{a < b ? a : b, a < b ? b : a};
  if (partitioned) {
    partitions_.insert(key);
  } else {
    partitions_.erase(key);
  }
}

void Network::set_loss_probability(double p, std::uint64_t seed) {
  RIF_CHECK(p >= 0.0 && p < 1.0);
  loss_probability_ = p;
  loss_rng_ = Rng(seed);
}

std::pair<SimTime, SimTime> LanNetwork::cost(NodeId /*src*/, NodeId /*dst*/,
                                             std::uint64_t bytes) {
  const SimTime nic =
      config_.per_message_overhead +
      from_seconds(static_cast<double>(bytes) / config_.bandwidth_bytes_per_sec);
  return {nic, config_.latency};
}

SimTime LanNetwork::downlink_time(std::uint64_t bytes) {
  return from_seconds(static_cast<double>(bytes) /
                      config_.bandwidth_bytes_per_sec);
}

std::pair<SimTime, SimTime> SharedBusNetwork::cost(NodeId /*src*/,
                                                   NodeId /*dst*/,
                                                   std::uint64_t bytes) {
  const SimTime wire =
      config_.per_message_overhead +
      from_seconds(static_cast<double>(bytes) /
                   config_.bandwidth_bytes_per_sec);
  return {wire, config_.latency};
}

std::pair<SimTime, SimTime> SmpNetwork::cost(NodeId /*src*/, NodeId /*dst*/,
                                             std::uint64_t /*bytes*/) {
  return {config_.handoff, 0};
}

}  // namespace rif::net
