// Length-prefixed framing for the real byte transport.
//
// Every frame on a socket is `[magic u32][length u32][payload bytes]`, with
// the payload being a `scp::WireEnvelope` encoding (see scp/wire.h). The
// magic guards against a peer speaking the wrong protocol, and the length
// cap guards against a corrupt prefix allocating unbounded memory. The
// assembler reconstructs frames from arbitrary read() fragments, so the
// event loop never needs to block for a full frame.
//
// The header words are little-endian on the wire. The payload keeps the
// Writer/Reader host format (see support/serialize.h), so deployments must
// be same-endian end to end; a mixed-endian peer fails the envelope's
// bounds checks on the first frame rather than desyncing the stream.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace rif::net {

inline constexpr std::uint32_t kFrameMagic = 0x52494631;  // "RIF1"

/// Hard ceiling on a single frame payload. Large enough for a full-cube
/// state transfer, small enough that a corrupt length dies immediately.
inline constexpr std::uint32_t kMaxFramePayload = 1u << 30;  // 1 GiB

/// Bytes a payload costs on the wire once framed.
[[nodiscard]] inline std::uint64_t framed_size(std::uint64_t payload_bytes) {
  return payload_bytes + 2 * sizeof(std::uint32_t);
}

/// Serialize one frame (header + payload) into a contiguous buffer.
[[nodiscard]] std::vector<std::uint8_t> encode_frame(
    const std::vector<std::uint8_t>& payload);

/// Incremental frame reassembler: feed it whatever the socket produced —
/// one byte or ten frames — and it invokes the sink once per completed
/// payload. Returns false (and poisons itself) on bad magic or an
/// oversized length; the connection should then be dropped.
class FrameAssembler {
 public:
  using Sink = std::function<void(std::vector<std::uint8_t> payload)>;

  [[nodiscard]] bool feed(const std::uint8_t* data, std::size_t n,
                          const Sink& sink);

  [[nodiscard]] bool corrupt() const { return corrupt_; }
  /// Bytes buffered toward the next (incomplete) frame.
  [[nodiscard]] std::size_t pending_bytes() const { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
  bool corrupt_ = false;
};

}  // namespace rif::net
