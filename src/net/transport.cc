#include "net/transport.h"

#include <memory>
#include <utility>

#include "support/check.h"

namespace rif::net {

SimTime SimTransport::send(cluster::NodeId src, cluster::NodeId dst,
                           std::vector<std::uint8_t> frame,
                           std::uint64_t charged_bytes) {
  RIF_CHECK_MSG(handler_, "transport has no handler");
  // The deliver closure owns the frame; shared_ptr because std::function
  // requires copyable callables.
  auto carried = std::make_shared<std::vector<std::uint8_t>>(std::move(frame));
  return network_.send(src, dst, charged_bytes,
                       [this, dst, carried = std::move(carried)] {
                         handler_(dst, std::move(*carried));
                       });
}

}  // namespace rif::net
