// Deterministic exponential backoff with seeded jitter.
//
// One schedule generator shared by everything in the tree that retries:
// rif_worker's connect/reconnect loop and (with jitter off) the
// coordinator's per-item re-send deadlines. The base delay grows
// geometrically to a cap; jitter multiplies each delay by a factor drawn
// uniformly from [1 - jitter, 1 + jitter] off an explicitly seeded Rng, so
// a fleet of workers seeded by pid de-synchronises its retries while any
// single schedule stays bit-reproducible — the same discipline as every
// other stochastic component (support/rng.h).
#pragma once

#include <cstdint>

#include "support/rng.h"

namespace rif::net {

struct BackoffConfig {
  double initial_seconds = 0.05;  ///< first delay (pre-jitter)
  double factor = 2.0;            ///< geometric growth per attempt
  double max_seconds = 2.0;       ///< cap on the pre-jitter delay
  double jitter = 0.2;            ///< +/- fraction; 0 = deterministic delays
  std::uint64_t seed = 1;         ///< jitter stream seed
};

class Backoff {
 public:
  explicit Backoff(const BackoffConfig& config)
      : cfg_(config), rng_(config.seed) {}

  /// Delay to sleep before the NEXT retry; advances the schedule.
  double next_delay_seconds() {
    double base = cfg_.initial_seconds;
    for (int i = 0; i < attempt_ && base < cfg_.max_seconds; ++i) {
      base *= cfg_.factor;
    }
    if (base > cfg_.max_seconds) base = cfg_.max_seconds;
    ++attempt_;
    if (cfg_.jitter <= 0.0) return base;
    return base * rng_.uniform(1.0 - cfg_.jitter, 1.0 + cfg_.jitter);
  }

  [[nodiscard]] int attempts() const { return attempt_; }

  void reset() {
    attempt_ = 0;  // jitter stream deliberately NOT rewound: fresh draws
  }

 private:
  BackoffConfig cfg_;
  Rng rng_;
  int attempt_ = 0;
};

}  // namespace rif::net
