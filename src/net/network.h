// Network transport models.
//
// The network moves opaque deliveries between nodes and charges virtual
// time for them. Two concrete models cover the paper's two platforms:
//
//  * LanNetwork — switched 100BaseT LAN: per-message software overhead that
//    serializes on the sender's NIC, store-and-forward bandwidth, and wire
//    latency. This is the model behind Figures 4 and 5: the manager's
//    serialized sends and the per-message overhead produce both the
//    deviation from linear speed-up and the granularity trade-off.
//  * SmpNetwork — shared-memory "network": a fixed small hand-off cost and
//    no bandwidth term, matching the paper's §4 remark that the SMP version
//    has no communication overhead to speak of.
//
// Reliability is NOT provided here: if the destination is dead at delivery
// time (or the link is partitioned, or the loss process fires) the payload
// vanishes with a trace record. End-to-end reliability belongs to the scp
// layer, as it does in the paper's protocols.
#pragma once

#include <cstdint>
#include <functional>
#include <set>
#include <unordered_map>
#include <utility>

#include "cluster/cluster.h"
#include "support/rng.h"
#include "support/time.h"

namespace rif::net {

using cluster::NodeId;

struct NetworkStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;
  std::uint64_t bytes_sent = 0;
};

class Network {
 public:
  explicit Network(cluster::Cluster& cluster) : cluster_(cluster) {}
  virtual ~Network() = default;
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Transport `bytes` from `src` to `dst`; run `deliver` on arrival.
  /// Local sends (src == dst) are delivered after a negligible fixed cost.
  ///
  /// Bulk payloads serialize on the sender's NIC; messages of at most
  /// `kControlLaneBytes` ride a separate control lane (acknowledgements,
  /// heartbeats, work requests) — they pay per-message overhead and latency
  /// but do not queue behind multi-megabyte transfers, as in a real stack
  /// where small control segments interleave with bulk streams at packet
  /// granularity.
  ///
  /// Returns the scheduled arrival time. The sender-side protocol uses this
  /// for retransmission timing: a message still sitting in the local send
  /// queue is not "unacknowledged", it just has not left yet.
  SimTime send(NodeId src, NodeId dst, std::uint64_t bytes,
               std::function<void()> deliver);

  static constexpr std::uint64_t kControlLaneBytes = 256;

  /// Cut (or mend) the link between two nodes in both directions.
  void set_partitioned(NodeId a, NodeId b, bool partitioned);

  /// Probability that any given message is silently lost in transit.
  void set_loss_probability(double p, std::uint64_t seed = 7);

  [[nodiscard]] const NetworkStats& stats() const { return stats_; }
  [[nodiscard]] cluster::Cluster& cluster() { return cluster_; }

 protected:
  /// Model hook: returns {time the sender's NIC is occupied,
  /// additional in-flight latency after the NIC releases}.
  virtual std::pair<SimTime, SimTime> cost(NodeId src, NodeId dst,
                                           std::uint64_t bytes) = 0;

  /// Model hook: occupancy of the receiver's downlink for a bulk payload
  /// (0 = unmodelled). On a switched LAN every sender gets its own uplink,
  /// but flows converging on one host — e.g. unique-set results streaming
  /// into the manager — serialize on that host's single link.
  virtual SimTime downlink_time(std::uint64_t bytes) {
    (void)bytes;
    return 0;
  }

  /// Model hook: the busy-until slot a bulk send from `src` serializes on.
  /// Per-sender on a switched LAN; one shared slot on a bus topology.
  virtual SimTime& uplink_slot(NodeId src) { return nic_busy_until_[src]; }

  cluster::Cluster& cluster_;
  std::unordered_map<NodeId, SimTime> nic_busy_until_;  ///< bulk uplinks

 private:
  [[nodiscard]] bool partitioned(NodeId a, NodeId b) const {
    return partitions_.contains({a < b ? a : b, a < b ? b : a});
  }

  NetworkStats stats_;
  std::set<std::pair<NodeId, NodeId>> partitions_;
  std::unordered_map<NodeId, SimTime> downlink_busy_until_; ///< bulk downlink
  std::unordered_map<NodeId, SimTime> control_busy_until_;  ///< control lane
  double loss_probability_ = 0.0;
  Rng loss_rng_{7};
};

struct LanConfig {
  /// One-way wire + switch latency.
  SimTime latency = from_micros(100);
  /// Per-message software overhead (syscalls, protocol stack) occupying the
  /// sender CPU-adjacent NIC path.
  SimTime per_message_overhead = from_millis(1);
  /// Effective 100BaseT payload bandwidth through a 1999-era user-space
  /// messaging stack (raw wire is 12.5 MB/s; copies, XDR-style conversion
  /// and the library layers cost the rest).
  double bandwidth_bytes_per_sec = 3.0e6;
};

class LanNetwork final : public Network {
 public:
  LanNetwork(cluster::Cluster& cluster, LanConfig config = {})
      : Network(cluster), config_(config) {}

  [[nodiscard]] const LanConfig& config() const { return config_; }

 protected:
  std::pair<SimTime, SimTime> cost(NodeId src, NodeId dst,
                                   std::uint64_t bytes) override;
  SimTime downlink_time(std::uint64_t bytes) override;

 private:
  LanConfig config_;
};

/// A shared-medium Ethernet segment (hub / coax era): every bulk transfer,
/// regardless of sender, serializes on the one wire. The network-topology
/// ablation baseline against the switched LanNetwork.
class SharedBusNetwork final : public Network {
 public:
  SharedBusNetwork(cluster::Cluster& cluster, LanConfig config = {})
      : Network(cluster), config_(config) {}

  [[nodiscard]] const LanConfig& config() const { return config_; }

 protected:
  std::pair<SimTime, SimTime> cost(NodeId src, NodeId dst,
                                   std::uint64_t bytes) override;
  SimTime& uplink_slot(NodeId /*src*/) override { return bus_busy_until_; }
  // No separate downlink: the bus is the only medium.

 private:
  LanConfig config_;
  SimTime bus_busy_until_ = 0;
};

struct SmpConfig {
  /// Cost of handing a pointer between threads through a shared queue.
  SimTime handoff = from_micros(2);
};

class SmpNetwork final : public Network {
 public:
  SmpNetwork(cluster::Cluster& cluster, SmpConfig config = {})
      : Network(cluster), config_(config) {}

 protected:
  std::pair<SimTime, SimTime> cost(NodeId src, NodeId dst,
                                   std::uint64_t bytes) override;

 private:
  SmpConfig config_;
};

}  // namespace rif::net
