// Deterministic wire-level fault injection for the remote worker plane.
//
// The sim side scripts attacks with cluster::FailureInjector: a node is
// lost at a virtual instant, scripted or drawn from a seeded Poisson
// process. This is the same idea replayed at the REAL frame boundary.
// FaultInjectingTransport interposes between RemoteWorkerPool and its
// SocketServer: every frame crossing a session — inbound (worker -> pool,
// intercepted in the server's on_frame callback) or outbound (pool ->
// worker, intercepted in send()) — ticks a per-session, per-direction
// frame counter, and a script of WireFaultEvents keyed on those counters
// mutates the traffic:
//
//   kDrop         the frame vanishes
//   kDelay        the frame is held until `arg` later frames have crossed
//                 the same lane (re-sends and heartbeats are the clock
//                 that flushes it — a delayed frame on a quiet lane is
//                 indistinguishable from a dropped one, exactly like a
//                 real stalled link)
//   kDuplicate    the frame arrives twice
//   kTruncate     the frame loses its tail (keeps `arg` bytes) — the
//                 framing stays valid, the envelope inside does not, so
//                 this exercises the try_decode trust boundary, not the
//                 FrameAssembler
//   kCorrupt      `arg` (default 1) bytes flip at seeded positions
//   kReorder      the frame swaps with the next one on its lane
//   kKill         the session is closed immediately (crash)
//   kPartitionIn  every inbound frame from this session is dropped from
//                 now on — the pool sees a worker that went silent while
//                 its socket stays open (a hang, not a crash)
//   kPartitionOut the mirror image: the worker stops hearing the pool
//
// Frame counters tick once for every frame OFFERED to a lane (dropped or
// not), so a script is a pure function of the protocol's traffic — earlier
// faults never shift later indices: same seed + same schedule -> same
// faults, every run, which is what makes a chaos soak assertable. Because both directions of every session pass through the
// server-side boundary, wrapping the SocketClient end as well would add
// no fault mode — one interposition point covers the full duplex link.
//
// The FailureEvent vocabulary is shared: wire_script_from_failures() maps
// a sim attack script (virtual time, NodeId) onto wire kills so the same
// experiment runs against the simulated cluster and the real sockets.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "cluster/failure_injector.h"
#include "net/socket_transport.h"
#include "runtime/metrics.h"
#include "support/rng.h"

namespace rif::net {

enum class WireFault : std::uint32_t {
  kDrop = 0,
  kDelay,
  kDuplicate,
  kTruncate,
  kCorrupt,
  kReorder,
  kKill,
  kPartitionIn,
  kPartitionOut,
};

[[nodiscard]] const char* fault_name(WireFault fault);

/// Direction is relative to the pool: inbound = worker -> coordinator.
enum class WireDirection : std::uint32_t { kInbound = 0, kOutbound = 1 };

struct WireFaultEvent {
  /// Fires when the lane's 0-based frame counter reaches this value.
  std::uint64_t at_frame = 0;
  /// 0-based session adoption order (SocketServer ids are dense from 1);
  /// -1 matches any session — the event fires once, on whichever lane
  /// reaches `at_frame` first.
  int session_ordinal = -1;
  WireDirection direction = WireDirection::kInbound;
  WireFault fault = WireFault::kDrop;
  /// kDelay/kReorder: frames to hold behind. kTruncate: bytes kept.
  /// kCorrupt: bytes flipped. Ignored otherwise.
  std::uint32_t arg = 0;
};

struct WireFaultPlan {
  std::vector<WireFaultEvent> script;
  /// Seeds the corrupt-byte position stream (per session, forked).
  std::uint64_t seed = 1;

  [[nodiscard]] bool empty() const { return script.empty(); }
};

/// Seeded Poisson fault schedule over frame indices — the wire analogue of
/// FailureInjector::schedule_poisson. For every session ordinal in
/// [0, sessions) and both directions, faults arrive with exponential gaps
/// of the given mean (in frames, floored at 1) until `frame_horizon`,
/// their kinds drawn uniformly from `kinds`. Same rng state -> same script.
[[nodiscard]] std::vector<WireFaultEvent> poisson_wire_script(
    Rng& rng, std::uint64_t frame_horizon, double mean_interarrival_frames,
    const std::vector<WireFault>& kinds, int sessions);

/// Shared attack vocabulary: map a sim failure script onto wire kills.
/// `first_node` is the NodeId leased to session ordinal 0 (the pool's
/// first worker) and `frames_per_second` converts each event's virtual
/// time into the inbound frame count at which the kill fires — the wire
/// plane has no virtual clock, so protocol progress is its time axis.
[[nodiscard]] std::vector<WireFaultEvent> wire_script_from_failures(
    const std::vector<cluster::FailureEvent>& script,
    cluster::NodeId first_node, double frames_per_second);

class FaultInjectingTransport {
 public:
  FaultInjectingTransport(SocketServer& server, WireFaultPlan plan)
      : server_(server), plan_(std::move(plan)), rng_(plan_.seed) {}
  FaultInjectingTransport(const FaultInjectingTransport&) = delete;
  FaultInjectingTransport& operator=(const FaultInjectingTransport&) = delete;

  /// Publish per-fault counters (`<prefix>drop`, `<prefix>delay`, ...)
  /// plus `<prefix>total` into `registry`. Call before start().
  void bind_metrics(runtime::MetricsRegistry& registry,
                    const std::string& prefix = "faults.");

  /// Install the pool's callbacks and start the server's poll loop with
  /// this transport interposed on the inbound path.
  void start(SocketServer::FrameFn on_frame, SocketServer::ClosedFn on_closed);

  /// Outbound path: the pool sends through here instead of the server.
  bool send(SessionId session, const std::vector<std::uint8_t>& payload);

  [[nodiscard]] std::uint64_t faults_injected() const {
    return faults_injected_.load();
  }

 private:
  struct Lane {
    std::uint64_t frames = 0;  ///< frames offered to this lane so far
    bool partitioned = false;
    /// Held (delayed/reordered) frames: release when `frames` passes the
    /// recorded index. Dropped if the session closes first.
    std::deque<std::pair<std::uint64_t, std::vector<std::uint8_t>>> held;
  };
  struct SessionState {
    Lane in;
    Lane out;
    Rng rng{1};  ///< corrupt-byte positions, forked from the plan seed
  };

  /// Applies faults for one frame on one lane. Returns the frames to
  /// forward, in order (empty = dropped/held); sets `kill` when the
  /// session must die.
  std::vector<std::vector<std::uint8_t>> run_lane(
      SessionState& st, Lane& lane, int ordinal, WireDirection dir,
      std::vector<std::uint8_t> payload, bool& kill);

  void on_frame_in(SessionId session, std::vector<std::uint8_t> frame);
  void count(WireFault fault);

  SocketServer& server_;
  WireFaultPlan plan_;
  Rng rng_;
  std::mutex mu_;
  std::map<SessionId, SessionState> sessions_;
  std::vector<bool> fired_;  ///< parallel to plan_.script
  SocketServer::FrameFn on_frame_;
  std::atomic<std::uint64_t> faults_injected_{0};
  runtime::MetricsRegistry* metrics_ = nullptr;
  std::string prefix_;
};

}  // namespace rif::net
