// Transport abstraction between the actor protocol and its carrier.
//
// The scp runtime produces encoded frames (scp::WireEnvelope bytes) and an
// explicit byte charge; how they move is the transport's business. Two
// implementations exist:
//
//   SimTransport    — wraps the virtual-time net::Network. Frames are moved
//                     by closure at the simulated arrival time; the charge
//                     drives serialization/lane modelling, so the timeline
//                     is byte-for-byte what the pre-refactor runtime saw.
//                     This is the cheap, already-tested oracle.
//   SocketTransport — (socket_transport.h) real length-prefixed frames over
//                     Unix/TCP sockets with a nonblocking poll loop.
//
// The charge is separate from the frame size on purpose: the sim models the
// paper's 64-byte protocol header and CostOnly declared sizes, which a real
// socket does not replicate.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "cluster/node.h"
#include "net/network.h"
#include "support/time.h"

namespace rif::net {

class Transport {
 public:
  /// Delivered frames land here, on the receiving side's execution context.
  using Handler =
      std::function<void(cluster::NodeId dst, std::vector<std::uint8_t>)>;

  virtual ~Transport() = default;

  /// Ship `frame` from `src` to `dst`, charging `charged_bytes` to whatever
  /// cost model the transport has. Returns the (virtual) arrival time when
  /// the transport knows it; real transports return 0.
  virtual SimTime send(cluster::NodeId src, cluster::NodeId dst,
                       std::vector<std::uint8_t> frame,
                       std::uint64_t charged_bytes) = 0;

  void set_handler(Handler h) { handler_ = std::move(h); }

 protected:
  Handler handler_;
};

/// The virtual-time oracle: every frame rides the simulated network with
/// exactly the byte charge the caller declared.
class SimTransport final : public Transport {
 public:
  explicit SimTransport(Network& network) : network_(network) {}

  SimTime send(cluster::NodeId src, cluster::NodeId dst,
               std::vector<std::uint8_t> frame,
               std::uint64_t charged_bytes) override;

  [[nodiscard]] Network& network() { return network_; }

 private:
  Network& network_;
};

}  // namespace rif::net
