#include "net/fault_injection.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "obs/span_tracer.h"
#include "support/log.h"
#include "support/time.h"

namespace rif::net {

namespace {

constexpr int kFaultKinds = 9;

/// Trace-instant names, indexed by WireFault (static storage: the tracer
/// keeps the pointer).
constexpr const char* kInstantNames[kFaultKinds] = {
    "fault.drop",      "fault.delay",   "fault.duplicate",
    "fault.truncate",  "fault.corrupt", "fault.reorder",
    "fault.kill",      "fault.partition_in", "fault.partition_out"};

constexpr const char* kFaultNames[kFaultKinds] = {
    "drop",     "delay",   "duplicate",    "truncate",     "corrupt",
    "reorder",  "kill",    "partition_in", "partition_out"};

}  // namespace

const char* fault_name(WireFault fault) {
  return kFaultNames[static_cast<std::uint32_t>(fault)];
}

std::vector<WireFaultEvent> poisson_wire_script(
    Rng& rng, std::uint64_t frame_horizon, double mean_interarrival_frames,
    const std::vector<WireFault>& kinds, int sessions) {
  std::vector<WireFaultEvent> script;
  if (kinds.empty() || mean_interarrival_frames <= 0.0) return script;
  for (int ordinal = 0; ordinal < sessions; ++ordinal) {
    for (const WireDirection dir :
         {WireDirection::kInbound, WireDirection::kOutbound}) {
      double at = 0.0;
      for (;;) {
        // Same exponential-gap construction as FailureInjector, floored at
        // one frame so two faults never collapse onto the same index.
        const double gap =
            -std::log(1.0 - rng.uniform()) * mean_interarrival_frames;
        at += std::max(gap, 1.0);
        if (at >= static_cast<double>(frame_horizon)) break;
        WireFaultEvent e;
        e.at_frame = static_cast<std::uint64_t>(at);
        e.session_ordinal = ordinal;
        e.direction = dir;
        e.fault = kinds[rng.uniform_u64(kinds.size())];
        switch (e.fault) {
          case WireFault::kDelay:
            e.arg = 1 + static_cast<std::uint32_t>(rng.uniform_u64(3));
            break;
          case WireFault::kReorder:
            e.arg = 1;
            break;
          case WireFault::kTruncate:
            e.arg = static_cast<std::uint32_t>(rng.uniform_u64(16));
            break;
          case WireFault::kCorrupt:
            e.arg = 1 + static_cast<std::uint32_t>(rng.uniform_u64(4));
            break;
          default:
            break;
        }
        script.push_back(e);
      }
    }
  }
  return script;
}

std::vector<WireFaultEvent> wire_script_from_failures(
    const std::vector<cluster::FailureEvent>& script,
    cluster::NodeId first_node, double frames_per_second) {
  std::vector<WireFaultEvent> wire;
  wire.reserve(script.size());
  for (const cluster::FailureEvent& f : script) {
    if (f.node < first_node) continue;  // host node: not on the wire plane
    WireFaultEvent e;
    e.session_ordinal = f.node - first_node;
    e.direction = WireDirection::kInbound;
    e.fault = WireFault::kKill;
    e.at_frame = static_cast<std::uint64_t>(
        std::max(0.0, to_seconds(f.time) * frames_per_second));
    wire.push_back(e);
  }
  return wire;
}

void FaultInjectingTransport::bind_metrics(runtime::MetricsRegistry& registry,
                                           const std::string& prefix) {
  metrics_ = &registry;
  prefix_ = prefix;
}

void FaultInjectingTransport::count(WireFault fault) {
  faults_injected_.fetch_add(1);
  obs::SpanTracer::instance().instant(
      kInstantNames[static_cast<std::uint32_t>(fault)]);
  if (metrics_ != nullptr) {
    metrics_->counter(prefix_ + fault_name(fault)).add(1);
    metrics_->counter(prefix_ + "total").add(1);
  }
}

void FaultInjectingTransport::start(SocketServer::FrameFn on_frame,
                                    SocketServer::ClosedFn on_closed) {
  on_frame_ = std::move(on_frame);
  fired_.assign(plan_.script.size(), false);
  server_.start(
      [this](SessionId s, std::vector<std::uint8_t> f) {
        on_frame_in(s, std::move(f));
      },
      [this, closed = std::move(on_closed)](SessionId s) {
        {
          std::lock_guard<std::mutex> lock(mu_);
          sessions_.erase(s);  // held frames die with the session
        }
        if (closed) closed(s);
      });
}

std::vector<std::vector<std::uint8_t>> FaultInjectingTransport::run_lane(
    SessionState& st, Lane& lane, int ordinal, WireDirection dir,
    std::vector<std::uint8_t> payload, bool& kill) {
  std::vector<std::vector<std::uint8_t>> forward;
  const std::uint64_t idx = lane.frames++;

  if (lane.partitioned) {
    count(dir == WireDirection::kInbound ? WireFault::kPartitionIn
                                         : WireFault::kPartitionOut);
    return forward;  // black hole; counter still advances (frames crossed)
  }

  // Collect this frame's faults from the script. More than one event can
  // land on the same index; they apply in script order.
  bool drop = false;
  bool duplicate = false;
  std::uint64_t hold_until = 0;  // 0 = not held
  for (std::size_t i = 0; i < plan_.script.size(); ++i) {
    if (fired_[i]) continue;
    const WireFaultEvent& e = plan_.script[i];
    if (e.direction != dir || e.at_frame != idx) continue;
    if (e.session_ordinal >= 0 && e.session_ordinal != ordinal) continue;
    fired_[i] = true;
    switch (e.fault) {
      case WireFault::kDrop:
        drop = true;
        count(e.fault);
        break;
      case WireFault::kDelay:
      case WireFault::kReorder:
        hold_until = idx + std::max<std::uint32_t>(e.arg, 1);
        count(e.fault);
        break;
      case WireFault::kDuplicate:
        duplicate = true;
        count(e.fault);
        break;
      case WireFault::kTruncate: {
        const std::size_t keep = payload.empty()
                                     ? 0
                                     : std::min<std::size_t>(
                                           e.arg, payload.size() - 1);
        payload.resize(keep);
        count(e.fault);
        break;
      }
      case WireFault::kCorrupt: {
        if (!payload.empty()) {
          const std::uint32_t flips = std::max<std::uint32_t>(e.arg, 1);
          for (std::uint32_t k = 0; k < flips; ++k) {
            payload[st.rng.uniform_u64(payload.size())] ^= 0xFF;
          }
        }
        count(e.fault);
        break;
      }
      case WireFault::kKill:
        kill = true;
        count(e.fault);
        break;
      case WireFault::kPartitionIn:
      case WireFault::kPartitionOut:
        // A partition event names its own lane; applying it here keeps a
        // single event from having to match both directions.
        lane.partitioned = true;
        drop = true;
        count(e.fault);
        break;
    }
  }

  if (!drop && !lane.partitioned) {
    if (hold_until > 0) {
      lane.held.emplace_back(hold_until, std::move(payload));
    } else {
      forward.push_back(payload);
      if (duplicate) forward.push_back(std::move(payload));
    }
  }
  // Later frames are the clock that releases held ones.
  while (!lane.held.empty() && lane.held.front().first <= idx) {
    forward.push_back(std::move(lane.held.front().second));
    lane.held.pop_front();
  }
  return forward;
}

void FaultInjectingTransport::on_frame_in(SessionId session,
                                          std::vector<std::uint8_t> frame) {
  bool kill = false;
  std::vector<std::vector<std::uint8_t>> forward;
  {
    std::lock_guard<std::mutex> lock(mu_);
    SessionState& st = sessions_[session];
    if (st.in.frames == 0 && st.out.frames == 0) {
      st.rng = rng_.fork(static_cast<std::uint64_t>(session));
    }
    forward = run_lane(st, st.in, static_cast<int>(session - 1),
                       WireDirection::kInbound, std::move(frame), kill);
  }
  if (kill) {
    RIF_LOG_WARN("faults", "killing session " << session);
    server_.abort_session(session);
    return;
  }
  for (auto& f : forward) {
    if (on_frame_) on_frame_(session, std::move(f));
  }
}

bool FaultInjectingTransport::send(SessionId session,
                                   const std::vector<std::uint8_t>& payload) {
  bool kill = false;
  std::vector<std::vector<std::uint8_t>> forward;
  {
    std::lock_guard<std::mutex> lock(mu_);
    SessionState& st = sessions_[session];
    if (st.in.frames == 0 && st.out.frames == 0) {
      st.rng = rng_.fork(static_cast<std::uint64_t>(session));
    }
    forward = run_lane(st, st.out, static_cast<int>(session - 1),
                       WireDirection::kOutbound, payload, kill);
  }
  if (kill) {
    RIF_LOG_WARN("faults", "killing session " << session);
    server_.abort_session(session);
    return true;  // the frame "was sent" as far as the caller knows
  }
  bool ok = true;
  for (const auto& f : forward) {
    ok = server_.send(session, f) && ok;
  }
  return ok;
}

}  // namespace rif::net
