#include "scp/runtime.h"

#include <algorithm>
#include <deque>
#include <map>
#include <memory>
#include <utility>

#include "scp/wire.h"
#include "sim/trace.h"
#include "support/log.h"
#include "support/serialize.h"

namespace rif::scp {

namespace {
constexpr std::uint64_t kControlBytes = 64;
}  // namespace

class Shell;

/// Where to send a protocol reply (ack): the sender replica's address as
/// carried by the incoming envelope. Address-based (not pointer-based) so
/// the same routing works over any transport; delivery to a replica that
/// died or was reincarnated since is dropped, exactly as a closure bound to
/// the dead shell used to be.
struct ReplyAddr {
  cluster::NodeId node = cluster::kNoNode;
  WireAddr addr;
};

// ---------------------------------------------------------------------------
// Internal runtime state
// ---------------------------------------------------------------------------

struct Member {
  int slot = -1;
  std::uint64_t incarnation = 0;
  cluster::NodeId node = cluster::kNoNode;
  Shell* shell = nullptr;  // owned by Impl::shells (never freed mid-run)
  bool alive = false;
};

struct Group {
  ThreadId tid = kNoThread;
  std::string name;
  ActorFactory factory;
  int replication = 1;
  std::uint64_t epoch = 0;
  bool finished = false;
  bool lost = false;
  JobId job = kNoJob;
  /// Non-empty: the only nodes this group's replicas may ever occupy.
  std::vector<cluster::NodeId> domain;
  std::vector<Member> members;     // index == slot
  std::vector<bool> regenerating;  // per slot
};

struct Runtime::Impl {
  Runtime& self;
  cluster::Cluster& cluster;
  net::Transport& transport;
  RuntimeConfig& config;
  ProtocolStats& stats;

  // Deque: Group references stay valid while a dynamic spawn (triggered from
  // inside an event handler, e.g. a service admitting the next queued job
  // from a completion callback) appends new groups.
  std::deque<Group> groups;
  std::vector<std::unique_ptr<Shell>> shells;  // graveyard included
  std::unique_ptr<cluster::LeastLoadedPlacement> placement;
  std::unique_ptr<cluster::RoundRobinPlacement> spawn_rr;
  bool started = false;
  bool stop_requested = false;

  // Failure detector (hosted on detector_node).
  cluster::NodeId detector_node = 0;
  struct HeartbeatRecord {
    std::uint64_t incarnation = 0;
    SimTime last_heard = 0;
  };
  std::map<std::pair<ThreadId, int>, HeartbeatRecord> last_heartbeat;

  explicit Impl(Runtime& rt)
      : self(rt),
        cluster(rt.cluster_),
        transport(rt.transport_),
        config(rt.config_),
        stats(rt.stats_) {
    placement = std::make_unique<cluster::LeastLoadedPlacement>(cluster);
    spawn_rr = std::make_unique<cluster::RoundRobinPlacement>(cluster);
  }

  [[nodiscard]] sim::Simulation& sim() { return cluster.simulation(); }

  Group& group(ThreadId tid) {
    RIF_CHECK(tid >= 0 && static_cast<std::size_t>(tid) < groups.size());
    return groups[tid];
  }

  /// Live members of a group (current view; the "directory service").
  std::vector<Member*> live_members(ThreadId tid) {
    std::vector<Member*> out;
    for (auto& m : group(tid).members) {
      if (m.alive) out.push_back(&m);
    }
    return out;
  }

  /// Append the complement of the group's domain to `excluded`, so that a
  /// placement pick can never leave the nodes the group is confined to.
  void exclude_outside_domain(const Group& g,
                              std::vector<cluster::NodeId>& excluded) {
    if (g.domain.empty()) return;
    for (cluster::NodeId n = 0; n < cluster.size(); ++n) {
      if (std::find(g.domain.begin(), g.domain.end(), n) == g.domain.end()) {
        excluded.push_back(n);
      }
    }
  }

  Shell* make_shell(ThreadId tid, int slot, std::uint64_t inc,
                    cluster::NodeId node, std::unique_ptr<Actor> actor);
  void install_replica(ThreadId tid, int slot, std::uint64_t inc,
                       cluster::NodeId node, std::vector<std::uint8_t> state,
                       bool migration);

  /// Resolve a frame's destination address against the current membership
  /// view. Null if the address no longer names a live-enough replica (slot
  /// reincarnated, never existed): the frame is dropped, exactly as a
  /// delivery closure bound to a dead shell was. A killed-but-not-replaced
  /// shell IS returned — its own dead_ check drops the payload, preserving
  /// the historical drop point.
  Shell* route(const WireAddr& addr);
  /// Transport handler: decode one envelope and dispatch by kind.
  void deliver(cluster::NodeId dst_node, std::vector<std::uint8_t> frame);
  void handle_snapshot_request(const WireEnvelope& e);
  void handle_state_install(WireEnvelope e);
  /// Serialize a snapshot on the source node, then ship it to `target` as a
  /// kStateInstall frame (shared tail of regeneration and migration).
  void ship_state(ThreadId tid, int slot, std::uint64_t new_inc,
                  cluster::NodeId target, Shell* src_shell,
                  std::vector<std::uint8_t> state, bool migration);

  void start_detector();
  void detector_check();
  void on_heartbeat(ThreadId tid, int slot, std::uint64_t inc);
  void declare_dead(ThreadId tid, int slot);
  void try_regenerate(ThreadId tid, int slot);
  void install_regenerated(ThreadId tid, int slot, std::uint64_t inc,
                           cluster::NodeId node,
                           std::vector<std::uint8_t> state);
  void mark_lost(Group& g);
};

// ---------------------------------------------------------------------------
// Shell: one replica of a logical thread.
//
// Message processing is atomic: a message is acknowledged and the processed
// watermark advanced only once the actor's handler chain for it — including
// every ActorContext::compute continuation it spawned — has completed.
// Snapshots for regeneration are taken only between messages (quiescent
// points), so a restored replica is always consistent: senders retransmit
// exactly the suffix the snapshot has not processed, and the cloned send
// counters line up with what receivers have already deduplicated.
// ---------------------------------------------------------------------------

class Shell final : public ActorContext {
 public:
  Shell(Runtime::Impl& rt, ThreadId tid, int slot, std::uint64_t inc,
        cluster::NodeId node, std::unique_ptr<Actor> actor)
      : rt_(rt),
        tid_(tid),
        slot_(slot),
        inc_(inc),
        node_(node),
        actor_(std::move(actor)) {}

  // --- ActorContext -------------------------------------------------------
  [[nodiscard]] ThreadId self() const override { return tid_; }
  [[nodiscard]] int slot() const override { return slot_; }
  [[nodiscard]] SimTime now() const override { return rt_.sim().now(); }

  void send(ThreadId dst, Message msg) override;

  void compute(double flops, std::function<void()> then) override {
    if (dead_) return;
    ++pending_computes_;
    rt_.cluster.node(node_).submit_compute(
        flops, [this, then = std::move(then)] {
          if (dead_) return;
          --pending_computes_;
          then();
          maybe_complete_message();
        });
  }

  void finish() override {
    rt_.group(tid_).finished = true;
    finished_ = true;
  }

  void shutdown_runtime() override { rt_.stop_requested = true; }

  // --- Runtime-side interface ----------------------------------------------
  void start(bool run_on_start) {
    if (run_on_start) actor_->on_start(*this);
    if (rt_.config.resilient) {
      heartbeat_loop();
      retransmit_loop();
    }
    pump();  // drain any inbox restored from a snapshot
  }

  void kill() { dead_ = true; }
  [[nodiscard]] bool dead() const { return dead_; }
  [[nodiscard]] cluster::NodeId node() const { return node_; }
  [[nodiscard]] std::uint64_t incarnation() const { return inc_; }

  [[nodiscard]] std::uint64_t declared_state_bytes() const {
    return std::max<std::uint64_t>(actor_->state_bytes(), 1024);
  }

  /// Produce a message-boundary-consistent snapshot immediately. While a
  /// message is being processed, the snapshot is built from the checkpoint
  /// taken at its start, with the in-flight message prepended to the inbox:
  /// the restored replica replays it from scratch, deterministically
  /// re-issuing the same sequence numbers (receivers deduplicate).
  void request_snapshot(std::function<void(std::vector<std::uint8_t>)> fn) {
    if (dead_) return;
    fn(snapshot());
  }

  void restore(const std::vector<std::uint8_t>& bytes);

  /// Arrival of an application message copy (routed from the transport).
  void receive_app(ThreadId src, std::uint64_t seq,
                   std::shared_ptr<const Message> msg,
                   const ReplyAddr& reply_to);

 private:
  struct Unacked {
    std::shared_ptr<const Message> msg;
    /// Latest expected arrival among copies sent so far; the RTO counts
    /// from here, so a payload queued in the local NIC is never "lost".
    SimTime expected_arrival = 0;
    int attempts = 0;  ///< retransmission rounds (exponential backoff)
    std::map<int, std::uint64_t> acked;  // slot -> incarnation that acked
  };
  struct InboxEntry {
    ThreadId src = kNoThread;
    std::uint64_t seq = 0;
    std::shared_ptr<const Message> msg;
  };

  std::vector<std::uint8_t> snapshot() const;

  void admit(ThreadId src, std::uint64_t seq,
             std::shared_ptr<const Message> msg) {
    inbox_.push_back(InboxEntry{src, seq, std::move(msg)});
    pump();
  }

  void pump() {
    if (busy_ || dead_ || inbox_.empty()) return;
    busy_ = true;
    current_ = inbox_.front();
    inbox_.pop_front();
    // Checkpoint the message-boundary state so a regeneration snapshot can
    // be served at any time during this (possibly long) transition.
    if (rt_.config.resilient) {
      checkpoint_.actor_state = actor_->snapshot_state();
      checkpoint_.next_send_seq = next_send_seq_;
      checkpoint_.unacked = unacked_;
    }
    // Protocol dispatch cost, then the actor's reactive transition.
    rt_.cluster.node(node_).submit_compute(
        rt_.config.dispatch_flops, [this] {
          if (dead_) return;
          in_handler_ = true;
          actor_->on_message(*this, current_.src, *current_.msg);
          in_handler_ = false;
          maybe_complete_message();
        });
  }

  void maybe_complete_message() {
    if (!busy_ || in_handler_ || pending_computes_ > 0 || dead_) return;
    // The transition for current_ is complete; process the next message.
    current_ = {};
    busy_ = false;
    pump();
  }

  /// Sends one point-to-point copy; returns its expected arrival time.
  /// The copy travels as an encoded WireEnvelope — the receiver decodes its
  /// own Message — while the transport is charged the protocol's modelled
  /// wire size (64-byte header + declared payload), not the encoding size.
  SimTime send_copy(ThreadId dst, std::uint64_t seq,
                    const std::shared_ptr<const Message>& msg,
                    Member& member) {
    if (rt_.config.resilient) {
      // Group-communication marshalling consumes sender CPU per copy.
      const double marshal =
          rt_.config.marshal_flops_base +
          rt_.config.marshal_flops_per_byte *
              static_cast<double>(msg->wire_bytes());
      rt_.cluster.node(node_).submit_compute(marshal, [] {});
    }
    WireEnvelope e;
    e.kind = FrameKind::kApp;
    e.src_node = node_;
    e.dst_node = member.node;
    e.src = {tid_, slot_, inc_};
    e.dst = {dst, member.slot, member.incarnation};
    e.seq = seq;
    e.msg_type = msg->type;
    e.declared = msg->declared_bytes;
    e.payload = msg->payload;
    const SimTime arrival = rt_.transport.send(node_, member.node, e.encode(),
                                               msg->wire_bytes());
    ++rt_.stats.replica_messages;
    return arrival;
  }

  void receive_ack(std::uint64_t seq, int acker_slot, std::uint64_t acker_inc,
                   ThreadId stream_dst) {
    if (dead_) return;
    ++rt_.stats.acks;
    auto dit = unacked_.find(stream_dst);
    if (dit == unacked_.end()) return;
    auto eit = dit->second.find(seq);
    if (eit == dit->second.end()) return;
    eit->second.acked[acker_slot] = acker_inc;
    if (fully_acked(stream_dst, eit->second)) dit->second.erase(eit);
  }

  bool fully_acked(ThreadId dst, const Unacked& u) {
    const Group& g = rt_.group(dst);
    // A finished or lost destination will never ack again; drop the buffer.
    if (g.finished || g.lost) return true;
    bool any_alive = false;
    for (const Member& m : g.members) {
      if (!m.alive) {
        // A dead slot will be regenerated and must then be able to obtain
        // this message — keep it buffered until the replacement acks.
        if (rt_.config.regenerate) return false;
        continue;  // degradation mode: dead slots never come back
      }
      any_alive = true;
      auto it = u.acked.find(m.slot);
      if (it == u.acked.end() || it->second != m.incarnation) return false;
    }
    return any_alive;
  }

  void send_ack(const ReplyAddr& to, std::uint64_t seq) {
    WireEnvelope e;
    e.kind = FrameKind::kAck;
    e.src_node = node_;
    e.dst_node = to.node;
    e.src = {tid_, slot_, inc_};
    e.dst = to.addr;
    e.seq = seq;
    rt_.transport.send(node_, to.node, e.encode(), rt_.config.ack_bytes);
  }

  void heartbeat_loop() {
    if (dead_ || finished_) return;
    WireEnvelope hb;
    hb.kind = FrameKind::kHeartbeat;
    hb.src_node = node_;
    hb.dst_node = rt_.detector_node;
    hb.src = {tid_, slot_, inc_};
    rt_.transport.send(node_, rt_.detector_node, hb.encode(),
                       rt_.config.heartbeat_bytes);
    ++rt_.stats.heartbeats;
    // The library's background machinery consumes a fixed CPU share per
    // replica; charge one heartbeat period's worth per beat.
    auto& node = rt_.cluster.node(node_);
    const double share = rt_.config.watchdog_cpu_share;
    if (share > 0.0) {
      const double flops = share / (1.0 - share) *
                           to_seconds(rt_.config.heartbeat_period) *
                           node.config().flops_per_second;
      node.submit_compute(flops, [] {});
    }
    node.run_after(rt_.config.heartbeat_period, [this] { heartbeat_loop(); });
  }

  void retransmit_loop() {
    if (dead_) return;
    scan_unacked();
    rt_.cluster.node(node_).run_after(rt_.config.retransmit_timeout / 2,
                                      [this] { retransmit_loop(); });
  }

  void scan_unacked() {
    const SimTime now_t = now();
    for (auto& [dst, entries] : unacked_) {
      for (auto it = entries.begin(); it != entries.end();) {
        Unacked& u = it->second;
        if (fully_acked(dst, u)) {
          it = entries.erase(it);
          continue;
        }
        // RTO from the expected arrival of the newest copy, doubled per
        // retransmission round (capped), so a slow acker is not flooded.
        const SimTime rto = rt_.config.retransmit_timeout
                            << std::min(u.attempts, 5);
        if (now_t - u.expected_arrival >= rto) {
          bool resent = false;
          for (Member* m : rt_.live_members(dst)) {
            auto ait = u.acked.find(m->slot);
            if (ait != u.acked.end() && ait->second == m->incarnation) {
              continue;  // this member already has it
            }
            u.expected_arrival = std::max(
                u.expected_arrival, send_copy(dst, it->first, u.msg, *m));
            ++rt_.stats.retransmits;
            resent = true;
          }
          if (resent) ++u.attempts;
        }
        ++it;
      }
    }
  }

  Runtime::Impl& rt_;
  ThreadId tid_;
  int slot_;
  std::uint64_t inc_;
  cluster::NodeId node_;
  std::unique_ptr<Actor> actor_;
  bool dead_ = false;
  bool finished_ = false;

  // Atomic message processing.
  std::deque<InboxEntry> inbox_;
  InboxEntry current_{};
  bool busy_ = false;
  bool in_handler_ = false;
  int pending_computes_ = 0;

  /// Message-boundary checkpoint, refreshed at the start of every message;
  /// serves snapshot requests that arrive mid-transition.
  struct Checkpoint {
    std::vector<std::uint8_t> actor_state;
    std::unordered_map<ThreadId, std::uint64_t> next_send_seq;
    std::unordered_map<ThreadId, std::map<std::uint64_t, Unacked>> unacked;
  };
  Checkpoint checkpoint_;

  // Receive-side protocol state (per sender logical thread).
  struct HeldCopy {
    std::shared_ptr<const Message> msg;
    ReplyAddr from;
  };
  std::unordered_map<ThreadId, std::uint64_t> admitted_;  ///< next to admit
  std::unordered_map<ThreadId, std::map<std::uint64_t, HeldCopy>> holdback_;

  // Send-side protocol state (per destination logical thread).
  std::unordered_map<ThreadId, std::uint64_t> next_send_seq_;
  std::unordered_map<ThreadId, std::map<std::uint64_t, Unacked>> unacked_;

  friend struct Runtime::Impl;
};

void Shell::send(ThreadId dst, Message msg) {
  if (dead_) return;
  auto shared = std::make_shared<const Message>(std::move(msg));
  const std::uint64_t seq = next_send_seq_[dst]++;
  if (slot_ == 0) ++rt_.stats.app_messages;

  if (rt_.config.resilient) {
    auto [it, inserted] =
        unacked_[dst].emplace(seq, Unacked{shared, now(), 0, {}});
    RIF_CHECK_MSG(inserted, "sequence number reused");
    for (Member* m : rt_.live_members(dst)) {
      it->second.expected_arrival = std::max(
          it->second.expected_arrival, send_copy(dst, seq, shared, *m));
    }
  } else {
    const auto members = rt_.live_members(dst);
    if (members.empty()) {
      RIF_LOG_WARN("scp", "send to dead thread " << dst << " dropped");
      return;
    }
    send_copy(dst, seq, shared, *members.front());
  }
}

void Shell::receive_app(ThreadId src, std::uint64_t seq,
                        std::shared_ptr<const Message> msg,
                        const ReplyAddr& reply_to) {
  if (dead_) return;
  if (!rt_.config.resilient) {
    admit(src, seq, std::move(msg));
    return;
  }

  // Admission is the durable-receipt point: the inbox travels inside state
  // snapshots, so an admitted message survives regeneration and can be
  // acknowledged immediately. Held-back (out-of-order) copies are NOT
  // acknowledged — the sender keeps retransmitting until the gap fills.
  std::uint64_t& admitted = admitted_[src];
  if (seq < admitted) {
    send_ack(reply_to, seq);  // duplicate of an admitted message: re-ack
    ++rt_.stats.duplicates_dropped;
    return;
  }
  if (seq > admitted) {
    holdback_[src].emplace(seq, HeldCopy{std::move(msg), reply_to});
    return;
  }
  send_ack(reply_to, seq);
  admit(src, seq, std::move(msg));
  ++admitted;
  auto hit = holdback_.find(src);
  if (hit != holdback_.end()) {
    auto& pending = hit->second;
    for (auto it = pending.begin();
         it != pending.end() && it->first == admitted;
         it = pending.erase(it)) {
      send_ack(it->second.from, it->first);
      admit(src, it->first, std::move(it->second.msg));
      ++admitted;
    }
  }
}

std::vector<std::uint8_t> Shell::snapshot() const {
  // While busy, serialize the checkpoint from the start of the in-flight
  // message and schedule that message for replay; otherwise use live state.
  const bool mid_message = busy_;
  Writer w;
  w.put_vector(mid_message ? checkpoint_.actor_state
                           : actor_->snapshot_state());
  // Admission watermarks (dedup state). Always current: admissions during
  // the in-flight message are covered because the inbox below carries them.
  w.put<std::uint64_t>(admitted_.size());
  for (const auto& [src, seq] : admitted_) {
    w.put<ThreadId>(src);
    w.put<std::uint64_t>(seq);
  }
  // Admitted-but-unprocessed inbox: acknowledged messages are durable state
  // and must survive regeneration. The in-flight message is replayed first.
  const std::uint64_t inbox_count = inbox_.size() + (mid_message ? 1 : 0);
  w.put<std::uint64_t>(inbox_count);
  auto put_entry = [&w](const InboxEntry& entry) {
    w.put<ThreadId>(entry.src);
    w.put<std::uint64_t>(entry.seq);
    w.put<std::uint32_t>(entry.msg->type);
    w.put<std::uint64_t>(entry.msg->declared_bytes);
    w.put_vector(entry.msg->payload);
  };
  if (mid_message) put_entry(current_);
  for (const auto& entry : inbox_) put_entry(entry);

  // Send counters and the retransmission buffer, as of the checkpoint (the
  // replayed message deterministically re-issues anything sent since).
  const auto& send_seq = mid_message ? checkpoint_.next_send_seq
                                     : next_send_seq_;
  const auto& unacked = mid_message ? checkpoint_.unacked : unacked_;
  w.put<std::uint64_t>(send_seq.size());
  for (const auto& [dst, seq] : send_seq) {
    w.put<ThreadId>(dst);
    w.put<std::uint64_t>(seq);
  }
  std::uint64_t n_unacked = 0;
  for (const auto& [dst, entries] : unacked) n_unacked += entries.size();
  w.put<std::uint64_t>(n_unacked);
  for (const auto& [dst, entries] : unacked) {
    for (const auto& [seq, u] : entries) {
      w.put<ThreadId>(dst);
      w.put<std::uint64_t>(seq);
      w.put<std::uint32_t>(u.msg->type);
      w.put<std::uint64_t>(u.msg->declared_bytes);
      w.put_vector(u.msg->payload);
    }
  }
  return std::move(w).take();
}

void Shell::restore(const std::vector<std::uint8_t>& bytes) {
  Reader r(bytes);
  actor_->restore_state(r.get_vector<std::uint8_t>());
  const auto n_adm = r.get<std::uint64_t>();
  for (std::uint64_t i = 0; i < n_adm; ++i) {
    const auto src = r.get<ThreadId>();
    admitted_[src] = r.get<std::uint64_t>();
  }
  const auto n_inbox = r.get<std::uint64_t>();
  for (std::uint64_t i = 0; i < n_inbox; ++i) {
    InboxEntry entry;
    entry.src = r.get<ThreadId>();
    entry.seq = r.get<std::uint64_t>();
    auto msg = std::make_shared<Message>();
    msg->type = r.get<std::uint32_t>();
    msg->declared_bytes = r.get<std::uint64_t>();
    msg->payload = r.get_vector<std::uint8_t>();
    entry.msg = std::move(msg);
    inbox_.push_back(std::move(entry));
  }
  const auto n_send = r.get<std::uint64_t>();
  for (std::uint64_t i = 0; i < n_send; ++i) {
    const auto dst = r.get<ThreadId>();
    next_send_seq_[dst] = r.get<std::uint64_t>();
  }
  const auto n_unacked = r.get<std::uint64_t>();
  for (std::uint64_t i = 0; i < n_unacked; ++i) {
    const auto dst = r.get<ThreadId>();
    const auto seq = r.get<std::uint64_t>();
    auto msg = std::make_shared<Message>();
    msg->type = r.get<std::uint32_t>();
    msg->declared_bytes = r.get<std::uint64_t>();
    msg->payload = r.get_vector<std::uint8_t>();
    unacked_[dst].emplace(seq, Unacked{std::move(msg), now(), 0, {}});
  }
}

// ---------------------------------------------------------------------------
// Impl methods
// ---------------------------------------------------------------------------

Shell* Runtime::Impl::make_shell(ThreadId tid, int slot, std::uint64_t inc,
                                 cluster::NodeId node,
                                 std::unique_ptr<Actor> actor) {
  shells.push_back(
      std::make_unique<Shell>(*this, tid, slot, inc, node, std::move(actor)));
  placement->add_load(node);
  return shells.back().get();
}

Shell* Runtime::Impl::route(const WireAddr& addr) {
  if (addr.tid < 0 || static_cast<std::size_t>(addr.tid) >= groups.size()) {
    return nullptr;
  }
  Group& g = groups[addr.tid];
  if (addr.slot < 0 || addr.slot >= static_cast<int>(g.members.size())) {
    return nullptr;
  }
  Member& m = g.members[addr.slot];
  // An incarnation mismatch means the slot was reincarnated since the frame
  // was sent; the frame belongs to the previous (dead) shell and is dropped.
  if (m.shell == nullptr || m.incarnation != addr.incarnation) return nullptr;
  return m.shell;
}

void Runtime::Impl::deliver(cluster::NodeId /*dst_node*/,
                            std::vector<std::uint8_t> frame) {
  WireEnvelope e = WireEnvelope::decode(frame);
  switch (e.kind) {
    case FrameKind::kApp: {
      Shell* target = route(e.dst);
      if (target == nullptr) return;
      target->receive_app(e.src.tid, e.seq,
                          std::make_shared<const Message>(e.to_message()),
                          ReplyAddr{e.src_node, e.src});
      return;
    }
    case FrameKind::kAck: {
      Shell* target = route(e.dst);
      if (target == nullptr) return;
      target->receive_ack(e.seq, e.src.slot, e.src.incarnation, e.src.tid);
      return;
    }
    case FrameKind::kHeartbeat:
      on_heartbeat(e.src.tid, e.src.slot, e.src.incarnation);
      return;
    case FrameKind::kSnapshotRequest:
      handle_snapshot_request(e);
      return;
    case FrameKind::kStateInstall:
      handle_state_install(std::move(e));
      return;
    default:
      // Worker-plane frames (kHello..) never target the actor runtime.
      RIF_LOG_WARN("scp", "dropping frame of kind "
                              << static_cast<std::uint32_t>(e.kind));
      return;
  }
}

void Runtime::Impl::handle_snapshot_request(const WireEnvelope& e) {
  Shell* src_shell = route(e.dst);
  if (src_shell == nullptr || src_shell->dead()) return;
  Reader r(e.payload);
  const auto repair_slot = r.get<std::int32_t>();
  const auto new_inc = r.get<std::uint64_t>();
  const auto target = r.get<cluster::NodeId>();
  const ThreadId tid = e.dst.tid;
  src_shell->request_snapshot(
      [this, tid, repair_slot, new_inc, target,
       src_shell](std::vector<std::uint8_t> state) {
        ship_state(tid, repair_slot, new_inc, target, src_shell,
                   std::move(state), /*migration=*/false);
      });
}

void Runtime::Impl::ship_state(ThreadId tid, int slot, std::uint64_t new_inc,
                               cluster::NodeId target, Shell* src_shell,
                               std::vector<std::uint8_t> state,
                               bool migration) {
  // Serializing the snapshot takes time proportional to its size, but runs
  // in the library's background machinery (whose CPU share is already
  // charged by the watchdog model) — it must not queue behind a long
  // application computation, or recovery would stall for the length of a
  // work unit.
  const std::uint64_t wire =
      std::max<std::uint64_t>(state.size(), src_shell->declared_state_bytes());
  auto& src_node = cluster.node(src_shell->node());
  const SimTime serialize_time =
      src_node.compute_time(static_cast<double>(wire) * 0.5);
  src_node.run_after(
      serialize_time,
      [this, tid, slot, new_inc, target, src_shell, wire, migration,
       state = std::move(state)]() mutable {
        if (src_shell->dead()) return;
        stats.state_transfer_bytes += wire;
        cluster.trace().record(
            {sim().now(), sim::TraceKind::kReplicaStateTransferred, tid, slot,
             static_cast<std::int64_t>(wire), migration ? "migration" : ""});
        WireEnvelope install;
        install.kind = FrameKind::kStateInstall;
        install.src_node = src_shell->node();
        install.dst_node = target;
        install.dst = {tid, slot, new_inc};
        install.flag = migration ? 1 : 0;
        install.payload = std::move(state);
        transport.send(src_shell->node(), target, install.encode(), wire);
      });
}

void Runtime::Impl::handle_state_install(WireEnvelope e) {
  const ThreadId tid = e.dst.tid;
  const int slot = e.dst.slot;
  const std::uint64_t inc = e.dst.incarnation;
  if (e.flag == 0) {
    install_regenerated(tid, slot, inc, e.dst_node, std::move(e.payload));
    return;
  }
  // Migration delivery: same guards the migrate() closure used to apply.
  Group& g = group(tid);
  if (g.finished || g.lost) return;
  if (!cluster.node(e.dst_node).alive()) {
    g.regenerating[slot] = false;
    return;
  }
  if (g.members[slot].incarnation >= inc) return;
  install_replica(tid, slot, inc, e.dst_node, std::move(e.payload),
                  /*migration=*/true);
}

void Runtime::Impl::start_detector() {
  if (!config.resilient) return;
  cluster.node(detector_node)
      .run_after(config.failure_timeout / 3, [this] { detector_check(); });
}

void Runtime::Impl::detector_check() {
  const SimTime now = sim().now();
  // Index loop: declaring a group dead can re-enter the service's
  // scheduler (on_group_lost -> admit next job -> dynamic spawn), which
  // appends groups and would invalidate range-for iterators.
  for (std::size_t gi = 0; gi < groups.size(); ++gi) {
    Group& g = groups[gi];
    if (g.finished || g.lost) continue;
    for (Member& m : g.members) {
      if (!m.alive) continue;
      const auto key = std::make_pair(g.tid, m.slot);
      auto it = last_heartbeat.find(key);
      // A member never heard from gets a full timeout from t=0.
      const SimTime last =
          (it != last_heartbeat.end() &&
           it->second.incarnation == m.incarnation)
              ? it->second.last_heard
              : 0;
      if (now - last > config.failure_timeout) declare_dead(g.tid, m.slot);
    }
  }
  if (!stop_requested) {
    cluster.node(detector_node)
        .run_after(config.failure_timeout / 3, [this] { detector_check(); });
  }
}

void Runtime::Impl::on_heartbeat(ThreadId tid, int slot, std::uint64_t inc) {
  auto& rec = last_heartbeat[{tid, slot}];
  if (inc >= rec.incarnation) {
    rec.incarnation = inc;
    rec.last_heard = sim().now();
  }
}

void Runtime::Impl::declare_dead(ThreadId tid, int slot) {
  Group& g = group(tid);
  Member& m = g.members[slot];
  if (!m.alive) return;
  ++stats.failures_detected;
  cluster.trace().record({sim().now(), sim::TraceKind::kFailureDetected, tid,
                          slot, static_cast<std::int64_t>(m.incarnation),
                          {}});
  RIF_LOG_INFO("scp", "detected failure of thread "
                          << tid << " slot " << slot << " on node " << m.node);
  m.alive = false;
  m.shell->kill();
  placement->remove_load(m.node);
  ++g.epoch;

  if (live_members(tid).empty()) {
    mark_lost(g);
    return;
  }
  if (config.regenerate) try_regenerate(tid, slot);
}

void Runtime::Impl::mark_lost(Group& g) {
  if (g.lost || g.finished) return;
  g.lost = true;
  ++stats.groups_lost;
  RIF_LOG_WARN("scp", "replica group for thread " << g.tid << " (" << g.name
                                                  << ") lost");
  if (self.on_group_lost_) self.on_group_lost_(g.tid);
}

void Runtime::Impl::try_regenerate(ThreadId tid, int slot) {
  Group& g = group(tid);
  if (g.finished || g.lost || g.regenerating[slot]) return;

  const auto survivors = live_members(tid);
  if (survivors.empty()) {
    mark_lost(g);
    return;
  }
  Member* survivor = survivors.front();  // lowest live slot

  // Choose a host carrying no member of this group. The detector node is
  // also excluded: it hosts the manager/sensor, which the paper keeps off
  // the worker pool. A group with a placement domain (a service job's
  // leased nodes) never regenerates outside it.
  std::vector<cluster::NodeId> excluded{detector_node};
  for (const Member& m : g.members) {
    if (m.alive) excluded.push_back(m.node);
  }
  exclude_outside_domain(g, excluded);
  const cluster::NodeId target = placement->pick(excluded);
  if (target == cluster::kNoNode) {
    RIF_LOG_WARN("scp", "no node available to regenerate thread "
                            << tid << " slot " << slot << "; will retry");
    return;  // detector loop retries on next check
  }

  g.regenerating[slot] = true;
  const std::uint64_t new_inc = g.members[slot].incarnation + 1;

  // Ask the survivor for a quiescent-point snapshot; it ships the state
  // directly to the target node, where the runtime installs the replica
  // (see handle_snapshot_request / ship_state / handle_state_install).
  Shell* src_shell = survivor->shell;
  WireEnvelope req;
  req.kind = FrameKind::kSnapshotRequest;
  req.src_node = detector_node;
  req.dst_node = survivor->node;
  req.dst = {tid, survivor->slot, survivor->incarnation};
  Writer body;
  body.put<std::int32_t>(slot);
  body.put<std::uint64_t>(new_inc);
  body.put<cluster::NodeId>(target);
  req.payload = std::move(body).take();
  transport.send(detector_node, survivor->node, req.encode(), kControlBytes);

  // The attempt expires if the state never arrives (e.g. the survivor died
  // mid-transfer); the detector loop then retries with another survivor.
  // The deadline budgets for the transfer itself at a conservatively slow
  // rate, so a large state is not re-requested while still on the wire.
  const SimTime attempt_deadline =
      config.state_request_timeout +
      from_seconds(static_cast<double>(src_shell->declared_state_bytes()) /
                   config.state_transfer_min_bandwidth);
  sim().schedule_after(
      attempt_deadline, [this, tid, slot, new_inc] {
        Group& gg = group(tid);
        if (gg.regenerating[slot] && gg.members[slot].incarnation < new_inc) {
          gg.regenerating[slot] = false;
          if (!gg.finished && !gg.lost && config.regenerate &&
              !gg.members[slot].alive) {
            try_regenerate(tid, slot);
          }
        }
      });
}

void Runtime::Impl::install_regenerated(ThreadId tid, int slot,
                                        std::uint64_t inc,
                                        cluster::NodeId node,
                                        std::vector<std::uint8_t> state) {
  Group& g = group(tid);
  if (g.finished || g.lost) return;
  if (!cluster.node(node).alive()) {  // target died while state in flight
    g.regenerating[slot] = false;
    return;
  }
  if (g.members[slot].alive) {  // a racing attempt already repaired the slot
    g.regenerating[slot] = false;
    return;
  }
  if (g.members[slot].incarnation >= inc) return;  // stale attempt
  install_replica(tid, slot, inc, node, std::move(state),
                  /*migration=*/false);
}

void Runtime::Impl::install_replica(ThreadId tid, int slot, std::uint64_t inc,
                                    cluster::NodeId node,
                                    std::vector<std::uint8_t> state,
                                    bool migration) {
  Group& g = group(tid);
  Member& old_member = g.members[slot];
  if (migration && old_member.alive) {
    // Retire the source copy; its unfinished traffic is covered by the
    // snapshot (inbox + retransmission buffer travel with the state).
    old_member.shell->kill();
    placement->remove_load(old_member.node);
    old_member.alive = false;
  }

  Shell* shell = make_shell(tid, slot, inc, node, g.factory());
  shell->restore(state);
  g.members[slot] = Member{slot, inc, node, shell, true};
  g.regenerating[slot] = false;
  ++g.epoch;
  if (migration) {
    ++stats.replicas_migrated;
  } else {
    ++stats.replicas_regenerated;
  }
  cluster.trace().record({sim().now(), sim::TraceKind::kReplicaSpawned, tid,
                          slot, static_cast<std::int64_t>(node),
                          migration ? "migrated" : "regenerated"});
  RIF_LOG_INFO("scp", (migration ? "migrated" : "regenerated")
                          << " thread " << tid << " slot " << slot
                          << " to node " << node << " (incarnation " << inc
                          << ")");
  on_heartbeat(tid, slot, inc);  // fresh grace period
  shell->start(/*run_on_start=*/false);
  if (!migration && self.on_regenerated_) self.on_regenerated_(tid, slot);
}

// ---------------------------------------------------------------------------
// Runtime public API
// ---------------------------------------------------------------------------

Runtime::Runtime(cluster::Cluster& cluster, net::Network& network,
                 RuntimeConfig config)
    : cluster_(cluster),
      owned_transport_(std::make_unique<net::SimTransport>(network)),
      transport_(*owned_transport_),
      config_(config) {
  impl_ = std::make_unique<Impl>(*this);
  transport_.set_handler(
      [this](cluster::NodeId dst, std::vector<std::uint8_t> frame) {
        impl_->deliver(dst, std::move(frame));
      });
}

Runtime::Runtime(cluster::Cluster& cluster, net::Transport& transport,
                 RuntimeConfig config)
    : cluster_(cluster), transport_(transport), config_(config) {
  impl_ = std::make_unique<Impl>(*this);
  transport_.set_handler(
      [this](cluster::NodeId dst, std::vector<std::uint8_t> frame) {
        impl_->deliver(dst, std::move(frame));
      });
}

Runtime::~Runtime() = default;

ThreadId Runtime::spawn(const std::string& name, ActorFactory factory,
                        int replication,
                        const std::vector<cluster::NodeId>& placement) {
  SpawnOptions options;
  options.replication = replication;
  options.placement = placement;
  return spawn(name, std::move(factory), std::move(options));
}

ThreadId Runtime::spawn(const std::string& name, ActorFactory factory,
                        SpawnOptions options) {
  RIF_CHECK(options.replication >= 1);
  RIF_CHECK_MSG(config_.resilient || options.replication == 1,
                "replication requires resilient mode");

  const auto tid = static_cast<ThreadId>(impl_->groups.size());
  Group g;
  g.tid = tid;
  g.name = name;
  g.factory = std::move(factory);
  g.replication = options.replication;
  g.job = options.job;
  g.domain = options.domain;
  g.regenerating.assign(options.replication, false);

  std::vector<cluster::NodeId> hosts = options.placement;
  std::vector<cluster::NodeId> used = hosts;
  impl_->exclude_outside_domain(g, used);
  while (static_cast<int>(hosts.size()) < options.replication) {
    const cluster::NodeId n = impl_->spawn_rr->pick(used);
    RIF_CHECK_MSG(n != cluster::kNoNode, "not enough nodes for replication");
    hosts.push_back(n);
    used.push_back(n);
  }
  RIF_CHECK(static_cast<int>(hosts.size()) == options.replication);
  for (int slot = 0; slot < options.replication; ++slot) {
    Shell* shell = impl_->make_shell(tid, slot, 0, hosts[slot], g.factory());
    g.members.push_back(Member{slot, 0, hosts[slot], shell, true});
  }
  impl_->groups.push_back(std::move(g));

  if (impl_->started) {
    // Dynamic spawn into a running cluster: seed the failure detector with a
    // fresh grace period (a full timeout "from t=0" would declare any thread
    // spawned later than failure_timeout dead before its first heartbeat),
    // then activate the replicas immediately.
    Group& live = impl_->groups.back();
    for (Member& m : live.members) {
      impl_->on_heartbeat(tid, m.slot, m.incarnation);
    }
    for (Member& m : live.members) {
      m.shell->start(/*run_on_start=*/true);
    }
  }
  return tid;
}

ThreadId Runtime::next_thread_id() const {
  return static_cast<ThreadId>(impl_->groups.size());
}

JobId Runtime::job_of(ThreadId tid) const { return impl_->group(tid).job; }

std::vector<ThreadId> Runtime::threads_of_job(JobId job) const {
  std::vector<ThreadId> out;
  for (const Group& g : impl_->groups) {
    if (g.job == job) out.push_back(g.tid);
  }
  return out;
}

int Runtime::retire_job(JobId job) {
  int killed = 0;
  for (Group& g : impl_->groups) {
    if (g.job != job) continue;
    g.finished = true;
    for (Member& m : g.members) {
      if (!m.alive) continue;
      m.alive = false;
      m.shell->kill();
      impl_->placement->remove_load(m.node);
      ++killed;
    }
  }
  return killed;
}

void Runtime::start() {
  RIF_CHECK_MSG(!impl_->started, "start called twice");
  impl_->started = true;
  if (!impl_->groups.empty()) {
    impl_->detector_node = impl_->groups.front().members.front().node;
  }
  impl_->start_detector();
  for (Group& g : impl_->groups) {
    for (Member& m : g.members) {
      m.shell->start(/*run_on_start=*/true);
    }
  }
}

bool Runtime::run(SimTime deadline) {
  auto& sim = cluster_.simulation();
  while (!impl_->stop_requested) {
    if (sim.now() >= deadline) break;
    if (!sim.step()) break;
  }
  return impl_->stop_requested;
}

std::vector<ReplicaInfo> Runtime::members_of(ThreadId tid) const {
  std::vector<ReplicaInfo> out;
  for (const Member& m : impl_->group(tid).members) {
    out.push_back(ReplicaInfo{m.slot, m.incarnation, m.node, m.alive});
  }
  return out;
}

bool Runtime::migrate(ThreadId tid, int slot, cluster::NodeId target) {
  Runtime::Impl& impl = *impl_;
  if (!config_.resilient || !impl.started) return false;
  if (tid < 0 || static_cast<std::size_t>(tid) >= impl.groups.size()) {
    return false;
  }
  Group& g = impl.group(tid);
  if (g.finished || g.lost) return false;
  if (slot < 0 || slot >= static_cast<int>(g.members.size())) return false;
  Member& m = g.members[slot];
  if (!m.alive || g.regenerating[slot]) return false;
  if (target == m.node || !cluster_.node(target).alive()) return false;
  if (target == impl.detector_node) return false;
  if (!g.domain.empty() &&
      std::find(g.domain.begin(), g.domain.end(), target) == g.domain.end()) {
    return false;  // outside the group's placement domain
  }
  for (const Member& other : g.members) {
    if (other.alive && other.node == target) return false;
  }

  g.regenerating[slot] = true;  // block concurrent regeneration/migration
  Shell* source = m.shell;
  const std::uint64_t new_inc = m.incarnation + 1;
  source->request_snapshot([&impl, tid, slot, new_inc, target,
                            source](std::vector<std::uint8_t> state) {
    impl.ship_state(tid, slot, new_inc, target, source, std::move(state),
                    /*migration=*/true);
  });

  // Backstop: if the move never lands (source or target died mid-flight),
  // release the slot so failure detection and regeneration can take over.
  const SimTime deadline =
      config_.state_request_timeout +
      from_seconds(static_cast<double>(source->declared_state_bytes()) /
                   config_.state_transfer_min_bandwidth);
  impl.sim().schedule_after(deadline, [&impl, tid, slot, new_inc] {
    Group& gg = impl.group(tid);
    if (gg.regenerating[slot] && gg.members[slot].incarnation < new_inc) {
      gg.regenerating[slot] = false;
    }
  });
  return true;
}

int Runtime::evacuate_node(cluster::NodeId node) {
  Runtime::Impl& impl = *impl_;
  int initiated = 0;
  for (Group& g : impl.groups) {
    if (g.finished || g.lost) continue;
    for (Member& m : g.members) {
      if (!m.alive || m.node != node) continue;
      std::vector<cluster::NodeId> excluded{impl.detector_node, node};
      for (const Member& other : g.members) {
        if (other.alive) excluded.push_back(other.node);
      }
      impl.exclude_outside_domain(g, excluded);
      const cluster::NodeId target = impl.placement->pick(excluded);
      if (target == cluster::kNoNode) continue;
      if (migrate(g.tid, m.slot, target)) ++initiated;
    }
  }
  return initiated;
}

bool Runtime::all_groups_alive() const {
  for (const Group& g : impl_->groups) {
    if (g.lost) return false;
    if (g.finished) continue;
    bool any = false;
    for (const Member& m : g.members) any = any || m.alive;
    if (!any) return false;
  }
  return true;
}

}  // namespace rif::scp
