#include "scp/wire.h"

#include <cstring>
#include <span>

#include "support/serialize.h"

namespace rif::scp {

namespace {

void put_addr(Writer& w, const WireAddr& a) {
  w.put(a.tid);
  w.put(a.slot);
  w.put(a.incarnation);
}

WireAddr get_addr(Reader& r) {
  WireAddr a;
  a.tid = r.get<ThreadId>();
  a.slot = r.get<std::int32_t>();
  a.incarnation = r.get<std::uint64_t>();
  return a;
}

/// FNV-1a over everything before the trailer. Not cryptographic — it exists
/// to catch CORRUPTION (bit rot, a chaos-injected byte flip, a buggy
/// middlebox), so a frame whose payload was damaged in flight is rejected
/// as malformed instead of feeding garbage floats into a merge.
std::uint64_t envelope_checksum(const std::uint8_t* data, std::size_t size) {
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

std::vector<std::uint8_t> WireEnvelope::encode() const {
  Writer w;
  w.put(static_cast<std::uint32_t>(kind));
  w.put(src_node);
  w.put(dst_node);
  put_addr(w, src);
  put_addr(w, dst);
  w.put(seq);
  w.put(msg_type);
  w.put(declared);
  w.put(flag);
  w.put_span(std::span<const std::uint8_t>(payload));
  auto bytes = std::move(w).take();
  const std::uint64_t sum = envelope_checksum(bytes.data(), bytes.size());
  const auto* p = reinterpret_cast<const std::uint8_t*>(&sum);
  bytes.insert(bytes.end(), p, p + sizeof(sum));
  return bytes;
}

std::optional<WireEnvelope> WireEnvelope::try_decode(
    const std::vector<std::uint8_t>& bytes) {
  // Mirror of decode()'s fixed layout: everything before the payload has a
  // constant size, and the payload's length prefix must account for exactly
  // the bytes that remain before the checksum trailer. Verifying that up
  // front — plus the checksum itself — makes decode() safe.
  constexpr std::size_t kAddrBytes =
      sizeof(ThreadId) + sizeof(std::int32_t) + sizeof(std::uint64_t);
  constexpr std::size_t kFixedBytes =
      sizeof(std::uint32_t) +             // kind
      2 * sizeof(cluster::NodeId) +       // src_node, dst_node
      2 * kAddrBytes +                    // src, dst
      sizeof(std::uint64_t) +             // seq
      sizeof(std::uint32_t) +             // msg_type
      sizeof(std::uint64_t) +             // declared
      sizeof(std::uint32_t) +             // flag
      sizeof(std::uint64_t);              // payload length prefix
  constexpr std::size_t kTrailerBytes = sizeof(std::uint64_t);  // checksum
  if (bytes.size() < kFixedBytes + kTrailerBytes) return std::nullopt;

  std::uint32_t kind = 0;
  std::memcpy(&kind, bytes.data(), sizeof(kind));
  if (kind < static_cast<std::uint32_t>(FrameKind::kApp) ||
      kind > static_cast<std::uint32_t>(FrameKind::kTelemetry)) {
    return std::nullopt;
  }
  std::uint64_t payload_len = 0;
  std::memcpy(&payload_len,
              bytes.data() + kFixedBytes - sizeof(payload_len),
              sizeof(payload_len));
  if (payload_len != bytes.size() - kFixedBytes - kTrailerBytes) {
    return std::nullopt;
  }
  std::uint64_t sum = 0;
  std::memcpy(&sum, bytes.data() + bytes.size() - kTrailerBytes,
              sizeof(sum));
  if (sum != envelope_checksum(bytes.data(), bytes.size() - kTrailerBytes)) {
    return std::nullopt;
  }
  return decode(bytes);
}

WireEnvelope WireEnvelope::decode(const std::vector<std::uint8_t>& bytes) {
  Reader r(bytes);
  WireEnvelope e;
  const auto kind = r.get<std::uint32_t>();
  RIF_CHECK_MSG(kind >= static_cast<std::uint32_t>(FrameKind::kApp) &&
                    kind <= static_cast<std::uint32_t>(FrameKind::kTelemetry),
                "unknown frame kind");
  e.kind = static_cast<FrameKind>(kind);
  e.src_node = r.get<cluster::NodeId>();
  e.dst_node = r.get<cluster::NodeId>();
  e.src = get_addr(r);
  e.dst = get_addr(r);
  e.seq = r.get<std::uint64_t>();
  e.msg_type = r.get<std::uint32_t>();
  e.declared = r.get<std::uint64_t>();
  e.flag = r.get<std::uint32_t>();
  e.payload = r.get_vector<std::uint8_t>();
  const auto sum = r.get<std::uint64_t>();
  RIF_CHECK_MSG(r.exhausted(), "oversized envelope");
  RIF_CHECK_MSG(sum == envelope_checksum(bytes.data(),
                                         bytes.size() - sizeof(sum)),
                "corrupt envelope");
  return e;
}

std::vector<std::uint8_t> HelloBody::encode() const {
  Writer w;
  w.put(protocol_version);
  w.put(threads);
  return std::move(w).take();
}

HelloBody HelloBody::decode(const std::vector<std::uint8_t>& bytes) {
  Reader r(bytes);
  HelloBody b;
  b.protocol_version = r.get<std::uint32_t>();
  b.threads = r.get<std::uint32_t>();
  RIF_CHECK_MSG(r.exhausted(), "oversized hello");
  return b;
}

std::vector<std::uint8_t> JobStartBody::encode() const {
  Writer w;
  w.put(job_id);
  w.put(width);
  w.put(height);
  w.put(bands);
  w.put(screening_threshold);
  w.put(output_components);
  return std::move(w).take();
}

JobStartBody JobStartBody::decode(const std::vector<std::uint8_t>& bytes) {
  auto b = try_decode(bytes);
  RIF_CHECK_MSG(b.has_value(), "malformed job start");
  return *b;
}

std::optional<JobStartBody> JobStartBody::try_decode(
    const std::vector<std::uint8_t>& bytes) {
  Reader r(bytes);
  JobStartBody b;
  if (!r.try_get(b.job_id) || !r.try_get(b.width) || !r.try_get(b.height) ||
      !r.try_get(b.bands) || !r.try_get(b.screening_threshold) ||
      !r.try_get(b.output_components) || !r.exhausted()) {
    return std::nullopt;
  }
  return b;
}

namespace {

// Hard bounds on a TelemetryBody off the wire. A hostile length prefix
// must neither allocate unboundedly nor index past the buffer; the byte
// budget is additionally capped by the envelope's own framing.
constexpr std::uint64_t kMaxTelemetryName = 256;
constexpr std::uint64_t kMaxTelemetrySpans = 65536;
constexpr std::uint64_t kMaxTelemetrySeries = 4096;
constexpr std::uint64_t kMaxTelemetryLogs = 1024;
constexpr std::uint64_t kMaxTelemetryMessage = 512;

/// Bounded non-aborting string read (Reader::get_string aborts on
/// truncation — wrong side of the trust boundary here). Rejects empty and
/// oversized names outright: no legitimate producer emits either.
bool try_get_name(Reader& r, std::string& out) {
  std::vector<char> raw;
  if (!r.try_get_vector(raw)) return false;
  if (raw.empty() || raw.size() > kMaxTelemetryName) return false;
  out.assign(raw.begin(), raw.end());
  return true;
}

/// Like try_get_name but for free text: empty is legal (a log line can be
/// blank), only the length is bounded.
bool try_get_text(Reader& r, std::string& out) {
  std::vector<char> raw;
  if (!r.try_get_vector(raw)) return false;
  if (raw.size() > kMaxTelemetryMessage) return false;
  out.assign(raw.begin(), raw.end());
  return true;
}

bool valid_phase(char phase) {
  return phase == 'X' || phase == 'i' || phase == 'C' || phase == 'B' ||
         phase == 'E';
}

}  // namespace

std::vector<std::uint8_t> TelemetryBody::encode() const {
  Writer w;
  w.put(job_id);
  w.put(flush_index);
  w.put<std::uint64_t>(spans.size());
  for (const TelemetrySpan& s : spans) {
    w.put_string(s.name);
    w.put(s.ts_ns);
    w.put(s.dur_ns);
    w.put(s.job);
    w.put(s.value);
    w.put<std::uint8_t>(static_cast<std::uint8_t>(s.phase));
  }
  w.put<std::uint64_t>(counters.size());
  for (const auto& [name, value] : counters) {
    w.put_string(name);
    w.put(value);
  }
  w.put<std::uint64_t>(gauges.size());
  for (const auto& [name, kind, value] : gauges) {
    w.put_string(name);
    w.put(kind);
    w.put(value);
  }
  w.put<std::uint64_t>(histograms.size());
  for (const TelemetryHistogram& h : histograms) {
    w.put_string(h.name);
    w.put(h.count);
    w.put(h.sum);
    w.put(h.min);
    w.put(h.max);
    w.put_vector(h.buckets);
  }
  w.put<std::uint64_t>(logs.size());
  for (const TelemetryLog& l : logs) {
    w.put(l.level);
    w.put_string(l.component);
    w.put_string(l.message);
    w.put(l.job);
    w.put(l.ts_ns);
  }
  return std::move(w).take();
}

std::optional<TelemetryBody> TelemetryBody::try_decode(
    const std::vector<std::uint8_t>& bytes) {
  Reader r(bytes);
  TelemetryBody b;
  if (!r.try_get(b.job_id) || !r.try_get(b.flush_index)) return std::nullopt;

  std::uint64_t n = 0;
  if (!r.try_get(n) || n > kMaxTelemetrySpans) return std::nullopt;
  b.spans.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    TelemetrySpan s;
    std::uint8_t phase = 0;
    if (!try_get_name(r, s.name) || !r.try_get(s.ts_ns) ||
        !r.try_get(s.dur_ns) || !r.try_get(s.job) || !r.try_get(s.value) ||
        !r.try_get(phase)) {
      return std::nullopt;
    }
    s.phase = static_cast<char>(phase);
    if (!valid_phase(s.phase)) return std::nullopt;
    b.spans.push_back(std::move(s));
  }

  if (!r.try_get(n) || n > kMaxTelemetrySeries) return std::nullopt;
  b.counters.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string name;
    std::uint64_t value = 0;
    if (!try_get_name(r, name) || !r.try_get(value)) return std::nullopt;
    b.counters.emplace_back(std::move(name), value);
  }

  if (!r.try_get(n) || n > kMaxTelemetrySeries) return std::nullopt;
  b.gauges.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string name;
    std::uint8_t kind = 0;
    double value = 0.0;
    if (!try_get_name(r, name) || !r.try_get(kind) || !r.try_get(value)) {
      return std::nullopt;
    }
    if (kind > 1) return std::nullopt;  // runtime::GaugeKind has two values
    b.gauges.emplace_back(std::move(name), kind, value);
  }

  if (!r.try_get(n) || n > kMaxTelemetrySeries) return std::nullopt;
  b.histograms.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    TelemetryHistogram h;
    if (!try_get_name(r, h.name) || !r.try_get(h.count) || !r.try_get(h.sum) ||
        !r.try_get(h.min) || !r.try_get(h.max) ||
        !r.try_get_vector(h.buckets) ||
        h.buckets.size() != kTelemetryHistogramBuckets) {
      return std::nullopt;
    }
    b.histograms.push_back(std::move(h));
  }

  if (!r.try_get(n) || n > kMaxTelemetryLogs) return std::nullopt;
  b.logs.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    TelemetryLog l;
    if (!r.try_get(l.level) || !try_get_name(r, l.component) ||
        !try_get_text(r, l.message) || !r.try_get(l.job) ||
        !r.try_get(l.ts_ns)) {
      return std::nullopt;
    }
    if (l.level > 4) return std::nullopt;  // rif::LogLevel has five values
    b.logs.push_back(std::move(l));
  }

  if (!r.exhausted()) return std::nullopt;
  return b;
}

}  // namespace rif::scp
