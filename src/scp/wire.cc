#include "scp/wire.h"

#include <span>

#include "support/serialize.h"

namespace rif::scp {

namespace {

void put_addr(Writer& w, const WireAddr& a) {
  w.put(a.tid);
  w.put(a.slot);
  w.put(a.incarnation);
}

WireAddr get_addr(Reader& r) {
  WireAddr a;
  a.tid = r.get<ThreadId>();
  a.slot = r.get<std::int32_t>();
  a.incarnation = r.get<std::uint64_t>();
  return a;
}

}  // namespace

std::vector<std::uint8_t> WireEnvelope::encode() const {
  Writer w;
  w.put(static_cast<std::uint32_t>(kind));
  w.put(src_node);
  w.put(dst_node);
  put_addr(w, src);
  put_addr(w, dst);
  w.put(seq);
  w.put(msg_type);
  w.put(declared);
  w.put(flag);
  w.put_span(std::span<const std::uint8_t>(payload));
  return std::move(w).take();
}

WireEnvelope WireEnvelope::decode(const std::vector<std::uint8_t>& bytes) {
  Reader r(bytes);
  WireEnvelope e;
  const auto kind = r.get<std::uint32_t>();
  RIF_CHECK_MSG(kind >= static_cast<std::uint32_t>(FrameKind::kApp) &&
                    kind <= static_cast<std::uint32_t>(FrameKind::kGoodbye),
                "unknown frame kind");
  e.kind = static_cast<FrameKind>(kind);
  e.src_node = r.get<cluster::NodeId>();
  e.dst_node = r.get<cluster::NodeId>();
  e.src = get_addr(r);
  e.dst = get_addr(r);
  e.seq = r.get<std::uint64_t>();
  e.msg_type = r.get<std::uint32_t>();
  e.declared = r.get<std::uint64_t>();
  e.flag = r.get<std::uint32_t>();
  e.payload = r.get_vector<std::uint8_t>();
  RIF_CHECK_MSG(r.exhausted(), "oversized envelope");
  return e;
}

std::vector<std::uint8_t> HelloBody::encode() const {
  Writer w;
  w.put(protocol_version);
  w.put(threads);
  return std::move(w).take();
}

HelloBody HelloBody::decode(const std::vector<std::uint8_t>& bytes) {
  Reader r(bytes);
  HelloBody b;
  b.protocol_version = r.get<std::uint32_t>();
  b.threads = r.get<std::uint32_t>();
  RIF_CHECK_MSG(r.exhausted(), "oversized hello");
  return b;
}

std::vector<std::uint8_t> JobStartBody::encode() const {
  Writer w;
  w.put(job_id);
  w.put(width);
  w.put(height);
  w.put(bands);
  w.put(screening_threshold);
  w.put(output_components);
  return std::move(w).take();
}

JobStartBody JobStartBody::decode(const std::vector<std::uint8_t>& bytes) {
  Reader r(bytes);
  JobStartBody b;
  b.job_id = r.get<std::int64_t>();
  b.width = r.get<std::int32_t>();
  b.height = r.get<std::int32_t>();
  b.bands = r.get<std::int32_t>();
  b.screening_threshold = r.get<double>();
  b.output_components = r.get<std::int32_t>();
  RIF_CHECK_MSG(r.exhausted(), "oversized job start");
  return b;
}

}  // namespace rif::scp
