#include "scp/wire.h"

#include <cstring>
#include <span>

#include "support/serialize.h"

namespace rif::scp {

namespace {

void put_addr(Writer& w, const WireAddr& a) {
  w.put(a.tid);
  w.put(a.slot);
  w.put(a.incarnation);
}

WireAddr get_addr(Reader& r) {
  WireAddr a;
  a.tid = r.get<ThreadId>();
  a.slot = r.get<std::int32_t>();
  a.incarnation = r.get<std::uint64_t>();
  return a;
}

}  // namespace

std::vector<std::uint8_t> WireEnvelope::encode() const {
  Writer w;
  w.put(static_cast<std::uint32_t>(kind));
  w.put(src_node);
  w.put(dst_node);
  put_addr(w, src);
  put_addr(w, dst);
  w.put(seq);
  w.put(msg_type);
  w.put(declared);
  w.put(flag);
  w.put_span(std::span<const std::uint8_t>(payload));
  return std::move(w).take();
}

std::optional<WireEnvelope> WireEnvelope::try_decode(
    const std::vector<std::uint8_t>& bytes) {
  // Mirror of decode()'s fixed layout: everything before the payload has a
  // constant size, and the payload's length prefix must account for exactly
  // the bytes that remain. Verifying that up front makes decode() safe.
  constexpr std::size_t kAddrBytes =
      sizeof(ThreadId) + sizeof(std::int32_t) + sizeof(std::uint64_t);
  constexpr std::size_t kFixedBytes =
      sizeof(std::uint32_t) +             // kind
      2 * sizeof(cluster::NodeId) +       // src_node, dst_node
      2 * kAddrBytes +                    // src, dst
      sizeof(std::uint64_t) +             // seq
      sizeof(std::uint32_t) +             // msg_type
      sizeof(std::uint64_t) +             // declared
      sizeof(std::uint32_t) +             // flag
      sizeof(std::uint64_t);              // payload length prefix
  if (bytes.size() < kFixedBytes) return std::nullopt;

  std::uint32_t kind = 0;
  std::memcpy(&kind, bytes.data(), sizeof(kind));
  if (kind < static_cast<std::uint32_t>(FrameKind::kApp) ||
      kind > static_cast<std::uint32_t>(FrameKind::kGoodbye)) {
    return std::nullopt;
  }
  std::uint64_t payload_len = 0;
  std::memcpy(&payload_len,
              bytes.data() + kFixedBytes - sizeof(payload_len),
              sizeof(payload_len));
  if (payload_len != bytes.size() - kFixedBytes) return std::nullopt;
  return decode(bytes);
}

WireEnvelope WireEnvelope::decode(const std::vector<std::uint8_t>& bytes) {
  Reader r(bytes);
  WireEnvelope e;
  const auto kind = r.get<std::uint32_t>();
  RIF_CHECK_MSG(kind >= static_cast<std::uint32_t>(FrameKind::kApp) &&
                    kind <= static_cast<std::uint32_t>(FrameKind::kGoodbye),
                "unknown frame kind");
  e.kind = static_cast<FrameKind>(kind);
  e.src_node = r.get<cluster::NodeId>();
  e.dst_node = r.get<cluster::NodeId>();
  e.src = get_addr(r);
  e.dst = get_addr(r);
  e.seq = r.get<std::uint64_t>();
  e.msg_type = r.get<std::uint32_t>();
  e.declared = r.get<std::uint64_t>();
  e.flag = r.get<std::uint32_t>();
  e.payload = r.get_vector<std::uint8_t>();
  RIF_CHECK_MSG(r.exhausted(), "oversized envelope");
  return e;
}

std::vector<std::uint8_t> HelloBody::encode() const {
  Writer w;
  w.put(protocol_version);
  w.put(threads);
  return std::move(w).take();
}

HelloBody HelloBody::decode(const std::vector<std::uint8_t>& bytes) {
  Reader r(bytes);
  HelloBody b;
  b.protocol_version = r.get<std::uint32_t>();
  b.threads = r.get<std::uint32_t>();
  RIF_CHECK_MSG(r.exhausted(), "oversized hello");
  return b;
}

std::vector<std::uint8_t> JobStartBody::encode() const {
  Writer w;
  w.put(job_id);
  w.put(width);
  w.put(height);
  w.put(bands);
  w.put(screening_threshold);
  w.put(output_components);
  return std::move(w).take();
}

JobStartBody JobStartBody::decode(const std::vector<std::uint8_t>& bytes) {
  Reader r(bytes);
  JobStartBody b;
  b.job_id = r.get<std::int64_t>();
  b.width = r.get<std::int32_t>();
  b.height = r.get<std::int32_t>();
  b.bands = r.get<std::int32_t>();
  b.screening_threshold = r.get<double>();
  b.output_components = r.get<std::int32_t>();
  RIF_CHECK_MSG(r.exhausted(), "oversized job start");
  return b;
}

}  // namespace rif::scp
