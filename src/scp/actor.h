// Actor programming interface.
//
// Following the paper (§2): "these systems are reactive ... the important
// transitions between data states occur at the receipt of messages". An
// Actor is therefore a state machine driven by on_message; long-running
// computation is expressed through ActorContext::compute so that the
// simulated CPU can charge for it, and every actor can externalize its
// state (snapshot/restore) so the resiliency layer can regenerate replicas
// on fresh nodes.
//
// Replication contract: all replicas of a logical thread receive the same
// messages in the same per-sender order and must act deterministically on
// them (same sends, same seeds). Use ActorContext::rng() — which is seeded
// per *logical* thread, not per replica — for any randomness.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "scp/types.h"
#include "support/time.h"

namespace rif::scp {

class ActorContext {
 public:
  virtual ~ActorContext() = default;

  [[nodiscard]] virtual ThreadId self() const = 0;
  /// Replica slot within the group; 0 for the initial primary.
  [[nodiscard]] virtual int slot() const = 0;
  [[nodiscard]] virtual SimTime now() const = 0;

  /// Send `msg` to logical thread `dst`. Reliable and duplicate-free
  /// end-to-end when the runtime is in resilient mode; direct (fate-shared
  /// with the destination node) otherwise.
  virtual void send(ThreadId dst, Message msg) = 0;

  /// Charge `flops` of computation to this replica's CPU, then run `then`.
  /// The continuation is dropped if the replica dies in the meantime.
  virtual void compute(double flops, std::function<void()> then) = 0;

  /// Mark this logical thread as finished: heartbeat monitoring stops and
  /// the group will not be regenerated any more.
  virtual void finish() = 0;

  /// Ask the runtime to stop the whole computation (e.g. the manager saw
  /// the final result). The run loop returns after the current event.
  virtual void shutdown_runtime() = 0;
};

class Actor {
 public:
  virtual ~Actor() = default;

  /// Invoked once when the replica becomes live (including regenerated
  /// replicas, after restore_state).
  virtual void on_start(ActorContext& ctx) { (void)ctx; }

  /// Reactive transition on message receipt.
  virtual void on_message(ActorContext& ctx, ThreadId from,
                          const Message& msg) = 0;

  /// Serialize the actor's application state for replica regeneration.
  virtual std::vector<std::uint8_t> snapshot_state() const { return {}; }

  /// Re-install state produced by snapshot_state on a peer replica.
  virtual void restore_state(const std::vector<std::uint8_t>& state) {
    (void)state;
  }

  /// Approximate in-memory state size, used to price state transfer when
  /// snapshots are elided in CostOnly runs. Defaults to the snapshot size.
  virtual std::uint64_t state_bytes() const { return 0; }
};

using ActorFactory = std::function<std::unique_ptr<Actor>()>;

}  // namespace rif::scp
