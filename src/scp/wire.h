// Wire envelope shared by the virtual-time and real-socket transports.
//
// Every hop the actor runtime takes — application messages, acks,
// heartbeats, snapshot requests, state installs — is one WireEnvelope,
// encoded with the same Writer/Reader discipline as the application
// messages it carries. The envelope is transport-agnostic: the sim
// transport hands the encoded bytes across a virtual link and the socket
// transport frames them onto a file descriptor, so a protocol trace is
// byte-identical between the two. The worker-plane kinds (kHello..kGoodbye)
// are used by the remote-execution path, where a `rif_worker` process
// leases itself into the service's cluster over the same framing.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "cluster/node.h"
#include "scp/types.h"

namespace rif::scp {

enum class FrameKind : std::uint32_t {
  // Actor-runtime plane.
  kApp = 1,              ///< application message replica copy
  kAck = 2,              ///< per-copy acknowledgement
  kHeartbeat = 3,        ///< replica -> failure detector
  kSnapshotRequest = 4,  ///< detector/migrator -> source replica
  kStateInstall = 5,     ///< serialized replica state -> new home
  // Worker plane (remote execution protocol).
  kHello = 6,    ///< worker -> service: lease me in
  kWelcome = 7,  ///< service -> worker: assigned node id
  kJobStart = 8,
  kJobEnd = 9,
  kGoodbye = 10,  ///< graceful close (either direction)
  // Liveness supervision (worker plane). A worker that is computing will
  // answer pings late — supervision timeouts must exceed the longest
  // single shard, not the network round trip.
  kPing = 11,  ///< service -> worker: prove you are alive
  kPong = 12,  ///< worker -> service: echo; refreshes last-activity
  // Telemetry plane (worker plane). Spans and metrics recorded inside a
  // worker process would die with it; kTelemetry ships them back over the
  // same framing the work travels on, so one job across N processes reads
  // as one trace. Fire-and-forget: a dropped batch is a missing trace
  // lane, never a protocol stall.
  kTelemetry = 13,  ///< worker -> service: TelemetryBody batch
};

/// Replica address: enough to route a frame to one shell and to drop it if
/// the shell died or was reincarnated since the frame was sent.
struct WireAddr {
  ThreadId tid = kNoThread;
  std::int32_t slot = -1;
  std::uint64_t incarnation = 0;
};

/// The one envelope every transport hop uses. Only the fields a kind needs
/// are populated; encode() writes them all (fixed layout keeps the decoder
/// trivial and the header cost constant) and appends an FNV-1a checksum
/// trailer, so a frame corrupted in flight — any byte, header or payload —
/// is rejected at decode instead of smuggling garbage into a merge.
struct WireEnvelope {
  FrameKind kind = FrameKind::kApp;
  cluster::NodeId src_node = cluster::kNoNode;
  cluster::NodeId dst_node = cluster::kNoNode;
  WireAddr src;
  WireAddr dst;
  std::uint64_t seq = 0;        ///< kApp / kAck: per-destination sequence.
                                ///< Worker plane: job id the frame belongs
                                ///< to, so a coordinator can drop frames
                                ///< left over from an earlier job.
  std::uint32_t msg_type = 0;   ///< kApp: application MsgType
  std::uint64_t declared = 0;   ///< kApp: Message::declared_bytes
  std::uint32_t flag = 0;       ///< kStateInstall: 1 = migration semantics
  std::vector<std::uint8_t> payload;  ///< kApp: message body; kStateInstall:
                                      ///< serialized state; worker plane:
                                      ///< kind-specific body

  [[nodiscard]] std::vector<std::uint8_t> encode() const;

  /// Trusted-path decode: malformed bytes indicate a bug on our side and
  /// trip a fatal RIF_CHECK. Use only on frames this process produced
  /// (the sim transport, loopback to our own worker binary under test).
  static WireEnvelope decode(const std::vector<std::uint8_t>& bytes);

  /// Trust-boundary decode: returns nullopt on any malformed input
  /// (truncated, trailing bytes, unknown kind) instead of aborting. Use on
  /// every frame that arrives over a socket from a peer process.
  static std::optional<WireEnvelope> try_decode(
      const std::vector<std::uint8_t>& bytes);

  /// Rebuild the application Message carried by a kApp envelope.
  [[nodiscard]] Message to_message() const {
    return {msg_type, payload, declared};
  }
};

/// kHello payload: what a connecting worker advertises.
struct HelloBody {
  std::uint32_t protocol_version = 1;
  std::uint32_t threads = 1;  ///< compute threads the worker will use

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  static HelloBody decode(const std::vector<std::uint8_t>& bytes);
};

/// kJobStart payload: everything a worker needs before tiles arrive.
struct JobStartBody {
  std::int64_t job_id = 0;
  std::int32_t width = 0;
  std::int32_t height = 0;
  std::int32_t bands = 0;
  double screening_threshold = 0.0;
  std::int32_t output_components = 0;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  static JobStartBody decode(const std::vector<std::uint8_t>& bytes);
  /// Non-aborting decode for bodies off the socket plane.
  static std::optional<JobStartBody> try_decode(
      const std::vector<std::uint8_t>& bytes);
};

/// One span event shipped in a kTelemetry batch. Names travel as strings —
/// the worker's string literals live in another address space. Completed
/// spans ship as 'X' (start + duration, both on the WORKER's raw
/// steady-clock ns; the coordinator's ping-echo offset estimate maps them
/// onto its own wall timeline at export); instants 'i' and counters 'C'
/// carry dur 0. 'B'/'E' are legal on the wire but must balance within a
/// batch — the ingest side rejects unbalanced batches whole.
struct TelemetrySpan {
  std::string name;
  std::uint64_t ts_ns = 0;   ///< worker steady-clock ns (absolute)
  std::uint64_t dur_ns = 0;  ///< 'X' only; 0 otherwise
  std::int64_t job = -1;     ///< job attribution; -1 = none
  double value = 0.0;        ///< 'C' only
  char phase = 'i';          ///< X | i | C | B | E
};

/// One histogram's cumulative state as shipped: raw log2 buckets (not just
/// moments), so the coordinator can install the worker's distribution under
/// a prefixed name and quantiles survive the hop.
struct TelemetryHistogram {
  std::string name;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::vector<std::uint64_t> buckets;  ///< exactly kTelemetryHistogramBuckets
};

/// Bucket count every shipped histogram must carry — mirrors
/// runtime::Histogram::kBuckets (static_asserted at the ingest site; scp
/// stays independent of the runtime layer).
inline constexpr std::size_t kTelemetryHistogramBuckets = 27;

/// One structured log record shipped in a kTelemetry batch — the wire
/// shape of rif::LogRecord (mirrored here so scp/ stays independent of
/// support/'s logger). `level` mirrors rif::LogLevel (0..4); `ts_ns` is
/// the worker's raw steady clock at emission (the ingest side stamps the
/// record with its own arrival time — a log line is an annotation, not a
/// span, so it does not ride the clock-offset mapping).
struct TelemetryLog {
  std::uint8_t level = 2;
  std::string component;
  std::string message;
  std::int64_t job = -1;
  std::uint64_t ts_ns = 0;
};

/// Whole-job span a worker records at kJobEnd immediately before its
/// final force-flush for that job. The coordinator keys "this worker's
/// lane for job J is complete" on seeing it: mid-job periodic flushes
/// also carry job-tagged spans, so the telemetry barrier must wait for
/// the batch containing THIS span, not any batch mentioning the job.
inline constexpr const char* kJobSpanName = "remote.job";

/// kTelemetry payload: a batch of span events plus a cumulative
/// MetricsRegistry snapshot (counters / gauges / histograms), flushed by
/// the worker on job end and on a periodic timer. Crosses a trust
/// boundary: decode ONLY via try_decode, which bounds every count and
/// string length before allocating.
struct TelemetryBody {
  std::int64_t job_id = -1;       ///< job the batch belongs to; -1 = idle
  std::uint64_t flush_index = 0;  ///< monotone per session (dedupe key)
  std::vector<TelemetrySpan> spans;
  /// Cumulative totals — the ingest side advances its prefixed series to
  /// these values, so re-shipment is idempotent.
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  /// (name, gauge kind as u8, value); kind mirrors runtime::GaugeKind.
  std::vector<std::tuple<std::string, std::uint8_t, double>> gauges;
  std::vector<TelemetryHistogram> histograms;
  /// Rate-limited structured log records buffered since the last flush
  /// (not cumulative — each record ships once, on the final batch of a
  /// flush alongside the metrics).
  std::vector<TelemetryLog> logs;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  /// Non-aborting decode with hard bounds (span/series/log counts, name
  /// and message lengths, phase and level alphabets, bucket counts).
  /// nullopt = drop the batch.
  static std::optional<TelemetryBody> try_decode(
      const std::vector<std::uint8_t>& bytes);
};

}  // namespace rif::scp
