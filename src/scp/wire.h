// Wire envelope shared by the virtual-time and real-socket transports.
//
// Every hop the actor runtime takes — application messages, acks,
// heartbeats, snapshot requests, state installs — is one WireEnvelope,
// encoded with the same Writer/Reader discipline as the application
// messages it carries. The envelope is transport-agnostic: the sim
// transport hands the encoded bytes across a virtual link and the socket
// transport frames them onto a file descriptor, so a protocol trace is
// byte-identical between the two. The worker-plane kinds (kHello..kGoodbye)
// are used by the remote-execution path, where a `rif_worker` process
// leases itself into the service's cluster over the same framing.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "cluster/node.h"
#include "scp/types.h"

namespace rif::scp {

enum class FrameKind : std::uint32_t {
  // Actor-runtime plane.
  kApp = 1,              ///< application message replica copy
  kAck = 2,              ///< per-copy acknowledgement
  kHeartbeat = 3,        ///< replica -> failure detector
  kSnapshotRequest = 4,  ///< detector/migrator -> source replica
  kStateInstall = 5,     ///< serialized replica state -> new home
  // Worker plane (remote execution protocol).
  kHello = 6,    ///< worker -> service: lease me in
  kWelcome = 7,  ///< service -> worker: assigned node id
  kJobStart = 8,
  kJobEnd = 9,
  kGoodbye = 10,  ///< graceful close (either direction)
  // Liveness supervision (worker plane). A worker that is computing will
  // answer pings late — supervision timeouts must exceed the longest
  // single shard, not the network round trip.
  kPing = 11,  ///< service -> worker: prove you are alive
  kPong = 12,  ///< worker -> service: echo; refreshes last-activity
};

/// Replica address: enough to route a frame to one shell and to drop it if
/// the shell died or was reincarnated since the frame was sent.
struct WireAddr {
  ThreadId tid = kNoThread;
  std::int32_t slot = -1;
  std::uint64_t incarnation = 0;
};

/// The one envelope every transport hop uses. Only the fields a kind needs
/// are populated; encode() writes them all (fixed layout keeps the decoder
/// trivial and the header cost constant) and appends an FNV-1a checksum
/// trailer, so a frame corrupted in flight — any byte, header or payload —
/// is rejected at decode instead of smuggling garbage into a merge.
struct WireEnvelope {
  FrameKind kind = FrameKind::kApp;
  cluster::NodeId src_node = cluster::kNoNode;
  cluster::NodeId dst_node = cluster::kNoNode;
  WireAddr src;
  WireAddr dst;
  std::uint64_t seq = 0;        ///< kApp / kAck: per-destination sequence.
                                ///< Worker plane: job id the frame belongs
                                ///< to, so a coordinator can drop frames
                                ///< left over from an earlier job.
  std::uint32_t msg_type = 0;   ///< kApp: application MsgType
  std::uint64_t declared = 0;   ///< kApp: Message::declared_bytes
  std::uint32_t flag = 0;       ///< kStateInstall: 1 = migration semantics
  std::vector<std::uint8_t> payload;  ///< kApp: message body; kStateInstall:
                                      ///< serialized state; worker plane:
                                      ///< kind-specific body

  [[nodiscard]] std::vector<std::uint8_t> encode() const;

  /// Trusted-path decode: malformed bytes indicate a bug on our side and
  /// trip a fatal RIF_CHECK. Use only on frames this process produced
  /// (the sim transport, loopback to our own worker binary under test).
  static WireEnvelope decode(const std::vector<std::uint8_t>& bytes);

  /// Trust-boundary decode: returns nullopt on any malformed input
  /// (truncated, trailing bytes, unknown kind) instead of aborting. Use on
  /// every frame that arrives over a socket from a peer process.
  static std::optional<WireEnvelope> try_decode(
      const std::vector<std::uint8_t>& bytes);

  /// Rebuild the application Message carried by a kApp envelope.
  [[nodiscard]] Message to_message() const {
    return {msg_type, payload, declared};
  }
};

/// kHello payload: what a connecting worker advertises.
struct HelloBody {
  std::uint32_t protocol_version = 1;
  std::uint32_t threads = 1;  ///< compute threads the worker will use

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  static HelloBody decode(const std::vector<std::uint8_t>& bytes);
};

/// kJobStart payload: everything a worker needs before tiles arrive.
struct JobStartBody {
  std::int64_t job_id = 0;
  std::int32_t width = 0;
  std::int32_t height = 0;
  std::int32_t bands = 0;
  double screening_threshold = 0.0;
  std::int32_t output_components = 0;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  static JobStartBody decode(const std::vector<std::uint8_t>& bytes);
  /// Non-aborting decode for bodies off the socket plane.
  static std::optional<JobStartBody> try_decode(
      const std::vector<std::uint8_t>& bytes);
};

}  // namespace rif::scp
