// The scp runtime: logical threads, replication groups, failure detection
// and dynamic regeneration on the simulated cluster.
//
// Protocol summary (what the paper calls "the more complex communication
// protocols required to achieve redundancy"):
//
//  * A logical thread T with replication level r is realized by r replica
//    shells placed on distinct nodes. Every replica runs the same actor
//    code on the same inputs.
//  * A logical send T→U is fanned out point-to-point from every live
//    replica of T to every live replica of U (active replication). Each
//    sender replica stamps a per-destination sequence number; since
//    replicas are deterministic, all copies of a logical message carry the
//    same sequence number and receivers deduplicate on (T, seq).
//  * Receivers deliver in per-sender sequence order (holdback queue for
//    gaps) and acknowledge every accepted or duplicate sequence number back
//    to the sending replica. Senders hold unacknowledged messages in a
//    retransmission buffer and periodically resend to group members that
//    have not acknowledged — including members regenerated under a new
//    incarnation, which is how in-flight traffic survives reconfiguration.
//  * Every replica heartbeats a failure detector hosted on node 0. When a
//    replica misses `failure_timeout` of heartbeats it is declared dead;
//    the detector requests a state snapshot from a surviving group member,
//    ships it to a node chosen by the placement policy (never a node
//    already hosting a member of the same group), installs a new replica
//    under a bumped incarnation, and the group is whole again. The
//    snapshot carries both application state and protocol watermarks, so
//    the regenerated replica neither re-processes old messages nor misses
//    new ones.
//
// Deliberate modelling simplifications (documented in DESIGN.md): the
// name-service registry is an always-consistent directory (the paper
// assumes a trusted resource manager); replicas see per-sender FIFO order,
// not a total order across senders — sufficient for manager/worker
// topologies where each pairwise conversation is independent, and the
// fusion application only uses such topologies.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/placement.h"
#include "net/network.h"
#include "net/transport.h"
#include "scp/actor.h"
#include "scp/types.h"
#include "support/rng.h"
#include "support/time.h"

namespace rif::scp {

struct RuntimeConfig {
  /// Enable the group protocol: multicast fan-out, acks, retransmission,
  /// heartbeats, regeneration. Off = plain direct message passing (the
  /// paper's non-resilient baseline).
  bool resilient = false;
  /// When resilient, regenerate lost replicas (the paper's contribution).
  /// Off = classic primary/backup graceful degradation (Fig. 1 strawman).
  bool regenerate = true;

  SimTime heartbeat_period = from_millis(250);
  SimTime failure_timeout = from_millis(900);
  SimTime retransmit_timeout = from_millis(400);
  /// Base deadline for a regeneration attempt; the runtime adds the time a
  /// conservatively slow link would need for the state itself, so big
  /// worker states do not make attempts expire (and thrash) mid-transfer.
  SimTime state_request_timeout = from_millis(800);
  double state_transfer_min_bandwidth = 1.0e6;  ///< bytes/s, conservative

  /// CPU cost charged per delivered message (protocol dispatch).
  double dispatch_flops = 3.0e3;
  /// CPU cost charged per ack / heartbeat processed.
  double control_dispatch_flops = 5.0e2;
  /// Sender-side CPU charged per physical copy in resilient mode: the
  /// group-communication layer marshals and enqueues each copy separately
  /// (the paper notes its protocols are "as yet ... not optimized").
  double marshal_flops_base = 5.0e4;
  double marshal_flops_per_byte = 2.0;
  /// Continuous CPU share consumed per replica by the resiliency library's
  /// background machinery (membership, heartbeat handling, holdback and
  /// retransmission bookkeeping). With two co-resident replicas this is
  /// the uniform "~10% plus the cost of replication" overhead the paper
  /// reports. Charged only in resilient mode.
  double watchdog_cpu_share = 0.07;
  std::uint64_t ack_bytes = 64;
  std::uint64_t heartbeat_bytes = 64;

  /// Seed for per-logical-thread actor RNG streams.
  std::uint64_t seed = 42;
};

struct ReplicaInfo {
  int slot = -1;
  std::uint64_t incarnation = 0;
  cluster::NodeId node = cluster::kNoNode;
  bool alive = false;
};

/// Placement and grouping options for spawn(). The defaults reproduce the
/// historical behaviour: one replica, round-robin placement over the whole
/// cluster, no job association.
struct SpawnOptions {
  int replication = 1;
  /// Explicit initial placement (one node per replica); round-robin fills
  /// any remainder.
  std::vector<cluster::NodeId> placement;
  /// When non-empty, the group is confined to these nodes: round-robin
  /// fill, regeneration and evacuation never place a replica outside the
  /// set. This is how a multi-tenant service pins a job's actors to the
  /// worker nodes leased to that job.
  std::vector<cluster::NodeId> domain;
  /// Job this thread belongs to (kNoJob = standalone).
  JobId job = kNoJob;
};

class Runtime {
 public:
  /// Convenience: run the protocol over the virtual-time network through an
  /// internally owned SimTransport (the historical behaviour, byte-for-byte).
  Runtime(cluster::Cluster& cluster, net::Network& network,
          RuntimeConfig config = {});
  /// Run the protocol over a caller-provided transport. Every hop the
  /// runtime takes travels as an encoded scp::WireEnvelope frame plus an
  /// explicit byte charge; the transport decides what both mean.
  Runtime(cluster::Cluster& cluster, net::Transport& transport,
          RuntimeConfig config = {});
  ~Runtime();
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Create a logical thread backed by `replication` replicas. Replicas are
  /// placed on distinct nodes via `placement` if given, else round-robin
  /// over the cluster. Before start() the replicas are activated by start();
  /// after start() they are activated immediately (dynamic spawn — how a
  /// long-lived service adds a new job's topology to a running cluster).
  ThreadId spawn(const std::string& name, ActorFactory factory,
                 int replication = 1,
                 const std::vector<cluster::NodeId>& placement = {});

  /// Spawn with full options (replication, placement, domain, job id).
  ThreadId spawn(const std::string& name, ActorFactory factory,
                 SpawnOptions options);

  /// Thread id the next spawn() will return. Lets a job runner precompute
  /// the ids of a topology it is about to spawn (actors need the manager's
  /// id before the manager exists).
  [[nodiscard]] ThreadId next_thread_id() const;

  /// Job a logical thread was spawned under (kNoJob if standalone).
  [[nodiscard]] JobId job_of(ThreadId tid) const;

  /// Logical threads spawned under `job`, in spawn order.
  [[nodiscard]] std::vector<ThreadId> threads_of_job(JobId job) const;

  /// Forcibly retire every group of `job`: mark the groups finished and
  /// kill all live replicas. The service control plane calls this when a
  /// job completes (its actors are quiescent) or is abandoned after a
  /// group loss, so a job never leaves actors heartbeating — or replicas
  /// regenerating — on nodes that have been re-leased to another tenant.
  /// Returns the number of replicas killed.
  int retire_job(JobId job);

  /// Deliver on_start to every replica and start protocol timers.
  void start();

  /// Drive the simulation until shutdown_runtime() is called, the event
  /// queue drains, or virtual `deadline` passes. Returns true if shutdown
  /// was requested (i.e. the application completed).
  bool run(SimTime deadline = kSimTimeNever);

  /// Callback fired when a whole replica group is lost (all members dead
  /// and regeneration impossible/disabled).
  void set_on_group_lost(std::function<void(ThreadId)> fn) {
    on_group_lost_ = std::move(fn);
  }

  [[nodiscard]] const ProtocolStats& stats() const { return stats_; }
  [[nodiscard]] const RuntimeConfig& config() const { return config_; }
  [[nodiscard]] cluster::Cluster& cluster() { return cluster_; }

  /// Current membership of a logical thread's replica group (tests/benches).
  [[nodiscard]] std::vector<ReplicaInfo> members_of(ThreadId tid) const;

  /// True if every spawned group still has at least one live replica.
  [[nodiscard]] bool all_groups_alive() const;

  /// Injected by tests: invoked whenever a replica is regenerated.
  void set_on_regenerated(std::function<void(ThreadId, int)> fn) {
    on_regenerated_ = std::move(fn);
  }

  /// Proactively move a live replica to `target` — the paper's
  /// attack-assessment-driven mobility (§2: threads "highly mobile, moving
  /// from one place in the network to another"). The replica's checkpoint
  /// is shipped to the target, installed under a new incarnation, and the
  /// old copy retired; in-flight traffic is recovered by the normal
  /// retransmission path. Resilient mode only. Returns false if the move
  /// is not admissible (dead slot, dead/occupied target, transition in
  /// progress, the detector host).
  bool migrate(ThreadId tid, int slot, cluster::NodeId target);

  /// Move every replica hosted on `node` to placement-chosen safe hosts
  /// (evacuation of a network zone believed to be under attack). Returns
  /// the number of migrations initiated.
  int evacuate_node(cluster::NodeId node);

 private:
  friend class Shell;
  friend class Detector;
  struct Impl;
  std::unique_ptr<Impl> impl_;

  cluster::Cluster& cluster_;
  std::unique_ptr<net::SimTransport> owned_transport_;  ///< network ctor only
  net::Transport& transport_;
  RuntimeConfig config_;
  ProtocolStats stats_;
  std::function<void(ThreadId)> on_group_lost_;
  std::function<void(ThreadId, int)> on_regenerated_;
};

}  // namespace rif::scp
