// Public identifiers and message types of the scp actor runtime.
//
// The runtime reproduces the programming model the paper attributes to
// SCPlib: a distributed application is a set of *logical threads* that
// communicate by messages; each logical thread may be realized by a group
// of replicas ("shadow threads", Fig. 1 of the paper). Application code is
// written against logical thread ids only — replication, acknowledgements,
// deduplication and regeneration are invisible to it.
#pragma once

#include <cstdint>
#include <vector>

namespace rif::scp {

/// Identity of a logical thread (application-level process).
using ThreadId = std::int32_t;
inline constexpr ThreadId kNoThread = -1;

/// Identity of a job: a set of logical threads spawned together on behalf of
/// one service request. The runtime can host many concurrent jobs, each with
/// its own actor topology; kNoJob marks threads outside any job (the
/// single-job world of the paper's evaluation).
using JobId = std::int64_t;
inline constexpr JobId kNoJob = -1;

/// An application message. `declared_bytes` lets CostOnly workloads carry a
/// tiny descriptor while charging the network for the size the real payload
/// would have had; 0 means "charge the encoded payload size".
struct Message {
  std::uint32_t type = 0;
  std::vector<std::uint8_t> payload;
  std::uint64_t declared_bytes = 0;

  [[nodiscard]] std::uint64_t wire_bytes() const {
    // 64-byte envelope header covers addressing, sequence number and CRC.
    constexpr std::uint64_t kHeader = 64;
    return kHeader + (declared_bytes != 0 ? declared_bytes : payload.size());
  }
};

/// Protocol-level counters, exposed for the overhead analysis of Figure 4.
struct ProtocolStats {
  std::uint64_t app_messages = 0;        ///< application sends (logical)
  std::uint64_t replica_messages = 0;    ///< point-to-point fan-out copies
  std::uint64_t acks = 0;
  std::uint64_t heartbeats = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t duplicates_dropped = 0;
  std::uint64_t failures_detected = 0;
  std::uint64_t replicas_regenerated = 0;
  std::uint64_t replicas_migrated = 0;
  std::uint64_t state_transfer_bytes = 0;
  std::uint64_t groups_lost = 0;
};

}  // namespace rif::scp
