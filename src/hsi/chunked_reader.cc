#include "hsi/chunked_reader.h"

#include <utility>

#include "support/check.h"
#include "support/log.h"

namespace rif::hsi {

namespace {

/// 64-bit-clean seek: std::fseek takes a long, which is 32 bits on
/// Windows and 32-bit targets — it would truncate offsets in exactly the
/// >= 2 GiB cubes this reader exists for.
bool seek_to(std::FILE* f, std::uint64_t byte_offset) {
#if defined(_WIN32)
  return _fseeki64(f, static_cast<long long>(byte_offset), SEEK_SET) == 0;
#else
  return fseeko(f, static_cast<off_t>(byte_offset), SEEK_SET) == 0;
#endif
}

bool read_at(std::FILE* f, std::uint64_t byte_offset, float* dst,
             std::size_t count) {
  if (!seek_to(f, byte_offset)) return false;
  return std::fread(dst, sizeof(float), count, f) == count;
}

}  // namespace

std::optional<ChunkedCubeReader> ChunkedCubeReader::open(
    const std::string& path) {
  auto header = read_header(path + ".hdr");
  if (!header) {
    RIF_LOG_WARN("chunked_reader", "bad or missing header for " << path);
    return std::nullopt;
  }
  if (!validate_data_size(path, *header)) return std::nullopt;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    RIF_LOG_WARN("chunked_reader", "cannot open data file " << path);
    return std::nullopt;
  }
  return ChunkedCubeReader(path, *header, f);
}

ChunkedCubeReader::ChunkedCubeReader(ChunkedCubeReader&& other) noexcept
    : path_(std::move(other.path_)),
      header_(other.header_),
      file_(std::exchange(other.file_, nullptr)),
      scratch_(std::move(other.scratch_)) {}

ChunkedCubeReader& ChunkedCubeReader::operator=(
    ChunkedCubeReader&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) std::fclose(file_);
    path_ = std::move(other.path_);
    header_ = other.header_;
    file_ = std::exchange(other.file_, nullptr);
    scratch_ = std::move(other.scratch_);
  }
  return *this;
}

ChunkedCubeReader::~ChunkedCubeReader() {
  if (file_ != nullptr) std::fclose(file_);
}

bool ChunkedCubeReader::read_lines(int line0, int count,
                                   std::vector<float>& out) {
  // Soft failures, not RIF_CHECK aborts: this runs inside a service job,
  // and a moved-from reader or an out-of-range request (e.g. a header that
  // lied about its line count) must fail THAT job, not the whole process.
  if (file_ == nullptr) {
    RIF_LOG_WARN("chunked_reader", "read_lines on closed reader for "
                                       << path_);
    return false;
  }
  if (line0 < 0 || count <= 0 || line0 + count > header_.lines) {
    RIF_LOG_WARN("chunked_reader", "read_lines range [" << line0 << ", "
                                   << (line0 + count) << ") outside cube of "
                                   << header_.lines << " lines: " << path_);
    return false;
  }
  const int W = header_.samples;
  const int B = header_.bands;
  const std::size_t line_floats = static_cast<std::size_t>(W) * B;
  const std::size_t chunk_floats = line_floats * count;
  out.resize(chunk_floats);

  switch (header_.interleave) {
    case Interleave::kBip:
      // Lines are contiguous pixels, pixels are contiguous bands: the
      // chunk IS one byte range of the file.
      return read_at(file_, static_cast<std::uint64_t>(line0) * line_floats *
                                sizeof(float),
                     out.data(), chunk_floats);

    case Interleave::kBil: {
      // A BIL line is its bands back-to-back (W samples per band), so a
      // run of lines is still one byte range; permute each line to BIP.
      scratch_.resize(chunk_floats);
      if (!read_at(file_, static_cast<std::uint64_t>(line0) * line_floats *
                              sizeof(float),
                   scratch_.data(), chunk_floats)) {
        return false;
      }
      for (int y = 0; y < count; ++y) {
        const float* line = scratch_.data() + static_cast<std::size_t>(y) *
                                                  line_floats;
        float* dst = out.data() + static_cast<std::size_t>(y) * line_floats;
        for (int b = 0; b < B; ++b) {
          for (int x = 0; x < W; ++x) {
            dst[static_cast<std::size_t>(x) * B + b] =
                line[static_cast<std::size_t>(b) * W + x];
          }
        }
      }
      return true;
    }

    case Interleave::kBsq: {
      // The chunk's rows live in every band plane: one seek + read per
      // band, gathered into the BIP buffer.
      const std::size_t rows_floats = static_cast<std::size_t>(W) * count;
      scratch_.resize(rows_floats);
      const std::uint64_t plane_bytes =
          static_cast<std::uint64_t>(W) * header_.lines * sizeof(float);
      for (int b = 0; b < B; ++b) {
        const std::uint64_t off =
            static_cast<std::uint64_t>(b) * plane_bytes +
            static_cast<std::uint64_t>(line0) * W * sizeof(float);
        if (!read_at(file_, off, scratch_.data(), rows_floats)) return false;
        for (std::size_t p = 0; p < rows_floats; ++p) {
          out[p * B + b] = scratch_[p];
        }
      }
      return true;
    }
  }
  return false;
}

}  // namespace rif::hsi
