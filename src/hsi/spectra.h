// Analytic reflectance spectra for the synthetic HYDICE-like scenes.
//
// The paper's data is a 210-band HYDICE collect over foliated terrain with
// mechanized vehicles, some under camouflage, 400 nm - 2500 nm. We replace
// it (see DESIGN.md substitutions) with physically-plausible analytic
// spectra: vegetation shows the chlorophyll trough, red edge, NIR plateau
// and the 1450/1940 nm water absorptions; soil rises smoothly; vehicle
// paint is comparatively flat with a weak absorption signature; camouflage
// netting imitates vegetation but with a softened red edge and shifted
// water bands — spectrally close to foliage, which is precisely what makes
// the screening step earn its keep.
#pragma once

#include <vector>

namespace rif::hsi {

enum class Material : int {
  kForest = 0,
  kGrass = 1,
  kSoil = 2,
  kRoad = 3,
  kVehicle = 4,
  kCamouflage = 5,
  kShadow = 6,
};
inline constexpr int kMaterialCount = 7;

const char* material_name(Material m);

/// Reflectance in [0, 1] of `material` at `wavelength_nm`.
double reflectance(Material material, double wavelength_nm);

/// The HYDICE band grid: `bands` centre wavelengths spanning 400-2500 nm.
std::vector<double> band_wavelengths(int bands);

/// Sampled signature of a material on a band grid.
std::vector<float> signature(Material material,
                             const std::vector<double>& wavelengths);

}  // namespace rif::hsi
