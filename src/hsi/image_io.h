// PGM/PPM writers for band frames (Figure 2) and colour composites
// (Figure 3), plus a tiny RGB image holder used by the colour-mapping step.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/check.h"

namespace rif::hsi {

/// 8-bit RGB image, row-major, 3 bytes per pixel.
struct RgbImage {
  int width = 0;
  int height = 0;
  std::vector<std::uint8_t> data;

  RgbImage() = default;
  RgbImage(int w, int h)
      : width(w), height(h),
        data(static_cast<std::size_t>(w) * h * 3, 0) {}

  std::uint8_t& at(int x, int y, int c) {
    RIF_DCHECK(x >= 0 && x < width && y >= 0 && y < height && c >= 0 && c < 3);
    return data[(static_cast<std::size_t>(y) * width + x) * 3 + c];
  }
  [[nodiscard]] std::uint8_t at(int x, int y, int c) const {
    RIF_DCHECK(x >= 0 && x < width && y >= 0 && y < height && c >= 0 && c < 3);
    return data[(static_cast<std::size_t>(y) * width + x) * 3 + c];
  }
};

/// Write a single float plane as binary PGM, linearly stretched so that
/// [lo_percentile, hi_percentile] maps to [0, 255] (robust to outliers).
bool write_pgm(const std::string& path, const std::vector<float>& plane,
               int width, int height, double lo_percentile = 0.02,
               double hi_percentile = 0.98);

/// Write an RGB image as binary PPM.
bool write_ppm(const std::string& path, const RgbImage& image);

/// Percentile-stretch a plane to bytes (exposed for tests).
std::vector<std::uint8_t> stretch_to_bytes(const std::vector<float>& plane,
                                           double lo_percentile,
                                           double hi_percentile);

}  // namespace rif::hsi
