// Sub-cube decomposition (the paper's unit of work distribution).
//
// The manager "divides an original hyper-spectral image cube into P parts"
// for screening, and — for granularity control (Fig. 5) — into a multiple
// of the worker count. Tiles are horizontal row bands: contiguous in
// memory, equal-to-within-one-row in size.
#pragma once

#include <vector>

#include "hsi/image_cube.h"

namespace rif::hsi {

struct Tile {
  int index = 0;
  int y0 = 0;      ///< first row
  int rows = 0;    ///< number of rows
  int width = 0;
  int bands = 0;

  [[nodiscard]] std::int64_t pixels() const {
    return static_cast<std::int64_t>(rows) * width;
  }
  [[nodiscard]] std::uint64_t bytes() const {
    return static_cast<std::uint64_t>(pixels()) * bands * sizeof(float);
  }
  [[nodiscard]] std::int64_t first_flat_index() const {
    return static_cast<std::int64_t>(y0) * width;
  }
  [[nodiscard]] std::int64_t end_flat_index() const {
    return first_flat_index() + pixels();
  }
};

/// Split `shape` into `count` row-band tiles. Rows are distributed as evenly
/// as possible; tiles with zero rows are omitted, so the result may contain
/// fewer than `count` tiles when count > height.
std::vector<Tile> partition_rows(const CubeShape& shape, int count);

/// Split a flat range [0, n) into `count` contiguous chunks (used to shard
/// the unique set across workers for the covariance step).
struct Chunk {
  std::int64_t begin = 0;
  std::int64_t end = 0;
  [[nodiscard]] std::int64_t size() const { return end - begin; }
};
std::vector<Chunk> partition_range(std::int64_t n, int count);

}  // namespace rif::hsi
