#include "hsi/partition.h"

namespace rif::hsi {

std::vector<Tile> partition_rows(const CubeShape& shape, int count) {
  RIF_CHECK(count > 0);
  RIF_CHECK(shape.height > 0 && shape.width > 0);
  std::vector<Tile> tiles;
  const int base = shape.height / count;
  const int extra = shape.height % count;
  int y = 0;
  for (int i = 0; i < count; ++i) {
    const int rows = base + (i < extra ? 1 : 0);
    if (rows == 0) continue;
    Tile t;
    t.index = static_cast<int>(tiles.size());
    t.y0 = y;
    t.rows = rows;
    t.width = shape.width;
    t.bands = shape.bands;
    tiles.push_back(t);
    y += rows;
  }
  RIF_CHECK(y == shape.height);
  return tiles;
}

std::vector<Chunk> partition_range(std::int64_t n, int count) {
  RIF_CHECK(count > 0 && n >= 0);
  std::vector<Chunk> chunks;
  const std::int64_t base = n / count;
  const std::int64_t extra = n % count;
  std::int64_t pos = 0;
  for (int i = 0; i < count; ++i) {
    const std::int64_t size = base + (i < extra ? 1 : 0);
    chunks.push_back({pos, pos + size});
    pos += size;
  }
  RIF_CHECK(pos == n);
  return chunks;
}

}  // namespace rif::hsi
