#include "hsi/image_io.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace rif::hsi {

std::vector<std::uint8_t> stretch_to_bytes(const std::vector<float>& plane,
                                           double lo_percentile,
                                           double hi_percentile) {
  RIF_CHECK(!plane.empty());
  RIF_CHECK(lo_percentile >= 0.0 && hi_percentile <= 1.0 &&
            lo_percentile < hi_percentile);
  std::vector<float> sorted = plane;
  std::sort(sorted.begin(), sorted.end());
  const auto idx = [&](double p) {
    const auto i = static_cast<std::size_t>(p * (sorted.size() - 1));
    return sorted[i];
  };
  const float lo = idx(lo_percentile);
  const float hi = idx(hi_percentile);
  const float range = hi > lo ? hi - lo : 1.0f;

  std::vector<std::uint8_t> out(plane.size());
  for (std::size_t i = 0; i < plane.size(); ++i) {
    const float v = (plane[i] - lo) / range;
    out[i] = static_cast<std::uint8_t>(
        std::clamp(v * 255.0f, 0.0f, 255.0f));
  }
  return out;
}

bool write_pgm(const std::string& path, const std::vector<float>& plane,
               int width, int height, double lo_percentile,
               double hi_percentile) {
  RIF_CHECK(static_cast<std::size_t>(width) * height == plane.size());
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  std::fprintf(f, "P5\n%d %d\n255\n", width, height);
  const auto bytes = stretch_to_bytes(plane, lo_percentile, hi_percentile);
  const bool ok = std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  std::fclose(f);
  return ok;
}

bool write_ppm(const std::string& path, const RgbImage& image) {
  RIF_CHECK(image.data.size() ==
            static_cast<std::size_t>(image.width) * image.height * 3);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  std::fprintf(f, "P6\n%d %d\n255\n", image.width, image.height);
  const bool ok =
      std::fwrite(image.data.data(), 1, image.data.size(), f) ==
      image.data.size();
  std::fclose(f);
  return ok;
}

}  // namespace rif::hsi
