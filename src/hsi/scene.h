// Synthetic HYDICE-like scene generation.
//
// Produces the stand-in for the paper's airborne collect: a foliated scene
// with open fields, a road, mechanized vehicles in the open and under
// camouflage netting (the paper places a camouflaged vehicle in the lower
// left of Figure 3 — so do we). Ground-truth labels are returned alongside
// the cube so tests and benches can quantify target/background contrast.
#pragma once

#include <cstdint>
#include <vector>

#include "hsi/image_cube.h"
#include "hsi/spectra.h"

namespace rif::hsi {

struct SceneConfig {
  int width = 320;
  int height = 320;
  int bands = 210;
  std::uint64_t seed = 1234;

  int open_vehicle_count = 2;    ///< vehicles parked in open fields
  int camouflaged_count = 1;     ///< vehicles under netting, in forest
  double noise_sigma = 0.004;    ///< additive sensor noise (reflectance units)
  double texture = 0.10;         ///< intra-material reflectance variability
  double illumination = 0.12;    ///< low-frequency illumination gain range
  double camo_mix = 0.65;        ///< netting fraction over camouflaged hulls
};

struct Scene {
  ImageCube cube;
  std::vector<std::uint8_t> labels;  ///< Material per pixel, row-major
  std::vector<double> wavelengths;
  SceneConfig config;

  [[nodiscard]] Material label(int x, int y) const {
    return static_cast<Material>(
        labels[static_cast<std::size_t>(y) * cube.width() + x]);
  }
  [[nodiscard]] std::int64_t count_of(Material m) const;
  /// Band index whose centre wavelength is nearest `wavelength_nm`.
  [[nodiscard]] int band_near(double wavelength_nm) const;
};

Scene generate_scene(const SceneConfig& config);

/// Smooth value-noise field in [-1, 1], deterministic in (seed, cell).
/// Exposed for tests.
std::vector<float> value_noise(int width, int height, int cell,
                               std::uint64_t seed, int octaves = 2);

}  // namespace rif::hsi
