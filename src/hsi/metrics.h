// Image-quality metrics for the qualitative claims of Figures 2-3.
//
// The paper argues the fused composite "significantly enhances" the
// camouflaged vehicle against its background. We quantify that with a
// standard two-class separability score so the claim becomes testable:
// contrast(plane, labels, target) = |mu_t - mu_b| / sqrt((var_t+var_b)/2).
#pragma once

#include <cstdint>
#include <vector>

#include "hsi/image_cube.h"
#include "hsi/image_io.h"
#include "hsi/spectra.h"

namespace rif::hsi {

struct BandStats {
  double mean = 0.0;
  double stddev = 0.0;
  float min = 0.0f;
  float max = 0.0f;
};

/// Per-band statistics of a cube.
std::vector<BandStats> band_statistics(const ImageCube& cube);

/// Extract one band as a float plane.
std::vector<float> extract_band(const ImageCube& cube, int band);

/// Fisher-style separability of `target` pixels vs. all other pixels on a
/// scalar plane. Higher = easier to see. Returns 0 if either class is empty.
double class_contrast(const std::vector<float>& plane,
                      const std::vector<std::uint8_t>& labels,
                      Material target);

/// Same for an RGB composite, but in full colour: the Mahalanobis distance
/// between the target and background class means under the pooled 3x3
/// channel covariance. A target that pops out in any colour direction —
/// the paper's red-green / blue-yellow opponent channels included — scores
/// high even when its luminance matches the background.
double class_contrast(const RgbImage& image,
                      const std::vector<std::uint8_t>& labels,
                      Material target);

/// Scalar contrast between two specific materials only (ignores all other
/// pixels) — e.g. camouflage vs. the forest it hides in.
double pair_contrast(const std::vector<float>& plane,
                     const std::vector<std::uint8_t>& labels, Material target,
                     Material background);

/// Colour (Mahalanobis) contrast between two specific materials in an RGB
/// composite.
double pair_contrast(const RgbImage& image,
                     const std::vector<std::uint8_t>& labels, Material target,
                     Material background);

/// Best single-band pair contrast over all bands — the baseline a fused
/// composite must beat for the paper's "significantly enhanced" claim.
double best_band_pair_contrast(const ImageCube& cube,
                               const std::vector<std::uint8_t>& labels,
                               Material target, Material background);

/// Maximum single-band contrast over all bands of a cube — the best any
/// one frame can do, the baseline the composite must beat.
double best_band_contrast(const ImageCube& cube,
                          const std::vector<std::uint8_t>& labels,
                          Material target);

/// Pearson correlation between two bands (PCT decorrelation checks).
double band_correlation(const ImageCube& cube, int band_a, int band_b);

}  // namespace rif::hsi
