#include "hsi/cube_io.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "support/check.h"
#include "support/log.h"

namespace rif::hsi {

namespace {

std::string trim(const std::string& s) {
  std::size_t a = 0;
  std::size_t b = s.size();
  while (a < b && std::isspace(static_cast<unsigned char>(s[a]))) ++a;
  while (b > a && std::isspace(static_cast<unsigned char>(s[b - 1]))) --b;
  return s.substr(a, b - a);
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

/// getline accepting LF, CRLF and lone-CR terminators. Real-world ENVI
/// headers are often Windows-authored; a CR-only file would otherwise come
/// back from std::getline as ONE line and lose every key after the first.
bool getline_any(std::istream& in, std::string& line) {
  line.clear();
  int c;
  while ((c = in.get()) != EOF) {
    if (c == '\n') return true;
    if (c == '\r') {
      if (in.peek() == '\n') in.get();
      return true;
    }
    line.push_back(static_cast<char>(c));
  }
  return !line.empty();
}

}  // namespace

const char* interleave_name(Interleave i) {
  switch (i) {
    case Interleave::kBip: return "bip";
    case Interleave::kBil: return "bil";
    case Interleave::kBsq: return "bsq";
  }
  return "bip";
}

std::optional<Interleave> parse_interleave(const std::string& name) {
  const std::string n = lower(trim(name));
  if (n == "bip") return Interleave::kBip;
  if (n == "bil") return Interleave::kBil;
  if (n == "bsq") return Interleave::kBsq;
  return std::nullopt;
}

std::vector<float> to_interleave(const ImageCube& cube, Interleave target) {
  const int W = cube.width();
  const int H = cube.height();
  const int B = cube.bands();
  if (target == Interleave::kBip) return cube.raw();

  std::vector<float> out(cube.raw().size());
  if (target == Interleave::kBil) {
    // Per line: all samples of band 0, then band 1, ...
    for (int y = 0; y < H; ++y) {
      for (int b = 0; b < B; ++b) {
        for (int x = 0; x < W; ++x) {
          out[(static_cast<std::size_t>(y) * B + b) * W + x] =
              cube.pixel(x, y)[b];
        }
      }
    }
  } else {  // BSQ: whole plane per band
    for (int b = 0; b < B; ++b) {
      for (int y = 0; y < H; ++y) {
        for (int x = 0; x < W; ++x) {
          out[(static_cast<std::size_t>(b) * H + y) * W + x] =
              cube.pixel(x, y)[b];
        }
      }
    }
  }
  return out;
}

ImageCube from_interleave(const std::vector<float>& data, int width,
                          int height, int bands, Interleave source) {
  RIF_CHECK(data.size() ==
            static_cast<std::size_t>(width) * height * bands);
  ImageCube cube(width, height, bands);
  if (source == Interleave::kBip) {
    cube.raw() = data;
    return cube;
  }
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      auto px = cube.pixel(x, y);
      for (int b = 0; b < bands; ++b) {
        if (source == Interleave::kBil) {
          px[b] = data[(static_cast<std::size_t>(y) * bands + b) * width + x];
        } else {  // BSQ
          px[b] = data[(static_cast<std::size_t>(b) * height + y) * width + x];
        }
      }
    }
  }
  return cube;
}

bool save_cube(const std::string& path, const ImageCube& cube,
               Interleave interleave,
               const std::vector<double>& wavelengths) {
  // Header.
  std::ofstream hdr(path + ".hdr");
  if (!hdr) return false;
  hdr.precision(17);
  hdr << "ENVI\n";
  hdr << "description = { rif hyper-spectral cube }\n";
  hdr << "samples = " << cube.width() << "\n";
  hdr << "lines = " << cube.height() << "\n";
  hdr << "bands = " << cube.bands() << "\n";
  hdr << "header offset = 0\n";
  hdr << "data type = 4\n";  // IEEE float32
  hdr << "interleave = " << interleave_name(interleave) << "\n";
  hdr << "byte order = 0\n";
  if (!wavelengths.empty()) {
    hdr << "wavelength = {";
    for (std::size_t i = 0; i < wavelengths.size(); ++i) {
      hdr << (i ? ", " : " ") << wavelengths[i];
    }
    hdr << " }\n";
  }
  hdr.close();
  if (!hdr) return false;

  // Data.
  const std::vector<float> data = to_interleave(cube, interleave);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok =
      std::fwrite(data.data(), sizeof(float), data.size(), f) == data.size();
  std::fclose(f);
  return ok;
}

std::optional<CubeHeader> read_header(const std::string& hdr_path) {
  std::ifstream in(hdr_path);
  if (!in) return std::nullopt;

  CubeHeader header;
  bool has_samples = false, has_lines = false, has_bands = false;
  std::string line;
  bool first_line = true;
  while (getline_any(in, line)) {
    if (first_line) {
      // Strip a UTF-8 BOM some Windows editors prepend.
      if (line.rfind("\xEF\xBB\xBF", 0) == 0) line.erase(0, 3);
      first_line = false;
    }
    const auto eq = line.find('=');
    if (eq == std::string::npos) continue;
    const std::string key = lower(trim(line.substr(0, eq)));
    std::string value = trim(line.substr(eq + 1));

    if (key == "samples") {
      header.samples = std::atoi(value.c_str());
      has_samples = true;
    } else if (key == "lines") {
      header.lines = std::atoi(value.c_str());
      has_lines = true;
    } else if (key == "bands") {
      header.bands = std::atoi(value.c_str());
      has_bands = true;
    } else if (key == "interleave") {
      const auto il = parse_interleave(value);
      if (!il) return std::nullopt;
      header.interleave = *il;
    } else if (key == "data type") {
      if (std::atoi(value.c_str()) != 4) return std::nullopt;  // float32 only
    } else if (key == "wavelength") {
      // Multi-line { a, b, ... } list.
      std::string list = value;
      while (list.find('}') == std::string::npos && getline_any(in, line)) {
        list += ' ';
        list += line;
      }
      std::string nums;
      for (const char c : list) {
        nums += (c == '{' || c == '}' || c == ',') ? ' ' : c;
      }
      std::istringstream ss(nums);
      double wl;
      while (ss >> wl) header.wavelengths.push_back(wl);
    }
  }
  if (!has_samples || !has_lines || !has_bands || header.samples <= 0 ||
      header.lines <= 0 || header.bands <= 0) {
    return std::nullopt;
  }
  if (!header.wavelengths.empty() &&
      static_cast<int>(header.wavelengths.size()) != header.bands) {
    return std::nullopt;
  }
  return header;
}

std::uint64_t expected_data_bytes(const CubeHeader& header) {
  return static_cast<std::uint64_t>(header.samples) * header.lines *
         header.bands * sizeof(float);
}

bool validate_data_size(const std::string& path, const CubeHeader& header) {
  std::error_code ec;
  const std::uintmax_t actual = std::filesystem::file_size(path, ec);
  if (ec) {
    RIF_LOG_WARN("cube_io", "cannot stat data file " << path << ": "
                                                     << ec.message());
    return false;
  }
  const std::uint64_t expected = expected_data_bytes(header);
  if (actual != expected) {
    RIF_LOG_WARN("cube_io",
                 "data file " << path << " is " << actual << " bytes but "
                              << header.samples << "x" << header.lines << "x"
                              << header.bands << " float32 needs " << expected
                              << " (" << (actual < expected ? "truncated"
                                                            : "oversized")
                              << " file?)");
    return false;
  }
  return true;
}

std::optional<ImageCube> load_cube(const std::string& path,
                                   CubeHeader* header_out) {
  const auto header = read_header(path + ".hdr");
  if (!header) {
    RIF_LOG_WARN("cube_io", "bad or missing header for " << path);
    return std::nullopt;
  }
  if (!validate_data_size(path, *header)) return std::nullopt;
  const std::size_t count = static_cast<std::size_t>(header->samples) *
                            header->lines * header->bands;
  std::vector<float> data(count);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  const bool ok = std::fread(data.data(), sizeof(float), count, f) == count;
  std::fclose(f);
  if (!ok) {
    RIF_LOG_WARN("cube_io", "short read on " << path);
    return std::nullopt;
  }
  if (header_out != nullptr) *header_out = *header;
  return from_interleave(data, header->samples, header->lines, header->bands,
                         header->interleave);
}

}  // namespace rif::hsi
