#include "hsi/spectra.h"

#include <cmath>

#include "support/check.h"

namespace rif::hsi {

namespace {

/// Gaussian bump centred at `mu` nm with width `sigma` nm.
double bump(double wl, double mu, double sigma) {
  const double d = (wl - mu) / sigma;
  return std::exp(-0.5 * d * d);
}

/// Smooth step from 0 to 1 around `mu` with rise width `w`.
double rise(double wl, double mu, double w) {
  return 1.0 / (1.0 + std::exp(-(wl - mu) / w));
}

double clamp01(double v) { return v < 0.0 ? 0.0 : (v > 1.0 ? 1.0 : v); }

/// Atmospheric/leaf water absorption applied to vegetation-like targets.
double water_absorption(double wl, double depth) {
  return 1.0 - depth * bump(wl, 1450.0, 60.0) - depth * bump(wl, 1940.0, 70.0) -
         0.35 * depth * bump(wl, 1140.0, 50.0);
}

double vegetation(double wl, double red_edge_pos, double nir_level,
                  double water_depth) {
  // Chlorophyll: green peak at 550, absorption at 680, red edge, NIR plateau.
  double r = 0.05 + 0.06 * bump(wl, 550.0, 40.0) - 0.03 * bump(wl, 680.0, 30.0);
  r += (nir_level - 0.05) * rise(wl, red_edge_pos, 18.0);
  // NIR shoulder decays slowly into the SWIR.
  r -= 0.18 * rise(wl, 1350.0, 150.0);
  r *= water_absorption(wl, water_depth);
  return clamp01(r);
}

}  // namespace

const char* material_name(Material m) {
  switch (m) {
    case Material::kForest: return "forest";
    case Material::kGrass: return "grass";
    case Material::kSoil: return "soil";
    case Material::kRoad: return "road";
    case Material::kVehicle: return "vehicle";
    case Material::kCamouflage: return "camouflage";
    case Material::kShadow: return "shadow";
  }
  return "unknown";
}

double reflectance(Material material, double wavelength_nm) {
  const double wl = wavelength_nm;
  switch (material) {
    case Material::kForest:
      return vegetation(wl, 715.0, 0.50, 0.55);
    case Material::kGrass:
      return vegetation(wl, 705.0, 0.62, 0.40);
    case Material::kSoil: {
      // Broad rise with iron-oxide curvature and clay feature at 2200 nm.
      double r = 0.08 + 0.28 * rise(wl, 900.0, 350.0) +
                 0.05 * bump(wl, 1700.0, 250.0) - 0.06 * bump(wl, 2200.0, 60.0);
      return clamp01(r);
    }
    case Material::kRoad: {
      // Asphalt: dark, nearly flat, gentle upward slope.
      return clamp01(0.06 + 0.05 * rise(wl, 1200.0, 600.0));
    }
    case Material::kVehicle: {
      // Olive-drab paint on metal: moderate, flat-ish, with a CH-resin
      // absorption near 1730 nm and no red edge — the discriminant feature.
      double r = 0.16 + 0.05 * bump(wl, 600.0, 120.0) +
                 0.04 * rise(wl, 1000.0, 400.0) - 0.05 * bump(wl, 1730.0, 45.0) -
                 0.04 * bump(wl, 2310.0, 50.0);
      return clamp01(r);
    }
    case Material::kCamouflage: {
      // Woodland netting: imitates vegetation in the VIS but the red edge is
      // softer, the NIR plateau lower, and the water bands nearly absent
      // (dry fabric), so it separates from true foliage in the SWIR.
      double r = 0.06 + 0.05 * bump(wl, 555.0, 45.0) -
                 0.02 * bump(wl, 680.0, 35.0);
      r += 0.30 * rise(wl, 730.0, 40.0);
      r -= 0.10 * rise(wl, 1400.0, 200.0);
      r *= water_absorption(wl, 0.10);
      r -= 0.04 * bump(wl, 1730.0, 45.0);  // resin, like the paint
      return clamp01(r);
    }
    case Material::kShadow:
      return clamp01(0.02 + 0.015 * rise(wl, 900.0, 400.0));
  }
  return 0.0;
}

std::vector<double> band_wavelengths(int bands) {
  RIF_CHECK(bands >= 1);
  std::vector<double> wl(bands);
  const double lo = 400.0;
  const double hi = 2500.0;
  for (int i = 0; i < bands; ++i) {
    wl[i] = bands == 1 ? lo : lo + (hi - lo) * i / (bands - 1);
  }
  return wl;
}

std::vector<float> signature(Material material,
                             const std::vector<double>& wavelengths) {
  std::vector<float> sig(wavelengths.size());
  for (std::size_t i = 0; i < wavelengths.size(); ++i) {
    sig[i] = static_cast<float>(reflectance(material, wavelengths[i]));
  }
  return sig;
}

}  // namespace rif::hsi
