// Hyper-spectral image cube.
//
// Storage is band-interleaved-by-pixel (BIP): the B band samples of one
// pixel are contiguous, which is the access pattern of every kernel in the
// pipeline (spectral angles, covariance updates, per-pixel transforms).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "support/check.h"

namespace rif::hsi {

class ImageCube {
 public:
  ImageCube() = default;
  ImageCube(int width, int height, int bands)
      : width_(width), height_(height), bands_(bands),
        data_(static_cast<std::size_t>(width) * height * bands, 0.0f) {
    RIF_CHECK(width > 0 && height > 0 && bands > 0);
  }

  [[nodiscard]] int width() const { return width_; }
  [[nodiscard]] int height() const { return height_; }
  [[nodiscard]] int bands() const { return bands_; }
  [[nodiscard]] std::int64_t pixel_count() const {
    return static_cast<std::int64_t>(width_) * height_;
  }
  [[nodiscard]] std::uint64_t bytes() const {
    return data_.size() * sizeof(float);
  }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  [[nodiscard]] std::span<float> pixel(int x, int y) {
    return {data_.data() + offset(x, y), static_cast<std::size_t>(bands_)};
  }
  [[nodiscard]] std::span<const float> pixel(int x, int y) const {
    return {data_.data() + offset(x, y), static_cast<std::size_t>(bands_)};
  }
  /// Pixel by flat index (row-major), for partition-agnostic loops.
  [[nodiscard]] std::span<const float> pixel(std::int64_t flat) const {
    RIF_DCHECK(flat >= 0 && flat < pixel_count());
    return {data_.data() + flat * bands_, static_cast<std::size_t>(bands_)};
  }
  [[nodiscard]] std::span<float> pixel(std::int64_t flat) {
    RIF_DCHECK(flat >= 0 && flat < pixel_count());
    return {data_.data() + flat * bands_, static_cast<std::size_t>(bands_)};
  }

  [[nodiscard]] const std::vector<float>& raw() const { return data_; }
  [[nodiscard]] std::vector<float>& raw() { return data_; }

 private:
  [[nodiscard]] std::size_t offset(int x, int y) const {
    RIF_DCHECK(x >= 0 && x < width_ && y >= 0 && y < height_);
    return (static_cast<std::size_t>(y) * width_ + x) * bands_;
  }

  int width_ = 0;
  int height_ = 0;
  int bands_ = 0;
  std::vector<float> data_;
};

/// Dimensions-only descriptor, used where the workload shape matters but
/// pixel values do not (CostOnly distributed runs, cost models, tests).
struct CubeShape {
  int width = 0;
  int height = 0;
  int bands = 0;

  [[nodiscard]] std::int64_t pixels() const {
    return static_cast<std::int64_t>(width) * height;
  }
  [[nodiscard]] std::uint64_t bytes() const {
    return static_cast<std::uint64_t>(pixels()) * bands * sizeof(float);
  }
};

}  // namespace rif::hsi
