// Hyper-spectral cube file I/O in an ENVI-like format.
//
// A cube is stored as a raw little-endian float32 data file plus a text
// header "<path>.hdr" with the classic ENVI keys (samples, lines, bands,
// interleave, wavelength). All three standard interleaves are supported:
//   BIP  band-interleaved-by-pixel  (the in-memory layout of ImageCube)
//   BIL  band-interleaved-by-line
//   BSQ  band-sequential (one plane per band)
// Loading converts any interleave to the internal BIP layout.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "hsi/image_cube.h"

namespace rif::hsi {

enum class Interleave { kBip, kBil, kBsq };

const char* interleave_name(Interleave i);
std::optional<Interleave> parse_interleave(const std::string& name);

struct CubeHeader {
  int samples = 0;  ///< width
  int lines = 0;    ///< height
  int bands = 0;
  Interleave interleave = Interleave::kBip;
  std::vector<double> wavelengths;  ///< optional band centres (nm)
};

/// Write `cube` to `<path>` (data) and `<path>.hdr` (header).
bool save_cube(const std::string& path, const ImageCube& cube,
               Interleave interleave = Interleave::kBip,
               const std::vector<double>& wavelengths = {});

/// Parse a header file; nullopt on malformed/missing keys. Tolerates
/// Windows-authored files: CRLF (and CR-only) line endings, a UTF-8 BOM,
/// and stray whitespace/tabs around the `=` of each key.
std::optional<CubeHeader> read_header(const std::string& hdr_path);

/// Byte length the data file must have for `header`:
/// samples * lines * bands * sizeof(float).
std::uint64_t expected_data_bytes(const CubeHeader& header);

/// True iff the data file at `path` exists and its byte length matches
/// `header` exactly. Truncated AND oversized files are rejected, with a log
/// line naming both sizes. The single validation path shared by the
/// in-memory loader (load_cube) and the out-of-core ChunkedCubeReader.
bool validate_data_size(const std::string& path, const CubeHeader& header);

/// Load `<path>` + `<path>.hdr`; nullopt on I/O or consistency errors.
/// `header_out`, if non-null, receives the parsed header (wavelengths).
std::optional<ImageCube> load_cube(const std::string& path,
                                   CubeHeader* header_out = nullptr);

/// In-memory interleave conversions (exposed for tests and tooling).
std::vector<float> to_interleave(const ImageCube& cube, Interleave target);
ImageCube from_interleave(const std::vector<float>& data, int width,
                          int height, int bands, Interleave source);

}  // namespace rif::hsi
