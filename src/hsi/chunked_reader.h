// Windowed (out-of-core) cube reads: N image lines at a time, delivered in
// the internal BIP layout, without ever materializing the whole cube.
//
// This is the ingest side of the streaming fusion pipeline: where load_cube
// caps scene size at RAM and serializes the whole load in front of the
// first screened pixel, a ChunkedCubeReader walks the data file in
// line-band windows whose footprint the caller chooses. All three standard
// interleaves are supported:
//
//   BIP  a run of whole lines is one contiguous byte range — one read.
//   BIL  likewise contiguous (a line is its bands back-to-back), read in
//        one go and permuted to BIP in-memory.
//   BSQ  the chunk's rows are strided across the band planes — one seek +
//        read per band, gathered into BIP.
//
// Header parsing and data-file validation are shared with load_cube
// (read_header / validate_data_size), so both loaders accept and reject
// exactly the same files.
#pragma once

#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "hsi/cube_io.h"

namespace rif::hsi {

class ChunkedCubeReader {
 public:
  /// Open `<path>` + `<path>.hdr`. nullopt on a bad header, an unopenable
  /// data file, or a data file whose byte length does not match the header
  /// (validate_data_size — truncated and oversized files are both refused
  /// up front, before any chunk is read).
  static std::optional<ChunkedCubeReader> open(const std::string& path);

  ChunkedCubeReader(ChunkedCubeReader&& other) noexcept;
  ChunkedCubeReader& operator=(ChunkedCubeReader&& other) noexcept;
  ChunkedCubeReader(const ChunkedCubeReader&) = delete;
  ChunkedCubeReader& operator=(const ChunkedCubeReader&) = delete;
  ~ChunkedCubeReader();

  [[nodiscard]] const CubeHeader& header() const { return header_; }
  [[nodiscard]] int samples() const { return header_.samples; }
  [[nodiscard]] int lines() const { return header_.lines; }
  [[nodiscard]] int bands() const { return header_.bands; }
  [[nodiscard]] const std::string& path() const { return path_; }

  /// Bytes of one BIP chunk buffer holding `chunk_lines` lines.
  [[nodiscard]] std::uint64_t chunk_bytes(int chunk_lines) const {
    return static_cast<std::uint64_t>(chunk_lines) * header_.samples *
           header_.bands * sizeof(float);
  }

  /// Read `count` lines starting at image line `line0` into `out`, resized
  /// to count * samples * bands floats in BIP order. Seeks first, so chunks
  /// may be read in any order and the file traversed any number of times
  /// (the fusion pipeline makes one pass for statistics and a second for
  /// the transform). Returns false on an I/O error. Not thread-safe: one
  /// reader, one thread (the streaming engine gives the reader stage a
  /// dedicated thread).
  bool read_lines(int line0, int count, std::vector<float>& out);

 private:
  ChunkedCubeReader(std::string path, CubeHeader header, std::FILE* file)
      : path_(std::move(path)), header_(header), file_(file) {}

  std::string path_;
  CubeHeader header_;
  std::FILE* file_ = nullptr;
  std::vector<float> scratch_;  ///< interleave staging (BIL/BSQ)
};

}  // namespace rif::hsi
