#include "hsi/scene.h"

#include <algorithm>
#include <cmath>

#include "support/rng.h"

namespace rif::hsi {

namespace {

struct Rect {
  int x0, y0, w, h;
  [[nodiscard]] bool contains(int x, int y) const {
    return x >= x0 && x < x0 + w && y >= y0 && y < y0 + h;
  }
};

void paint_rect(std::vector<std::uint8_t>& labels, int width, int height,
                const Rect& r, Material m) {
  for (int y = std::max(0, r.y0); y < std::min(height, r.y0 + r.h); ++y) {
    for (int x = std::max(0, r.x0); x < std::min(width, r.x0 + r.w); ++x) {
      labels[static_cast<std::size_t>(y) * width + x] =
          static_cast<std::uint8_t>(m);
    }
  }
}

void paint_ellipse(std::vector<std::uint8_t>& labels, int width, int height,
                   double cx, double cy, double rx, double ry, Material m) {
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      const double dx = (x - cx) / rx;
      const double dy = (y - cy) / ry;
      if (dx * dx + dy * dy <= 1.0) {
        labels[static_cast<std::size_t>(y) * width + x] =
            static_cast<std::uint8_t>(m);
      }
    }
  }
}

}  // namespace

std::vector<float> value_noise(int width, int height, int cell,
                               std::uint64_t seed, int octaves) {
  RIF_CHECK(cell >= 2);
  std::vector<float> out(static_cast<std::size_t>(width) * height, 0.0f);
  float amplitude = 1.0f;
  float total = 0.0f;
  int c = cell;
  for (int oct = 0; oct < octaves; ++oct) {
    const int gw = width / c + 2;
    const int gh = height / c + 2;
    Rng rng(seed + 0x9e37u * static_cast<std::uint64_t>(oct + 1));
    std::vector<float> grid(static_cast<std::size_t>(gw) * gh);
    for (auto& g : grid) g = static_cast<float>(rng.uniform(-1.0, 1.0));
    for (int y = 0; y < height; ++y) {
      const int gy = y / c;
      const float fy = static_cast<float>(y % c) / static_cast<float>(c);
      for (int x = 0; x < width; ++x) {
        const int gx = x / c;
        const float fx = static_cast<float>(x % c) / static_cast<float>(c);
        const float v00 = grid[static_cast<std::size_t>(gy) * gw + gx];
        const float v10 = grid[static_cast<std::size_t>(gy) * gw + gx + 1];
        const float v01 = grid[static_cast<std::size_t>(gy + 1) * gw + gx];
        const float v11 = grid[static_cast<std::size_t>(gy + 1) * gw + gx + 1];
        const float v = v00 * (1 - fx) * (1 - fy) + v10 * fx * (1 - fy) +
                        v01 * (1 - fx) * fy + v11 * fx * fy;
        out[static_cast<std::size_t>(y) * width + x] += amplitude * v;
      }
    }
    total += amplitude;
    amplitude *= 0.5f;
    c = std::max(2, c / 2);
  }
  for (auto& v : out) v /= total;
  return out;
}

std::int64_t Scene::count_of(Material m) const {
  return std::count(labels.begin(), labels.end(),
                    static_cast<std::uint8_t>(m));
}

int Scene::band_near(double wavelength_nm) const {
  int best = 0;
  double best_d = 1e30;
  for (std::size_t i = 0; i < wavelengths.size(); ++i) {
    const double d = std::abs(wavelengths[i] - wavelength_nm);
    if (d < best_d) {
      best_d = d;
      best = static_cast<int>(i);
    }
  }
  return best;
}

Scene generate_scene(const SceneConfig& config) {
  const int W = config.width;
  const int H = config.height;
  const int B = config.bands;
  Rng rng(config.seed);

  Scene scene;
  scene.config = config;
  scene.wavelengths = band_wavelengths(B);
  scene.cube = ImageCube(W, H, B);
  scene.labels.assign(static_cast<std::size_t>(W) * H,
                      static_cast<std::uint8_t>(Material::kForest));

  // --- Layout ---------------------------------------------------------
  // Open grass field on the right half, a soil clearing, a road, shadows.
  paint_ellipse(scene.labels, W, H, 0.70 * W, 0.38 * H, 0.26 * W, 0.30 * H,
                Material::kGrass);
  paint_ellipse(scene.labels, W, H, 0.62 * W, 0.70 * H, 0.14 * W, 0.10 * H,
                Material::kSoil);
  // Road: a slightly slanted vertical strip.
  for (int y = 0; y < H; ++y) {
    const int xc = static_cast<int>(0.42 * W + 0.05 * W *
                                    std::sin(3.0 * y / static_cast<double>(H)));
    for (int x = std::max(0, xc - 3); x < std::min(W, xc + 3); ++x) {
      scene.labels[static_cast<std::size_t>(y) * W + x] =
          static_cast<std::uint8_t>(Material::kRoad);
    }
  }

  // Vehicles in the open: parked near the field centre.
  auto vehicle_rect = [&](double fx, double fy) {
    const int vw = 9 + static_cast<int>(rng.uniform_u64(4));
    const int vh = 5 + static_cast<int>(rng.uniform_u64(3));
    return Rect{static_cast<int>(fx * W), static_cast<int>(fy * H), vw, vh};
  };
  std::vector<Rect> open_vehicles;
  for (int i = 0; i < config.open_vehicle_count; ++i) {
    const double fx = 0.58 + 0.18 * rng.uniform();
    const double fy = 0.28 + 0.22 * rng.uniform();
    Rect r = vehicle_rect(fx, fy);
    open_vehicles.push_back(r);
    paint_rect(scene.labels, W, H, r, Material::kVehicle);
    // Cast shadow one pixel down-right.
    paint_rect(scene.labels, W, H,
               Rect{r.x0 + r.w, r.y0 + 1, 2, r.h}, Material::kShadow);
  }

  // Camouflaged vehicles: in the forest, lower-left quadrant (as in the
  // paper's Figure 3 description).
  std::vector<Rect> camo_vehicles;
  for (int i = 0; i < config.camouflaged_count; ++i) {
    const double fx = 0.10 + 0.15 * rng.uniform();
    const double fy = 0.70 + 0.15 * rng.uniform();
    Rect r = vehicle_rect(fx, fy);
    camo_vehicles.push_back(r);
    paint_rect(scene.labels, W, H, r, Material::kCamouflage);
  }

  // --- Radiometry -------------------------------------------------------
  std::vector<std::vector<float>> sigs(kMaterialCount);
  for (int m = 0; m < kMaterialCount; ++m) {
    sigs[m] = signature(static_cast<Material>(m), scene.wavelengths);
  }
  const auto vehicle_sig = sigs[static_cast<int>(Material::kVehicle)];

  const auto texture_field =
      value_noise(W, H, 16, config.seed ^ 0xfeedfaceULL, 3);
  const auto illum_field =
      value_noise(W, H, 96, config.seed ^ 0xbeefcafeULL, 2);

  Rng noise = rng.fork(17);
  for (int y = 0; y < H; ++y) {
    for (int x = 0; x < W; ++x) {
      const std::size_t flat = static_cast<std::size_t>(y) * W + x;
      const auto material = static_cast<Material>(scene.labels[flat]);
      const auto& sig = sigs[static_cast<int>(material)];
      const float gain =
          (1.0f + static_cast<float>(config.texture) * texture_field[flat]) *
          (1.0f + static_cast<float>(config.illumination) * illum_field[flat]);
      auto px = scene.cube.pixel(x, y);
      if (material == Material::kCamouflage) {
        // Netting covers most of the hull; some paint shows through.
        const float a = static_cast<float>(config.camo_mix);
        for (int b = 0; b < B; ++b) {
          const float v = a * sig[b] + (1.0f - a) * vehicle_sig[b];
          px[b] = std::max(
              0.0f, v * gain + static_cast<float>(
                                   noise.normal(0.0, config.noise_sigma)));
        }
      } else {
        for (int b = 0; b < B; ++b) {
          px[b] = std::max(
              0.0f, sig[b] * gain + static_cast<float>(
                                        noise.normal(0.0, config.noise_sigma)));
        }
      }
    }
  }
  return scene;
}

}  // namespace rif::hsi
