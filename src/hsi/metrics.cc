#include "hsi/metrics.h"

#include <cmath>
#include <functional>

namespace rif::hsi {

namespace {

struct TwoClass {
  double sum_t = 0, sum2_t = 0, sum_b = 0, sum2_b = 0;
  std::int64_t n_t = 0, n_b = 0;

  void add(double v, bool is_target) {
    if (is_target) {
      sum_t += v;
      sum2_t += v * v;
      ++n_t;
    } else {
      sum_b += v;
      sum2_b += v * v;
      ++n_b;
    }
  }

  [[nodiscard]] double contrast() const {
    if (n_t == 0 || n_b == 0) return 0.0;
    const double mu_t = sum_t / n_t;
    const double mu_b = sum_b / n_b;
    const double var_t = std::max(0.0, sum2_t / n_t - mu_t * mu_t);
    const double var_b = std::max(0.0, sum2_b / n_b - mu_b * mu_b);
    const double pooled = std::sqrt(0.5 * (var_t + var_b));
    const double diff = std::abs(mu_t - mu_b);
    if (diff <= 1e-12) return 0.0;
    // Zero-variance but separated classes are perfectly distinguishable;
    // bound the score instead of dividing by zero.
    return diff / std::max(pooled, 1e-9 * diff);
  }
};

}  // namespace

std::vector<BandStats> band_statistics(const ImageCube& cube) {
  const int B = cube.bands();
  std::vector<double> sum(B, 0.0);
  std::vector<double> sum2(B, 0.0);
  std::vector<float> mn(B, 1e30f);
  std::vector<float> mx(B, -1e30f);
  for (std::int64_t p = 0; p < cube.pixel_count(); ++p) {
    const auto px = cube.pixel(p);
    for (int b = 0; b < B; ++b) {
      const float v = px[b];
      sum[b] += v;
      sum2[b] += static_cast<double>(v) * v;
      mn[b] = std::min(mn[b], v);
      mx[b] = std::max(mx[b], v);
    }
  }
  const auto n = static_cast<double>(cube.pixel_count());
  std::vector<BandStats> out(B);
  for (int b = 0; b < B; ++b) {
    out[b].mean = sum[b] / n;
    out[b].stddev = std::sqrt(std::max(0.0, sum2[b] / n - out[b].mean * out[b].mean));
    out[b].min = mn[b];
    out[b].max = mx[b];
  }
  return out;
}

std::vector<float> extract_band(const ImageCube& cube, int band) {
  RIF_CHECK(band >= 0 && band < cube.bands());
  std::vector<float> plane(cube.pixel_count());
  for (std::int64_t p = 0; p < cube.pixel_count(); ++p) {
    plane[p] = cube.pixel(p)[band];
  }
  return plane;
}

double class_contrast(const std::vector<float>& plane,
                      const std::vector<std::uint8_t>& labels,
                      Material target) {
  RIF_CHECK(plane.size() == labels.size());
  TwoClass tc;
  for (std::size_t i = 0; i < plane.size(); ++i) {
    tc.add(plane[i], labels[i] == static_cast<std::uint8_t>(target));
  }
  return tc.contrast();
}

namespace {

/// Mahalanobis separability of two pixel classes in RGB space. `classify`
/// returns 1 (target), 0 (background) or -1 (excluded pixel).
double rgb_mahalanobis(const RgbImage& image,
                       const std::function<int(std::size_t)>& classify) {
  // Per-class first and second moments of the RGB vectors.
  double n[2] = {0, 0};
  double mean[2][3] = {};
  double second[2][3][3] = {};
  const std::size_t pixels =
      static_cast<std::size_t>(image.width) * image.height;
  for (std::size_t i = 0; i < pixels; ++i) {
    const int cls = classify(i);
    if (cls < 0) continue;
    double v[3];
    for (int c = 0; c < 3; ++c) v[c] = image.data[i * 3 + c];
    n[cls] += 1.0;
    for (int a = 0; a < 3; ++a) {
      mean[cls][a] += v[a];
      for (int b = 0; b < 3; ++b) second[cls][a][b] += v[a] * v[b];
    }
  }
  if (n[0] == 0 || n[1] == 0) return 0.0;

  double pooled[3][3];
  for (int cls = 0; cls < 2; ++cls) {
    for (int a = 0; a < 3; ++a) mean[cls][a] /= n[cls];
  }
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) {
      const double cov0 = second[0][a][b] / n[0] - mean[0][a] * mean[0][b];
      const double cov1 = second[1][a][b] / n[1] - mean[1][a] * mean[1][b];
      pooled[a][b] = 0.5 * (cov0 + cov1);
    }
    pooled[a][a] += 1e-6;  // ridge for degenerate channels
  }

  // Solve pooled * x = diff by Gaussian elimination (3x3).
  double diff[3];
  for (int a = 0; a < 3; ++a) diff[a] = mean[1][a] - mean[0][a];
  double m[3][4];
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) m[a][b] = pooled[a][b];
    m[a][3] = diff[a];
  }
  for (int col = 0; col < 3; ++col) {
    int pivot = col;
    for (int r = col + 1; r < 3; ++r) {
      if (std::abs(m[r][col]) > std::abs(m[pivot][col])) pivot = r;
    }
    for (int c = 0; c < 4; ++c) std::swap(m[col][c], m[pivot][c]);
    if (std::abs(m[col][col]) < 1e-30) return 0.0;
    for (int r = 0; r < 3; ++r) {
      if (r == col) continue;
      const double f = m[r][col] / m[col][col];
      for (int c = 0; c < 4; ++c) m[r][c] -= f * m[col][c];
    }
  }
  double quad = 0.0;
  for (int a = 0; a < 3; ++a) quad += diff[a] * (m[a][3] / m[a][a]);
  return quad > 0.0 ? std::sqrt(quad) : 0.0;
}

}  // namespace

double class_contrast(const RgbImage& image,
                      const std::vector<std::uint8_t>& labels,
                      Material target) {
  RIF_CHECK(labels.size() ==
            static_cast<std::size_t>(image.width) * image.height);
  const auto t = static_cast<std::uint8_t>(target);
  return rgb_mahalanobis(
      image, [&labels, t](std::size_t i) { return labels[i] == t ? 1 : 0; });
}

double pair_contrast(const RgbImage& image,
                     const std::vector<std::uint8_t>& labels, Material target,
                     Material background) {
  RIF_CHECK(labels.size() ==
            static_cast<std::size_t>(image.width) * image.height);
  const auto t = static_cast<std::uint8_t>(target);
  const auto b = static_cast<std::uint8_t>(background);
  return rgb_mahalanobis(image, [&labels, t, b](std::size_t i) {
    return labels[i] == t ? 1 : (labels[i] == b ? 0 : -1);
  });
}

double best_band_pair_contrast(const ImageCube& cube,
                               const std::vector<std::uint8_t>& labels,
                               Material target, Material background) {
  double best = 0.0;
  for (int b = 0; b < cube.bands(); ++b) {
    best = std::max(best, pair_contrast(extract_band(cube, b), labels, target,
                                        background));
  }
  return best;
}

double pair_contrast(const std::vector<float>& plane,
                     const std::vector<std::uint8_t>& labels, Material target,
                     Material background) {
  RIF_CHECK(plane.size() == labels.size());
  TwoClass tc;
  for (std::size_t i = 0; i < plane.size(); ++i) {
    if (labels[i] == static_cast<std::uint8_t>(target)) {
      tc.add(plane[i], true);
    } else if (labels[i] == static_cast<std::uint8_t>(background)) {
      tc.add(plane[i], false);
    }
  }
  return tc.contrast();
}

double best_band_contrast(const ImageCube& cube,
                          const std::vector<std::uint8_t>& labels,
                          Material target) {
  double best = 0.0;
  for (int b = 0; b < cube.bands(); ++b) {
    best = std::max(best, class_contrast(extract_band(cube, b), labels, target));
  }
  return best;
}

double band_correlation(const ImageCube& cube, int band_a, int band_b) {
  RIF_CHECK(band_a >= 0 && band_a < cube.bands());
  RIF_CHECK(band_b >= 0 && band_b < cube.bands());
  double sa = 0, sb = 0, saa = 0, sbb = 0, sab = 0;
  const auto n = static_cast<double>(cube.pixel_count());
  for (std::int64_t p = 0; p < cube.pixel_count(); ++p) {
    const auto px = cube.pixel(p);
    const double a = px[band_a];
    const double b = px[band_b];
    sa += a;
    sb += b;
    saa += a * a;
    sbb += b * b;
    sab += a * b;
  }
  const double cov = sab / n - (sa / n) * (sb / n);
  const double va = saa / n - (sa / n) * (sa / n);
  const double vb = sbb / n - (sb / n) * (sb / n);
  const double denom = std::sqrt(std::max(va, 0.0) * std::max(vb, 0.0));
  return denom > 1e-12 ? cov / denom : 0.0;
}

}  // namespace rif::hsi
