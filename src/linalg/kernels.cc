#include "linalg/kernels.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "linalg/kernels_table.h"
#include "support/log.h"

// Compile-time fallback tier. RIF_DISABLE_SIMD (a CMake option) forces the
// scalar reference implementations everywhere; otherwise the widest ISA
// the compiler was asked to target is compiled INTO THIS TU as the
// fallback the runtime dispatcher uses when no dedicated tier TU matches
// the host (runtime dispatch normally wins — see the tier selection
// below). SSE2 is the x86-64 baseline; 64-bit ARM gets NEON (32-bit NEON
// has no double lanes, so it stays scalar — accumulation is in double
// everywhere, matching the seed's numerics).
#if !defined(RIF_DISABLE_SIMD) && defined(__AVX2__)
#define RIF_KERNELS_AVX2 1
#define RIF_KERNELS_SIMD 1
#define RIF_KERNELS_TIER_NAME "avx2"
#elif !defined(RIF_DISABLE_SIMD) && \
    (defined(__SSE2__) || defined(__x86_64__) || defined(_M_X64))
#define RIF_KERNELS_SSE2 1
#define RIF_KERNELS_SIMD 1
#define RIF_KERNELS_TIER_NAME "sse2"
#elif !defined(RIF_DISABLE_SIMD) && defined(__aarch64__) && \
    defined(__ARM_NEON)
#define RIF_KERNELS_NEON 1
#define RIF_KERNELS_SIMD 1
#define RIF_KERNELS_TIER_NAME "neon"
#endif

#if defined(RIF_KERNELS_AVX2) || defined(RIF_KERNELS_SSE2)
#include <immintrin.h>
#elif defined(RIF_KERNELS_NEON)
#include <arm_neon.h>
#endif

#if defined(__aarch64__) && defined(__linux__)
#include <sys/auxv.h>
#if __has_include(<asm/hwcap.h>)
#include <asm/hwcap.h>
#endif
#endif

namespace rif::linalg::kernels {

// --- scalar reference implementations ----------------------------------------

namespace scalar {

double dot(const float* x, const float* y, int n) {
  double acc = 0.0;
  for (int i = 0; i < n; ++i) {
    acc += static_cast<double>(x[i]) * static_cast<double>(y[i]);
  }
  return acc;
}

double dot_df(const double* x, const float* y, int n) {
  double acc = 0.0;
  for (int i = 0; i < n; ++i) acc += x[i] * static_cast<double>(y[i]);
  return acc;
}

void dot_norm(const float* x, const float* y, int n, double* dot, double* nx2,
              double* ny2) {
  double d = 0.0, nx = 0.0, ny = 0.0;
  for (int i = 0; i < n; ++i) {
    const double xi = x[i];
    const double yi = y[i];
    d += xi * yi;
    nx += xi * xi;
    ny += yi * yi;
  }
  *dot = d;
  *nx2 = nx;
  *ny2 = ny;
}

void dot8(const float* pack, const float* pixel, int bands, double out[8]) {
  for (int k = 0; k < kScreenLanes; ++k) {
    double acc = 0.0;
    for (int b = 0; b < bands; ++b) {
      acc += static_cast<double>(pack[b * kScreenLanes + k]) *
             static_cast<double>(pixel[b]);
    }
    out[k] = acc;
  }
}

void rank1_update(double* upper, const double* c, int dims, double sign) {
  std::size_t idx = 0;
  for (int i = 0; i < dims; ++i) {
    const double ci = sign * c[i];
    for (int j = i; j < dims; ++j) upper[idx++] += ci * c[j];
  }
}

void rank_k_update(double* upper, const double* cols, int dims, int rows) {
  std::size_t idx = 0;
  for (int i = 0; i < dims; ++i) {
    const double* ci = cols + static_cast<std::size_t>(i) * rows;
    for (int j = i; j < dims; ++j) {
      const double* cj = cols + static_cast<std::size_t>(j) * rows;
      double acc = 0.0;
      for (int r = 0; r < rows; ++r) acc += ci[r] * cj[r];
      upper[idx++] += acc;
    }
  }
}

void project(const double* t, int comps, int bands, const double* bias,
             const float* pixel, float* out) {
  for (int c = 0; c < comps; ++c) {
    out[c] =
        static_cast<float>(dot_df(t + static_cast<std::size_t>(c) * bands,
                                  pixel, bands) -
                           bias[c]);
  }
}

}  // namespace scalar

// --- compile-time fallback tier ----------------------------------------------

#if defined(RIF_KERNELS_SIMD)
namespace {
namespace compiled_impl {
#include "linalg/kernels_simd.inc"
}  // namespace compiled_impl
}  // namespace
#endif

// --- runtime tier selection --------------------------------------------------

namespace {

const KernelTable& scalar_tbl() {
  static const KernelTable table = {
      "scalar",          &scalar::dot,           &scalar::dot_df,
      &scalar::dot_norm, &scalar::dot8,          &scalar::rank1_update,
      &scalar::rank_k_update,                    &scalar::project};
  return table;
}

/// The tier this TU's compile flags selected (scalar when none).
const KernelTable& compiled_tbl() {
#if defined(RIF_KERNELS_SIMD)
  return compiled_impl::kTierTable;
#else
  return scalar_tbl();
#endif
}

/// Does THIS host's CPU support the named tier's ISA? cpuid on x86 (via
/// the compiler's cached cpu model), HWCAP on Linux/aarch64 (Advanced
/// SIMD is architecturally mandatory there, so the auxval check is a
/// formality that also covers exotic kernels).
bool cpu_supports(const char* name) {
  if (std::strcmp(name, "scalar") == 0) return true;
#if (defined(__x86_64__) || defined(_M_X64)) && \
    (defined(__GNUC__) || defined(__clang__))
  if (std::strcmp(name, "avx2") == 0) {
    __builtin_cpu_init();
    return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  }
  if (std::strcmp(name, "sse2") == 0) return true;  // x86-64 baseline
#endif
#if defined(__aarch64__)
  if (std::strcmp(name, "neon") == 0) {
#if defined(__linux__) && defined(HWCAP_ASIMD)
    return (getauxval(AT_HWCAP) & HWCAP_ASIMD) != 0;
#else
    return true;  // Advanced SIMD is mandatory on AArch64
#endif
  }
#endif
  return false;
}

struct TierDef {
  const char* name;
  const KernelTable* (*get)();
};

/// Dedicated tier TUs, widest first.
constexpr TierDef kTiers[] = {
    {"avx2", &avx2_table},
    {"sse2", &sse2_table},
    {"neon", &neon_table},
};

/// Resolve a tier name to a runnable table, or nullptr. Checks the
/// dedicated TUs first, then the compile-time fallback (which covers both
/// "scalar" and any exotic compiled tier), so every name available_
/// backends() lists resolves here.
const KernelTable* find_tier(const char* name) {
  for (const TierDef& tier : kTiers) {
    if (std::strcmp(name, tier.name) != 0) continue;
    const KernelTable* table = tier.get();
    if (table != nullptr && cpu_supports(tier.name)) return table;
    return nullptr;  // tier known but absent/unsupported here
  }
  if (std::strcmp(name, "scalar") == 0) return &scalar_tbl();
  if (std::strcmp(name, compiled_tbl().name) == 0) return &compiled_tbl();
  return nullptr;
}

/// Startup selection: RIF_SIMD override, else widest supported dedicated
/// tier, else the compile-time fallback.
const KernelTable* select_default() {
  if (const char* env = std::getenv("RIF_SIMD"); env != nullptr && *env) {
    if (const KernelTable* table = find_tier(env)) return table;
    RIF_LOG_WARN("kernels", "RIF_SIMD=" << env
                                        << " is not available in this "
                                           "binary on this CPU; falling "
                                           "back to runtime detection");
  }
  for (const TierDef& tier : kTiers) {
    const KernelTable* table = tier.get();
    if (table != nullptr && cpu_supports(tier.name)) return table;
  }
  return &compiled_tbl();
}

/// Active table. Lazily initialized on first kernel call; the benign
/// initialization race is harmless because every thread computes the same
/// answer (selection is a pure function of env + cpu + binary).
std::atomic<const KernelTable*> g_active{nullptr};

const KernelTable* active() {
  const KernelTable* table = g_active.load(std::memory_order_acquire);
  if (table == nullptr) {
    table = select_default();
    g_active.store(table, std::memory_order_release);
  }
  return table;
}

}  // namespace

const KernelTable& compiled_table() { return compiled_tbl(); }

const char* backend() { return active()->name; }

const char* compiled_backend() { return compiled_tbl().name; }

bool simd_enabled() { return std::strcmp(active()->name, "scalar") != 0; }

std::vector<std::string> available_backends() {
  std::vector<std::string> out;
  for (const TierDef& tier : kTiers) {
    if (tier.get() != nullptr && cpu_supports(tier.name)) {
      out.emplace_back(tier.name);
    }
  }
  const char* compiled = compiled_tbl().name;
  bool have_compiled = std::strcmp(compiled, "scalar") == 0;
  for (const std::string& name : out) have_compiled |= name == compiled;
  if (!have_compiled) out.emplace_back(compiled);
  out.emplace_back("scalar");
  return out;
}

bool set_backend(const char* name) {
  if (name == nullptr) return false;
  const KernelTable* table = find_tier(name);
  if (table == nullptr) return false;
  g_active.store(table, std::memory_order_release);
  return true;
}

const char* reset_backend() {
  const KernelTable* table = select_default();
  g_active.store(table, std::memory_order_release);
  return table->name;
}

// --- dispatched entry points -------------------------------------------------

double dot(const float* x, const float* y, int n) {
  return active()->dot(x, y, n);
}

double dot_df(const double* x, const float* y, int n) {
  return active()->dot_df(x, y, n);
}

void dot_norm(const float* x, const float* y, int n, double* dot, double* nx2,
              double* ny2) {
  active()->dot_norm(x, y, n, dot, nx2, ny2);
}

void dot8(const float* pack, const float* pixel, int bands, double out[8]) {
  active()->dot8(pack, pixel, bands, out);
}

void rank1_update(double* upper, const double* c, int dims, double sign) {
  active()->rank1_update(upper, c, dims, sign);
}

void rank_k_update(double* upper, const double* cols, int dims, int rows) {
  active()->rank_k_update(upper, cols, dims, rows);
}

void project(const double* t, int comps, int bands, const double* bias,
             const float* pixel, float* out) {
  active()->project(t, comps, bands, bias, pixel, out);
}

}  // namespace rif::linalg::kernels
