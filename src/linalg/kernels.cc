#include "linalg/kernels.h"

// Backend selection. RIF_DISABLE_SIMD (a CMake option) forces the scalar
// reference implementations; otherwise the widest ISA the compiler was
// asked to target wins. SSE2 is the x86-64 baseline, so x86 builds are
// always vectorized unless explicitly disabled; 64-bit ARM gets NEON
// (32-bit NEON has no double lanes, so it stays scalar — accumulation is
// in double everywhere, matching the seed's numerics).
#if !defined(RIF_DISABLE_SIMD) && defined(__AVX2__)
#define RIF_KERNELS_AVX2 1
#define RIF_KERNELS_SIMD 1
#elif !defined(RIF_DISABLE_SIMD) && \
    (defined(__SSE2__) || defined(__x86_64__) || defined(_M_X64))
#define RIF_KERNELS_SSE2 1
#define RIF_KERNELS_SIMD 1
#elif !defined(RIF_DISABLE_SIMD) && defined(__aarch64__) && \
    defined(__ARM_NEON)
#define RIF_KERNELS_NEON 1
#define RIF_KERNELS_SIMD 1
#endif

#if defined(RIF_KERNELS_AVX2) || defined(RIF_KERNELS_SSE2)
#include <immintrin.h>
#elif defined(RIF_KERNELS_NEON)
#include <arm_neon.h>
#endif

namespace rif::linalg::kernels {

const char* backend() {
#if defined(RIF_KERNELS_AVX2)
  return "avx2";
#elif defined(RIF_KERNELS_SSE2)
  return "sse2";
#elif defined(RIF_KERNELS_NEON)
  return "neon";
#else
  return "scalar";
#endif
}

bool simd_enabled() {
#if defined(RIF_KERNELS_SIMD)
  return true;
#else
  return false;
#endif
}

// --- scalar reference implementations ----------------------------------------

namespace scalar {

double dot(const float* x, const float* y, int n) {
  double acc = 0.0;
  for (int i = 0; i < n; ++i) {
    acc += static_cast<double>(x[i]) * static_cast<double>(y[i]);
  }
  return acc;
}

double dot_df(const double* x, const float* y, int n) {
  double acc = 0.0;
  for (int i = 0; i < n; ++i) acc += x[i] * static_cast<double>(y[i]);
  return acc;
}

void dot_norm(const float* x, const float* y, int n, double* dot, double* nx2,
              double* ny2) {
  double d = 0.0, nx = 0.0, ny = 0.0;
  for (int i = 0; i < n; ++i) {
    const double xi = x[i];
    const double yi = y[i];
    d += xi * yi;
    nx += xi * xi;
    ny += yi * yi;
  }
  *dot = d;
  *nx2 = nx;
  *ny2 = ny;
}

void dot8(const float* pack, const float* pixel, int bands, double out[8]) {
  for (int k = 0; k < kScreenLanes; ++k) {
    double acc = 0.0;
    for (int b = 0; b < bands; ++b) {
      acc += static_cast<double>(pack[b * kScreenLanes + k]) *
             static_cast<double>(pixel[b]);
    }
    out[k] = acc;
  }
}

void rank1_update(double* upper, const double* c, int dims, double sign) {
  std::size_t idx = 0;
  for (int i = 0; i < dims; ++i) {
    const double ci = sign * c[i];
    for (int j = i; j < dims; ++j) upper[idx++] += ci * c[j];
  }
}

void rank_k_update(double* upper, const double* cols, int dims, int rows) {
  std::size_t idx = 0;
  for (int i = 0; i < dims; ++i) {
    const double* ci = cols + static_cast<std::size_t>(i) * rows;
    for (int j = i; j < dims; ++j) {
      const double* cj = cols + static_cast<std::size_t>(j) * rows;
      double acc = 0.0;
      for (int r = 0; r < rows; ++r) acc += ci[r] * cj[r];
      upper[idx++] += acc;
    }
  }
}

void project(const double* t, int comps, int bands, const double* bias,
             const float* pixel, float* out) {
  for (int c = 0; c < comps; ++c) {
    out[c] =
        static_cast<float>(dot_df(t + static_cast<std::size_t>(c) * bands,
                                  pixel, bands) -
                           bias[c]);
  }
}

}  // namespace scalar

// --- SIMD backends -----------------------------------------------------------
//
// One set of kernels is written against a tiny vector-of-doubles
// abstraction (`vd`, kLanes doubles wide) so AVX2 (4 lanes), SSE2 (2) and
// NEON (2) share the identical loop structure; only the primitive ops
// differ per ISA.

#if defined(RIF_KERNELS_SIMD)

namespace {

#if defined(RIF_KERNELS_AVX2)

using vd = __m256d;
constexpr int kLanes = 4;

inline vd vd_zero() { return _mm256_setzero_pd(); }
inline vd vd_set1(double v) { return _mm256_set1_pd(v); }
inline vd vd_loadu(const double* p) { return _mm256_loadu_pd(p); }
inline void vd_storeu(double* p, vd v) { _mm256_storeu_pd(p, v); }
/// Load kLanes floats and widen to doubles.
inline vd vd_load_f(const float* p) {
  return _mm256_cvtps_pd(_mm_loadu_ps(p));
}
inline vd vd_add(vd a, vd b) { return _mm256_add_pd(a, b); }
inline vd vd_mul(vd a, vd b) { return _mm256_mul_pd(a, b); }
inline vd vd_fmadd(vd a, vd b, vd acc) {
#if defined(__FMA__)
  return _mm256_fmadd_pd(a, b, acc);
#else
  return _mm256_add_pd(_mm256_mul_pd(a, b), acc);
#endif
}
inline double vd_hsum(vd v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d s = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)));
}

#elif defined(RIF_KERNELS_SSE2)

using vd = __m128d;
constexpr int kLanes = 2;

inline vd vd_zero() { return _mm_setzero_pd(); }
inline vd vd_set1(double v) { return _mm_set1_pd(v); }
inline vd vd_loadu(const double* p) { return _mm_loadu_pd(p); }
inline void vd_storeu(double* p, vd v) { _mm_storeu_pd(p, v); }
inline vd vd_load_f(const float* p) {
  // Exactly two floats via the may_alias integer load: no over-read at
  // tails and no TBAA violation on float-typed data.
  return _mm_cvtps_pd(_mm_castsi128_ps(
      _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p))));
}
inline vd vd_add(vd a, vd b) { return _mm_add_pd(a, b); }
inline vd vd_mul(vd a, vd b) { return _mm_mul_pd(a, b); }
inline vd vd_fmadd(vd a, vd b, vd acc) {
  return _mm_add_pd(_mm_mul_pd(a, b), acc);
}
inline double vd_hsum(vd v) {
  return _mm_cvtsd_f64(_mm_add_sd(v, _mm_unpackhi_pd(v, v)));
}

#elif defined(RIF_KERNELS_NEON)

using vd = float64x2_t;
constexpr int kLanes = 2;

inline vd vd_zero() { return vdupq_n_f64(0.0); }
inline vd vd_set1(double v) { return vdupq_n_f64(v); }
inline vd vd_loadu(const double* p) { return vld1q_f64(p); }
inline void vd_storeu(double* p, vd v) { vst1q_f64(p, v); }
inline vd vd_load_f(const float* p) { return vcvt_f64_f32(vld1_f32(p)); }
inline vd vd_add(vd a, vd b) { return vaddq_f64(a, b); }
inline vd vd_mul(vd a, vd b) { return vmulq_f64(a, b); }
inline vd vd_fmadd(vd a, vd b, vd acc) { return vfmaq_f64(acc, a, b); }
inline double vd_hsum(vd v) { return vaddvq_f64(v); }

#endif

/// Accumulator vectors per dot kernel: 4 independent chains hide FMA
/// latency on every backend (16 floats/iter on AVX2, 8 on SSE2/NEON).
constexpr int kDotChains = 4;

double simd_dot(const float* x, const float* y, int n) {
  vd acc[kDotChains] = {vd_zero(), vd_zero(), vd_zero(), vd_zero()};
  int i = 0;
  for (; i + kDotChains * kLanes <= n; i += kDotChains * kLanes) {
    for (int k = 0; k < kDotChains; ++k) {
      acc[k] = vd_fmadd(vd_load_f(x + i + k * kLanes),
                        vd_load_f(y + i + k * kLanes), acc[k]);
    }
  }
  for (; i + kLanes <= n; i += kLanes) {
    acc[0] = vd_fmadd(vd_load_f(x + i), vd_load_f(y + i), acc[0]);
  }
  double sum =
      vd_hsum(vd_add(vd_add(acc[0], acc[1]), vd_add(acc[2], acc[3])));
  for (; i < n; ++i) {
    sum += static_cast<double>(x[i]) * static_cast<double>(y[i]);
  }
  return sum;
}

double simd_dot_df(const double* x, const float* y, int n) {
  vd acc[kDotChains] = {vd_zero(), vd_zero(), vd_zero(), vd_zero()};
  int i = 0;
  for (; i + kDotChains * kLanes <= n; i += kDotChains * kLanes) {
    for (int k = 0; k < kDotChains; ++k) {
      acc[k] = vd_fmadd(vd_loadu(x + i + k * kLanes),
                        vd_load_f(y + i + k * kLanes), acc[k]);
    }
  }
  for (; i + kLanes <= n; i += kLanes) {
    acc[0] = vd_fmadd(vd_loadu(x + i), vd_load_f(y + i), acc[0]);
  }
  double sum =
      vd_hsum(vd_add(vd_add(acc[0], acc[1]), vd_add(acc[2], acc[3])));
  for (; i < n; ++i) sum += x[i] * static_cast<double>(y[i]);
  return sum;
}

void simd_dot_norm(const float* x, const float* y, int n, double* dot,
                   double* nx2, double* ny2) {
  vd d0 = vd_zero(), d1 = vd_zero();
  vd x0 = vd_zero(), x1 = vd_zero();
  vd y0 = vd_zero(), y1 = vd_zero();
  int i = 0;
  for (; i + 2 * kLanes <= n; i += 2 * kLanes) {
    const vd xa = vd_load_f(x + i);
    const vd xb = vd_load_f(x + i + kLanes);
    const vd ya = vd_load_f(y + i);
    const vd yb = vd_load_f(y + i + kLanes);
    d0 = vd_fmadd(xa, ya, d0);
    d1 = vd_fmadd(xb, yb, d1);
    x0 = vd_fmadd(xa, xa, x0);
    x1 = vd_fmadd(xb, xb, x1);
    y0 = vd_fmadd(ya, ya, y0);
    y1 = vd_fmadd(yb, yb, y1);
  }
  double d = vd_hsum(vd_add(d0, d1));
  double nx = vd_hsum(vd_add(x0, x1));
  double ny = vd_hsum(vd_add(y0, y1));
  for (; i < n; ++i) {
    const double xi = x[i];
    const double yi = y[i];
    d += xi * yi;
    nx += xi * xi;
    ny += yi * yi;
  }
  *dot = d;
  *nx2 = nx;
  *ny2 = ny;
}

void simd_dot8(const float* pack, const float* pixel, int bands,
               double out[8]) {
  // The pack gives one band of all 8 members as 8 contiguous floats, so a
  // broadcast candidate value feeds 8 fused dot products at once. Two
  // accumulator sets (even/odd bands) hide the FMA latency chain.
  constexpr int kVecs = kScreenLanes / kLanes;
  vd acc0[kVecs];
  vd acc1[kVecs];
  for (int k = 0; k < kVecs; ++k) {
    acc0[k] = vd_zero();
    acc1[k] = vd_zero();
  }
  int b = 0;
  for (; b + 2 <= bands; b += 2) {
    const float* row0 = pack + static_cast<std::size_t>(b) * kScreenLanes;
    const float* row1 = row0 + kScreenLanes;
    const vd p0 = vd_set1(static_cast<double>(pixel[b]));
    const vd p1 = vd_set1(static_cast<double>(pixel[b + 1]));
    for (int k = 0; k < kVecs; ++k) {
      acc0[k] = vd_fmadd(vd_load_f(row0 + k * kLanes), p0, acc0[k]);
      acc1[k] = vd_fmadd(vd_load_f(row1 + k * kLanes), p1, acc1[k]);
    }
  }
  for (; b < bands; ++b) {
    const float* row = pack + static_cast<std::size_t>(b) * kScreenLanes;
    const vd p = vd_set1(static_cast<double>(pixel[b]));
    for (int k = 0; k < kVecs; ++k) {
      acc0[k] = vd_fmadd(vd_load_f(row + k * kLanes), p, acc0[k]);
    }
  }
  for (int k = 0; k < kVecs; ++k) {
    vd_storeu(out + k * kLanes, vd_add(acc0[k], acc1[k]));
  }
}

void simd_rank1_update(double* upper, const double* c, int dims,
                       double sign) {
  std::size_t idx = 0;
  for (int i = 0; i < dims; ++i) {
    double* row = upper + idx;
    const double* cj = c + i;
    const int len = dims - i;
    const vd ci = vd_set1(sign * c[i]);
    int k = 0;
    for (; k + kLanes <= len; k += kLanes) {
      vd_storeu(row + k,
                vd_fmadd(ci, vd_loadu(cj + k), vd_loadu(row + k)));
    }
    const double cis = sign * c[i];
    for (; k < len; ++k) row[k] += cis * cj[k];
    idx += static_cast<std::size_t>(len);
  }
}

void simd_rank_k_update(double* upper, const double* cols, int dims,
                        int rows) {
  // Register-blocked: each vector step covers kLanes pixels of the centered
  // block, and four triangle columns share every load of column i — the
  // written-to packed triangle is touched once per (i, j) entry while the
  // block data streams from L1.
  const auto col = [cols, rows](int j) {
    return cols + static_cast<std::size_t>(j) * rows;
  };
  std::size_t idx = 0;
  for (int i = 0; i < dims; ++i) {
    const double* ci = col(i);
    int j = i;
    for (; j + 4 <= dims; j += 4) {
      const double* c0 = col(j);
      const double* c1 = col(j + 1);
      const double* c2 = col(j + 2);
      const double* c3 = col(j + 3);
      vd a0 = vd_zero(), a1 = vd_zero(), a2 = vd_zero(), a3 = vd_zero();
      int r = 0;
      for (; r + kLanes <= rows; r += kLanes) {
        const vd v = vd_loadu(ci + r);
        a0 = vd_fmadd(v, vd_loadu(c0 + r), a0);
        a1 = vd_fmadd(v, vd_loadu(c1 + r), a1);
        a2 = vd_fmadd(v, vd_loadu(c2 + r), a2);
        a3 = vd_fmadd(v, vd_loadu(c3 + r), a3);
      }
      double t0 = vd_hsum(a0), t1 = vd_hsum(a1);
      double t2 = vd_hsum(a2), t3 = vd_hsum(a3);
      for (; r < rows; ++r) {
        const double v = ci[r];
        t0 += v * c0[r];
        t1 += v * c1[r];
        t2 += v * c2[r];
        t3 += v * c3[r];
      }
      upper[idx] += t0;
      upper[idx + 1] += t1;
      upper[idx + 2] += t2;
      upper[idx + 3] += t3;
      idx += 4;
    }
    for (; j < dims; ++j) {
      const double* cj = col(j);
      vd a = vd_zero();
      int r = 0;
      for (; r + kLanes <= rows; r += kLanes) {
        a = vd_fmadd(vd_loadu(ci + r), vd_loadu(cj + r), a);
      }
      double t = vd_hsum(a);
      for (; r < rows; ++r) t += ci[r] * cj[r];
      upper[idx++] += t;
    }
  }
}

/// R transform rows share one widening of the pixel per vector step.
template <int R>
void project_rows(const double* t, int bands, const double* bias,
                  const float* pixel, float* out) {
  vd acc[R];
  for (int c = 0; c < R; ++c) acc[c] = vd_zero();
  const double* rows[R];
  for (int c = 0; c < R; ++c) {
    rows[c] = t + static_cast<std::size_t>(c) * bands;
  }
  int b = 0;
  for (; b + kLanes <= bands; b += kLanes) {
    const vd px = vd_load_f(pixel + b);
    for (int c = 0; c < R; ++c) {
      acc[c] = vd_fmadd(vd_loadu(rows[c] + b), px, acc[c]);
    }
  }
  double sums[R];
  for (int c = 0; c < R; ++c) sums[c] = vd_hsum(acc[c]);
  for (; b < bands; ++b) {
    const double px = pixel[b];
    for (int c = 0; c < R; ++c) sums[c] += rows[c][b] * px;
  }
  for (int c = 0; c < R; ++c) {
    out[c] = static_cast<float>(sums[c] - bias[c]);
  }
}

void simd_project(const double* t, int comps, int bands, const double* bias,
                  const float* pixel, float* out) {
  int c = 0;
  for (; c + 3 <= comps; c += 3) {
    project_rows<3>(t + static_cast<std::size_t>(c) * bands, bands, bias + c,
                    pixel, out + c);
  }
  if (comps - c == 2) {
    project_rows<2>(t + static_cast<std::size_t>(c) * bands, bands, bias + c,
                    pixel, out + c);
  } else if (comps - c == 1) {
    project_rows<1>(t + static_cast<std::size_t>(c) * bands, bands, bias + c,
                    pixel, out + c);
  }
}

}  // namespace

#endif  // RIF_KERNELS_SIMD

// --- dispatched entry points -------------------------------------------------

double dot(const float* x, const float* y, int n) {
#if defined(RIF_KERNELS_SIMD)
  return simd_dot(x, y, n);
#else
  return scalar::dot(x, y, n);
#endif
}

double dot_df(const double* x, const float* y, int n) {
#if defined(RIF_KERNELS_SIMD)
  return simd_dot_df(x, y, n);
#else
  return scalar::dot_df(x, y, n);
#endif
}

void dot_norm(const float* x, const float* y, int n, double* dot, double* nx2,
              double* ny2) {
#if defined(RIF_KERNELS_SIMD)
  simd_dot_norm(x, y, n, dot, nx2, ny2);
#else
  scalar::dot_norm(x, y, n, dot, nx2, ny2);
#endif
}

void dot8(const float* pack, const float* pixel, int bands, double out[8]) {
#if defined(RIF_KERNELS_SIMD)
  simd_dot8(pack, pixel, bands, out);
#else
  scalar::dot8(pack, pixel, bands, out);
#endif
}

void rank1_update(double* upper, const double* c, int dims, double sign) {
#if defined(RIF_KERNELS_SIMD)
  simd_rank1_update(upper, c, dims, sign);
#else
  scalar::rank1_update(upper, c, dims, sign);
#endif
}

void rank_k_update(double* upper, const double* cols, int dims, int rows) {
#if defined(RIF_KERNELS_SIMD)
  simd_rank_k_update(upper, cols, dims, rows);
#else
  scalar::rank_k_update(upper, cols, dims, rows);
#endif
}

void project(const double* t, int comps, int bands, const double* bias,
             const float* pixel, float* out) {
#if defined(RIF_KERNELS_SIMD)
  simd_project(t, comps, bands, bias, pixel, out);
#else
  scalar::project(t, comps, bands, bias, pixel, out);
#endif
}

}  // namespace rif::linalg::kernels
