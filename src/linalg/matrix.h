// Dense row-major matrix of doubles.
//
// Sized for the paper's needs: covariance matrices of up to a few hundred
// spectral bands and their eigen-decomposition. Not a general BLAS — the
// hot per-pixel paths in rif_core use raw float kernels (kernels.h); this
// class is for the statistics and eigenvector plumbing where clarity wins.
#pragma once

#include <initializer_list>
#include <vector>

#include "support/check.h"

namespace rif::linalg {

class Matrix {
 public:
  Matrix() = default;
  Matrix(int rows, int cols, double fill = 0.0)
      : rows_(rows), cols_(cols),
        data_(static_cast<std::size_t>(rows) * cols, fill) {
    RIF_CHECK(rows >= 0 && cols >= 0);
  }

  /// Row-major brace construction: Matrix({{1,2},{3,4}}).
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix identity(int n);

  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] int cols() const { return cols_; }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  double& operator()(int r, int c) {
    RIF_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<std::size_t>(r) * cols_ + c];
  }
  double operator()(int r, int c) const {
    RIF_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<std::size_t>(r) * cols_ + c];
  }

  [[nodiscard]] const double* data() const { return data_.data(); }
  [[nodiscard]] double* data() { return data_.data(); }
  [[nodiscard]] const double* row(int r) const {
    RIF_DCHECK(r >= 0 && r < rows_);
    return data_.data() + static_cast<std::size_t>(r) * cols_;
  }

  [[nodiscard]] Matrix transposed() const;
  [[nodiscard]] Matrix operator*(const Matrix& rhs) const;
  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator*=(double s);
  [[nodiscard]] Matrix operator-(const Matrix& rhs) const;

  /// y = M x for a dense vector.
  [[nodiscard]] std::vector<double> apply(const std::vector<double>& x) const;

  [[nodiscard]] bool symmetric(double tol = 1e-9) const;
  [[nodiscard]] double max_abs() const;
  [[nodiscard]] double frobenius_norm() const;
  /// Largest |a_ij|, i != j — the Jacobi convergence measure.
  [[nodiscard]] double max_off_diagonal() const;

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<double> data_;
};

/// Relative Frobenius distance, for approximate-equality tests.
double relative_difference(const Matrix& a, const Matrix& b);

}  // namespace rif::linalg
