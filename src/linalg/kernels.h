// Portable SIMD kernel layer for the fusion hot paths.
//
// Every arithmetic inner loop of the pipeline — spectral-angle dot
// products, the one-candidate-vs-8-members screening kernel, the packed
// upper-triangle moment updates, and the truncated PCT projection — lives
// here, in exactly two forms:
//
//   * `kernels::scalar::*` — plain reference implementations, always
//     compiled. These are the oracle for the equivalence tests and the
//     code the dispatched entry points fall back to.
//   * `kernels::*` — the dispatched entry points. They indirect through a
//     per-tier function table selected at RUNTIME: each SIMD tier (AVX2 /
//     SSE2 / NEON) is compiled into its own translation unit with pinned
//     ISA flags, and startup picks the widest tier the host CPU supports
//     via cpuid (x86) / HWCAP (aarch64) — so a portable
//     (RIF_NATIVE_ARCH=OFF) binary still hits the AVX2 fast path on an
//     AVX2 host. Selection order: the `RIF_SIMD` environment override
//     (`scalar|sse2|avx2|neon`; ignored with a warning when the named tier
//     is absent or unsupported), then CPU detection best-first, then the
//     compile-time tier this TU was built for (the pre-runtime-dispatch
//     behavior, kept as the fallback for architectures with no dedicated
//     tier TU). `RIF_DISABLE_SIMD` builds compile no tier TUs at all and
//     always run scalar.
//
// Numerical contract: all kernels accumulate in double, like the seed
// scalar code, but SIMD variants reassociate the summation (lane-parallel
// partial sums, possibly FMA-contracted). Within ONE process every engine —
// sequential, two-pass parallel, fused, distributed, streamed — calls the
// same active table, so cross-engine bit-exactness guarantees (the
// `fuse_parallel` oracle contract) are preserved; ACROSS tiers (runtime or
// compile-time), results agree within the documented tolerance contract
// (composite bytes within one quantisation level — see
// tests/kernels_test.cc). Because tier TUs carry pinned ISA flags, the
// same tier produces byte-identical results whether the build was
// -march=native or portable.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace rif::linalg::kernels {

/// Members per SoA screening block (see UniqueSet's member-block pack):
/// blocks hold 8 members band-major — pack[band * 8 + lane] — so one
/// candidate screens against 8 members with simultaneous fused dot
/// products.
inline constexpr int kScreenLanes = 8;

/// ACTIVE tier of the dispatched kernels — the one runtime selection (env
/// override, cpuid/HWCAP, compile-time fallback) landed on:
/// "avx2" | "sse2" | "neon" | "scalar".
const char* backend();

/// True when the dispatched kernels are vectorized (backend != "scalar").
bool simd_enabled();

/// Tier the compile-time fallback path of this TU was built for — what
/// backend() used to mean before runtime dispatch.
const char* compiled_backend();

/// Tier names this binary can run on this CPU, widest first; always ends
/// with "scalar".
std::vector<std::string> available_backends();

/// Force a tier by name. Returns false — and leaves the active tier
/// unchanged — when the name is unknown, the tier is not compiled into
/// this binary, or the CPU lacks it. Not meant for concurrent use with
/// running engines (tests and startup only).
bool set_backend(const char* name);

/// Re-run startup selection (RIF_SIMD override, detection, fallback) and
/// return the resulting active tier name. Tests use this to exercise the
/// env override in-process.
const char* reset_backend();

// --- scalar reference implementations (always available) --------------------

namespace scalar {

/// Dot product of two float vectors, accumulated in double.
double dot(const float* x, const float* y, int n);

/// Dot product of a double vector with a float vector (projection rows).
double dot_df(const double* x, const float* y, int n);

/// Dot product plus both squared norms in one pass (spectral_angle).
void dot_norm(const float* x, const float* y, int n, double* dot, double* nx2,
              double* ny2);

/// One candidate against one band-major 8-member block:
/// out[k] = sum_b pack[b * 8 + k] * pixel[b] for k in [0, 8).
void dot8(const float* pack, const float* pixel, int bands, double out[8]);

/// Rank-1 update of a packed upper triangle (row-major, dims rows):
/// upper[i, j] += sign * c[i] * c[j] for j >= i.
void rank1_update(double* upper, const double* c, int dims, double sign);

/// Rank-k update of a packed upper triangle from a column-major centered
/// block `cols` (dims columns of length `rows` each, column i at
/// cols + i * rows): upper[i, j] += sum_r cols[i][r] * cols[j][r].
void rank_k_update(double* upper, const double* cols, int dims, int rows);

/// Truncated projection of one pixel: out[c] = t[c] . pixel - bias[c],
/// where t is row-major comps x bands (doubles) and bias[c] = t[c] . mean.
void project(const double* t, int comps, int bands, const double* bias,
             const float* pixel, float* out);

}  // namespace scalar

// --- dispatched entry points -------------------------------------------------

double dot(const float* x, const float* y, int n);
double dot_df(const double* x, const float* y, int n);
void dot_norm(const float* x, const float* y, int n, double* dot, double* nx2,
              double* ny2);
void dot8(const float* pack, const float* pixel, int bands, double out[8]);
void rank1_update(double* upper, const double* c, int dims, double sign);
void rank_k_update(double* upper, const double* cols, int dims, int rows);
void project(const double* t, int comps, int bands, const double* bias,
             const float* pixel, float* out);

}  // namespace rif::linalg::kernels
