// SSE2 tier of the runtime-dispatched kernel layer.
//
// SSE2 is the x86-64 baseline, so this tier exists on every x86-64 build
// and is the floor runtime dispatch can always stand on when cpuid says
// AVX2 is absent. Compiled with pinned -march=x86-64 (see CMakeLists.txt)
// so -march=native builds cannot silently upgrade its codegen and split
// its numerics from portable builds.
#include "linalg/kernels_table.h"

#if (defined(__x86_64__) || defined(_M_X64)) && !defined(RIF_DISABLE_SIMD)

#include <immintrin.h>

#include <cstddef>

#include "linalg/kernels.h"

#define RIF_KERNELS_SSE2 1
#define RIF_KERNELS_TIER_NAME "sse2"

namespace rif::linalg::kernels {
namespace {
#include "linalg/kernels_simd.inc"
}  // namespace

const KernelTable* sse2_table() { return &kTierTable; }

}  // namespace rif::linalg::kernels

#else  // foreign architecture or RIF_DISABLE_SIMD: tier absent

namespace rif::linalg::kernels {
const KernelTable* sse2_table() { return nullptr; }
}  // namespace rif::linalg::kernels

#endif
