// AVX2 tier of the runtime-dispatched kernel layer.
//
// Compiled with pinned flags (-march=x86-64 -mavx2 -mfma, see
// CMakeLists.txt) on every x86-64 build — including RIF_NATIVE_ARCH=OFF
// portable builds — so runtime cpuid dispatch can hand AVX2-capable hosts
// this tier no matter what the rest of the tree was compiled for, and the
// object code (hence every bit of the composite) is identical between
// portable and -march=native builds.
#include "linalg/kernels_table.h"

#if (defined(__x86_64__) || defined(_M_X64)) && !defined(RIF_DISABLE_SIMD)

#include <immintrin.h>

#include <cstddef>

#include "linalg/kernels.h"

#define RIF_KERNELS_AVX2 1
#define RIF_KERNELS_TIER_NAME "avx2"

namespace rif::linalg::kernels {
namespace {
#include "linalg/kernels_simd.inc"
}  // namespace

const KernelTable* avx2_table() { return &kTierTable; }

}  // namespace rif::linalg::kernels

#else  // foreign architecture or RIF_DISABLE_SIMD: tier absent

namespace rif::linalg::kernels {
const KernelTable* avx2_table() { return nullptr; }
}  // namespace rif::linalg::kernels

#endif
