// Symmetric eigen-decomposition via the cyclic Jacobi method.
//
// Step 6 of the paper's algorithm: "the eigenvectors of the covariance
// matrix are calculated and sorted according to their corresponding
// eigenvalues". The paper notes the O(n^3) cost is acceptable because n is
// the number of spectral bands (210), not the image size — the same holds
// here, and Jacobi has the robustness and simplicity appropriate for a
// dense symmetric positive semi-definite input.
#pragma once

#include <vector>

#include "linalg/matrix.h"

namespace rif::linalg {

struct EigenResult {
  /// Eigenvalues in descending order.
  std::vector<double> values;
  /// Column i of `vectors` is the unit eigenvector for values[i].
  Matrix vectors;
  /// Number of full Jacobi sweeps used.
  int sweeps = 0;
};

struct JacobiOptions {
  double tolerance = 1e-12;  ///< stop when max off-diagonal < tol * ||A||_F
  int max_sweeps = 100;
};

/// Decompose a symmetric matrix. RIF_CHECKs on non-square input; symmetry
/// is enforced by averaging a_ij and a_ji before iterating.
EigenResult jacobi_eigen(const Matrix& a, const JacobiOptions& opts = {});

/// Flop estimate for the decomposition of an n x n matrix, used by the
/// distributed cost model for the sequential step-6 term.
double jacobi_flops(int n, int sweeps = 8);

}  // namespace rif::linalg
