// Distributed-friendly statistics accumulators.
//
// Steps 3-5 of the paper compute a mean vector and a covariance matrix of
// the screened ("unique") pixel set, with the covariance *sums* computed
// concurrently by workers and averaged sequentially by the manager. These
// accumulators are the exact objects workers ship around: they merge by
// addition, so any partition of the pixel set gives the same result.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "linalg/matrix.h"

namespace rif::linalg {

/// Accumulates per-band sums for the mean vector (paper step 3).
class MeanAccumulator {
 public:
  explicit MeanAccumulator(int dims) : sums_(dims, 0.0) {}

  void add(std::span<const float> pixel);
  void merge(const MeanAccumulator& other);

  [[nodiscard]] std::vector<double> mean() const;
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] int dims() const { return static_cast<int>(sums_.size()); }

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  static MeanAccumulator decode(const std::vector<std::uint8_t>& bytes);

 private:
  std::vector<double> sums_;
  std::uint64_t count_ = 0;
};

/// Single-pass moment accumulator about a fixed provisional origin `m₀`:
///
///     S1 = Σ (x − m₀)          S2 = Σ (x − m₀)(x − m₀)ᵀ
///
/// Unlike CovarianceAccumulator (which needs the final mean up front and
/// therefore forces a second pass over the pixel set), this accumulates both
/// moments in ONE sweep and corrects against the true mean afterwards:
///
///     μ = m₀ + S1/K,   Σ (x−μ)(x−μ)ᵀ = S2 − S1·S1ᵀ/K.
///
/// All accumulators that will be merged must share the same origin; any
/// representative pixel (e.g. the cube's first) keeps the shift small, so the
/// correction stays well-conditioned in doubles. This is the engine behind
/// the fused screen+moments pass of `fuse_parallel_fused`.
class MomentAccumulator {
 public:
  MomentAccumulator(int dims, std::vector<double> origin);

  void add(std::span<const float> pixel) { add_block(pixel.data(), 1); }
  /// Cache-blocked bulk add of `rows` contiguous dims-length vectors: the
  /// packed triangle is walked once per *block* instead of once per pixel
  /// (see the kernel in stats.cc).
  void add_block(const float* pixels, int rows);
  /// Retract one previously added vector (used when a tile member is dropped
  /// during the unique-set merge).
  void remove(std::span<const float> pixel);
  /// Sum another accumulator in; both must share the same origin.
  void merge(const MomentAccumulator& other);

  [[nodiscard]] std::vector<double> mean() const;
  /// The mean-corrected, averaged covariance matrix (see class comment).
  [[nodiscard]] Matrix covariance() const;
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] int dims() const { return dims_; }
  [[nodiscard]] const std::vector<double>& origin() const { return origin_; }

 private:
  int dims_;
  std::vector<double> origin_;
  std::vector<double> s1_;     // Σ (x − m₀)
  std::vector<double> upper_;  // Σ (x − m₀)(x − m₀)ᵀ, packed upper, row-major
  std::uint64_t count_ = 0;
};

/// Accumulates the covariance sum  Σ (x−m)(x−m)ᵀ  (paper step 4).
/// Only the upper triangle is stored; covariance() mirrors it.
class CovarianceAccumulator {
 public:
  /// Rows per add_block chunk when an engine walks a contiguous member
  /// range. Shared by the sequential, shared-memory and distributed paths
  /// so identical ranges produce bit-identical partial sums.
  static constexpr int kBlockRows = 32;

  CovarianceAccumulator(int dims, std::vector<double> mean);

  void add(std::span<const float> pixel) { add_block(pixel.data(), 1); }
  /// Bulk add of `rows` contiguous dims-length vectors through the
  /// register-blocked rank-k kernel (one packed-triangle sweep per block,
  /// 4 pixels per vector step) — the hot path of the two-pass engines.
  void add_block(const float* pixels, int rows);
  void merge(const CovarianceAccumulator& other);

  /// The averaged covariance matrix (paper step 5): sum / count.
  [[nodiscard]] Matrix covariance() const;
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] int dims() const { return dims_; }
  [[nodiscard]] const std::vector<double>& mean() const { return mean_; }

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  static CovarianceAccumulator decode(const std::vector<std::uint8_t>& bytes);
  /// Non-aborting decode for payloads off the socket plane.
  static std::optional<CovarianceAccumulator> try_decode(
      const std::vector<std::uint8_t>& bytes);

  /// Flops charged per added pixel of dimension n (upper triangle MACs).
  static double flops_per_pixel(int n) { return 0.5 * n * (n + 3.0); }

 private:
  int dims_;
  std::vector<double> mean_;
  std::vector<double> upper_;  // packed upper triangle, row-major
  std::uint64_t count_ = 0;
};

}  // namespace rif::linalg
