// Distributed-friendly statistics accumulators.
//
// Steps 3-5 of the paper compute a mean vector and a covariance matrix of
// the screened ("unique") pixel set, with the covariance *sums* computed
// concurrently by workers and averaged sequentially by the manager. These
// accumulators are the exact objects workers ship around: they merge by
// addition, so any partition of the pixel set gives the same result.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "linalg/matrix.h"

namespace rif::linalg {

/// Accumulates per-band sums for the mean vector (paper step 3).
class MeanAccumulator {
 public:
  explicit MeanAccumulator(int dims) : sums_(dims, 0.0) {}

  void add(std::span<const float> pixel);
  void merge(const MeanAccumulator& other);

  [[nodiscard]] std::vector<double> mean() const;
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] int dims() const { return static_cast<int>(sums_.size()); }

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  static MeanAccumulator decode(const std::vector<std::uint8_t>& bytes);

 private:
  std::vector<double> sums_;
  std::uint64_t count_ = 0;
};

/// Accumulates the covariance sum  Σ (x−m)(x−m)ᵀ  (paper step 4).
/// Only the upper triangle is stored; covariance() mirrors it.
class CovarianceAccumulator {
 public:
  CovarianceAccumulator(int dims, std::vector<double> mean);

  void add(std::span<const float> pixel);
  void merge(const CovarianceAccumulator& other);

  /// The averaged covariance matrix (paper step 5): sum / count.
  [[nodiscard]] Matrix covariance() const;
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] int dims() const { return dims_; }
  [[nodiscard]] const std::vector<double>& mean() const { return mean_; }

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  static CovarianceAccumulator decode(const std::vector<std::uint8_t>& bytes);

  /// Flops charged per added pixel of dimension n (upper triangle MACs).
  static double flops_per_pixel(int n) { return 0.5 * n * (n + 3.0); }

 private:
  int dims_;
  std::vector<double> mean_;
  std::vector<double> upper_;  // packed upper triangle, row-major
  std::uint64_t count_ = 0;
};

}  // namespace rif::linalg
