#include "linalg/jacobi_eig.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace rif::linalg {

EigenResult jacobi_eigen(const Matrix& input, const JacobiOptions& opts) {
  RIF_CHECK_MSG(input.rows() == input.cols(), "jacobi needs a square matrix");
  const int n = input.rows();

  // Symmetrize defensively: covariance matrices assembled from distributed
  // partial sums can carry rounding asymmetry.
  Matrix a(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) a(i, j) = 0.5 * (input(i, j) + input(j, i));
  }

  Matrix v = Matrix::identity(n);
  const double stop = opts.tolerance * std::max(a.frobenius_norm(), 1e-300);

  int sweep = 0;
  for (; sweep < opts.max_sweeps; ++sweep) {
    if (a.max_off_diagonal() <= stop) break;
    for (int p = 0; p < n - 1; ++p) {
      for (int q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (std::abs(apq) <= stop * 1e-3) continue;
        const double app = a(p, p);
        const double aqq = a(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        // Stable tangent of the rotation angle.
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (int k = 0; k < n; ++k) {
          const double akp = a(k, p);
          const double akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (int k = 0; k < n; ++k) {
          const double apk = a(p, k);
          const double aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        for (int k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort eigenpairs by descending eigenvalue so that "high spectral content
  // is forced into the front components" (paper, step 6).
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&a](int i, int j) { return a(i, i) > a(j, j); });

  EigenResult result;
  result.values.resize(n);
  result.vectors = Matrix(n, n);
  result.sweeps = sweep;
  for (int out = 0; out < n; ++out) {
    const int src = order[out];
    result.values[out] = a(src, src);
    // Fix the sign convention: largest-magnitude element positive, so that
    // results are deterministic across run orders.
    double maxmag = 0.0;
    double sign = 1.0;
    for (int k = 0; k < n; ++k) {
      if (std::abs(v(k, src)) > maxmag) {
        maxmag = std::abs(v(k, src));
        sign = v(k, src) >= 0.0 ? 1.0 : -1.0;
      }
    }
    for (int k = 0; k < n; ++k) result.vectors(k, out) = sign * v(k, src);
  }
  return result;
}

double jacobi_flops(int n, int sweeps) {
  // Each sweep rotates n(n-1)/2 pairs; each rotation touches 6n elements
  // with a multiply-add each (~12n flops) plus constant work.
  const double pairs = 0.5 * n * (n - 1);
  return static_cast<double>(sweeps) * pairs * (12.0 * n + 30.0);
}

}  // namespace rif::linalg
