#include "linalg/matrix.h"

#include <algorithm>
#include <cmath>

namespace rif::linalg {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = static_cast<int>(rows.size());
  cols_ = rows_ > 0 ? static_cast<int>(rows.begin()->size()) : 0;
  data_.reserve(static_cast<std::size_t>(rows_) * cols_);
  for (const auto& r : rows) {
    RIF_CHECK_MSG(static_cast<int>(r.size()) == cols_, "ragged initializer");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(int n) {
  Matrix m(n, n);
  for (int i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  RIF_CHECK_MSG(cols_ == rhs.rows_, "dimension mismatch in matrix product");
  Matrix out(rows_, rhs.cols_);
  for (int i = 0; i < rows_; ++i) {
    for (int k = 0; k < cols_; ++k) {
      const double a = (*this)(i, k);
      if (a == 0.0) continue;
      const double* rrow = rhs.row(k);
      double* orow = out.data() + static_cast<std::size_t>(i) * out.cols_;
      for (int j = 0; j < rhs.cols_; ++j) orow[j] += a * rrow[j];
    }
  }
  return out;
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  RIF_CHECK(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  RIF_CHECK(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] -= rhs.data_[i];
  return out;
}

std::vector<double> Matrix::apply(const std::vector<double>& x) const {
  RIF_CHECK(static_cast<int>(x.size()) == cols_);
  std::vector<double> y(rows_, 0.0);
  for (int r = 0; r < rows_; ++r) {
    const double* rw = row(r);
    double acc = 0.0;
    for (int c = 0; c < cols_; ++c) acc += rw[c] * x[c];
    y[r] = acc;
  }
  return y;
}

bool Matrix::symmetric(double tol) const {
  if (rows_ != cols_) return false;
  for (int r = 0; r < rows_; ++r) {
    for (int c = r + 1; c < cols_; ++c) {
      if (std::abs((*this)(r, c) - (*this)(c, r)) > tol) return false;
    }
  }
  return true;
}

double Matrix::max_abs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::abs(v));
  return m;
}

double Matrix::frobenius_norm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

double Matrix::max_off_diagonal() const {
  double m = 0.0;
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) {
      if (r != c) m = std::max(m, std::abs((*this)(r, c)));
    }
  }
  return m;
}

double relative_difference(const Matrix& a, const Matrix& b) {
  RIF_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  const double denom = std::max(a.frobenius_norm(), 1e-30);
  return (a - b).frobenius_norm() / denom;
}

}  // namespace rif::linalg
