#include "linalg/power_iteration.h"

#include <cmath>

#include "support/rng.h"

namespace rif::linalg {

namespace {

double normalize(std::vector<double>& v) {
  double norm2 = 0.0;
  for (const double x : v) norm2 += x * x;
  const double norm = std::sqrt(norm2);
  if (norm > 0.0) {
    for (double& x : v) x /= norm;
  }
  return norm;
}

/// v -= (v . u) u for unit u.
void deflate(std::vector<double>& v, const Matrix& vectors, int columns) {
  const int n = static_cast<int>(v.size());
  for (int c = 0; c < columns; ++c) {
    double dot = 0.0;
    for (int i = 0; i < n; ++i) dot += v[i] * vectors(i, c);
    for (int i = 0; i < n; ++i) v[i] -= dot * vectors(i, c);
  }
}

}  // namespace

PowerIterationResult power_eigen(const Matrix& a, int k,
                                 const PowerIterationOptions& opts) {
  RIF_CHECK(a.rows() == a.cols());
  const int n = a.rows();
  RIF_CHECK(k >= 1 && k <= n);

  PowerIterationResult result;
  result.vectors = Matrix(n, k);
  Rng rng(opts.seed);

  std::vector<double> v(n);
  std::vector<double> av(n);
  for (int pair = 0; pair < k; ++pair) {
    for (double& x : v) x = rng.uniform(-1.0, 1.0);
    deflate(v, result.vectors, pair);
    normalize(v);

    double lambda = 0.0;
    int iter = 0;
    for (; iter < opts.max_iterations; ++iter) {
      // av = A v, projected away from the converged subspace.
      for (int i = 0; i < n; ++i) {
        const double* row = a.row(i);
        double acc = 0.0;
        for (int j = 0; j < n; ++j) acc += row[j] * v[j];
        av[i] = acc;
      }
      deflate(av, result.vectors, pair);
      const double new_lambda = normalize(av);
      std::swap(v, av);
      if (iter > 0 &&
          std::abs(new_lambda - lambda) <=
              opts.tolerance * std::max(std::abs(new_lambda), 1e-300)) {
        lambda = new_lambda;
        ++iter;
        break;
      }
      lambda = new_lambda;
    }
    result.values.push_back(lambda);
    result.iterations.push_back(iter);
    for (int i = 0; i < n; ++i) result.vectors(i, pair) = v[i];
  }

  // Fix sign convention to match jacobi_eigen (largest component positive).
  for (int c = 0; c < k; ++c) {
    double maxmag = 0.0;
    double sign = 1.0;
    for (int i = 0; i < n; ++i) {
      if (std::abs(result.vectors(i, c)) > maxmag) {
        maxmag = std::abs(result.vectors(i, c));
        sign = result.vectors(i, c) >= 0.0 ? 1.0 : -1.0;
      }
    }
    for (int i = 0; i < n; ++i) result.vectors(i, c) *= sign;
  }
  return result;
}

double power_eigen_flops(int n, int k, int avg_iterations) {
  // Each iteration: one mat-vec (2n^2) + deflation (4nk) + normalize (3n).
  return static_cast<double>(k) * avg_iterations *
         (2.0 * n * n + 4.0 * n * k + 3.0 * n);
}

}  // namespace rif::linalg
