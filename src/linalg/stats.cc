#include "linalg/stats.h"

#include "linalg/kernels.h"
#include "support/serialize.h"

namespace rif::linalg {

namespace {

/// Center `rows` contiguous dims-length float vectors about `shift` into
/// column-major scratch (dims columns of length rows: entry (b, r) at
/// b * rows + r), accumulating per-band sums into `s1` when non-null. The
/// layout feeds the rank-k triangle kernel: each triangle entry is then a
/// dot of two CONTIGUOUS length-`rows` columns.
void center_block(const float* pixels, int rows, int dims,
                  const double* shift, double* scratch, double* s1) {
  for (int r = 0; r < rows; ++r) {
    const float* px = pixels + static_cast<std::size_t>(r) * dims;
    for (int b = 0; b < dims; ++b) {
      const double c = static_cast<double>(px[b]) - shift[b];
      scratch[static_cast<std::size_t>(b) * rows + r] = c;
      if (s1 != nullptr) s1[b] += c;
    }
  }
}

/// One packed-triangle sweep over a centered column-major block: rank-1
/// update for single pixels (contiguous writes), register-blocked rank-k
/// otherwise.
void triangle_update(double* upper, const double* scratch, int dims,
                     int rows) {
  if (rows == 1) {
    kernels::rank1_update(upper, scratch, dims, 1.0);
  } else {
    kernels::rank_k_update(upper, scratch, dims, rows);
  }
}

}  // namespace

MomentAccumulator::MomentAccumulator(int dims, std::vector<double> origin)
    : dims_(dims), origin_(std::move(origin)) {
  RIF_CHECK(dims > 0);
  RIF_CHECK(static_cast<int>(origin_.size()) == dims);
  s1_.assign(static_cast<std::size_t>(dims), 0.0);
  upper_.assign(static_cast<std::size_t>(dims) * (dims + 1) / 2, 0.0);
}

void MomentAccumulator::add_block(const float* pixels, int rows) {
  RIF_CHECK(rows >= 0);
  if (rows == 0) return;
  // Center the block once into column-major scratch, then one rank-k sweep
  // of the packed triangle — the large, written-to operand is streamed
  // through once per block instead of once per pixel, and the vector
  // kernel covers 4 pixels per step.
  static thread_local std::vector<double> scratch;
  scratch.resize(static_cast<std::size_t>(dims_) * rows);
  center_block(pixels, rows, dims_, origin_.data(), scratch.data(),
               s1_.data());
  triangle_update(upper_.data(), scratch.data(), dims_, rows);
  count_ += static_cast<std::uint64_t>(rows);
}

void MomentAccumulator::remove(std::span<const float> pixel) {
  RIF_CHECK(static_cast<int>(pixel.size()) == dims_);
  RIF_CHECK_MSG(count_ > 0, "remove from empty moment accumulator");
  static thread_local std::vector<double> centered;
  centered.resize(dims_);
  for (int b = 0; b < dims_; ++b) {
    centered[b] = static_cast<double>(pixel[b]) - origin_[b];
    s1_[b] -= centered[b];
  }
  kernels::rank1_update(upper_.data(), centered.data(), dims_, -1.0);
  --count_;
}

void MomentAccumulator::merge(const MomentAccumulator& other) {
  RIF_CHECK(other.dims_ == dims_);
  RIF_CHECK_MSG(other.origin_ == origin_,
                "moment sums accumulated about different origins");
  for (std::size_t i = 0; i < s1_.size(); ++i) s1_[i] += other.s1_[i];
  for (std::size_t i = 0; i < upper_.size(); ++i) upper_[i] += other.upper_[i];
  count_ += other.count_;
}

std::vector<double> MomentAccumulator::mean() const {
  RIF_CHECK_MSG(count_ > 0, "mean of empty set");
  std::vector<double> m(origin_);
  for (int b = 0; b < dims_; ++b) m[b] += s1_[b] / static_cast<double>(count_);
  return m;
}

Matrix MomentAccumulator::covariance() const {
  RIF_CHECK_MSG(count_ > 0, "covariance of empty set");
  Matrix cov(dims_, dims_);
  const double inv = 1.0 / static_cast<double>(count_);
  std::size_t idx = 0;
  for (int i = 0; i < dims_; ++i) {
    for (int j = i; j < dims_; ++j) {
      const double v = (upper_[idx++] - s1_[i] * s1_[j] * inv) * inv;
      cov(i, j) = v;
      cov(j, i) = v;
    }
  }
  return cov;
}

void MeanAccumulator::add(std::span<const float> pixel) {
  RIF_DCHECK(pixel.size() == sums_.size());
  for (std::size_t i = 0; i < sums_.size(); ++i) sums_[i] += pixel[i];
  ++count_;
}

void MeanAccumulator::merge(const MeanAccumulator& other) {
  RIF_CHECK(other.sums_.size() == sums_.size());
  for (std::size_t i = 0; i < sums_.size(); ++i) sums_[i] += other.sums_[i];
  count_ += other.count_;
}

std::vector<double> MeanAccumulator::mean() const {
  RIF_CHECK_MSG(count_ > 0, "mean of empty set");
  std::vector<double> m(sums_.size());
  for (std::size_t i = 0; i < sums_.size(); ++i) {
    m[i] = sums_[i] / static_cast<double>(count_);
  }
  return m;
}

std::vector<std::uint8_t> MeanAccumulator::encode() const {
  Writer w;
  w.put<std::uint64_t>(count_);
  w.put_vector(sums_);
  return std::move(w).take();
}

MeanAccumulator MeanAccumulator::decode(
    const std::vector<std::uint8_t>& bytes) {
  Reader r(bytes);
  const auto count = r.get<std::uint64_t>();
  auto sums = r.get_vector<double>();
  RIF_CHECK_MSG(!sums.empty(), "mean accumulator with zero dims");
  MeanAccumulator acc(static_cast<int>(sums.size()));
  acc.sums_ = std::move(sums);
  acc.count_ = count;
  return acc;
}

CovarianceAccumulator::CovarianceAccumulator(int dims,
                                             std::vector<double> mean)
    : dims_(dims), mean_(std::move(mean)) {
  RIF_CHECK(static_cast<int>(mean_.size()) == dims);
  upper_.assign(static_cast<std::size_t>(dims) * (dims + 1) / 2, 0.0);
}

void CovarianceAccumulator::add_block(const float* pixels, int rows) {
  RIF_CHECK(rows >= 0);
  if (rows == 0) return;
  static thread_local std::vector<double> scratch;
  scratch.resize(static_cast<std::size_t>(dims_) * rows);
  center_block(pixels, rows, dims_, mean_.data(), scratch.data(), nullptr);
  triangle_update(upper_.data(), scratch.data(), dims_, rows);
  count_ += static_cast<std::uint64_t>(rows);
}

void CovarianceAccumulator::merge(const CovarianceAccumulator& other) {
  RIF_CHECK(other.dims_ == dims_);
  RIF_CHECK_MSG(other.mean_ == mean_,
                "covariance sums computed against different means");
  for (std::size_t i = 0; i < upper_.size(); ++i) upper_[i] += other.upper_[i];
  count_ += other.count_;
}

Matrix CovarianceAccumulator::covariance() const {
  RIF_CHECK_MSG(count_ > 0, "covariance of empty set");
  Matrix cov(dims_, dims_);
  const double inv = 1.0 / static_cast<double>(count_);
  std::size_t idx = 0;
  for (int i = 0; i < dims_; ++i) {
    for (int j = i; j < dims_; ++j) {
      const double v = upper_[idx++] * inv;
      cov(i, j) = v;
      cov(j, i) = v;
    }
  }
  return cov;
}

std::vector<std::uint8_t> CovarianceAccumulator::encode() const {
  Writer w;
  w.put<std::int32_t>(dims_);
  w.put<std::uint64_t>(count_);
  w.put_vector(mean_);
  w.put_vector(upper_);
  return std::move(w).take();
}

CovarianceAccumulator CovarianceAccumulator::decode(
    const std::vector<std::uint8_t>& bytes) {
  auto acc = try_decode(bytes);
  RIF_CHECK_MSG(acc.has_value(), "malformed covariance accumulator");
  return std::move(*acc);
}

std::optional<CovarianceAccumulator> CovarianceAccumulator::try_decode(
    const std::vector<std::uint8_t>& bytes) {
  Reader r(bytes);
  std::int32_t dims = 0;
  std::uint64_t count = 0;
  std::vector<double> mean;
  std::vector<double> upper;
  if (!r.try_get(dims) || !r.try_get(count) || !r.try_get_vector(mean) ||
      !r.try_get_vector(upper) || !r.exhausted()) {
    return std::nullopt;
  }
  // Validate the wire payload BEFORE trusting it: a negative or mismatched
  // dims field must fail cleanly, not drive size arithmetic on garbage.
  if (dims <= 0 || static_cast<std::size_t>(dims) != mean.size()) {
    return std::nullopt;
  }
  CovarianceAccumulator acc(dims, std::move(mean));
  if (upper.size() != acc.upper_.size()) return std::nullopt;
  acc.upper_ = std::move(upper);
  acc.count_ = count;
  return acc;
}

}  // namespace rif::linalg
