// NEON tier of the runtime-dispatched kernel layer.
//
// AArch64 makes Advanced SIMD (NEON with double lanes) mandatory, so this
// tier needs no extra compile flags and HWCAP detection is a formality —
// but the tier still goes through the same table/dispatch machinery so
// RIF_SIMD=scalar works identically on ARM. 32-bit ARM NEON has no double
// lanes (accumulation is in double everywhere, matching the seed's
// numerics), so only aarch64 builds carry this tier.
#include "linalg/kernels_table.h"

#if defined(__aarch64__) && defined(__ARM_NEON) && !defined(RIF_DISABLE_SIMD)

#include <arm_neon.h>

#include <cstddef>

#include "linalg/kernels.h"

#define RIF_KERNELS_NEON 1
#define RIF_KERNELS_TIER_NAME "neon"

namespace rif::linalg::kernels {
namespace {
#include "linalg/kernels_simd.inc"
}  // namespace

const KernelTable* neon_table() { return &kTierTable; }

}  // namespace rif::linalg::kernels

#else  // foreign architecture or RIF_DISABLE_SIMD: tier absent

namespace rif::linalg::kernels {
const KernelTable* neon_table() { return nullptr; }
}  // namespace rif::linalg::kernels

#endif
