// Top-k symmetric eigenpairs by power iteration with deflation.
//
// The colour pipeline only needs the three leading principal components
// (paper step 8), so the full O(n^3) Jacobi sweep (step 6) is more than
// required. Power iteration computes the leading pairs in O(k n^2 iters)
// — an ablation of the paper's design choice, benchmarked in
// bench_ablation_eigen.
#pragma once

#include <cstdint>
#include <vector>

#include "linalg/matrix.h"

namespace rif::linalg {

struct PowerIterationOptions {
  int max_iterations = 500;
  /// Stop when the eigenvalue estimate moves by less than this relative
  /// amount between iterations.
  double tolerance = 1e-10;
  /// Deterministic start-vector seed.
  std::uint64_t seed = 12345;
};

struct PowerIterationResult {
  std::vector<double> values;  ///< k leading eigenvalues, descending
  Matrix vectors;              ///< n x k, column i for values[i]
  std::vector<int> iterations; ///< per-pair iteration counts
};

/// Leading `k` eigenpairs of symmetric positive semi-definite `a`.
PowerIterationResult power_eigen(const Matrix& a, int k,
                                 const PowerIterationOptions& opts = {});

/// Flop estimate for the cost model (k pairs, n x n matrix).
double power_eigen_flops(int n, int k, int avg_iterations = 40);

}  // namespace rif::linalg
