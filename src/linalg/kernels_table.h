// Internal function table of the runtime-dispatched kernel layer.
//
// Each SIMD tier (AVX2 / SSE2 / NEON) lives in its own translation unit
// compiled with exactly that tier's ISA flags — pinned, not inherited from
// the build's -march — so one portable binary carries every tier its
// architecture can express and the SAME object code runs whether the build
// was -march=native or baseline. kernels.cc picks the active table once at
// startup (RIF_SIMD env override, else cpuid/HWCAP detection, else the
// compile-time fallback) and the public entry points indirect through it.
//
// This header is internal to src/linalg/: engines call the dispatched
// entry points in kernels.h, never a table directly. Tests reach tables
// through set_backend().
#pragma once

namespace rif::linalg::kernels {

struct KernelTable {
  const char* name;  ///< tier id: "avx2" | "sse2" | "neon" | "scalar"
  double (*dot)(const float*, const float*, int);
  double (*dot_df)(const double*, const float*, int);
  void (*dot_norm)(const float*, const float*, int, double*, double*,
                   double*);
  void (*dot8)(const float*, const float*, int, double*);
  void (*rank1_update)(double*, const double*, int, double);
  void (*rank_k_update)(double*, const double*, int, int);
  void (*project)(const double*, int, int, const double*, const float*,
                  float*);
};

/// Per-tier tables. nullptr when the tier's TU compiled empty (foreign
/// architecture, or RIF_DISABLE_SIMD).
const KernelTable* avx2_table();
const KernelTable* sse2_table();
const KernelTable* neon_table();

/// The compile-time fallback table kernels.cc carries (the scalar table
/// when the build had no vector ISA). Exposed so the parity tests can pin
/// "runtime tier X == compile-time tier X, bit for bit".
const KernelTable& compiled_table();

}  // namespace rif::linalg::kernels
