// Human-centred colour mapping (step 8 of the paper's algorithm).
//
// The first three principal components are interpreted as opponent-colour
// channels — PC1 achromatic, PC2 red-green opponency, PC3 blue-yellow
// opponency — and mapped to display RGB with a fixed 3x3 opponent-to-RGB
// matrix, offset around mid-grey:  R = 128 + M (c - 128), clamped to [0,255].
// The matrix coefficients are reconstructed from the paper's (OCR-damaged)
// formula; see DESIGN.md §4 for the substitution note.
//
// Before mapping, each component plane is affinely normalized so that its
// mean lands at 128 and +/-2.5 sigma spans the byte range — the standard
// contrast-stretch step any implementation needs between raw PCT output
// (arbitrary dynamic range) and the fixed-point formula the paper gives.
#pragma once

#include <array>
#include <vector>

#include "hsi/image_io.h"

namespace rif::core {

/// The opponent-to-RGB mapping matrix (rows: R, G, B; columns: achromatic,
/// red-green, blue-yellow). The achromatic column is all-positive (more
/// luminance raises every channel); the red-green column raises R and
/// lowers G; the blue-yellow column's sign is a free convention because
/// eigenvector signs are themselves arbitrary.
inline constexpr std::array<std::array<double, 3>, 3> kOpponentToRgb = {{
    {0.4387, 0.4972, 0.0641},
    {0.4972, -0.1403, 0.0795},
    {0.4972, -0.0116, -0.1355},
}};

struct ComponentStats {
  double mean = 0.0;
  double stddev = 1.0;
};

/// Normalization parameters for one component plane: byte = 128 + gain*(v-mean).
struct ComponentScale {
  double mean = 0.0;
  double gain = 1.0;

  [[nodiscard]] double to_byte(double v) const {
    return 128.0 + gain * (v - mean);
  }
};

/// Derive a scale that puts +/- `sigmas` standard deviations across [0,255].
ComponentScale make_scale(const ComponentStats& stats, double sigmas = 2.5);

/// Map one pixel's first three principal components (already scaled to byte
/// range by `scales`) to RGB.
std::array<std::uint8_t, 3> map_pixel(const std::array<double, 3>& components,
                                      const std::array<ComponentScale, 3>& scales);

/// Map three full component planes to an RGB image.
hsi::RgbImage map_planes(const std::vector<float>& pc1,
                         const std::vector<float>& pc2,
                         const std::vector<float>& pc3, int width, int height);

/// Per-plane statistics helper.
ComponentStats plane_stats(const std::vector<float>& plane);

/// Flops charged per mapped pixel (3x3 matrix apply + scales + clamps).
inline constexpr double kColorMapFlopsPerPixel = 30.0;

}  // namespace rif::core
