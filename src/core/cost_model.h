// Cost model for the distributed pipeline.
//
// Two uses:
//  * Full mode charges the simulated CPUs for the operations the kernels
//    actually performed (comparison counts, pixels transformed, ...) using
//    the per-operation flop formulas here.
//  * CostOnly mode reproduces the paper's problem sizes (320x320x105 and
//    beyond) without doing the arithmetic: the closed-form workload model
//    below predicts the operation counts from the dimensions, including the
//    unique-set growth law that drives the granularity trade-off of Fig. 5
//    (smaller tiles produce fewer in-tile comparisons but return more
//    duplicate vectors for the manager's sequential merge).
//
// The saturating unique-set law  K_tile(px) = K_sat (1 - exp(-px / px0))
// and the early-exit merge cost are calibration knobs, documented in
// EXPERIMENTS.md alongside the values used for each figure.
#pragma once

#include <cmath>
#include <cstdint>

#include "hsi/image_cube.h"

namespace rif::core {

struct CostModelParams {
  /// Unique-set saturation per screened tile (vectors).
  double tile_unique_saturation = 1200.0;
  /// Tile pixel count at which the tile set reaches ~63% of saturation.
  double tile_unique_px0 = 300.0;
  /// Global unique-set size after the manager's merge (K in the paper).
  double global_unique_size = 2000.0;
  /// Average fraction of the final tile set a pixel is compared against.
  double screen_avg_set_fraction = 0.75;
  /// Early-exit comparisons per vector during the manager's merge.
  double merge_avg_comparisons = 25.0;
  /// Scale on the merge charge: 1.0 = sequential merge at the manager (the
  /// paper's LAN algorithm); 1/P models the shared-memory variant where
  /// workers insert into a shared unique set concurrently.
  double merge_cost_scale = 1.0;
  /// Jacobi sweeps assumed for the eigen-decomposition charge.
  int jacobi_sweeps = 8;
};

class CostModel {
 public:
  CostModel(const CostModelParams& params, int bands, int output_components)
      : p_(params), bands_(bands), components_(output_components) {}

  [[nodiscard]] const CostModelParams& params() const { return p_; }

  /// One spectral-angle evaluation against a set member.
  [[nodiscard]] double flops_per_comparison() const {
    return 2.0 * bands_ + 10.0;
  }

  /// Predicted unique-set size of a tile of `pixels` pixels.
  [[nodiscard]] double tile_unique_size(std::int64_t pixels) const {
    return p_.tile_unique_saturation *
           (1.0 - std::exp(-static_cast<double>(pixels) / p_.tile_unique_px0));
  }

  /// Screening a tile: each pixel is compared against the growing in-tile
  /// set; on average a fraction of the final set size.
  [[nodiscard]] double screen_flops(std::int64_t pixels) const {
    const double avg_set = p_.screen_avg_set_fraction * tile_unique_size(pixels);
    return static_cast<double>(pixels) * avg_set * flops_per_comparison();
  }

  /// Merging `returned` vectors into the manager's global set (step 2).
  [[nodiscard]] double merge_flops(double returned) const {
    return returned * p_.merge_avg_comparisons * flops_per_comparison() *
           p_.merge_cost_scale;
  }

  /// Mean vector over the global unique set (step 3).
  [[nodiscard]] double mean_flops() const {
    return p_.global_unique_size * bands_ * 2.0;
  }

  /// Covariance sum over a shard of `members` unique vectors (step 4).
  [[nodiscard]] double cov_flops(std::int64_t members) const {
    return static_cast<double>(members) * 0.5 * bands_ * (bands_ + 3.0);
  }

  /// Averaging `parts` covariance sums (step 5).
  [[nodiscard]] double cov_average_flops(int parts) const {
    return static_cast<double>(parts) * bands_ * bands_;
  }

  /// Eigen-decomposition (step 6).
  [[nodiscard]] double eigen_flops() const {
    const double pairs = 0.5 * bands_ * (bands_ - 1.0);
    return p_.jacobi_sweeps * pairs * (12.0 * bands_ + 30.0);
  }

  /// Transforming `pixels` original pixels (step 7).
  [[nodiscard]] double transform_flops(std::int64_t pixels) const {
    return static_cast<double>(pixels) * (components_ * 2.0 * bands_ + bands_);
  }

  /// Colour-mapping `pixels` pixels (step 8).
  [[nodiscard]] double colormap_flops(std::int64_t pixels) const {
    return static_cast<double>(pixels) * 30.0;
  }

  // --- Wire sizes (bytes) -------------------------------------------------
  [[nodiscard]] std::uint64_t tile_bytes(std::int64_t pixels) const {
    return static_cast<std::uint64_t>(pixels) * bands_ * sizeof(float);
  }
  [[nodiscard]] std::uint64_t unique_vectors_bytes(double vectors) const {
    return static_cast<std::uint64_t>(vectors * bands_ * sizeof(float));
  }
  [[nodiscard]] std::uint64_t cov_sum_bytes() const {
    // Packed upper triangle of doubles plus the count.
    return static_cast<std::uint64_t>(bands_) * (bands_ + 1) / 2 * 8 + 16;
  }
  [[nodiscard]] std::uint64_t transform_bytes() const {
    return static_cast<std::uint64_t>(components_) * bands_ * 8 +
           static_cast<std::uint64_t>(bands_) * 8 + 64;
  }
  [[nodiscard]] std::uint64_t color_tile_bytes(std::int64_t pixels) const {
    return static_cast<std::uint64_t>(pixels) * 3 + 32;
  }

 private:
  CostModelParams p_;
  int bands_;
  int components_;
};

}  // namespace rif::core
