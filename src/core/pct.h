// Sequential spectral-screening PCT fusion pipeline (paper §3, steps 1-8).
//
// This is the reference implementation: the distributed manager/worker
// version and the shared-memory version compute exactly the same function
// (same screening order, same statistics, same transform, same mapping),
// which the integration tests assert byte-for-byte on the composite.
//
// Component scaling: the transformed unique set has zero mean and variance
// lambda_i along component i, so the colour-mapping scales are derived from
// the eigenvalues. This makes the scaling a pure function of the statistics
// the manager already owns — essential for the distributed version, where
// no single thread ever holds a full component plane.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/color_map.h"
#include "core/spectral_angle.h"
#include "hsi/image_cube.h"
#include "hsi/image_io.h"
#include "linalg/jacobi_eig.h"
#include "linalg/matrix.h"

namespace rif::core {

struct PctConfig {
  /// Spectral-angle threshold (radians) for unique-set membership.
  double screening_threshold = 0.05;
  /// Number of leading principal components to compute (>= 3 for colour).
  int output_components = 3;
  linalg::JacobiOptions jacobi;
};

struct PctResult {
  hsi::RgbImage composite;
  /// output_components planes, each width*height floats.
  std::vector<std::vector<float>> component_planes;
  std::vector<double> eigenvalues;  ///< all bands, descending
  linalg::Matrix eigenvectors;      ///< bands x bands, columns sorted
  std::vector<double> mean;         ///< unique-set mean vector (step 3)
  std::size_t unique_set_size = 0;  ///< K (step 2)
  std::uint64_t screen_comparisons = 0;
  /// Angle tests spent merging per-tile sets (0 when nothing was merged,
  /// e.g. the sequential pipeline's single part).
  std::uint64_t merge_comparisons = 0;
  int jacobi_sweeps = 0;
};

/// Run the full pipeline on a cube.
PctResult fuse(const hsi::ImageCube& cube, const PctConfig& config = {});

/// The truncated transform: rows = leading eigenvector transposes, so
/// component c of pixel x is  row_c . (x - mean).
linalg::Matrix transform_matrix(const linalg::Matrix& eigenvectors,
                                int output_components);

/// Transform one pixel into `out` (size = transform.rows()). Recomputes
/// the projection bias on every call — fine for one-off probes; loops
/// should hoist it via projection_bias() + project_pixels().
void transform_pixel(const linalg::Matrix& transform,
                     const std::vector<double>& mean,
                     std::span<const float> pixel, std::span<float> out);

/// Per-component mean offsets for the bias-form projection
///   component c = row_c . x − (row_c . mean),
/// hoisted out of the per-pixel loop. Every engine (sequential, shared
/// memory, distributed workers) derives its bias through this one function
/// so the projection arithmetic — and thus the composite bytes — stay
/// identical across engines.
std::vector<double> projection_bias(const linalg::Matrix& transform,
                                    const std::vector<double>& mean);

/// Project `count` contiguous BIP pixels through the truncated transform
/// into `out` (row-major count x transform.rows()) with the blocked SIMD
/// kernel. The shared projection primitive behind transform_and_map_range
/// and the distributed workers' transform stage.
void project_pixels(const linalg::Matrix& transform,
                    const std::vector<double>& bias, const float* pixels,
                    std::int64_t count, float* out);

/// Colour-mapping scales from the leading eigenvalues (see header comment).
std::array<ComponentScale, 3> scales_from_eigenvalues(
    const std::vector<double>& eigenvalues);

/// Steps 7-8 over the flat pixel range [lo, hi): transform each pixel into
/// `planes` (one plane per transform row) and colour-map the leading three
/// components into `composite`. The shared kernel behind the sequential
/// pipeline and both shared-memory engines — ranges are disjoint, so
/// parallel callers need no synchronisation.
void transform_and_map_range(const hsi::ImageCube& cube,
                             const linalg::Matrix& transform,
                             const std::vector<double>& mean,
                             const std::array<ComponentScale, 3>& scales,
                             std::vector<std::vector<float>>& planes,
                             hsi::RgbImage& composite, std::int64_t lo,
                             std::int64_t hi);

/// Steps 7-8 over `count` contiguous BIP pixels held in a caller buffer —
/// the out-of-core sibling of transform_and_map_range for engines that
/// never hold a whole ImageCube (the streaming pipeline's transform
/// stage). `pixels` is count x transform.cols() floats; the colour-mapped
/// bytes land at flat pixel offset `out_offset` of `composite`. When
/// `plane_chunk` is non-null it receives the raw components pixel-major
/// (count x transform.rows(), the project_pixels layout) so callers can
/// sink component planes chunk-by-chunk instead of materializing them.
/// Same blocked projection kernel and per-pixel arithmetic as
/// transform_and_map_range, so composites agree byte-for-byte.
void transform_and_map_chunk(const float* pixels, std::int64_t count,
                             const linalg::Matrix& transform,
                             const std::vector<double>& bias,
                             const std::array<ComponentScale, 3>& scales,
                             float* plane_chunk, hsi::RgbImage& composite,
                             std::int64_t out_offset);

/// Flops charged per transformed pixel for `bands` -> `components`.
inline double transform_flops_per_pixel(int bands, int components) {
  return static_cast<double>(components) * (2.0 * bands) + bands;
}

}  // namespace rif::core
