#include "core/pct.h"

#include <algorithm>
#include <cmath>

#include "linalg/kernels.h"
#include "linalg/stats.h"
#include "support/check.h"

namespace rif::core {

namespace {

/// One bias entry per transform row: bias[c] = row_c . mean. The single
/// definition keeps the projection arithmetic identical everywhere.
void bias_into(const linalg::Matrix& transform,
               const std::vector<double>& mean, double* bias) {
  for (int c = 0; c < transform.rows(); ++c) {
    const double* row = transform.row(c);
    double acc = 0.0;
    for (int b = 0; b < transform.cols(); ++b) acc += row[b] * mean[b];
    bias[c] = acc;
  }
}

}  // namespace

linalg::Matrix transform_matrix(const linalg::Matrix& eigenvectors,
                                int output_components) {
  RIF_CHECK(output_components >= 1 &&
            output_components <= eigenvectors.cols());
  linalg::Matrix t(output_components, eigenvectors.rows());
  for (int c = 0; c < output_components; ++c) {
    for (int b = 0; b < eigenvectors.rows(); ++b) {
      t(c, b) = eigenvectors(b, c);
    }
  }
  return t;
}

std::vector<double> projection_bias(const linalg::Matrix& transform,
                                    const std::vector<double>& mean) {
  RIF_CHECK(static_cast<int>(mean.size()) == transform.cols());
  std::vector<double> bias(static_cast<std::size_t>(transform.rows()));
  bias_into(transform, mean, bias.data());
  return bias;
}

void project_pixels(const linalg::Matrix& transform,
                    const std::vector<double>& bias, const float* pixels,
                    std::int64_t count, float* out) {
  const int bands = transform.cols();
  const int comps = transform.rows();
  RIF_DCHECK(static_cast<int>(bias.size()) == comps);
  for (std::int64_t p = 0; p < count; ++p) {
    linalg::kernels::project(transform.data(), comps, bands, bias.data(),
                             pixels + p * bands, out + p * comps);
  }
}

void transform_pixel(const linalg::Matrix& transform,
                     const std::vector<double>& mean,
                     std::span<const float> pixel, std::span<float> out) {
  const int bands = transform.cols();
  const int comps = transform.rows();
  RIF_DCHECK(static_cast<int>(pixel.size()) == bands);
  RIF_DCHECK(static_cast<int>(mean.size()) == bands);
  RIF_DCHECK(static_cast<int>(out.size()) == comps);
  static thread_local std::vector<double> bias;
  bias.resize(static_cast<std::size_t>(comps));
  bias_into(transform, mean, bias.data());
  linalg::kernels::project(transform.data(), comps, bands, bias.data(),
                           pixel.data(), out.data());
}

std::array<ComponentScale, 3> scales_from_eigenvalues(
    const std::vector<double>& eigenvalues) {
  RIF_CHECK(eigenvalues.size() >= 3);
  std::array<ComponentScale, 3> scales{};
  for (int i = 0; i < 3; ++i) {
    const double stddev = std::sqrt(std::max(eigenvalues[i], 1e-24));
    scales[i] = make_scale(ComponentStats{0.0, stddev});
  }
  return scales;
}

void transform_and_map_range(const hsi::ImageCube& cube,
                             const linalg::Matrix& transform,
                             const std::vector<double>& mean,
                             const std::array<ComponentScale, 3>& scales,
                             std::vector<std::vector<float>>& planes,
                             hsi::RgbImage& composite, std::int64_t lo,
                             std::int64_t hi) {
  const int comps = transform.rows();
  const std::vector<double> bias = projection_bias(transform, mean);
  // Blocked multi-pixel projection: a whole run of BIP pixels goes through
  // the SIMD projection kernel at once, then the block's components are
  // scattered to the planes and colour-mapped while still cache-hot.
  constexpr std::int64_t kBlock = 128;
  std::vector<float> comp(static_cast<std::size_t>(comps) * kBlock);
  for (std::int64_t p0 = lo; p0 < hi; p0 += kBlock) {
    const std::int64_t n = std::min(kBlock, hi - p0);
    project_pixels(transform, bias, cube.pixel(p0).data(), n, comp.data());
    for (std::int64_t k = 0; k < n; ++k) {
      const float* px = comp.data() + k * comps;
      const auto p = static_cast<std::size_t>(p0 + k);
      for (int c = 0; c < comps; ++c) planes[c][p] = px[c];
      const auto rgb = map_pixel({px[0], px[1], px[2]}, scales);
      composite.data[p * 3 + 0] = rgb[0];
      composite.data[p * 3 + 1] = rgb[1];
      composite.data[p * 3 + 2] = rgb[2];
    }
  }
}

void transform_and_map_chunk(const float* pixels, std::int64_t count,
                             const linalg::Matrix& transform,
                             const std::vector<double>& bias,
                             const std::array<ComponentScale, 3>& scales,
                             float* plane_chunk, hsi::RgbImage& composite,
                             std::int64_t out_offset) {
  const int comps = transform.rows();
  const int bands = transform.cols();
  constexpr std::int64_t kBlock = 128;
  std::vector<float> comp(static_cast<std::size_t>(comps) * kBlock);
  for (std::int64_t p0 = 0; p0 < count; p0 += kBlock) {
    const std::int64_t n = std::min(kBlock, count - p0);
    project_pixels(transform, bias, pixels + p0 * bands, n, comp.data());
    if (plane_chunk != nullptr) {
      std::copy_n(comp.data(), static_cast<std::size_t>(n) * comps,
                  plane_chunk + p0 * comps);
    }
    for (std::int64_t k = 0; k < n; ++k) {
      const float* px = comp.data() + k * comps;
      const auto p = static_cast<std::size_t>(out_offset + p0 + k);
      const auto rgb = map_pixel({px[0], px[1], px[2]}, scales);
      composite.data[p * 3 + 0] = rgb[0];
      composite.data[p * 3 + 1] = rgb[1];
      composite.data[p * 3 + 2] = rgb[2];
    }
  }
}

PctResult fuse(const hsi::ImageCube& cube, const PctConfig& config) {
  RIF_CHECK(config.output_components >= 3);
  RIF_CHECK(config.output_components <= cube.bands());
  PctResult result;

  // Steps 1-2: screening. Sequentially the whole cube is one "part".
  UniqueSet unique = screen_range(cube, 0, cube.pixel_count(),
                                  config.screening_threshold,
                                  &result.screen_comparisons);
  result.unique_set_size = unique.size();
  RIF_CHECK_MSG(unique.size() >= 3, "degenerate scene: unique set too small");

  // Step 3: mean vector of the unique set.
  linalg::MeanAccumulator mean_acc(cube.bands());
  for (std::size_t i = 0; i < unique.size(); ++i) mean_acc.add(unique.member(i));
  result.mean = mean_acc.mean();

  // Steps 4-5: covariance of the unique set, fed from the set's flat
  // storage in blocks so the rank-k triangle kernel does the work.
  linalg::CovarianceAccumulator cov_acc(cube.bands(), result.mean);
  constexpr std::size_t kRows = linalg::CovarianceAccumulator::kBlockRows;
  for (std::size_t i = 0; i < unique.size(); i += kRows) {
    cov_acc.add_block(unique.flat().data() + i * cube.bands(),
                      static_cast<int>(std::min(kRows, unique.size() - i)));
  }
  const linalg::Matrix cov = cov_acc.covariance();

  // Step 6: eigen-decomposition, sorted descending.
  linalg::EigenResult eig = linalg::jacobi_eigen(cov, config.jacobi);
  result.eigenvalues = eig.values;
  result.eigenvectors = eig.vectors;
  result.jacobi_sweeps = eig.sweeps;

  // Steps 7-8: transform every original pixel and colour-map it.
  const linalg::Matrix t =
      transform_matrix(eig.vectors, config.output_components);
  const auto n = static_cast<std::size_t>(cube.pixel_count());
  result.component_planes.assign(config.output_components,
                                 std::vector<float>(n));
  const auto scales = scales_from_eigenvalues(result.eigenvalues);
  result.composite = hsi::RgbImage(cube.width(), cube.height());
  transform_and_map_range(cube, t, result.mean, scales,
                          result.component_planes, result.composite, 0,
                          cube.pixel_count());
  return result;
}

}  // namespace rif::core
