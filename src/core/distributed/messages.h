// Wire messages of the distributed fusion protocol.
//
// The eight algorithm steps map onto six message types flowing between the
// manager (logical thread 0) and the workers. Every message has an encoded
// form (Writer/Reader) so replica state transfer and CostOnly payload
// substitution both work uniformly: in CostOnly mode the bulk arrays are
// omitted and `declared_bytes` carries the size the real payload would
// have had.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "hsi/partition.h"
#include "scp/types.h"
#include "support/serialize.h"

namespace rif::core {

enum MsgType : std::uint32_t {
  kRequestWork = 1,   ///< worker -> manager: give me the next sub-cube
  kTileAssign = 2,    ///< manager -> worker: sub-cube descriptor (+ data)
  kNoMoreTiles = 3,   ///< manager -> worker: screening pool exhausted
  kScreenResult = 4,  ///< worker -> manager: per-tile unique set
  kCovShard = 5,      ///< manager -> worker: unique-set shard + mean
  kCovSum = 6,        ///< worker -> manager: partial covariance sum
  kTransform = 7,     ///< manager -> worker: transform matrix + scales
  kColorTile = 8,     ///< worker -> manager: colour-mapped tile
};

/// Tile descriptor shared by kTileAssign / kScreenResult / kColorTile.
struct WireTile {
  std::int32_t index = 0;
  std::int32_t y0 = 0;
  std::int32_t rows = 0;
  std::int32_t width = 0;
  std::int32_t bands = 0;

  static WireTile from(const hsi::Tile& t) {
    return {t.index, t.y0, t.rows, t.width, t.bands};
  }
  [[nodiscard]] hsi::Tile to_tile() const {
    return {index, y0, rows, width, bands};
  }
  [[nodiscard]] std::int64_t pixels() const {
    return static_cast<std::int64_t>(rows) * width;
  }
};

struct TileAssignMsg {
  WireTile tile;
  std::vector<float> data;  ///< empty in CostOnly mode

  [[nodiscard]] scp::Message encode(std::uint64_t declared) const {
    Writer w;
    w.put(tile);
    w.put_span(std::span<const float>(data));
    return {kTileAssign, std::move(w).take(), declared};
  }
  /// Non-aborting decode for payloads off the socket plane: nullopt on a
  /// truncated, corrupt, or oversized body. decode() keeps the aborting
  /// contract for the sim plane, whose payloads never leave the process.
  static std::optional<TileAssignMsg> try_decode(const scp::Message& m) {
    Reader r(m.payload);
    TileAssignMsg out;
    if (!r.try_get(out.tile) || !r.try_get_vector(out.data) ||
        !r.exhausted()) {
      return std::nullopt;
    }
    return out;
  }
  static TileAssignMsg decode(const scp::Message& m) {
    auto out = try_decode(m);
    RIF_CHECK_MSG(out.has_value(), "malformed TileAssignMsg");
    return std::move(*out);
  }
};

struct ScreenResultMsg {
  WireTile tile;
  std::uint64_t unique_count = 0;   ///< vectors found (model value in CostOnly)
  std::uint64_t comparisons = 0;    ///< screening comparisons performed
  std::vector<float> vectors;       ///< unique vectors; empty in CostOnly

  [[nodiscard]] scp::Message encode(std::uint64_t declared) const {
    Writer w;
    w.put(tile);
    w.put<std::uint64_t>(unique_count);
    w.put<std::uint64_t>(comparisons);
    w.put_span(std::span<const float>(vectors));
    return {kScreenResult, std::move(w).take(), declared};
  }
  static std::optional<ScreenResultMsg> try_decode(const scp::Message& m) {
    Reader r(m.payload);
    ScreenResultMsg out;
    if (!r.try_get(out.tile) || !r.try_get(out.unique_count) ||
        !r.try_get(out.comparisons) || !r.try_get_vector(out.vectors) ||
        !r.exhausted()) {
      return std::nullopt;
    }
    return out;
  }
  static ScreenResultMsg decode(const scp::Message& m) {
    auto out = try_decode(m);
    RIF_CHECK_MSG(out.has_value(), "malformed ScreenResultMsg");
    return std::move(*out);
  }
};

struct CovShardMsg {
  std::uint64_t shard_index = 0;  ///< which shard this is; echoed in CovSum
  std::uint64_t shard_count = 0;  ///< unique vectors in this shard
  std::vector<float> vectors;     ///< empty in CostOnly
  std::vector<double> mean;       ///< unique-set mean (step 3 output)

  [[nodiscard]] scp::Message encode(std::uint64_t declared) const {
    Writer w;
    w.put<std::uint64_t>(shard_index);
    w.put<std::uint64_t>(shard_count);
    w.put_span(std::span<const float>(vectors));
    w.put_span(std::span<const double>(mean));
    return {kCovShard, std::move(w).take(), declared};
  }
  static std::optional<CovShardMsg> try_decode(const scp::Message& m) {
    Reader r(m.payload);
    CovShardMsg out;
    if (!r.try_get(out.shard_index) || !r.try_get(out.shard_count) ||
        !r.try_get_vector(out.vectors) || !r.try_get_vector(out.mean) ||
        !r.exhausted()) {
      return std::nullopt;
    }
    return out;
  }
  static CovShardMsg decode(const scp::Message& m) {
    auto out = try_decode(m);
    RIF_CHECK_MSG(out.has_value(), "malformed CovShardMsg");
    return std::move(*out);
  }
};

struct CovSumMsg {
  std::uint64_t shard_index = 0;  ///< echoed from the CovShard this answers,
                                  ///< so replies pair with shards explicitly
                                  ///< rather than by per-worker FIFO position
  std::vector<std::uint8_t> accumulator;  ///< CovarianceAccumulator::encode()

  [[nodiscard]] scp::Message encode(std::uint64_t declared) const {
    Writer w;
    w.put<std::uint64_t>(shard_index);
    w.put_span(std::span<const std::uint8_t>(accumulator));
    return {kCovSum, std::move(w).take(), declared};
  }
  static std::optional<CovSumMsg> try_decode(const scp::Message& m) {
    Reader r(m.payload);
    CovSumMsg out;
    if (!r.try_get(out.shard_index) || !r.try_get_vector(out.accumulator) ||
        !r.exhausted()) {
      return std::nullopt;
    }
    return out;
  }
  static CovSumMsg decode(const scp::Message& m) {
    auto out = try_decode(m);
    RIF_CHECK_MSG(out.has_value(), "malformed CovSumMsg");
    return std::move(*out);
  }
};

struct TransformMsg {
  std::int32_t components = 0;
  std::int32_t bands = 0;
  std::vector<double> matrix;      ///< components x bands, row-major
  std::vector<double> mean;
  std::vector<double> scale_mean;  ///< per-component colour scales
  std::vector<double> scale_gain;

  [[nodiscard]] scp::Message encode(std::uint64_t declared) const {
    Writer w;
    w.put(components);
    w.put(bands);
    w.put_span(std::span<const double>(matrix));
    w.put_span(std::span<const double>(mean));
    w.put_span(std::span<const double>(scale_mean));
    w.put_span(std::span<const double>(scale_gain));
    return {kTransform, std::move(w).take(), declared};
  }
  static std::optional<TransformMsg> try_decode(const scp::Message& m) {
    Reader r(m.payload);
    TransformMsg out;
    if (!r.try_get(out.components) || !r.try_get(out.bands) ||
        !r.try_get_vector(out.matrix) || !r.try_get_vector(out.mean) ||
        !r.try_get_vector(out.scale_mean) ||
        !r.try_get_vector(out.scale_gain) || !r.exhausted()) {
      return std::nullopt;
    }
    return out;
  }
  static TransformMsg decode(const scp::Message& m) {
    auto out = try_decode(m);
    RIF_CHECK_MSG(out.has_value(), "malformed TransformMsg");
    return std::move(*out);
  }
};

struct ColorTileMsg {
  WireTile tile;
  std::vector<std::uint8_t> rgb;  ///< rows*width*3 bytes; empty in CostOnly

  [[nodiscard]] scp::Message encode(std::uint64_t declared) const {
    Writer w;
    w.put(tile);
    w.put_span(std::span<const std::uint8_t>(rgb));
    return {kColorTile, std::move(w).take(), declared};
  }
  static std::optional<ColorTileMsg> try_decode(const scp::Message& m) {
    Reader r(m.payload);
    ColorTileMsg out;
    if (!r.try_get(out.tile) || !r.try_get_vector(out.rgb) ||
        !r.exhausted()) {
      return std::nullopt;
    }
    return out;
  }
  static ColorTileMsg decode(const scp::Message& m) {
    auto out = try_decode(m);
    RIF_CHECK_MSG(out.has_value(), "malformed ColorTileMsg");
    return std::move(*out);
  }
};

}  // namespace rif::core
