// Manager and worker actors of the distributed spectral-screening PCT.
//
// The manager (logical thread 0) runs the paper's manager/worker
// decomposition: it owns the cube, hands out sub-cube tiles on request
// (workers prefetch — they request the next tile *before* screening the
// current one, the paper's communication/computation overlap), merges the
// returned per-tile unique sets in tile order (step 2, sequential), computes
// the mean (step 3), shards the unique set for the concurrent covariance
// sums (step 4), averages and eigen-decomposes (steps 5-6), broadcasts the
// transform, and assembles the colour tiles (steps 7-8 results).
//
// Merging strictly in tile-index order makes the distributed result a pure
// function of the tile decomposition — independent of worker count, message
// timing, replication level, and injected failures. The integration tests
// exploit this: a run with crashes and regeneration must produce the exact
// composite of an undisturbed run.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "core/cost_model.h"
#include "core/distributed/messages.h"
#include "core/pct.h"
#include "core/spectral_angle.h"
#include "hsi/image_cube.h"
#include "hsi/image_io.h"
#include "hsi/partition.h"
#include "linalg/stats.h"
#include "scp/actor.h"
#include "support/time.h"

namespace rif::core {

enum class ExecutionMode {
  kFull,     ///< real pixels, real arithmetic, real composite
  kCostOnly  ///< dimensions only; CPUs charged from the cost model
};

/// Parameters shared by the manager and all workers.
struct FusionParams {
  ExecutionMode mode = ExecutionMode::kCostOnly;
  hsi::CubeShape shape{320, 320, 105};
  int workers = 4;
  int total_tiles = 8;
  double screening_threshold = 0.05;
  int output_components = 3;
  CostModelParams cost;
  linalg::JacobiOptions jacobi;

  scp::ThreadId manager_tid = 0;
  /// Worker logical thread ids, in worker order (filled by the job runner).
  std::vector<scp::ThreadId> worker_tids;

  [[nodiscard]] CostModel cost_model() const {
    return {cost, shape.bands, output_components};
  }
};

/// Where the manager deposits results; owned by the job runner.
struct JobOutcome {
  bool completed = false;
  SimTime completion_time = 0;
  std::size_t unique_set_size = 0;
  std::uint64_t screen_comparisons = 0;
  std::uint64_t merge_comparisons = 0;
  std::vector<double> eigenvalues;
  hsi::RgbImage composite;  ///< valid in Full mode only
  int tiles_distributed = 0;
  int tiles_colored = 0;
};

class ManagerActor final : public scp::Actor {
 public:
  /// `cube` must outlive the run and is required in Full mode.
  ///
  /// When `on_complete` is set the manager runs in *service mode*: on the
  /// final colour tile it invokes the callback and the shared runtime keeps
  /// running other jobs — the caller is then responsible for tearing down
  /// the job's actors (see scp::Runtime::retire_job; until then the idle
  /// workers keep heartbeating). Without it (the paper's single-job world)
  /// it shuts the runtime down.
  ManagerActor(FusionParams params, const hsi::ImageCube* cube,
               JobOutcome* outcome, std::function<void()> on_complete = {});

  void on_start(scp::ActorContext& ctx) override;
  void on_message(scp::ActorContext& ctx, scp::ThreadId from,
                  const scp::Message& msg) override;

  // The manager represents the sensor and is not replicated in the paper;
  // snapshot support is intentionally minimal.
  std::uint64_t state_bytes() const override { return params_.shape.bytes(); }

 private:
  void on_request_work(scp::ActorContext& ctx, scp::ThreadId from);
  void on_screen_result(scp::ActorContext& ctx, const scp::Message& msg);
  void start_covariance_phase(scp::ActorContext& ctx);
  void on_cov_sum(scp::ActorContext& ctx, scp::ThreadId from,
                  const scp::Message& msg);
  void broadcast_transform(scp::ActorContext& ctx);
  void on_color_tile(scp::ActorContext& ctx, const scp::Message& msg);

  FusionParams params_;
  const hsi::ImageCube* cube_;
  JobOutcome* outcome_;
  std::function<void()> on_complete_;
  CostModel model_;

  std::vector<hsi::Tile> tiles_;
  int next_tile_ = 0;

  // Step-2 state: in-order merge of per-tile unique sets.
  std::map<int, ScreenResultMsg> pending_results_;
  int merged_tiles_ = 0;
  std::optional<UniqueSet> global_unique_;   // Full mode
  double model_unique_count_ = 0.0;          // CostOnly mode

  // Steps 3-6 state. Covariance sums are buffered per worker and merged in
  // worker order so the result is bit-identical across timings/failures.
  std::vector<double> mean_;
  std::map<scp::ThreadId, std::vector<std::uint8_t>> cov_sums_;
  int cov_received_ = 0;

  int tiles_colored_ = 0;
};

class WorkerActor final : public scp::Actor {
 public:
  explicit WorkerActor(FusionParams params);

  void on_start(scp::ActorContext& ctx) override;
  void on_message(scp::ActorContext& ctx, scp::ThreadId from,
                  const scp::Message& msg) override;

  std::vector<std::uint8_t> snapshot_state() const override;
  void restore_state(const std::vector<std::uint8_t>& state) override;
  std::uint64_t state_bytes() const override;

 private:
  struct StoredTile {
    WireTile tile;
    std::vector<float> data;  ///< empty in CostOnly mode
  };

  void on_tile(scp::ActorContext& ctx, const scp::Message& msg);
  void on_cov_shard(scp::ActorContext& ctx, const scp::Message& msg);
  void on_transform(scp::ActorContext& ctx, const scp::Message& msg);
  void transform_next_tile(scp::ActorContext& ctx,
                           std::shared_ptr<TransformMsg> tm, std::size_t i);

  FusionParams params_;
  CostModel model_;
  std::vector<StoredTile> tiles_;
};

}  // namespace rif::core
