#include "core/distributed/shard_ops.h"

#include <algorithm>
#include <array>

#include "core/color_map.h"
#include "core/pct.h"
#include "core/spectral_angle.h"
#include "linalg/matrix.h"
#include "linalg/stats.h"
#include "support/check.h"

namespace rif::core {

ScreenResultMsg screen_shard(const WireTile& tile, const float* data,
                             double screening_threshold) {
  const std::int64_t pixels = tile.pixels();
  const int bands = tile.bands;
  UniqueSet set(bands, screening_threshold);
  std::uint64_t comparisons = 0;
  for (std::int64_t p = 0; p < pixels; ++p) {
    set.screen({data + p * bands, static_cast<std::size_t>(bands)},
               &comparisons);
  }
  ScreenResultMsg result;
  result.tile = tile;
  result.unique_count = set.size();
  result.comparisons = comparisons;
  result.vectors = set.flat();
  return result;
}

CovSumMsg cov_shard_sum(const CovShardMsg& shard, int bands) {
  RIF_CHECK(shard.vectors.size() ==
            shard.shard_count * static_cast<std::uint64_t>(bands));
  linalg::CovarianceAccumulator acc(bands, shard.mean);
  constexpr std::uint64_t kRows = linalg::CovarianceAccumulator::kBlockRows;
  for (std::uint64_t i = 0; i < shard.shard_count; i += kRows) {
    acc.add_block(shard.vectors.data() + i * bands,
                  static_cast<int>(std::min(kRows, shard.shard_count - i)));
  }
  CovSumMsg sum;
  sum.shard_index = shard.shard_index;
  sum.accumulator = acc.encode();
  return sum;
}

ColorTileMsg color_shard(const WireTile& tile, const float* data,
                         const TransformMsg& tm) {
  const std::int64_t px_count = tile.pixels();
  const int bands = tm.bands;
  const int comps = tm.components;
  linalg::Matrix transform(comps, bands);
  std::copy(tm.matrix.begin(), tm.matrix.end(), transform.data());
  std::array<ComponentScale, 3> scales{};
  for (int c = 0; c < 3; ++c) {
    scales[c] = ComponentScale{tm.scale_mean[c], tm.scale_gain[c]};
  }
  ColorTileMsg color;
  color.tile = tile;
  color.rgb.resize(static_cast<std::size_t>(px_count) * 3);
  // Same blocked SIMD projection as the shared-memory engines — the shared
  // kernel keeps shard composites bit-identical to the sequential reference.
  const std::vector<double> bias = projection_bias(transform, tm.mean);
  std::vector<float> comp(static_cast<std::size_t>(px_count) * comps);
  project_pixels(transform, bias, data, px_count, comp.data());
  for (std::int64_t p = 0; p < px_count; ++p) {
    const float* cp = comp.data() + p * comps;
    const auto rgb = map_pixel({cp[0], cp[1], cp[2]}, scales);
    color.rgb[p * 3 + 0] = rgb[0];
    color.rgb[p * 3 + 1] = rgb[1];
    color.rgb[p * 3 + 2] = rgb[2];
  }
  return color;
}

}  // namespace rif::core
