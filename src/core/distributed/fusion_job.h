// One-call runner for a distributed fusion experiment.
//
// Builds the virtual cluster (manager node + P worker nodes), the network
// (LAN or SMP model), the scp runtime, the actor topology (manager
// unreplicated — it represents the sensor, as in the paper's evaluation —
// and P workers at the configured replication level, replicas co-resident
// round-robin on the worker nodes exactly as the paper ran level-2
// replication on its 16 workstations), optional failure injection, then
// runs to completion and reports.
#pragma once

#include <vector>

#include "cluster/failure_injector.h"
#include "core/distributed/fusion_actors.h"
#include "net/network.h"
#include "scp/runtime.h"
#include "support/time.h"

namespace rif::core {

enum class NetworkKind { kLan, kSharedBus, kSmp };

struct FusionJobConfig {
  int workers = 4;
  /// Sub-cubes = workers * tiles_per_worker (the Fig. 5 granularity knob).
  int tiles_per_worker = 2;
  /// Worker replication level (1 = no replication).
  int replication = 1;
  /// Enable the resiliency protocol (acks, heartbeats, regeneration).
  bool resilient = false;
  /// When resilient: regenerate lost replicas (off = graceful degradation).
  bool regenerate = true;

  ExecutionMode mode = ExecutionMode::kCostOnly;
  hsi::CubeShape shape{320, 320, 105};
  /// Required in Full mode; must outlive the call.
  const hsi::ImageCube* cube = nullptr;

  double screening_threshold = 0.05;
  int output_components = 3;
  CostModelParams cost;
  linalg::JacobiOptions jacobi;

  NetworkKind network = NetworkKind::kLan;
  net::LanConfig lan;
  net::SmpConfig smp;
  cluster::NodeConfig node;
  scp::RuntimeConfig runtime;  ///< resilient/regenerate fields are overridden

  /// Crash script on the virtual timeline (node ids: 0 = manager,
  /// 1..workers = worker nodes).
  std::vector<cluster::FailureEvent> failures;

  /// Attack warnings: at each (time, node) the runtime evacuates the node's
  /// replicas to safe hosts *before* any strike lands — the paper's
  /// attack-assessment-driven mobility. Requires resilient mode.
  struct EvacuationOrder {
    SimTime time = 0;
    cluster::NodeId node = cluster::kNoNode;
  };
  std::vector<EvacuationOrder> evacuations;

  /// Abort the run if virtual time exceeds this (hang detector).
  SimTime deadline = from_seconds(100000.0);
};

struct FusionReport {
  bool completed = false;
  double elapsed_seconds = 0.0;
  JobOutcome outcome;
  scp::ProtocolStats protocol;
  net::NetworkStats network;
  int crashes_injected = 0;
  std::uint64_t sim_events = 0;
  double total_flops_charged = 0.0;
};

FusionReport run_fusion_job(const FusionJobConfig& config);

}  // namespace rif::core
