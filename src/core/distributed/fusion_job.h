// One-call runner for a distributed fusion experiment.
//
// Builds the virtual cluster (manager node + P worker nodes), the network
// (LAN or SMP model), the scp runtime, the actor topology (manager
// unreplicated — it represents the sensor, as in the paper's evaluation —
// and P workers at the configured replication level, replicas co-resident
// round-robin on the worker nodes exactly as the paper ran level-2
// replication on its 16 workstations), optional failure injection, then
// runs to completion and reports.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "cluster/failure_injector.h"
#include "core/distributed/fusion_actors.h"
#include "net/network.h"
#include "scp/runtime.h"
#include "support/time.h"

namespace rif::core {

enum class NetworkKind { kLan, kSharedBus, kSmp };

struct FusionJobConfig {
  int workers = 4;
  /// Sub-cubes = workers * tiles_per_worker (the Fig. 5 granularity knob).
  int tiles_per_worker = 2;
  /// Worker replication level (1 = no replication).
  int replication = 1;
  /// Enable the resiliency protocol (acks, heartbeats, regeneration).
  bool resilient = false;
  /// When resilient: regenerate lost replicas (off = graceful degradation).
  bool regenerate = true;

  ExecutionMode mode = ExecutionMode::kCostOnly;
  hsi::CubeShape shape{320, 320, 105};
  /// Required in Full mode; must outlive the call.
  const hsi::ImageCube* cube = nullptr;

  double screening_threshold = 0.05;
  int output_components = 3;
  CostModelParams cost;
  linalg::JacobiOptions jacobi;

  NetworkKind network = NetworkKind::kLan;
  net::LanConfig lan;
  net::SmpConfig smp;
  cluster::NodeConfig node;
  scp::RuntimeConfig runtime;  ///< resilient/regenerate fields are overridden

  /// Crash script on the virtual timeline (node ids: 0 = manager,
  /// 1..workers = worker nodes).
  std::vector<cluster::FailureEvent> failures;

  /// Attack warnings: at each (time, node) the runtime evacuates the node's
  /// replicas to safe hosts *before* any strike lands — the paper's
  /// attack-assessment-driven mobility. Requires resilient mode.
  struct EvacuationOrder {
    SimTime time = 0;
    cluster::NodeId node = cluster::kNoNode;
  };
  std::vector<EvacuationOrder> evacuations;

  /// Abort the run if virtual time exceeds this (hang detector).
  SimTime deadline = from_seconds(100000.0);
};

struct FusionReport {
  bool completed = false;
  double elapsed_seconds = 0.0;
  JobOutcome outcome;
  scp::ProtocolStats protocol;
  net::NetworkStats network;
  int crashes_injected = 0;
  std::uint64_t sim_events = 0;
  double total_flops_charged = 0.0;
};

FusionReport run_fusion_job(const FusionJobConfig& config);

/// Build the network model a FusionJobConfig asks for over `cluster`.
std::unique_ptr<net::Network> make_network(cluster::Cluster& cluster,
                                           NetworkKind kind,
                                           const net::LanConfig& lan,
                                           const net::SmpConfig& smp);

/// Logical thread ids of one spawned fusion topology.
struct FusionTopology {
  scp::ThreadId manager = scp::kNoThread;
  std::vector<scp::ThreadId> workers;
};

/// One fusion job instantiated against an *existing* cluster + runtime —
/// the unit a multi-tenant service schedules. Owns the per-job state the
/// actors reference (parameters, outcome), so it must outlive the runtime
/// activity of the job; run_fusion_job() and FusionService both build on it.
class FusionJobInstance {
 public:
  explicit FusionJobInstance(const FusionJobConfig& config);
  FusionJobInstance(const FusionJobInstance&) = delete;
  FusionJobInstance& operator=(const FusionJobInstance&) = delete;

  /// Spawn the manager on `manager_node` and `config.workers` worker groups
  /// on `worker_nodes` (one worker per node; replicas co-resident
  /// round-robin, confined to `worker_nodes` for regeneration). When
  /// `on_complete` is given the job runs in service mode: the runtime
  /// survives the job and the callback fires at virtual completion time.
  /// Callable before or after Runtime::start() (dynamic spawn).
  FusionTopology spawn(scp::Runtime& runtime, cluster::NodeId manager_node,
                       const std::vector<cluster::NodeId>& worker_nodes,
                       scp::JobId job = scp::kNoJob,
                       std::function<void()> on_complete = {});

  [[nodiscard]] const FusionJobConfig& config() const { return config_; }
  [[nodiscard]] const JobOutcome& outcome() const { return outcome_; }
  /// Move the outcome out (e.g. into a report) once the job is finished —
  /// in Full mode it carries the composite image, which is worth not
  /// copying. The instance must be done producing into it.
  [[nodiscard]] JobOutcome take_outcome() { return std::move(outcome_); }
  [[nodiscard]] const FusionTopology& topology() const { return topology_; }

 private:
  FusionJobConfig config_;
  FusionParams params_;
  JobOutcome outcome_;
  FusionTopology topology_;
};

}  // namespace rif::core
