#include "core/distributed/fusion_job.h"

#include <memory>
#include <string>
#include <utility>

#include "sim/simulation.h"
#include "support/check.h"

namespace rif::core {

std::unique_ptr<net::Network> make_network(cluster::Cluster& cluster,
                                           NetworkKind kind,
                                           const net::LanConfig& lan,
                                           const net::SmpConfig& smp) {
  switch (kind) {
    case NetworkKind::kLan:
      return std::make_unique<net::LanNetwork>(cluster, lan);
    case NetworkKind::kSharedBus:
      return std::make_unique<net::SharedBusNetwork>(cluster, lan);
    case NetworkKind::kSmp:
      return std::make_unique<net::SmpNetwork>(cluster, smp);
  }
  RIF_CHECK_MSG(false, "unknown network kind");
  return nullptr;
}

FusionJobInstance::FusionJobInstance(const FusionJobConfig& config)
    : config_(config) {
  RIF_CHECK(config_.workers >= 1);
  RIF_CHECK(config_.tiles_per_worker >= 1);
  RIF_CHECK(config_.replication >= 1);
  RIF_CHECK(config_.mode == ExecutionMode::kCostOnly ||
            config_.cube != nullptr);

  params_.mode = config_.mode;
  params_.shape = config_.shape;
  params_.workers = config_.workers;
  params_.total_tiles = config_.workers * config_.tiles_per_worker;
  params_.screening_threshold = config_.screening_threshold;
  params_.output_components = config_.output_components;
  params_.cost = config_.cost;
  params_.jacobi = config_.jacobi;
}

FusionTopology FusionJobInstance::spawn(
    scp::Runtime& runtime, cluster::NodeId manager_node,
    const std::vector<cluster::NodeId>& worker_nodes, scp::JobId job,
    std::function<void()> on_complete) {
  RIF_CHECK_MSG(topology_.manager == scp::kNoThread, "job already spawned");
  RIF_CHECK_MSG(static_cast<int>(worker_nodes.size()) == config_.workers,
                "need exactly one worker node per worker");

  // Thread ids are assigned in spawn order; precompute them so the actors
  // know the topology before it exists.
  const scp::ThreadId base = runtime.next_thread_id();
  params_.manager_tid = base;
  params_.worker_tids.clear();
  for (int w = 0; w < config_.workers; ++w) {
    params_.worker_tids.push_back(base + 1 + w);
  }

  scp::SpawnOptions mgr_opts;
  mgr_opts.replication = 1;
  mgr_opts.placement = {manager_node};
  // Service jobs pin their manager to the head node so it can never wander
  // onto another tenant's lease. Standalone runs keep the historical
  // freedom: an evacuation order for the manager's node may migrate it to
  // a worker node.
  if (job != scp::kNoJob) mgr_opts.domain = {manager_node};
  mgr_opts.job = job;
  const auto mgr_tid = runtime.spawn(
      "manager",
      [this, on_complete = std::move(on_complete)] {
        return std::make_unique<ManagerActor>(params_, config_.cube,
                                              &outcome_, on_complete);
      },
      std::move(mgr_opts));
  RIF_CHECK(mgr_tid == params_.manager_tid);

  for (int w = 0; w < config_.workers; ++w) {
    // Replica r of worker w lives on worker_nodes[(w + r) % W]: replicas of
    // one worker land on distinct nodes (when W > 1), and with replication
    // 2 every worker node carries exactly two worker replicas — the paper's
    // level-2 layout on the same machines.
    scp::SpawnOptions opts;
    opts.replication = config_.replication;
    for (int r = 0; r < config_.replication; ++r) {
      opts.placement.push_back(
          worker_nodes[(w + r) % static_cast<int>(worker_nodes.size())]);
    }
    opts.domain = worker_nodes;
    opts.job = job;
    const auto tid = runtime.spawn(
        "worker" + std::to_string(w),
        [this] { return std::make_unique<WorkerActor>(params_); },
        std::move(opts));
    RIF_CHECK(tid == params_.worker_tids[w]);
  }

  topology_.manager = params_.manager_tid;
  topology_.workers = params_.worker_tids;
  return topology_;
}

FusionReport run_fusion_job(const FusionJobConfig& config) {
  sim::Simulation sim;
  cluster::Cluster cluster(sim);
  // Node 0 hosts the manager (the "sensor"); nodes 1..P host workers.
  cluster.add_nodes(config.workers + 1, config.node);

  std::unique_ptr<net::Network> network =
      make_network(cluster, config.network, config.lan, config.smp);

  scp::RuntimeConfig rt_config = config.runtime;
  rt_config.resilient = config.resilient;
  rt_config.regenerate = config.regenerate;
  scp::Runtime runtime(cluster, *network, rt_config);

  FusionJobInstance instance(config);
  std::vector<cluster::NodeId> worker_nodes;
  for (int w = 0; w < config.workers; ++w) worker_nodes.push_back(w + 1);
  instance.spawn(runtime, /*manager_node=*/0, worker_nodes);

  cluster::FailureInjector injector(cluster);
  injector.schedule(config.failures);
  for (const auto& order : config.evacuations) {
    RIF_CHECK_MSG(config.resilient, "evacuation requires resilient mode");
    sim.schedule_at(order.time, [&runtime, node = order.node] {
      runtime.evacuate_node(node);
    });
  }

  runtime.start();
  const bool finished = runtime.run(config.deadline);

  FusionReport report;
  report.completed = finished && instance.outcome().completed;
  report.elapsed_seconds = to_seconds(instance.outcome().completion_time);
  report.outcome = instance.take_outcome();
  report.protocol = runtime.stats();
  report.network = network->stats();
  report.crashes_injected = injector.crashes_injected();
  report.sim_events = sim.events_executed();
  for (cluster::NodeId n = 0; n < cluster.size(); ++n) {
    report.total_flops_charged += cluster.node(n).flops_charged();
  }
  return report;
}

}  // namespace rif::core
