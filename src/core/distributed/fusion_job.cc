#include "core/distributed/fusion_job.h"

#include <memory>

#include "sim/simulation.h"
#include "support/check.h"

namespace rif::core {

FusionReport run_fusion_job(const FusionJobConfig& config) {
  RIF_CHECK(config.workers >= 1);
  RIF_CHECK(config.tiles_per_worker >= 1);
  RIF_CHECK(config.replication >= 1);
  RIF_CHECK(config.mode == ExecutionMode::kCostOnly ||
            config.cube != nullptr);

  sim::Simulation sim;
  cluster::Cluster cluster(sim);
  // Node 0 hosts the manager (the "sensor"); nodes 1..P host workers.
  cluster.add_nodes(config.workers + 1, config.node);

  std::unique_ptr<net::Network> network;
  switch (config.network) {
    case NetworkKind::kLan:
      network = std::make_unique<net::LanNetwork>(cluster, config.lan);
      break;
    case NetworkKind::kSharedBus:
      network = std::make_unique<net::SharedBusNetwork>(cluster, config.lan);
      break;
    case NetworkKind::kSmp:
      network = std::make_unique<net::SmpNetwork>(cluster, config.smp);
      break;
  }

  scp::RuntimeConfig rt_config = config.runtime;
  rt_config.resilient = config.resilient;
  rt_config.regenerate = config.regenerate;
  scp::Runtime runtime(cluster, *network, rt_config);

  FusionParams params;
  params.mode = config.mode;
  params.shape = config.shape;
  params.workers = config.workers;
  params.total_tiles = config.workers * config.tiles_per_worker;
  params.screening_threshold = config.screening_threshold;
  params.output_components = config.output_components;
  params.cost = config.cost;
  params.jacobi = config.jacobi;

  JobOutcome outcome;

  // Spawn order fixes logical ids: manager = 0, workers = 1..P.
  params.manager_tid = 0;
  for (int w = 0; w < config.workers; ++w) {
    params.worker_tids.push_back(static_cast<scp::ThreadId>(w + 1));
  }

  const auto mgr_tid = runtime.spawn(
      "manager",
      [&params, &config, &outcome] {
        return std::make_unique<ManagerActor>(params, config.cube, &outcome);
      },
      /*replication=*/1, {0});
  RIF_CHECK(mgr_tid == params.manager_tid);

  for (int w = 0; w < config.workers; ++w) {
    // Replica r of worker w lives on worker node 1 + (w + r) % P: replicas
    // of one worker land on distinct nodes (when P > 1), and with
    // replication 2 every worker node carries exactly two worker replicas —
    // the paper's level-2 layout on the same machines.
    std::vector<cluster::NodeId> placement;
    for (int r = 0; r < config.replication; ++r) {
      placement.push_back(1 + (w + r) % config.workers);
    }
    const auto tid = runtime.spawn(
        "worker" + std::to_string(w),
        [&params] { return std::make_unique<WorkerActor>(params); },
        config.replication, placement);
    RIF_CHECK(tid == params.worker_tids[w]);
  }

  cluster::FailureInjector injector(cluster);
  injector.schedule(config.failures);
  for (const auto& order : config.evacuations) {
    RIF_CHECK_MSG(config.resilient, "evacuation requires resilient mode");
    sim.schedule_at(order.time, [&runtime, node = order.node] {
      runtime.evacuate_node(node);
    });
  }

  runtime.start();
  const bool finished = runtime.run(config.deadline);

  FusionReport report;
  report.completed = finished && outcome.completed;
  report.elapsed_seconds = to_seconds(outcome.completion_time);
  report.outcome = std::move(outcome);
  report.protocol = runtime.stats();
  report.network = network->stats();
  report.crashes_injected = injector.crashes_injected();
  report.sim_events = sim.events_executed();
  for (cluster::NodeId n = 0; n < cluster.size(); ++n) {
    report.total_flops_charged += cluster.node(n).flops_charged();
  }
  return report;
}

}  // namespace rif::core
