#include "core/distributed/fusion_actors.h"

#include <algorithm>
#include <cmath>

#include "core/distributed/shard_ops.h"
#include "linalg/jacobi_eig.h"
#include "support/check.h"
#include "support/log.h"

namespace rif::core {

namespace {
constexpr std::uint64_t kSmallMsgBytes = 32;
}

// ---------------------------------------------------------------------------
// ManagerActor
// ---------------------------------------------------------------------------

ManagerActor::ManagerActor(FusionParams params, const hsi::ImageCube* cube,
                           JobOutcome* outcome,
                           std::function<void()> on_complete)
    : params_(std::move(params)),
      cube_(cube),
      outcome_(outcome),
      on_complete_(std::move(on_complete)),
      model_(params_.cost_model()) {
  RIF_CHECK(outcome_ != nullptr);
  if (params_.mode == ExecutionMode::kFull) {
    RIF_CHECK_MSG(cube_ != nullptr, "Full mode requires a cube");
    RIF_CHECK(cube_->width() == params_.shape.width &&
              cube_->height() == params_.shape.height &&
              cube_->bands() == params_.shape.bands);
  }
  RIF_CHECK(static_cast<int>(params_.worker_tids.size()) == params_.workers);
}

void ManagerActor::on_start(scp::ActorContext& /*ctx*/) {
  tiles_ = hsi::partition_rows(params_.shape, params_.total_tiles);
  if (params_.mode == ExecutionMode::kFull) {
    global_unique_.emplace(params_.shape.bands, params_.screening_threshold);
  }
  if (params_.mode == ExecutionMode::kFull) {
    outcome_->composite =
        hsi::RgbImage(params_.shape.width, params_.shape.height);
  }
}

void ManagerActor::on_message(scp::ActorContext& ctx, scp::ThreadId from,
                              const scp::Message& msg) {
  switch (msg.type) {
    case kRequestWork:
      on_request_work(ctx, from);
      break;
    case kScreenResult:
      on_screen_result(ctx, msg);
      break;
    case kCovSum:
      on_cov_sum(ctx, from, msg);
      break;
    case kColorTile:
      on_color_tile(ctx, msg);
      break;
    default:
      RIF_CHECK_MSG(false, "manager: unexpected message type");
  }
}

void ManagerActor::on_request_work(scp::ActorContext& ctx,
                                   scp::ThreadId from) {
  if (next_tile_ >= static_cast<int>(tiles_.size())) {
    ctx.send(from, scp::Message{kNoMoreTiles, {}, kSmallMsgBytes});
    return;
  }
  const hsi::Tile tile = tiles_[next_tile_++];
  ++outcome_->tiles_distributed;

  TileAssignMsg assign;
  assign.tile = WireTile::from(tile);
  if (params_.mode == ExecutionMode::kFull) {
    assign.data.reserve(tile.pixels() * tile.bands);
    const std::int64_t first = tile.first_flat_index();
    for (std::int64_t p = first; p < first + tile.pixels(); ++p) {
      const auto px = cube_->pixel(p);
      assign.data.insert(assign.data.end(), px.begin(), px.end());
    }
  }
  ctx.send(from, assign.encode(model_.tile_bytes(tile.pixels())));
}

void ManagerActor::on_screen_result(scp::ActorContext& ctx,
                                    const scp::Message& msg) {
  ScreenResultMsg result = ScreenResultMsg::decode(msg);
  outcome_->screen_comparisons += result.comparisons;
  pending_results_.emplace(result.tile.index, std::move(result));

  // Merge strictly in tile order (see header comment for why).
  double merge_charge = 0.0;
  while (true) {
    auto it = pending_results_.find(merged_tiles_);
    if (it == pending_results_.end()) break;
    const ScreenResultMsg& r = it->second;
    if (params_.mode == ExecutionMode::kFull) {
      std::uint64_t comparisons = 0;
      UniqueSet tile_set = UniqueSet::from_flat(
          params_.shape.bands, params_.screening_threshold,
          std::vector<float>(r.vectors));
      global_unique_->merge(tile_set, &comparisons);
      outcome_->merge_comparisons += comparisons;
      merge_charge +=
          static_cast<double>(comparisons) * model_.flops_per_comparison();
    } else {
      // Saturating growth of the merged set; the remainder are duplicates.
      const double returned = static_cast<double>(r.unique_count);
      const double room =
          std::max(0.0, 1.0 - model_unique_count_ /
                                  model_.params().global_unique_size);
      model_unique_count_ += returned * room;
      merge_charge += model_.merge_flops(returned);
    }
    pending_results_.erase(it);
    ++merged_tiles_;
  }

  const bool screening_done =
      merged_tiles_ == static_cast<int>(tiles_.size());
  ctx.compute(merge_charge, [this, &ctx, screening_done] {
    if (screening_done) start_covariance_phase(ctx);
  });
}

void ManagerActor::start_covariance_phase(scp::ActorContext& ctx) {
  // Step 3: mean vector over the unique set (sequential at the manager).
  std::int64_t unique_count;
  if (params_.mode == ExecutionMode::kFull) {
    unique_count = static_cast<std::int64_t>(global_unique_->size());
    linalg::MeanAccumulator acc(params_.shape.bands);
    for (std::size_t i = 0; i < global_unique_->size(); ++i) {
      acc.add(global_unique_->member(i));
    }
    mean_ = acc.mean();
  } else {
    unique_count = static_cast<std::int64_t>(model_unique_count_);
    mean_.assign(params_.shape.bands, 0.0);
  }
  outcome_->unique_set_size = static_cast<std::size_t>(unique_count);
  RIF_LOG_DEBUG("fusion", "screening done, unique set K=" << unique_count);

  ctx.compute(model_.mean_flops(), [this, &ctx, unique_count] {
    // Step 4 dispatch: shard the unique set across the workers.
    const auto chunks =
        hsi::partition_range(unique_count, params_.workers);
    for (int w = 0; w < params_.workers; ++w) {
      CovShardMsg shard;
      shard.shard_index = static_cast<std::uint64_t>(w);
      shard.shard_count = static_cast<std::uint64_t>(chunks[w].size());
      shard.mean = mean_;
      if (params_.mode == ExecutionMode::kFull) {
        shard.vectors.reserve(chunks[w].size() * params_.shape.bands);
        for (std::int64_t i = chunks[w].begin; i < chunks[w].end; ++i) {
          const auto m = global_unique_->member(static_cast<std::size_t>(i));
          shard.vectors.insert(shard.vectors.end(), m.begin(), m.end());
        }
      }
      const std::uint64_t declared =
          model_.unique_vectors_bytes(
              static_cast<double>(chunks[w].size())) +
          params_.shape.bands * 8;
      ctx.send(params_.worker_tids[w], shard.encode(declared));
    }
  });
}

void ManagerActor::on_cov_sum(scp::ActorContext& ctx, scp::ThreadId from,
                              const scp::Message& msg) {
  if (params_.mode == ExecutionMode::kFull) {
    CovSumMsg sum = CovSumMsg::decode(msg);
    cov_sums_.emplace(from, std::move(sum.accumulator));
  }
  if (++cov_received_ < params_.workers) return;

  // Steps 5-6: average (charge) then eigen-decompose (charge + compute).
  const double charge =
      model_.cov_average_flops(params_.workers) + model_.eigen_flops();
  ctx.compute(charge, [this, &ctx] { broadcast_transform(ctx); });
}

void ManagerActor::broadcast_transform(scp::ActorContext& ctx) {
  TransformMsg tm;
  tm.components = params_.output_components;
  tm.bands = params_.shape.bands;

  if (params_.mode == ExecutionMode::kFull) {
    // Step 5: average the per-worker sums, merged in worker order (the map
    // is keyed by thread id) for bit-reproducibility.
    linalg::CovarianceAccumulator total(params_.shape.bands, mean_);
    for (const auto& [tid, bytes] : cov_sums_) {
      if (!bytes.empty()) {
        total.merge(linalg::CovarianceAccumulator::decode(bytes));
      }
    }
    const linalg::Matrix cov = total.covariance();
    const linalg::EigenResult eig = linalg::jacobi_eigen(cov, params_.jacobi);
    outcome_->eigenvalues = eig.values;
    const linalg::Matrix t =
        transform_matrix(eig.vectors, params_.output_components);
    tm.matrix.assign(t.data(), t.data() + t.rows() * t.cols());
    tm.mean = mean_;
    const auto scales = scales_from_eigenvalues(eig.values);
    for (const auto& s : scales) {
      tm.scale_mean.push_back(s.mean);
      tm.scale_gain.push_back(s.gain);
    }
  } else {
    tm.mean = mean_;
    tm.scale_mean.assign(3, 0.0);
    tm.scale_gain.assign(3, 1.0);
  }

  for (const auto w : params_.worker_tids) {
    ctx.send(w, tm.encode(model_.transform_bytes()));
  }
}

void ManagerActor::on_color_tile(scp::ActorContext& ctx,
                                 const scp::Message& msg) {
  ColorTileMsg color = ColorTileMsg::decode(msg);
  if (params_.mode == ExecutionMode::kFull) {
    const hsi::Tile tile = color.tile.to_tile();
    RIF_CHECK(color.rgb.size() ==
              static_cast<std::size_t>(tile.pixels()) * 3);
    const std::size_t dst_off =
        static_cast<std::size_t>(tile.first_flat_index()) * 3;
    std::copy(color.rgb.begin(), color.rgb.end(),
              outcome_->composite.data.begin() + dst_off);
  }
  ++tiles_colored_;
  outcome_->tiles_colored = tiles_colored_;
  if (tiles_colored_ == static_cast<int>(tiles_.size())) {
    outcome_->completed = true;
    outcome_->completion_time = ctx.now();
    RIF_LOG_INFO("fusion", "job complete at t=" << to_seconds(ctx.now())
                                                << "s");
    ctx.finish();
    if (on_complete_) {
      // Service mode: the shared runtime outlives the job. The service's
      // completion handler retires the job's (now quiescent) actors.
      on_complete_();
    } else {
      ctx.shutdown_runtime();
    }
  }
}

// ---------------------------------------------------------------------------
// WorkerActor
// ---------------------------------------------------------------------------

WorkerActor::WorkerActor(FusionParams params)
    : params_(std::move(params)), model_(params_.cost_model()) {}

void WorkerActor::on_start(scp::ActorContext& ctx) {
  ctx.send(params_.manager_tid,
           scp::Message{kRequestWork, {}, kSmallMsgBytes});
}

void WorkerActor::on_message(scp::ActorContext& ctx, scp::ThreadId /*from*/,
                             const scp::Message& msg) {
  switch (msg.type) {
    case kTileAssign:
      on_tile(ctx, msg);
      break;
    case kNoMoreTiles:
      break;  // idle until the covariance phase
    case kCovShard:
      on_cov_shard(ctx, msg);
      break;
    case kTransform:
      on_transform(ctx, msg);
      break;
    default:
      RIF_CHECK_MSG(false, "worker: unexpected message type");
  }
}

void WorkerActor::on_tile(scp::ActorContext& ctx, const scp::Message& msg) {
  TileAssignMsg assign = TileAssignMsg::decode(msg);
  const std::int64_t pixels = assign.tile.pixels();
  const int bands = assign.tile.bands;

  // Overlap: request the next sub-problem before computing this one
  // (paper §3: "a worker overlaps the request for its next sub-problem
  // with the calculation associated with the current sub-problem").
  ctx.send(params_.manager_tid,
           scp::Message{kRequestWork, {}, kSmallMsgBytes});

  tiles_.push_back(StoredTile{assign.tile, std::move(assign.data)});
  const StoredTile& stored = tiles_.back();

  if (params_.mode == ExecutionMode::kFull) {
    // Step 1 for real: build the per-tile unique set (shared shard kernel).
    ScreenResultMsg result = screen_shard(stored.tile, stored.data.data(),
                                          params_.screening_threshold);
    const double flops = static_cast<double>(result.comparisons) *
                         model_.flops_per_comparison();
    const std::uint64_t declared = model_.unique_vectors_bytes(
        static_cast<double>(result.unique_count));
    ctx.compute(flops, [&ctx, this, result = std::move(result), declared] {
      ctx.send(params_.manager_tid, result.encode(declared));
    });
  } else {
    ScreenResultMsg result;
    result.tile = stored.tile;
    result.unique_count =
        static_cast<std::uint64_t>(model_.tile_unique_size(pixels));
    result.comparisons = static_cast<std::uint64_t>(
        model_.screen_flops(pixels) / model_.flops_per_comparison());
    const std::uint64_t declared = model_.unique_vectors_bytes(
        static_cast<double>(result.unique_count));
    ctx.compute(model_.screen_flops(pixels),
                [&ctx, this, result = std::move(result), declared] {
                  ctx.send(params_.manager_tid, result.encode(declared));
                });
  }
}

void WorkerActor::on_cov_shard(scp::ActorContext& ctx,
                               const scp::Message& msg) {
  CovShardMsg shard = CovShardMsg::decode(msg);
  const double flops =
      model_.cov_flops(static_cast<std::int64_t>(shard.shard_count));

  CovSumMsg sum;
  if (params_.mode == ExecutionMode::kFull) {
    sum = cov_shard_sum(shard, params_.shape.bands);
  } else {
    sum.shard_index = shard.shard_index;
  }
  ctx.compute(flops, [&ctx, this, sum = std::move(sum)] {
    ctx.send(params_.manager_tid, sum.encode(model_.cov_sum_bytes()));
  });
}

void WorkerActor::on_transform(scp::ActorContext& ctx,
                               const scp::Message& msg) {
  auto tm = std::make_shared<TransformMsg>(TransformMsg::decode(msg));
  transform_next_tile(ctx, std::move(tm), 0);
}

void WorkerActor::transform_next_tile(scp::ActorContext& ctx,
                                      std::shared_ptr<TransformMsg> tm,
                                      std::size_t i) {
  if (i >= tiles_.size()) return;
  const StoredTile& stored = tiles_[i];
  const std::int64_t pixels = stored.tile.pixels();
  const double flops =
      model_.transform_flops(pixels) + model_.colormap_flops(pixels);

  ctx.compute(flops, [&ctx, this, tm = std::move(tm), i] {
    const StoredTile& t = tiles_[i];
    const std::int64_t px_count = t.tile.pixels();
    ColorTileMsg color;
    if (params_.mode == ExecutionMode::kFull) {
      // Steps 7-8 for real on this tile (shared shard kernel).
      color = color_shard(t.tile, t.data.data(), *tm);
    } else {
      color.tile = t.tile;
    }
    ctx.send(params_.manager_tid,
             color.encode(model_.color_tile_bytes(px_count)));
    transform_next_tile(ctx, std::move(tm), i + 1);
  });
}

std::vector<std::uint8_t> WorkerActor::snapshot_state() const {
  Writer w;
  w.put<std::uint64_t>(tiles_.size());
  for (const auto& t : tiles_) {
    w.put(t.tile);
    w.put_vector(t.data);
  }
  return std::move(w).take();
}

void WorkerActor::restore_state(const std::vector<std::uint8_t>& state) {
  Reader r(state);
  const auto n = r.get<std::uint64_t>();
  tiles_.clear();
  tiles_.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    StoredTile t;
    t.tile = r.get<WireTile>();
    t.data = r.get_vector<float>();
    tiles_.push_back(std::move(t));
  }
}

std::uint64_t WorkerActor::state_bytes() const {
  std::uint64_t bytes = 1024;
  for (const auto& t : tiles_) bytes += model_.tile_bytes(t.tile.pixels());
  return bytes;
}

}  // namespace rif::core
