// The three Full-mode shard computations of the distributed protocol,
// extracted so every executor — the sim's WorkerActor, the rif_worker
// process, and the service's local fallback — runs literally the same code
// on the same message types. That sharing is what makes "real-transport
// composite == sim-transport composite == fuse_parallel composite" true by
// construction rather than by tolerance.
#pragma once

#include "core/distributed/messages.h"

namespace rif::core {

/// Step 1: screen one tile's pixels into a per-tile unique set.
/// `data` holds tile.pixels() contiguous band vectors.
[[nodiscard]] ScreenResultMsg screen_shard(const WireTile& tile,
                                           const float* data,
                                           double screening_threshold);

/// Step 4: accumulate the covariance sum of one unique-set shard, in the
/// shared kBlockRows blocking so partial sums are bit-identical across
/// executors.
[[nodiscard]] CovSumMsg cov_shard_sum(const CovShardMsg& shard, int bands);

/// Steps 7-8: project one stored tile through the transform and colour-map
/// it (shared blocked SIMD projection kernel).
[[nodiscard]] ColorTileMsg color_shard(const WireTile& tile, const float* data,
                                       const TransformMsg& tm);

}  // namespace rif::core
