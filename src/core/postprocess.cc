#include "core/postprocess.h"

#include <algorithm>
#include <cmath>
#include <deque>

#include "support/check.h"

namespace rif::core {

std::vector<float> luminance(const hsi::RgbImage& image) {
  const std::size_t n = static_cast<std::size_t>(image.width) * image.height;
  std::vector<float> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<float>(0.299 * image.data[i * 3 + 0] +
                                0.587 * image.data[i * 3 + 1] +
                                0.114 * image.data[i * 3 + 2]);
  }
  return out;
}

std::vector<float> sobel_magnitude(const std::vector<float>& plane, int width,
                                   int height) {
  RIF_CHECK(plane.size() == static_cast<std::size_t>(width) * height);
  std::vector<float> out(plane.size(), 0.0f);
  auto at = [&](int x, int y) {
    return plane[static_cast<std::size_t>(y) * width + x];
  };
  for (int y = 1; y + 1 < height; ++y) {
    for (int x = 1; x + 1 < width; ++x) {
      const double gx = -at(x - 1, y - 1) - 2 * at(x - 1, y) - at(x - 1, y + 1)
                        + at(x + 1, y - 1) + 2 * at(x + 1, y) + at(x + 1, y + 1);
      const double gy = -at(x - 1, y - 1) - 2 * at(x, y - 1) - at(x + 1, y - 1)
                        + at(x - 1, y + 1) + 2 * at(x, y + 1) + at(x + 1, y + 1);
      out[static_cast<std::size_t>(y) * width + x] =
          static_cast<float>(std::sqrt(gx * gx + gy * gy));
    }
  }
  return out;
}

std::vector<float> rx_anomaly(const std::vector<std::vector<float>>& channels,
                              int width, int height) {
  const int k = static_cast<int>(channels.size());
  RIF_CHECK(k >= 1 && k <= 16);
  const std::size_t n = static_cast<std::size_t>(width) * height;
  for (const auto& c : channels) RIF_CHECK(c.size() == n);

  // Global mean and covariance of the channel vectors.
  std::vector<double> mean(k, 0.0);
  for (int c = 0; c < k; ++c) {
    double s = 0.0;
    for (const float v : channels[c]) s += v;
    mean[c] = s / static_cast<double>(n);
  }
  std::vector<double> cov(static_cast<std::size_t>(k) * k, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (int a = 0; a < k; ++a) {
      const double da = channels[a][i] - mean[a];
      for (int b = a; b < k; ++b) {
        cov[static_cast<std::size_t>(a) * k + b] +=
            da * (channels[b][i] - mean[b]);
      }
    }
  }
  for (int a = 0; a < k; ++a) {
    for (int b = a; b < k; ++b) {
      const double v = cov[static_cast<std::size_t>(a) * k + b] /
                       static_cast<double>(n);
      cov[static_cast<std::size_t>(a) * k + b] = v;
      cov[static_cast<std::size_t>(b) * k + a] = v;
    }
    cov[static_cast<std::size_t>(a) * k + a] += 1e-12;
  }

  // Invert by Gauss-Jordan with partial pivoting.
  std::vector<double> inv(static_cast<std::size_t>(k) * k, 0.0);
  std::vector<double> work = cov;
  for (int i = 0; i < k; ++i) inv[static_cast<std::size_t>(i) * k + i] = 1.0;
  for (int col = 0; col < k; ++col) {
    int pivot = col;
    for (int r = col + 1; r < k; ++r) {
      if (std::abs(work[static_cast<std::size_t>(r) * k + col]) >
          std::abs(work[static_cast<std::size_t>(pivot) * k + col])) {
        pivot = r;
      }
    }
    for (int c = 0; c < k; ++c) {
      std::swap(work[static_cast<std::size_t>(col) * k + c],
                work[static_cast<std::size_t>(pivot) * k + c]);
      std::swap(inv[static_cast<std::size_t>(col) * k + c],
                inv[static_cast<std::size_t>(pivot) * k + c]);
    }
    const double d = work[static_cast<std::size_t>(col) * k + col];
    RIF_CHECK_MSG(std::abs(d) > 1e-300, "singular covariance in RX");
    for (int c = 0; c < k; ++c) {
      work[static_cast<std::size_t>(col) * k + c] /= d;
      inv[static_cast<std::size_t>(col) * k + c] /= d;
    }
    for (int r = 0; r < k; ++r) {
      if (r == col) continue;
      const double f = work[static_cast<std::size_t>(r) * k + col];
      for (int c = 0; c < k; ++c) {
        work[static_cast<std::size_t>(r) * k + c] -=
            f * work[static_cast<std::size_t>(col) * k + c];
        inv[static_cast<std::size_t>(r) * k + c] -=
            f * inv[static_cast<std::size_t>(col) * k + c];
      }
    }
  }

  std::vector<float> scores(n);
  std::vector<double> d(k), id(k);
  for (std::size_t i = 0; i < n; ++i) {
    for (int a = 0; a < k; ++a) d[a] = channels[a][i] - mean[a];
    double q = 0.0;
    for (int a = 0; a < k; ++a) {
      double acc = 0.0;
      for (int b = 0; b < k; ++b) {
        acc += inv[static_cast<std::size_t>(a) * k + b] * d[b];
      }
      q += d[a] * acc;
    }
    scores[i] = static_cast<float>(q > 0.0 ? std::sqrt(q) : 0.0);
  }
  return scores;
}

std::vector<std::uint8_t> top_fraction_mask(const std::vector<float>& plane,
                                            double fraction) {
  RIF_CHECK(fraction > 0.0 && fraction <= 1.0);
  std::vector<float> sorted = plane;
  const auto cut_index =
      static_cast<std::size_t>((1.0 - fraction) * (sorted.size() - 1));
  std::nth_element(sorted.begin(), sorted.begin() + cut_index, sorted.end());
  const float cut = sorted[cut_index];
  std::vector<std::uint8_t> mask(plane.size(), 0);
  for (std::size_t i = 0; i < plane.size(); ++i) {
    mask[i] = plane[i] > cut ? 1 : 0;
  }
  return mask;
}

std::vector<Blob> find_blobs(const std::vector<std::uint8_t>& mask, int width,
                             int height, std::int64_t min_pixels) {
  RIF_CHECK(mask.size() == static_cast<std::size_t>(width) * height);
  std::vector<std::uint8_t> seen(mask.size(), 0);
  std::vector<Blob> blobs;
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      const std::size_t start = static_cast<std::size_t>(y) * width + x;
      if (mask[start] == 0 || seen[start] != 0) continue;

      Blob blob;
      blob.min_x = blob.max_x = x;
      blob.min_y = blob.max_y = y;
      double sx = 0.0, sy = 0.0;
      std::deque<std::pair<int, int>> queue{{x, y}};
      seen[start] = 1;
      while (!queue.empty()) {
        const auto [cx, cy] = queue.front();
        queue.pop_front();
        ++blob.pixels;
        sx += cx;
        sy += cy;
        blob.min_x = std::min(blob.min_x, cx);
        blob.max_x = std::max(blob.max_x, cx);
        blob.min_y = std::min(blob.min_y, cy);
        blob.max_y = std::max(blob.max_y, cy);
        for (int dy = -1; dy <= 1; ++dy) {
          for (int dx = -1; dx <= 1; ++dx) {
            const int nx = cx + dx;
            const int ny = cy + dy;
            if (nx < 0 || nx >= width || ny < 0 || ny >= height) continue;
            const std::size_t ni = static_cast<std::size_t>(ny) * width + nx;
            if (mask[ni] != 0 && seen[ni] == 0) {
              seen[ni] = 1;
              queue.emplace_back(nx, ny);
            }
          }
        }
      }
      blob.centroid_x = sx / static_cast<double>(blob.pixels);
      blob.centroid_y = sy / static_cast<double>(blob.pixels);
      if (blob.pixels >= min_pixels) blobs.push_back(blob);
    }
  }
  return blobs;
}

DetectionScore score_detections(const std::vector<Blob>& blobs,
                                const std::vector<std::uint8_t>& labels,
                                int width, int height,
                                const std::vector<hsi::Material>& targets) {
  RIF_CHECK(labels.size() == static_cast<std::size_t>(width) * height);
  auto is_target = [&](int x, int y) {
    if (x < 0 || x >= width || y < 0 || y >= height) return false;
    const auto l = labels[static_cast<std::size_t>(y) * width + x];
    for (const auto t : targets) {
      if (l == static_cast<std::uint8_t>(t)) return true;
    }
    return false;
  };

  // Ground-truth target regions = blobs of the target materials.
  std::vector<std::uint8_t> target_mask(labels.size(), 0);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    for (const auto t : targets) {
      if (labels[i] == static_cast<std::uint8_t>(t)) target_mask[i] = 1;
    }
  }
  const std::vector<Blob> truth = find_blobs(target_mask, width, height, 1);

  DetectionScore score;
  score.targets_present = static_cast<int>(truth.size());
  std::vector<bool> hit(truth.size(), false);
  for (const Blob& blob : blobs) {
    const int cx = static_cast<int>(blob.centroid_x + 0.5);
    const int cy = static_cast<int>(blob.centroid_y + 0.5);
    bool near_target = false;
    for (int dy = -2; dy <= 2 && !near_target; ++dy) {
      for (int dx = -2; dx <= 2 && !near_target; ++dx) {
        near_target = is_target(cx + dx, cy + dy);
      }
    }
    if (!near_target) {
      ++score.false_alarms;
      continue;
    }
    for (std::size_t t = 0; t < truth.size(); ++t) {
      if (cx >= truth[t].min_x - 2 && cx <= truth[t].max_x + 2 &&
          cy >= truth[t].min_y - 2 && cy <= truth[t].max_y + 2) {
        hit[t] = true;
      }
    }
  }
  for (const bool h : hit) {
    if (h) ++score.targets_detected;
  }
  return score;
}

}  // namespace rif::core
