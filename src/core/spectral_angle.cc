#include "core/spectral_angle.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "linalg/kernels.h"
#include "support/check.h"

namespace rif::core {

namespace {

namespace kernels = linalg::kernels;

constexpr std::size_t kLanes = kernels::kScreenLanes;

double clamp_pm1(double v) { return v < -1.0 ? -1.0 : (v > 1.0 ? 1.0 : v); }

}  // namespace

double spectral_angle(std::span<const float> x, std::span<const float> y) {
  RIF_CHECK(x.size() == y.size() && !x.empty());
  double dot = 0.0, nx2 = 0.0, ny2 = 0.0;
  kernels::dot_norm(x.data(), y.data(), static_cast<int>(x.size()), &dot,
                    &nx2, &ny2);
  const double denom = std::sqrt(nx2 * ny2);
  if (denom <= 0.0) return 0.0;  // zero vector: treat as identical
  return std::acos(clamp_pm1(dot / denom));
}

UniqueSet::UniqueSet(int bands, double threshold_radians)
    : bands_(bands), threshold_(threshold_radians),
      cos_threshold_(std::cos(threshold_radians)) {
  RIF_CHECK(bands > 0);
  RIF_CHECK(threshold_radians > 0.0 && threshold_radians < 1.5707);
}

std::span<const float> UniqueSet::member(std::size_t i) const {
  RIF_DCHECK(i < count_);
  return {data_.data() + i * bands_, static_cast<std::size_t>(bands_)};
}

void UniqueSet::pack_member(std::span<const float> pixel) {
  const std::size_t lane = count_ % kLanes;
  if (lane == 0) {
    // Open a fresh zero-filled block; zero lanes keep the 8-wide kernel
    // valid on partially filled blocks.
    pack_.resize(pack_.size() + static_cast<std::size_t>(bands_) * kLanes,
                 0.0f);
  }
  float* block = pack_.data() +
                 (count_ / kLanes) * static_cast<std::size_t>(bands_) * kLanes;
  for (int b = 0; b < bands_; ++b) {
    block[static_cast<std::size_t>(b) * kLanes + lane] = pixel[b];
  }
}

bool UniqueSet::any_within(std::span<const float> pixel,
                           double pixel_inv_norm, std::size_t begin_member,
                           std::size_t end_member,
                           std::uint64_t* comparisons) const {
  RIF_DCHECK(static_cast<int>(pixel.size()) == bands_);
  RIF_DCHECK(end_member <= count_);
  // Angle test via cosine: angle <= threshold  <=>  cos >= cos(threshold).
  // Each SoA block yields 8 member dot products in one fused kernel call;
  // lanes outside [begin_member, end_member) are computed (they are free)
  // but never examined, so results and comparison counts match the
  // member-at-a-time scan exactly.
  std::uint64_t scanned = 0;
  std::size_t m = begin_member;
  while (m < end_member) {
    const std::size_t block = m / kLanes;
    const std::size_t block_begin = block * kLanes;
    const std::size_t lane_end =
        std::min(block_begin + kLanes, end_member) - block_begin;
    double dots[kLanes];
    kernels::dot8(pack_.data() +
                      block * static_cast<std::size_t>(bands_) * kLanes,
                  pixel.data(), bands_, dots);
    for (std::size_t lane = m - block_begin; lane < lane_end; ++lane) {
      ++scanned;
      const double cosine =
          dots[lane] * inv_norms_[block_begin + lane] * pixel_inv_norm;
      if (cosine >= cos_threshold_) {  // close to a member
        if (comparisons != nullptr) *comparisons += scanned;
        return true;
      }
    }
    m = block_begin + lane_end;
  }
  if (comparisons != nullptr) *comparisons += scanned;
  return false;
}

void UniqueSet::admit(std::span<const float> pixel, double inv_norm) {
  RIF_DCHECK(static_cast<int>(pixel.size()) == bands_);
  pack_member(pixel);
  data_.insert(data_.end(), pixel.begin(), pixel.end());
  inv_norms_.push_back(inv_norm);
  ++count_;
}

bool UniqueSet::screen(std::span<const float> pixel,
                       std::uint64_t* comparisons) {
  RIF_DCHECK(static_cast<int>(pixel.size()) == bands_);
  const double norm2 =
      kernels::dot(pixel.data(), pixel.data(), bands_);
  const double norm = std::sqrt(norm2);
  if (norm <= 0.0) return false;  // degenerate pixel never joins
  const double inv = 1.0 / norm;
  if (any_within(pixel, inv, 0, count_, comparisons)) return false;
  admit(pixel, inv);
  return true;
}

void UniqueSet::merge(const UniqueSet& other, std::uint64_t* comparisons) {
  RIF_CHECK(other.bands_ == bands_);
  for (std::size_t i = 0; i < other.count_; ++i) {
    screen(other.member(i), comparisons);
  }
}

UniqueSet UniqueSet::from_flat(int bands, double threshold_radians,
                               std::vector<float> flat) {
  RIF_CHECK(flat.size() % static_cast<std::size_t>(bands) == 0);
  UniqueSet set(bands, threshold_radians);
  const std::size_t count = flat.size() / bands;
  set.data_ = std::move(flat);
  set.inv_norms_.resize(count);
  for (std::size_t m = 0; m < count; ++m) {
    const float* mem = set.data_.data() + m * bands;
    const double n2 = linalg::kernels::dot(mem, mem, bands);
    RIF_CHECK_MSG(n2 > 0.0, "zero vector in flat unique set");
    set.inv_norms_[m] = 1.0 / std::sqrt(n2);
    set.pack_member({mem, static_cast<std::size_t>(bands)});
    ++set.count_;
  }
  return set;
}

double UniqueSet::min_angle_to(std::span<const float> pixel) const {
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t m = 0; m < count_; ++m) {
    best = std::min(best, spectral_angle(member(m), pixel));
  }
  return best;
}

UniqueSet screen_range(const hsi::ImageCube& cube, std::int64_t first_flat,
                       std::int64_t last_flat, double threshold_radians,
                       std::uint64_t* comparisons) {
  RIF_CHECK(first_flat >= 0 && last_flat <= cube.pixel_count() &&
            first_flat <= last_flat);
  UniqueSet set(cube.bands(), threshold_radians);
  for (std::int64_t p = first_flat; p < last_flat; ++p) {
    set.screen(cube.pixel(p), comparisons);
  }
  return set;
}

}  // namespace rif::core
