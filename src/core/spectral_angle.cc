#include "core/spectral_angle.h"

#include <cmath>
#include <limits>

#include "support/check.h"

namespace rif::core {

namespace {

/// Dot product and squared norms in one pass.
struct DotNorm {
  double dot = 0.0;
  double nx2 = 0.0;
  double ny2 = 0.0;
};

DotNorm dot_norm(std::span<const float> x, std::span<const float> y) {
  DotNorm r;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double xi = x[i];
    const double yi = y[i];
    r.dot += xi * yi;
    r.nx2 += xi * xi;
    r.ny2 += yi * yi;
  }
  return r;
}

double clamp_pm1(double v) { return v < -1.0 ? -1.0 : (v > 1.0 ? 1.0 : v); }

}  // namespace

double spectral_angle(std::span<const float> x, std::span<const float> y) {
  RIF_CHECK(x.size() == y.size() && !x.empty());
  const DotNorm r = dot_norm(x, y);
  const double denom = std::sqrt(r.nx2 * r.ny2);
  if (denom <= 0.0) return 0.0;  // zero vector: treat as identical
  return std::acos(clamp_pm1(r.dot / denom));
}

UniqueSet::UniqueSet(int bands, double threshold_radians)
    : bands_(bands), threshold_(threshold_radians),
      cos_threshold_(std::cos(threshold_radians)) {
  RIF_CHECK(bands > 0);
  RIF_CHECK(threshold_radians > 0.0 && threshold_radians < 1.5707);
}

std::span<const float> UniqueSet::member(std::size_t i) const {
  RIF_DCHECK(i < count_);
  return {data_.data() + i * bands_, static_cast<std::size_t>(bands_)};
}

bool UniqueSet::any_within(std::span<const float> pixel,
                           double pixel_inv_norm, std::size_t begin_member,
                           std::size_t end_member,
                           std::uint64_t* comparisons) const {
  RIF_DCHECK(static_cast<int>(pixel.size()) == bands_);
  RIF_DCHECK(end_member <= count_);
  // Angle test via cosine: angle <= threshold  <=>  cos >= cos(threshold).
  for (std::size_t m = begin_member; m < end_member; ++m) {
    if (comparisons != nullptr) ++*comparisons;
    const float* mem = data_.data() + m * bands_;
    double dot = 0.0;
    for (int b = 0; b < bands_; ++b) {
      dot += static_cast<double>(mem[b]) * pixel[b];
    }
    const double cosine = dot * inv_norms_[m] * pixel_inv_norm;
    if (cosine >= cos_threshold_) return true;  // close to a member
  }
  return false;
}

void UniqueSet::admit(std::span<const float> pixel, double inv_norm) {
  RIF_DCHECK(static_cast<int>(pixel.size()) == bands_);
  data_.insert(data_.end(), pixel.begin(), pixel.end());
  inv_norms_.push_back(inv_norm);
  ++count_;
}

bool UniqueSet::screen(std::span<const float> pixel,
                       std::uint64_t* comparisons) {
  RIF_DCHECK(static_cast<int>(pixel.size()) == bands_);
  double norm2 = 0.0;
  for (const float v : pixel) norm2 += static_cast<double>(v) * v;
  const double norm = std::sqrt(norm2);
  if (norm <= 0.0) return false;  // degenerate pixel never joins

  const double inv = 1.0 / norm;
  if (any_within(pixel, inv, 0, count_, comparisons)) return false;
  admit(pixel, inv);
  return true;
}

void UniqueSet::merge(const UniqueSet& other, std::uint64_t* comparisons) {
  RIF_CHECK(other.bands_ == bands_);
  for (std::size_t i = 0; i < other.count_; ++i) {
    screen(other.member(i), comparisons);
  }
}

UniqueSet UniqueSet::from_flat(int bands, double threshold_radians,
                               std::vector<float> flat) {
  RIF_CHECK(flat.size() % static_cast<std::size_t>(bands) == 0);
  UniqueSet set(bands, threshold_radians);
  set.count_ = flat.size() / bands;
  set.data_ = std::move(flat);
  set.inv_norms_.resize(set.count_);
  for (std::size_t m = 0; m < set.count_; ++m) {
    double n2 = 0.0;
    const float* mem = set.data_.data() + m * bands;
    for (int b = 0; b < bands; ++b) n2 += static_cast<double>(mem[b]) * mem[b];
    RIF_CHECK_MSG(n2 > 0.0, "zero vector in flat unique set");
    set.inv_norms_[m] = 1.0 / std::sqrt(n2);
  }
  return set;
}

double UniqueSet::min_angle_to(std::span<const float> pixel) const {
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t m = 0; m < count_; ++m) {
    best = std::min(best, spectral_angle(member(m), pixel));
  }
  return best;
}

UniqueSet screen_range(const hsi::ImageCube& cube, std::int64_t first_flat,
                       std::int64_t last_flat, double threshold_radians,
                       std::uint64_t* comparisons) {
  RIF_CHECK(first_flat >= 0 && last_flat <= cube.pixel_count() &&
            first_flat <= last_flat);
  UniqueSet set(cube.bands(), threshold_radians);
  for (std::int64_t p = first_flat; p < last_flat; ++p) {
    set.screen(cube.pixel(p), comparisons);
  }
  return set;
}

}  // namespace rif::core
