#include "core/parallel/parallel_pct.h"

#include <atomic>

#include "hsi/partition.h"
#include "linalg/stats.h"
#include "obs/span_tracer.h"
#include "support/check.h"

namespace rif::core {

namespace {

/// Blocked-concurrent unique-set fold: merges `other` into `unique` with
/// the admission decisions (and member order) of the sequential left fold,
/// but screens each block of candidates against the frozen member prefix
/// concurrently; only the comparisons against members admitted after the
/// freeze — at most a block's worth — run in fold order. The dominant cost
/// (candidate x full-set comparisons) thus parallelizes while the
/// data-dependent tail stays tiny, lifting the two-pass engine's main
/// Amdahl bottleneck. Results are independent of the pool's thread count.
/// `dropped[i]` is set for each rejected member.
void merge_blocked(UniqueSet& unique, const UniqueSet& other,
                   ThreadPool& pool, std::vector<std::uint8_t>& dropped,
                   std::uint64_t* comparisons) {
  const std::size_t n = other.size();
  dropped.assign(n, 0);
  constexpr std::size_t kBlock = 64;
  std::vector<std::uint8_t> hit(std::min(kBlock, n));
  std::uint64_t comps = 0;
  std::atomic<std::uint64_t> scan_comps{0};
  for (std::size_t b0 = 0; b0 < n; b0 += kBlock) {
    const std::size_t count = std::min(kBlock, n - b0);
    const std::size_t frozen = unique.size();
    if (frozen > 0) {
      pool.parallel_for(
          static_cast<std::int64_t>(count),
          [&](std::int64_t lo, std::int64_t hi) {
            std::uint64_t local = 0;
            for (std::int64_t c = lo; c < hi; ++c) {
              const std::size_t i = b0 + static_cast<std::size_t>(c);
              hit[c] = unique.any_within(other.member(i), other.inv_norm(i),
                                         0, frozen, &local)
                           ? 1
                           : 0;
            }
            scan_comps += local;
          });
    } else {
      std::fill_n(hit.begin(), count, 0);
    }
    for (std::size_t c = 0; c < count; ++c) {
      const std::size_t i = b0 + c;
      if (hit[c] != 0 ||
          unique.any_within(other.member(i), other.inv_norm(i), frozen,
                            unique.size(), &comps)) {
        dropped[i] = 1;
        continue;
      }
      unique.admit(other.member(i), other.inv_norm(i));
    }
  }
  if (comparisons != nullptr) *comparisons += comps + scan_comps.load();
}

}  // namespace

void fold_unique_moments(UniqueSet& unique, linalg::MomentAccumulator& total,
                         const UniqueSet& tile_set,
                         const linalg::MomentAccumulator& tile_moments,
                         ThreadPool& pool, std::vector<std::uint8_t>& dropped,
                         std::uint64_t* merge_comparisons) {
  const int bands = unique.bands();
  const std::size_t admit_start = unique.size();
  merge_blocked(unique, tile_set, pool, dropped, merge_comparisons);
  const std::size_t admits = unique.size() - admit_start;
  const std::size_t drops = tile_set.size() - admits;
  if (drops <= admits) {
    total.merge(tile_moments);
    for (std::size_t j = 0; j < tile_set.size(); ++j) {
      if (dropped[j] != 0) total.remove(tile_set.member(j));
    }
  } else if (admits > 0) {
    total.add_block(unique.flat().data() + admit_start * bands,
                    static_cast<int>(admits));
  }
}

PctResult fuse_parallel(const hsi::ImageCube& cube, ThreadPool& pool,
                        const ParallelPctConfig& config) {
  RIF_CHECK(config.pct.output_components >= 3);
  const int bands = cube.bands();
  const int tiles = config.tiles > 0 ? config.tiles : pool.size();
  PctResult result;

  // Step 1 (concurrent): per-tile unique sets.
  const hsi::CubeShape shape{cube.width(), cube.height(), bands};
  const auto tile_list = hsi::partition_rows(shape, tiles);
  std::vector<UniqueSet> tile_sets;
  tile_sets.reserve(tile_list.size());
  for (const auto& t : tile_list) {
    (void)t;
    tile_sets.emplace_back(bands, config.pct.screening_threshold);
  }
  std::atomic<std::uint64_t> comparisons{0};
  pool.parallel_tasks(static_cast<int>(tile_list.size()), [&](int i) {
    const auto& t = tile_list[i];
    std::uint64_t local = 0;
    const std::int64_t first = t.first_flat_index();
    for (std::int64_t p = first; p < first + t.pixels(); ++p) {
      tile_sets[i].screen(cube.pixel(p), &local);
    }
    comparisons += local;
  });
  result.screen_comparisons = comparisons.load();

  // Step 2: merge the per-tile sets. Sequential left fold in tile order
  // matches the distributed manager bit-for-bit; the parallel tree merge
  // trades that for scalability on real multiprocessors.
  UniqueSet unique(bands, config.pct.screening_threshold);
  std::atomic<std::uint64_t> merge_comparisons{0};
  if (config.parallel_merge && tile_sets.size() > 1) {
    std::vector<UniqueSet> level = std::move(tile_sets);
    while (level.size() > 1) {
      const int pairs = static_cast<int>(level.size() / 2);
      pool.parallel_tasks(pairs, [&](int i) {
        std::uint64_t local = 0;
        level[2 * i].merge(level[2 * i + 1], &local);
        merge_comparisons += local;
      });
      // Survivors are the even slots; an unpaired trailing set (odd count)
      // is an even slot too and rides along to the next level.
      std::vector<UniqueSet> next;
      next.reserve((level.size() + 1) / 2);
      for (std::size_t i = 0; i < level.size(); i += 2) {
        next.push_back(std::move(level[i]));
      }
      level = std::move(next);
    }
    unique = std::move(level.front());
  } else {
    std::uint64_t local = 0;
    for (const auto& set : tile_sets) unique.merge(set, &local);
    merge_comparisons += local;
  }
  result.merge_comparisons = merge_comparisons.load();
  result.unique_set_size = unique.size();
  RIF_CHECK_MSG(unique.size() >= 3, "degenerate scene: unique set too small");

  // Step 3: mean over the unique set.
  linalg::MeanAccumulator mean_acc(bands);
  for (std::size_t i = 0; i < unique.size(); ++i) mean_acc.add(unique.member(i));
  result.mean = mean_acc.mean();

  // Step 4 (concurrent): sharded covariance sums.
  const int shards = config.cov_shards > 0 ? config.cov_shards : pool.size();
  const auto chunks =
      hsi::partition_range(static_cast<std::int64_t>(unique.size()), shards);
  std::vector<linalg::CovarianceAccumulator> accs;
  accs.reserve(shards);
  for (int s = 0; s < shards; ++s) accs.emplace_back(bands, result.mean);
  pool.parallel_tasks(shards, [&](int s) {
    constexpr std::int64_t kRows = linalg::CovarianceAccumulator::kBlockRows;
    for (std::int64_t i = chunks[s].begin; i < chunks[s].end; i += kRows) {
      accs[s].add_block(unique.flat().data() + i * bands,
                        static_cast<int>(std::min(kRows, chunks[s].end - i)));
    }
  });

  // Step 5 (sequential): average.
  linalg::CovarianceAccumulator total = std::move(accs.front());
  for (int s = 1; s < shards; ++s) total.merge(accs[s]);
  const linalg::Matrix cov = total.covariance();

  // Step 6 (sequential): eigen-decomposition.
  linalg::EigenResult eig = linalg::jacobi_eigen(cov, config.pct.jacobi);
  result.eigenvalues = eig.values;
  result.eigenvectors = eig.vectors;
  result.jacobi_sweeps = eig.sweeps;

  // Steps 7-8 (concurrent): transform + colour map.
  const linalg::Matrix t =
      transform_matrix(eig.vectors, config.pct.output_components);
  const auto scales = scales_from_eigenvalues(eig.values);
  const auto n = static_cast<std::size_t>(cube.pixel_count());
  result.component_planes.assign(config.pct.output_components,
                                 std::vector<float>(n));
  result.composite = hsi::RgbImage(cube.width(), cube.height());
  pool.parallel_for(cube.pixel_count(), [&](std::int64_t lo, std::int64_t hi) {
    transform_and_map_range(cube, t, result.mean, scales,
                            result.component_planes, result.composite, lo, hi);
  });
  return result;
}

PctResult fuse_parallel(const hsi::ImageCube& cube,
                        const ParallelPctConfig& config) {
  ThreadPool pool(config.threads);
  return fuse_parallel(cube, pool, config);
}

PctResult fuse_parallel_fused(const hsi::ImageCube& cube, ThreadPool& pool,
                              const ParallelPctConfig& config) {
  RIF_CHECK(config.pct.output_components >= 3);
  // Per-tile spans execute on pool workers, outside the caller's JobScope;
  // capture the ambient job once and attribute explicitly.
  const std::int64_t trace_job = obs::current_job();
  const int bands = cube.bands();
  const int tiles = config.tiles > 0 ? config.tiles : pool.size();
  PctResult result;

  const hsi::CubeShape shape{cube.width(), cube.height(), bands};
  const auto tile_list = hsi::partition_rows(shape, tiles);
  const int tile_count = static_cast<int>(tile_list.size());

  // Common provisional origin for every tile's moment sums: the cube's
  // first pixel. Any shared vector works; a representative pixel keeps the
  // sums small so the final mean correction is well-conditioned.
  std::vector<double> origin(bands);
  {
    const auto p0 = cube.pixel(0);
    for (int b = 0; b < bands; ++b) origin[b] = static_cast<double>(p0[b]);
  }

  // Single fused pass (concurrent): screen each tile's pixels and, as
  // members are admitted into the tile's unique set, fold them into the
  // tile's moment sums straight from the set's flat storage — cache-hot,
  // in blocks sized for the packed-triangle kernel.
  std::vector<UniqueSet> tile_sets;
  std::vector<linalg::MomentAccumulator> tile_moments;
  tile_sets.reserve(tile_count);
  tile_moments.reserve(tile_count);
  for (int i = 0; i < tile_count; ++i) {
    tile_sets.emplace_back(bands, config.pct.screening_threshold);
    tile_moments.emplace_back(bands, origin);
  }
  constexpr std::size_t kMomentBlock = 32;
  std::atomic<std::uint64_t> comparisons{0};
  // Manual phase begin/end (one RAII span would blanket the whole engine);
  // `traced` is captured once so every begun phase also ends.
  obs::SpanTracer& tracer = obs::SpanTracer::instance();
  const bool traced = tracer.enabled();
  if (traced) tracer.begin("fused_screen", trace_job);
  pool.parallel_tasks(tile_count, [&](int i) {
    RIF_TRACE_SPAN_JOB("tile_screen", trace_job);
    const auto& t = tile_list[i];
    UniqueSet& set = tile_sets[i];
    linalg::MomentAccumulator& mom = tile_moments[i];
    std::uint64_t local = 0;
    std::size_t flushed = 0;
    for (std::int64_t p = t.first_flat_index(); p < t.end_flat_index(); ++p) {
      set.screen(cube.pixel(p), &local);
      if (set.size() - flushed >= kMomentBlock) {
        mom.add_block(set.flat().data() + flushed * bands,
                      static_cast<int>(set.size() - flushed));
        flushed = set.size();
      }
    }
    if (set.size() > flushed) {
      mom.add_block(set.flat().data() + flushed * bands,
                    static_cast<int>(set.size() - flushed));
    }
    comparisons += local;
  });
  result.screen_comparisons = comparisons.load();
  if (traced) tracer.end("fused_screen", trace_job);

  // Merge with the blocked-concurrent fold. The first tile is admitted
  // wholesale: its members are mutually distinct under the same threshold,
  // so the fold would accept every one. For later tiles the moment sums
  // follow the cheaper of two exact bookkeeping paths: retract the dropped
  // members from the tile's sums, or rebuild the tile's contribution from
  // the admitted members (contiguous in the merged set's flat storage, so
  // the blocked kernel applies). Either way the surviving sums are exactly
  // those of the merged unique set, and `parallel_merge` is moot — this
  // merge parallelizes while preserving the sequential fold's order.
  UniqueSet unique = std::move(tile_sets.front());
  linalg::MomentAccumulator total = std::move(tile_moments.front());
  std::vector<std::uint8_t> dropped;
  if (traced) tracer.begin("fused_fold", trace_job);
  for (int i = 1; i < tile_count; ++i) {
    fold_unique_moments(unique, total, tile_sets[static_cast<std::size_t>(i)],
                        tile_moments[static_cast<std::size_t>(i)], pool,
                        dropped, &result.merge_comparisons);
  }
  if (traced) tracer.end("fused_fold", trace_job);
  result.unique_set_size = unique.size();
  RIF_CHECK_MSG(unique.size() >= 3, "degenerate scene: unique set too small");
  RIF_CHECK(total.count() == unique.size());

  // Mean and covariance fall out of the moment sums — corrected against the
  // final global mean instead of recomputed in extra passes.
  result.mean = total.mean();
  const linalg::Matrix cov = total.covariance();

  // Eigen-decomposition (sequential, as in every engine).
  if (traced) tracer.begin("fused_eigen", trace_job);
  linalg::EigenResult eig = linalg::jacobi_eigen(cov, config.pct.jacobi);
  if (traced) tracer.end("fused_eigen", trace_job);
  result.eigenvalues = eig.values;
  result.eigenvectors = eig.vectors;
  result.jacobi_sweeps = eig.sweeps;

  // Transform + colour map, reusing the same row tiling as the fused pass.
  const linalg::Matrix t =
      transform_matrix(eig.vectors, config.pct.output_components);
  const auto scales = scales_from_eigenvalues(eig.values);
  const auto n = static_cast<std::size_t>(cube.pixel_count());
  result.component_planes.assign(config.pct.output_components,
                                 std::vector<float>(n));
  result.composite = hsi::RgbImage(cube.width(), cube.height());
  if (traced) tracer.begin("fused_transform", trace_job);
  pool.parallel_tasks(tile_count, [&](int i) {
    RIF_TRACE_SPAN_JOB("tile_transform", trace_job);
    transform_and_map_range(cube, t, result.mean, scales,
                            result.component_planes, result.composite,
                            tile_list[i].first_flat_index(),
                            tile_list[i].end_flat_index());
  });
  if (traced) tracer.end("fused_transform", trace_job);
  return result;
}

PctResult fuse_parallel_fused(const hsi::ImageCube& cube,
                              const ParallelPctConfig& config) {
  ThreadPool pool(config.threads);
  return fuse_parallel_fused(cube, pool, config);
}

}  // namespace rif::core
