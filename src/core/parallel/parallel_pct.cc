#include "core/parallel/parallel_pct.h"

#include <atomic>

#include "hsi/partition.h"
#include "linalg/stats.h"
#include "support/check.h"

namespace rif::core {

PctResult fuse_parallel(const hsi::ImageCube& cube, ThreadPool& pool,
                        const ParallelPctConfig& config) {
  RIF_CHECK(config.pct.output_components >= 3);
  const int bands = cube.bands();
  const int tiles = config.tiles > 0 ? config.tiles : pool.size();
  PctResult result;

  // Step 1 (concurrent): per-tile unique sets.
  const hsi::CubeShape shape{cube.width(), cube.height(), bands};
  const auto tile_list = hsi::partition_rows(shape, tiles);
  std::vector<UniqueSet> tile_sets;
  tile_sets.reserve(tile_list.size());
  for (const auto& t : tile_list) {
    (void)t;
    tile_sets.emplace_back(bands, config.pct.screening_threshold);
  }
  std::atomic<std::uint64_t> comparisons{0};
  pool.parallel_tasks(static_cast<int>(tile_list.size()), [&](int i) {
    const auto& t = tile_list[i];
    std::uint64_t local = 0;
    const std::int64_t first = t.first_flat_index();
    for (std::int64_t p = first; p < first + t.pixels(); ++p) {
      tile_sets[i].screen(cube.pixel(p), &local);
    }
    comparisons += local;
  });
  result.screen_comparisons = comparisons.load();

  // Step 2: merge the per-tile sets. Sequential left fold in tile order
  // matches the distributed manager bit-for-bit; the parallel tree merge
  // trades that for scalability on real multiprocessors.
  UniqueSet unique(bands, config.pct.screening_threshold);
  if (config.parallel_merge && tile_sets.size() > 1) {
    std::vector<UniqueSet> level = std::move(tile_sets);
    while (level.size() > 1) {
      const int pairs = static_cast<int>(level.size() / 2);
      pool.parallel_tasks(pairs, [&](int i) {
        level[2 * i].merge(level[2 * i + 1]);
      });
      // Survivors are the even slots; an unpaired trailing set (odd count)
      // is an even slot too and rides along to the next level.
      std::vector<UniqueSet> next;
      next.reserve((level.size() + 1) / 2);
      for (std::size_t i = 0; i < level.size(); i += 2) {
        next.push_back(std::move(level[i]));
      }
      level = std::move(next);
    }
    unique = std::move(level.front());
  } else {
    for (const auto& set : tile_sets) unique.merge(set);
  }
  result.unique_set_size = unique.size();
  RIF_CHECK_MSG(unique.size() >= 3, "degenerate scene: unique set too small");

  // Step 3: mean over the unique set.
  linalg::MeanAccumulator mean_acc(bands);
  for (std::size_t i = 0; i < unique.size(); ++i) mean_acc.add(unique.member(i));
  result.mean = mean_acc.mean();

  // Step 4 (concurrent): sharded covariance sums.
  const int shards = config.cov_shards > 0 ? config.cov_shards : pool.size();
  const auto chunks =
      hsi::partition_range(static_cast<std::int64_t>(unique.size()), shards);
  std::vector<linalg::CovarianceAccumulator> accs;
  accs.reserve(shards);
  for (int s = 0; s < shards; ++s) accs.emplace_back(bands, result.mean);
  pool.parallel_tasks(shards, [&](int s) {
    for (std::int64_t i = chunks[s].begin; i < chunks[s].end; ++i) {
      accs[s].add(unique.member(static_cast<std::size_t>(i)));
    }
  });

  // Step 5 (sequential): average.
  linalg::CovarianceAccumulator total = std::move(accs.front());
  for (int s = 1; s < shards; ++s) total.merge(accs[s]);
  const linalg::Matrix cov = total.covariance();

  // Step 6 (sequential): eigen-decomposition.
  linalg::EigenResult eig = linalg::jacobi_eigen(cov, config.pct.jacobi);
  result.eigenvalues = eig.values;
  result.eigenvectors = eig.vectors;
  result.jacobi_sweeps = eig.sweeps;

  // Steps 7-8 (concurrent): transform + colour map.
  const linalg::Matrix t =
      transform_matrix(eig.vectors, config.pct.output_components);
  const auto scales = scales_from_eigenvalues(eig.values);
  const auto n = static_cast<std::size_t>(cube.pixel_count());
  result.component_planes.assign(config.pct.output_components,
                                 std::vector<float>(n));
  result.composite = hsi::RgbImage(cube.width(), cube.height());
  pool.parallel_for(cube.pixel_count(), [&](std::int64_t lo, std::int64_t hi) {
    std::vector<float> comp(config.pct.output_components);
    for (std::int64_t p = lo; p < hi; ++p) {
      transform_pixel(t, result.mean, cube.pixel(p), comp);
      for (int c = 0; c < config.pct.output_components; ++c) {
        result.component_planes[c][p] = comp[c];
      }
      const auto rgb = map_pixel({comp[0], comp[1], comp[2]}, scales);
      result.composite.data[p * 3 + 0] = rgb[0];
      result.composite.data[p * 3 + 1] = rgb[1];
      result.composite.data[p * 3 + 2] = rgb[2];
    }
  });
  return result;
}

PctResult fuse_parallel(const hsi::ImageCube& cube,
                        const ParallelPctConfig& config) {
  ThreadPool pool(config.threads);
  return fuse_parallel(cube, pool, config);
}

}  // namespace rif::core
