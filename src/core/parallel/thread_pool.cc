#include "core/parallel/thread_pool.h"

#include <chrono>
#include <utility>

namespace rif::core {

namespace {

/// The pool (if any) whose worker_loop owns this thread. Distinguishes a
/// pool's own execution threads from external callers — including workers
/// of a DIFFERENT pool — when attributing idle time in the blocking
/// helpers. (A thread parked inside another pool's helper is attributed
/// to neither pool.)
thread_local const void* t_owner_pool = nullptr;

std::int64_t now_nanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ThreadPool::ThreadPool(int threads) {
  RIF_CHECK(threads >= 1);
  threads_.reserve(threads);
  for (int i = 0; i < threads; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::run_one(std::unique_lock<std::mutex>& lock, bool helping) {
  std::function<void()> task = std::move(queue_.front());
  queue_.pop_front();
  lock.unlock();
  task();  // task wrappers never throw; errors land in their TaskGroup
  lock.lock();
  // Metric pointer reads stay under the pool mutex (like every other
  // site), so bind_metrics can publish them race-free at any time.
  if (tasks_metric_ != nullptr) tasks_metric_->add(1);
  if (helping && helped_metric_ != nullptr) helped_metric_->add(1);
}

void ThreadPool::bind_metrics(runtime::MetricsRegistry& registry,
                              const std::string& prefix) {
  // Series creation first (takes the registry's own lock), then one
  // atomic publish under the pool mutex: workers park — and read these
  // pointers — the moment the constructor returns, so even a bind right
  // after construction races without this.
  runtime::Counter& tasks = registry.counter(prefix + "tasks_executed");
  runtime::Counter& helped = registry.counter(prefix + "helped_tasks");
  runtime::Counter& parks = registry.counter(prefix + "parks");
  runtime::Gauge& idle =
      registry.gauge(prefix + "idle_seconds", runtime::GaugeKind::kSum);
  const std::lock_guard<std::mutex> lock(mutex_);
  tasks_metric_ = &tasks;
  helped_metric_ = &helped;
  parks_metric_ = &parks;
  idle_metric_ = &idle;
}

double ThreadPool::idle_seconds() const {
  std::lock_guard lock(mutex_);
  std::int64_t total = idle_nanos_;
  if (parked_threads_ > 0) {
    total += parked_threads_ * now_nanos() - park_start_sum_nanos_;
  }
  return static_cast<double>(total) * 1e-9;
}

void ThreadPool::worker_loop() {
  t_owner_pool = this;
  std::unique_lock lock(mutex_);
  for (;;) {
    if (!stopping_ && queue_.empty()) {
      const std::int64_t t0 = now_nanos();
      ++parked_threads_;
      park_start_sum_nanos_ += t0;
      if (parks_metric_ != nullptr) parks_metric_->add(1);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      --parked_threads_;
      park_start_sum_nanos_ -= t0;
      const std::int64_t parked = now_nanos() - t0;
      idle_nanos_ += parked;
      if (idle_metric_ != nullptr) {
        idle_metric_->record(static_cast<double>(parked) * 1e-9);
      }
    }
    if (stopping_ && queue_.empty()) return;
    run_one(lock);
  }
}

void ThreadPool::parallel_tasks(int count, const std::function<void(int)>& fn) {
  RIF_CHECK(count >= 0);
  if (count == 0) return;

  // The group and `fn` are captured by reference: tasks only touch them
  // before decrementing `remaining`, and this frame outlives the decrement
  // to zero (see the wait loop below).
  TaskGroup group;
  group.remaining = count;
  {
    std::lock_guard lock(mutex_);
    RIF_CHECK_MSG(!stopping_, "parallel_tasks on a stopping pool");
    for (int i = 0; i < count; ++i) {
      queue_.push_back([this, &group, &fn, i] {
        try {
          fn(i);
        } catch (...) {
          std::lock_guard lk(mutex_);
          if (!group.first_error) group.first_error = std::current_exception();
        }
        std::lock_guard lk(mutex_);
        if (--group.remaining == 0) group.done.notify_all();
      });
    }
  }
  cv_.notify_all();

  // Help-while-waiting: drain the queue (our own tasks or anyone else's —
  // nested groups submitted by our tasks included) instead of parking a
  // thread. Sleeping is safe only when the queue is empty: our unfinished
  // tasks are then running on other threads, each helping the same way, so
  // some thread always makes progress and nesting cannot deadlock.
  std::unique_lock lock(mutex_);
  while (group.remaining > 0) {
    if (!queue_.empty()) {
      run_one(lock, /*helping=*/true);
    } else {
      // The queue clause matters only at wait entry: it closes the race
      // where a task was enqueued between our empty-check and the wait's
      // predicate evaluation. Once parked, nothing notifies this CV until
      // the group completes — a mid-sleep enqueue does not wake us, which
      // is safe because every enqueuer helps drain its own work.
      // A parked execution thread of THIS pool (nested helper out of
      // work) is idle capacity; a parked external caller — including a
      // worker of some other pool — is not.
      const bool own_thread = t_owner_pool == this;
      const std::int64_t t0 = own_thread ? now_nanos() : 0;
      if (own_thread) {
        ++parked_threads_;
        park_start_sum_nanos_ += t0;
        if (parks_metric_ != nullptr) parks_metric_->add(1);
      }
      group.done.wait(lock,
                      [&] { return group.remaining == 0 || !queue_.empty(); });
      if (own_thread) {
        --parked_threads_;
        park_start_sum_nanos_ -= t0;
        const std::int64_t parked = now_nanos() - t0;
        idle_nanos_ += parked;
        if (idle_metric_ != nullptr) {
          idle_metric_->record(static_cast<double>(parked) * 1e-9);
        }
      }
    }
  }
  if (group.first_error) std::rethrow_exception(group.first_error);
}

void ThreadPool::parallel_for(
    std::int64_t n, const std::function<void(std::int64_t, std::int64_t)>& fn) {
  RIF_CHECK(n >= 0);
  if (n == 0) return;
  const int chunks = static_cast<int>(
      std::min<std::int64_t>(n, static_cast<std::int64_t>(threads_.size())));
  const std::int64_t base = n / chunks;
  const std::int64_t extra = n % chunks;
  std::vector<std::pair<std::int64_t, std::int64_t>> ranges;
  std::int64_t pos = 0;
  for (int c = 0; c < chunks; ++c) {
    const std::int64_t len = base + (c < extra ? 1 : 0);
    ranges.emplace_back(pos, pos + len);
    pos += len;
  }
  parallel_tasks(chunks, [&](int c) { fn(ranges[c].first, ranges[c].second); });
}

}  // namespace rif::core
