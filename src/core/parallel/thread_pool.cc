#include "core/parallel/thread_pool.h"

#include <atomic>

namespace rif::core {

ThreadPool::ThreadPool(int threads) {
  RIF_CHECK(threads >= 1);
  threads_.reserve(threads);
  for (int i = 0; i < threads; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::parallel_tasks(int count, const std::function<void(int)>& fn) {
  RIF_CHECK(count >= 0);
  if (count == 0) return;

  std::mutex done_mutex;
  std::condition_variable done_cv;
  int remaining = count;
  std::exception_ptr first_error;

  for (int i = 0; i < count; ++i) {
    submit([&, i] {
      try {
        fn(i);
      } catch (...) {
        std::lock_guard lock(done_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      {
        std::lock_guard lock(done_mutex);
        --remaining;
      }
      done_cv.notify_one();
    });
  }
  std::unique_lock lock(done_mutex);
  done_cv.wait(lock, [&] { return remaining == 0; });
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::parallel_for(
    std::int64_t n, const std::function<void(std::int64_t, std::int64_t)>& fn) {
  RIF_CHECK(n >= 0);
  if (n == 0) return;
  const int chunks =
      static_cast<int>(std::min<std::int64_t>(n, threads_.size()));
  const std::int64_t base = n / chunks;
  const std::int64_t extra = n % chunks;
  std::vector<std::pair<std::int64_t, std::int64_t>> ranges;
  std::int64_t pos = 0;
  for (int c = 0; c < chunks; ++c) {
    const std::int64_t len = base + (c < extra ? 1 : 0);
    ranges.emplace_back(pos, pos + len);
    pos += len;
  }
  parallel_tasks(chunks, [&](int c) { fn(ranges[c].first, ranges[c].second); });
}

}  // namespace rif::core
