// Work-queue thread pool with help-while-waiting blocking helpers.
//
// Used by the shared-memory variant of the fusion pipeline (the paper's §4
// remark about multiprocessor operation) and by FusionService, which runs
// many concurrent jobs — each internally parallel — on ONE shared pool.
//
// That sharing is what shapes the design: the blocking helpers
// (parallel_for / parallel_tasks) do not sleep on a condition variable
// while their tasks run. A caller *helps*: it pops and executes queued
// tasks until its own task group completes, and only sleeps when the queue
// is empty (its remaining tasks are then in flight on other threads, each
// of which helps in the same way). This makes nested parallelism — a task
// that itself calls parallel_for on the same pool — deadlock-free even on
// a 1-thread pool: the caller occupies no worker slot while blocked,
// because it IS a worker while blocked.
//
// The flip side of helping: a blocked caller may execute arbitrary
// UNRELATED queued tasks on its own stack. Do not hold a non-reentrant
// lock across parallel_for/parallel_tasks — a helped task that takes the
// same lock self-deadlocks, even though the old park-on-CV pool would
// have been fine.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "runtime/metrics.h"
#include "support/check.h"

namespace rif::core {

class ThreadPool {
 public:
  explicit ThreadPool(int threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int size() const { return static_cast<int>(threads_.size()); }

  /// Cumulative seconds the pool's execution threads have spent PARKED
  /// (waiting for work, either in the worker loop or while blocked inside
  /// a nested parallel_* call with an empty queue) since construction.
  /// Parks in progress are included pro-rata at read time, so deltas over
  /// an interval are exact even when a park spans the interval boundary.
  /// Monotone; busy time over an interval is
  ///   threads * wall_interval - (idle_end - idle_start).
  /// External callers blocked in parallel_* are not execution threads and
  /// do not count. Feeds the FusionService host-pool utilisation report.
  [[nodiscard]] double idle_seconds() const;

  /// Run fn(chunk_begin, chunk_end) over [0, n) split into one contiguous
  /// chunk per thread; blocks until every chunk completes, executing queued
  /// tasks while it waits. Rethrows the first worker exception. Safe to
  /// call from inside a pool task (nested parallelism).
  void parallel_for(std::int64_t n,
                    const std::function<void(std::int64_t, std::int64_t)>& fn);

  /// Run fn(i) for i in [0, count) as `count` independent tasks; blocks,
  /// helping execute queued tasks while waiting. Safe to call from inside a
  /// pool task (nested parallelism) and concurrently from many threads.
  void parallel_tasks(int count, const std::function<void(int)>& fn);

  /// Wire the pool into a metrics registry. Creates, under `prefix`:
  ///   <prefix>tasks_executed  counter — every task run to completion
  ///   <prefix>helped_tasks    counter — the subset executed by a BLOCKED
  ///                           caller inside parallel_* (the
  ///                           help-while-waiting steals)
  ///   <prefix>parks           counter — times a thread went to sleep for
  ///                           lack of work
  ///   <prefix>idle_seconds    gauge (sum) — completed park time
  /// Publication is synchronized with the pool mutex (workers read the
  /// series pointers under it), so binding is safe at any point; activity
  /// before the bind is simply not counted. The registry must outlive the
  /// pool.
  void bind_metrics(runtime::MetricsRegistry& registry,
                    const std::string& prefix);

 private:
  /// Completion state of one parallel_tasks call, guarded by the pool
  /// mutex. Lives on the caller's stack: the caller cannot return before
  /// remaining hits zero, which is also the last touch by any task.
  struct TaskGroup {
    int remaining = 0;
    std::exception_ptr first_error;
    std::condition_variable done;
  };

  void worker_loop();
  /// Pop and run the front task. `lock` is held on entry and exit,
  /// released around the task body. `helping` marks execution by a
  /// blocked parallel_* caller rather than the worker loop.
  void run_one(std::unique_lock<std::mutex>& lock, bool helping = false);

  std::vector<std::thread> threads_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;

  // Idle bookkeeping (guarded by mutex_, which every park holds at entry
  // and exit): completed parks accumulate into idle_nanos_; in-progress
  // parks are reconstructed at read time from their count and the sum of
  // their start stamps (see idle_seconds()).
  std::int64_t idle_nanos_ = 0;
  int parked_threads_ = 0;
  std::int64_t park_start_sum_nanos_ = 0;

  // Optional metrics series (bind_metrics); null = unwired. Updates are
  // single relaxed atomic ops, cheap enough for the task path.
  runtime::Counter* tasks_metric_ = nullptr;
  runtime::Counter* helped_metric_ = nullptr;
  runtime::Counter* parks_metric_ = nullptr;
  runtime::Gauge* idle_metric_ = nullptr;
};

}  // namespace rif::core
