// Minimal work-queue thread pool plus a blocking parallel_for.
//
// Used by the shared-memory variant of the fusion pipeline (the paper's §4
// remark about multiprocessor operation). Kept deliberately simple: tasks
// are std::function, parallel_for partitions an index range into contiguous
// chunks, and exceptions in workers propagate to the caller.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "support/check.h"

namespace rif::core {

class ThreadPool {
 public:
  explicit ThreadPool(int threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int size() const { return static_cast<int>(threads_.size()); }

  /// Run fn(chunk_begin, chunk_end) over [0, n) split into one contiguous
  /// chunk per thread; blocks until every chunk completes. Rethrows the
  /// first worker exception.
  void parallel_for(std::int64_t n,
                    const std::function<void(std::int64_t, std::int64_t)>& fn);

  /// Run fn(i) for i in [0, count) as `count` independent tasks; blocks.
  void parallel_tasks(int count, const std::function<void(int)>& fn);

 private:
  void worker_loop();
  void submit(std::function<void()> task);

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
};

}  // namespace rif::core
