// Shared-memory variant of the spectral-screening PCT pipeline.
//
// This is the real multithreaded implementation (the paper's §4 remark:
// "On a shared memory system, the concurrent algorithm presented here
// operates within 5% of linear speedup"). It computes exactly the same
// function as the distributed Full-mode run with the same tile count:
// per-tile screening, in-order merge, sharded covariance, sequential eigen
// step, parallel transform + colour mapping.
#pragma once

#include "core/parallel/thread_pool.h"
#include "core/pct.h"

namespace rif::core {

struct ParallelPctConfig {
  PctConfig pct;
  int threads = 4;
  /// Screening tiles; defaults to `threads` when 0. Using the same value as
  /// a distributed run's total tile count makes the outputs identical.
  int tiles = 0;
  /// Covariance shard count; defaults to `threads` when 0. Summation
  /// grouping affects floating-point rounding, so fix this (e.g. to the
  /// distributed worker count) when bit-exact comparison matters.
  int cov_shards = 0;
  /// Merge the per-tile unique sets as a parallel pairwise tree instead of
  /// a sequential left fold. Lifts the main Amdahl bottleneck on real
  /// multiprocessors; the resulting set is a valid unique set but differs
  /// from the sequential fold's member order, so leave this off when
  /// comparing against distributed runs bit-for-bit.
  bool parallel_merge = false;
};

/// Fuse a cube with a caller-provided pool (reusable across calls).
PctResult fuse_parallel(const hsi::ImageCube& cube, ThreadPool& pool,
                        const ParallelPctConfig& config);

/// Convenience overload owning a transient pool.
PctResult fuse_parallel(const hsi::ImageCube& cube,
                        const ParallelPctConfig& config);

}  // namespace rif::core
