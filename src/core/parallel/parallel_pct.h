// Shared-memory variant of the spectral-screening PCT pipeline.
//
// This is the real multithreaded implementation (the paper's §4 remark:
// "On a shared memory system, the concurrent algorithm presented here
// operates within 5% of linear speedup"). It computes exactly the same
// function as the distributed Full-mode run with the same tile count:
// per-tile screening, in-order merge, sharded covariance, sequential eigen
// step, parallel transform + colour mapping.
#pragma once

#include <cstdint>
#include <vector>

#include "core/parallel/thread_pool.h"
#include "core/pct.h"
#include "core/spectral_angle.h"
#include "linalg/stats.h"

namespace rif::core {

struct ParallelPctConfig {
  PctConfig pct;
  int threads = 4;
  /// Screening tiles; defaults to `threads` when 0. Using the same value as
  /// a distributed run's total tile count makes the outputs identical.
  int tiles = 0;
  /// Covariance shard count; defaults to `threads` when 0. Summation
  /// grouping affects floating-point rounding, so fix this (e.g. to the
  /// distributed worker count) when bit-exact comparison matters.
  int cov_shards = 0;
  /// Merge the per-tile unique sets as a parallel pairwise tree instead of
  /// a sequential left fold. Lifts the main Amdahl bottleneck on real
  /// multiprocessors; the resulting set is a valid unique set but differs
  /// from the sequential fold's member order, so leave this off when
  /// comparing against distributed runs bit-for-bit.
  bool parallel_merge = false;
};

/// Fuse a cube with a caller-provided pool (reusable across calls).
PctResult fuse_parallel(const hsi::ImageCube& cube, ThreadPool& pool,
                        const ParallelPctConfig& config);

/// Convenience overload owning a transient pool.
PctResult fuse_parallel(const hsi::ImageCube& cube,
                        const ParallelPctConfig& config);

/// Fused single-pass engine: each tile worker screens its pixels AND
/// accumulates the tile's moment sums (mean + covariance about a common
/// provisional origin, cache-blocked) in ONE sweep, so the unique set is
/// never re-read after screening. The merge is a blocked-concurrent fold —
/// candidates screen against the frozen member prefix in parallel while
/// admission stays in fold order — and keeps the moment sums exact by
/// either retracting dropped members or rebuilding from admitted ones,
/// whichever is cheaper. The covariance is then corrected against the
/// final global mean (see linalg::MomentAccumulator), and the
/// transform/colour-map stage reuses the same row tiling.
///
/// With the same tile count this follows the same screening order and
/// admission rule as fuse_parallel — both engines screen through the one
/// shared SIMD kernel in UniqueSet, so the merged unique sets are
/// identical — and computes the same composite up to floating-point
/// rounding of the moment correction (per-pixel tolerance, not
/// bit-for-bit). `cov_shards` is ignored (covariance sharding is
/// replaced by per-tile accumulation); `parallel_merge` is ignored (the
/// blocked fold already parallelizes the merge without reordering
/// members).
PctResult fuse_parallel_fused(const hsi::ImageCube& cube, ThreadPool& pool,
                              const ParallelPctConfig& config);

/// Convenience overload owning a transient pool.
PctResult fuse_parallel_fused(const hsi::ImageCube& cube,
                              const ParallelPctConfig& config);

/// The fused engine's merge step, exposed as the shared primitive behind
/// fuse_parallel_fused and the out-of-core StreamingFusionEngine: fold one
/// tile's unique set AND its moment sums into the running global pair.
///
/// The set fold is the blocked-concurrent variant — candidates screen
/// against the frozen member prefix in parallel on `pool`, admissions stay
/// in sequential fold order, so the merged set is identical to a
/// sequential left fold (and independent of the pool's thread count). The
/// surviving moment sums are kept exact by the cheaper of two paths:
/// retract the dropped members from the tile's sums, or rebuild the tile's
/// contribution from the admitted members. Both accumulators must share
/// the same origin. `dropped` is caller-owned scratch (reused across
/// calls); `merge_comparisons`, if non-null, accrues angle evaluations.
void fold_unique_moments(UniqueSet& unique, linalg::MomentAccumulator& total,
                         const UniqueSet& tile_set,
                         const linalg::MomentAccumulator& tile_moments,
                         ThreadPool& pool, std::vector<std::uint8_t>& dropped,
                         std::uint64_t* merge_comparisons);

}  // namespace rif::core
