#include "core/sam_classifier.h"

#include <cmath>
#include <limits>

#include "core/spectral_angle.h"
#include "support/check.h"

namespace rif::core {

SamResult classify_sam(const hsi::ImageCube& cube,
                       const std::vector<LibrarySignature>& library,
                       const SamConfig& config) {
  RIF_CHECK(!library.empty());
  RIF_CHECK(library.size() < 32000);
  for (const auto& sig : library) {
    RIF_CHECK_MSG(static_cast<int>(sig.spectrum.size()) == cube.bands(),
                  "library signature band count mismatch");
  }

  SamResult result;
  const auto n = static_cast<std::size_t>(cube.pixel_count());
  result.classes.resize(n);
  result.angles.resize(n);
  result.counts.assign(library.size(), 0);

  // Precompute inverse norms of the library spectra.
  std::vector<double> inv_norm(library.size());
  for (std::size_t s = 0; s < library.size(); ++s) {
    double norm2 = 0.0;
    for (const float v : library[s].spectrum) {
      norm2 += static_cast<double>(v) * v;
    }
    RIF_CHECK_MSG(norm2 > 0.0, "zero library signature");
    inv_norm[s] = 1.0 / std::sqrt(norm2);
  }

  const int bands = cube.bands();
  for (std::int64_t p = 0; p < cube.pixel_count(); ++p) {
    const auto px = cube.pixel(p);
    double px_norm2 = 0.0;
    for (const float v : px) px_norm2 += static_cast<double>(v) * v;
    if (px_norm2 <= 0.0) {
      result.classes[p] = kUnclassified;
      result.angles[p] = std::numeric_limits<float>::infinity();
      ++result.unclassified;
      continue;
    }
    const double px_inv = 1.0 / std::sqrt(px_norm2);

    double best_cos = -2.0;
    std::int16_t best = kUnclassified;
    for (std::size_t s = 0; s < library.size(); ++s) {
      const auto& spec = library[s].spectrum;
      double dot = 0.0;
      for (int b = 0; b < bands; ++b) {
        dot += static_cast<double>(spec[b]) * px[b];
      }
      const double cosine = dot * inv_norm[s] * px_inv;
      if (cosine > best_cos) {
        best_cos = cosine;
        best = static_cast<std::int16_t>(s);
      }
    }
    const double angle =
        std::acos(std::min(1.0, std::max(-1.0, best_cos)));
    result.angles[p] = static_cast<float>(angle);
    if (angle <= config.rejection_threshold) {
      result.classes[p] = best;
      ++result.counts[best];
    } else {
      result.classes[p] = kUnclassified;
      ++result.unclassified;
    }
  }
  return result;
}

std::vector<ConfusionRow> confusion_by_label(
    const SamResult& result, const std::vector<std::uint8_t>& labels) {
  RIF_CHECK(labels.size() == result.classes.size());
  std::vector<ConfusionRow> rows;
  auto row_for = [&rows, &result](std::uint8_t label) -> ConfusionRow& {
    for (auto& r : rows) {
      if (r.truth_label == label) return r;
    }
    rows.push_back(ConfusionRow{label,
                                std::vector<std::int64_t>(
                                    result.counts.size(), 0),
                                0, 0});
    return rows.back();
  };
  for (std::size_t i = 0; i < labels.size(); ++i) {
    ConfusionRow& row = row_for(labels[i]);
    ++row.total;
    if (result.classes[i] == kUnclassified) {
      ++row.unclassified;
    } else {
      ++row.assigned[result.classes[i]];
    }
  }
  return rows;
}

double sam_accuracy(const SamResult& result,
                    const std::vector<std::uint8_t>& labels,
                    const std::vector<int>& library_to_label) {
  RIF_CHECK(labels.size() == result.classes.size());
  RIF_CHECK(library_to_label.size() == result.counts.size());
  std::int64_t correct = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const auto cls = result.classes[i];
    if (cls == kUnclassified) continue;
    if (library_to_label[cls] >= 0 &&
        library_to_label[cls] == static_cast<int>(labels[i])) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(labels.size());
}

}  // namespace rif::core
