// Spectral Angle Mapper (SAM) classification.
//
// The same spectral-angle machinery that drives the screening step (Kruse
// et al. 1993, the paper's reference [10]) used as a classifier: each pixel
// is assigned the library signature with the smallest spectral angle,
// or "unclassified" if no signature is within the rejection threshold.
// This supplies the paper's "classify the vehicles" post-processing step.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hsi/image_cube.h"

namespace rif::core {

struct LibrarySignature {
  std::string name;
  std::vector<float> spectrum;  ///< one value per band
};

inline constexpr std::int16_t kUnclassified = -1;

struct SamResult {
  /// Per-pixel index into the library (kUnclassified if rejected).
  std::vector<std::int16_t> classes;
  /// Per-pixel best spectral angle (radians).
  std::vector<float> angles;
  /// Pixels per class (library order), plus rejected count.
  std::vector<std::int64_t> counts;
  std::int64_t unclassified = 0;
};

struct SamConfig {
  /// Reject pixels whose best angle exceeds this (radians).
  double rejection_threshold = 0.25;
};

SamResult classify_sam(const hsi::ImageCube& cube,
                       const std::vector<LibrarySignature>& library,
                       const SamConfig& config = {});

/// Confusion row: how the pixels of ground-truth label `truth_label` were
/// classified (counts per library class + unclassified).
struct ConfusionRow {
  std::uint8_t truth_label = 0;
  std::vector<std::int64_t> assigned;  ///< library order
  std::int64_t unclassified = 0;
  std::int64_t total = 0;
};

std::vector<ConfusionRow> confusion_by_label(
    const SamResult& result, const std::vector<std::uint8_t>& labels);

/// Overall accuracy given a mapping from library index -> ground-truth
/// label value (entries of -1 mean "no corresponding truth label").
double sam_accuracy(const SamResult& result,
                    const std::vector<std::uint8_t>& labels,
                    const std::vector<int>& library_to_label);

}  // namespace rif::core
