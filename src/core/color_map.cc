#include "core/color_map.h"

#include <algorithm>
#include <cmath>

#include "support/check.h"

namespace rif::core {

ComponentScale make_scale(const ComponentStats& stats, double sigmas) {
  ComponentScale s;
  s.mean = stats.mean;
  const double spread = std::max(stats.stddev * sigmas, 1e-12);
  s.gain = 127.0 / spread;
  return s;
}

std::array<std::uint8_t, 3> map_pixel(
    const std::array<double, 3>& components,
    const std::array<ComponentScale, 3>& scales) {
  // Scale each opponent channel into byte range around mid-grey.
  std::array<double, 3> c{};
  for (int i = 0; i < 3; ++i) c[i] = scales[i].to_byte(components[i]);

  std::array<std::uint8_t, 3> rgb{};
  for (int ch = 0; ch < 3; ++ch) {
    double acc = 128.0;
    for (int i = 0; i < 3; ++i) {
      acc += kOpponentToRgb[ch][i] * (c[i] - 128.0);
    }
    rgb[ch] = static_cast<std::uint8_t>(std::clamp(acc, 0.0, 255.0));
  }
  return rgb;
}

hsi::RgbImage map_planes(const std::vector<float>& pc1,
                         const std::vector<float>& pc2,
                         const std::vector<float>& pc3, int width,
                         int height) {
  const std::size_t n = static_cast<std::size_t>(width) * height;
  RIF_CHECK(pc1.size() == n && pc2.size() == n && pc3.size() == n);

  const std::array<ComponentScale, 3> scales = {
      make_scale(plane_stats(pc1)),
      make_scale(plane_stats(pc2)),
      make_scale(plane_stats(pc3)),
  };

  hsi::RgbImage image(width, height);
  for (std::size_t p = 0; p < n; ++p) {
    const auto rgb = map_pixel({pc1[p], pc2[p], pc3[p]}, scales);
    image.data[p * 3 + 0] = rgb[0];
    image.data[p * 3 + 1] = rgb[1];
    image.data[p * 3 + 2] = rgb[2];
  }
  return image;
}

ComponentStats plane_stats(const std::vector<float>& plane) {
  RIF_CHECK(!plane.empty());
  double sum = 0.0;
  double sum2 = 0.0;
  for (const float v : plane) {
    sum += v;
    sum2 += static_cast<double>(v) * v;
  }
  const double n = static_cast<double>(plane.size());
  ComponentStats s;
  s.mean = sum / n;
  s.stddev = std::sqrt(std::max(0.0, sum2 / n - s.mean * s.mean));
  return s;
}

}  // namespace rif::core
