// Post-processing of fused imagery (the paper's closing remark for §3:
// "Postprocessing steps can subsequently be applied to detect edges in the
// image and use structural information to detect and classify the
// vehicles").
//
// Provides the classic chain: luminance/edge extraction, RX anomaly
// scoring over multi-channel planes, percentile thresholding, connected
// components, and scoring of detections against ground truth.
#pragma once

#include <cstdint>
#include <vector>

#include "hsi/image_io.h"
#include "hsi/spectra.h"

namespace rif::core {

/// Rec.601 luminance plane of an RGB composite.
std::vector<float> luminance(const hsi::RgbImage& image);

/// Sobel gradient magnitude (border pixels are zero).
std::vector<float> sobel_magnitude(const std::vector<float>& plane, int width,
                                   int height);

/// RX anomaly score: Mahalanobis distance of each pixel's channel vector
/// from the global mean under the global channel covariance. Channels are
/// equal-sized planes (e.g. the three principal-component planes).
std::vector<float> rx_anomaly(const std::vector<std::vector<float>>& channels,
                              int width, int height);

/// Binary mask of the `fraction` highest-valued pixels of a plane.
std::vector<std::uint8_t> top_fraction_mask(const std::vector<float>& plane,
                                            double fraction);

/// A connected region of a binary mask (8-connectivity).
struct Blob {
  int min_x = 0, min_y = 0, max_x = 0, max_y = 0;
  std::int64_t pixels = 0;
  double centroid_x = 0.0, centroid_y = 0.0;

  [[nodiscard]] int width() const { return max_x - min_x + 1; }
  [[nodiscard]] int height() const { return max_y - min_y + 1; }
};

/// Extract connected components with at least `min_pixels` pixels.
std::vector<Blob> find_blobs(const std::vector<std::uint8_t>& mask, int width,
                             int height, std::int64_t min_pixels = 4);

/// Detection quality against ground-truth labels: a blob counts as a hit
/// if its centroid lies on (or within 2 px of) a target-material pixel.
struct DetectionScore {
  int targets_present = 0;   ///< distinct ground-truth target regions
  int targets_detected = 0;  ///< regions hit by at least one blob
  int false_alarms = 0;      ///< blobs hitting no target material
  [[nodiscard]] double recall() const {
    return targets_present ? static_cast<double>(targets_detected) /
                                 targets_present
                           : 0.0;
  }
};

DetectionScore score_detections(const std::vector<Blob>& blobs,
                                const std::vector<std::uint8_t>& labels,
                                int width, int height,
                                const std::vector<hsi::Material>& targets);

}  // namespace rif::core
