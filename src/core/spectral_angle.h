// Spectral-angle screening (step 1 of the paper's algorithm) and unique-set
// merging (step 2).
//
// The spectral angle between two pixel vectors is
//     alpha(x, y) = arccos( x.y / (|x| |y|) ),
// which is invariant to illumination scale — the property that lets the
// screen treat a shaded vehicle and a sunlit vehicle as the same signature.
// A "unique set" holds one representative per signature: a pixel joins the
// set iff its angle to every current member exceeds the threshold. The PCT
// statistics are then computed over the unique set, so a vehicle covering
// 40 pixels weighs as much as forest covering 40,000 (the paper's stated
// motivation for screening before de-correlation).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "hsi/image_cube.h"

namespace rif::core {

/// Spectral angle in radians between two equal-length vectors.
double spectral_angle(std::span<const float> x, std::span<const float> y);

/// A set of spectrally distinct pixel vectors.
class UniqueSet {
 public:
  UniqueSet(int bands, double threshold_radians);

  /// Add `pixel` if no current member is within the angle threshold.
  /// Returns true if the pixel was added. `comparisons` (if non-null) is
  /// incremented by the number of angle evaluations performed, which feeds
  /// both the Full-mode cost charging and the cost-model calibration.
  bool screen(std::span<const float> pixel, std::uint64_t* comparisons = nullptr);

  /// Merge another set member-by-member under this set's threshold
  /// (the manager's step 2).
  void merge(const UniqueSet& other, std::uint64_t* comparisons = nullptr);

  /// True if any member in [begin_member, end_member) lies within the
  /// threshold angle of `pixel` (`pixel_inv_norm` = 1/|pixel|). The
  /// screening primitive, exposed so callers can split one candidate's
  /// membership test across member ranges (e.g. a frozen prefix scanned
  /// concurrently and a small tail scanned in fold order).
  [[nodiscard]] bool any_within(std::span<const float> pixel,
                                double pixel_inv_norm,
                                std::size_t begin_member,
                                std::size_t end_member,
                                std::uint64_t* comparisons = nullptr) const;

  /// Append a member WITHOUT screening. The caller vouches that `pixel`
  /// exceeds the threshold angle to every current member.
  void admit(std::span<const float> pixel, double inv_norm);

  /// Cached 1/|member(i)|.
  [[nodiscard]] double inv_norm(std::size_t i) const { return inv_norms_[i]; }

  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] int bands() const { return bands_; }
  [[nodiscard]] double threshold() const { return threshold_; }
  [[nodiscard]] std::span<const float> member(std::size_t i) const;
  /// Flat member storage (size() * bands floats), for shipping in messages.
  [[nodiscard]] const std::vector<float>& flat() const { return data_; }

  /// Rebuild a set from flat storage (received from a worker). Members are
  /// taken as-is (already mutually distinct under the source's threshold).
  static UniqueSet from_flat(int bands, double threshold_radians,
                             std::vector<float> flat);

  /// Minimal angle from `pixel` to any member (infinity if empty).
  [[nodiscard]] double min_angle_to(std::span<const float> pixel) const;

 private:
  /// Mirror `pixel` into lane `count_ % 8` of the SoA pack (see pack_).
  void pack_member(std::span<const float> pixel);

  int bands_;
  double threshold_;
  double cos_threshold_;
  std::size_t count_ = 0;
  std::vector<float> data_;         // members, row-major (AoS: flat()/member())
  std::vector<double> inv_norms_;   // 1/|member| cache
  /// SoA member-block pack for the SIMD screening kernel: members grouped
  /// in blocks of 8, each block band-major — pack_[(blk * bands + b) * 8 +
  /// lane] is band b of member blk*8+lane. Unused lanes of the last block
  /// are zero, so `any_within` runs the same 8-wide fused-dot kernel on
  /// every block and just ignores out-of-range lanes.
  std::vector<float> pack_;
};

/// Screen every pixel of a cube region [first_flat, last_flat) into a fresh
/// unique set (a worker's per-tile step 1).
UniqueSet screen_range(const hsi::ImageCube& cube, std::int64_t first_flat,
                       std::int64_t last_flat, double threshold_radians,
                       std::uint64_t* comparisons = nullptr);

}  // namespace rif::core
