// Repeating timer built on Simulation events. Used by the heartbeat failure
// detector and by periodic statistics sampling.
#pragma once

#include <functional>
#include <utility>

#include "sim/simulation.h"

namespace rif::sim {

/// Fires a callback every `period` of virtual time until stopped or
/// destroyed. Restart-safe: start() on a running timer re-arms it.
class PeriodicTimer {
 public:
  PeriodicTimer(Simulation& sim, SimTime period, std::function<void()> fn)
      : sim_(sim), period_(period), fn_(std::move(fn)) {
    RIF_CHECK_MSG(period > 0, "timer period must be positive");
  }

  ~PeriodicTimer() { stop(); }
  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  void start() {
    stop();
    running_ = true;
    arm();
  }

  void stop() {
    if (running_) {
      sim_.cancel(event_);
      running_ = false;
    }
  }

  [[nodiscard]] bool running() const { return running_; }

 private:
  void arm() {
    event_ = sim_.schedule_after(period_, [this] {
      if (!running_) return;
      fn_();
      if (running_) arm();  // fn_ may have stopped the timer
    });
  }

  Simulation& sim_;
  SimTime period_;
  std::function<void()> fn_;
  EventId event_{};
  bool running_ = false;
};

}  // namespace rif::sim
