// Trace export: JSON-lines dump and per-kind summary of a TraceRecorder,
// for offline analysis of protocol behaviour (timelines of attacks,
// detections, transfers, regenerations).
#pragma once

#include <string>

#include "sim/trace.h"

namespace rif::sim {

/// Write one JSON object per record: {"t":..., "kind":"...", "a":..,
/// "b":.., "value":.., "note":".."}. Returns false on I/O error.
bool export_trace_jsonl(const TraceRecorder& trace, const std::string& path);

/// Human-readable per-kind counts and byte totals.
std::string summarize_trace(const TraceRecorder& trace);

}  // namespace rif::sim
