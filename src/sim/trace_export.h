// Trace export: JSON-lines dump and per-kind summary of a TraceRecorder,
// for offline analysis of protocol behaviour (timelines of attacks,
// detections, transfers, regenerations).
#pragma once

#include <string>

#include "sim/trace.h"

namespace rif::sim {

/// Write one JSON object per record: {"t":..., "kind":"...", "a":..,
/// "b":.., "value":.., "note":".."}. Returns false on I/O error.
bool export_trace_jsonl(const TraceRecorder& trace, const std::string& path);

/// Export the virtual timeline as a Chrome trace-event / Perfetto JSON
/// file (shared obs::ChromeTraceWriter schema, so it passes
/// obs::check_chrome_trace). kComputeStart/kComputeEnd pairs on the same
/// `a` track become "X" complete slices (dangling starts are dropped so
/// the trace always validates); every other record becomes an instant
/// carrying a/b/value/note as args. ts is virtual time in microseconds.
/// Returns false on I/O error.
bool export_trace_chrome(const TraceRecorder& trace, const std::string& path);

/// Human-readable per-kind counts and byte totals.
std::string summarize_trace(const TraceRecorder& trace);

}  // namespace rif::sim
