// Deterministic discrete-event simulation engine.
//
// The whole virtual cluster (CPU queues, network links, failure schedules,
// heartbeat timers) runs on one of these. Events at equal timestamps are
// executed in schedule order (a monotonically increasing sequence number
// breaks ties), so a run is a pure function of its inputs and seeds — the
// property every EXPERIMENTS.md row relies on.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "support/check.h"
#include "support/time.h"

namespace rif::sim {

/// Handle for a scheduled event; usable to cancel it before it fires.
struct EventId {
  std::uint64_t value = 0;
  bool operator==(const EventId&) const = default;
};

class Simulation {
 public:
  using Callback = std::function<void()>;

  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Current virtual time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule `cb` at absolute virtual time `t` (>= now).
  EventId schedule_at(SimTime t, Callback cb);

  /// Schedule `cb` after `delay` nanoseconds of virtual time (>= 0).
  EventId schedule_after(SimTime delay, Callback cb) {
    RIF_CHECK_MSG(delay >= 0, "negative delay");
    return schedule_at(now_ + delay, std::move(cb));
  }

  /// Cancel a pending event. Cancelling an already-fired or unknown event is
  /// a no-op, which keeps timer bookkeeping simple for callers.
  void cancel(EventId id);

  /// Execute the single next event. Returns false if the queue is empty.
  bool step();

  /// Run until the event queue drains.
  void run();

  /// Run until virtual time `t` (events at exactly `t` are executed).
  /// Returns true if the queue drained before `t`.
  bool run_until(SimTime t);

  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }
  [[nodiscard]] std::size_t events_pending() const { return pending_.size(); }

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  /// Pops cancelled entries off the head of the queue.
  void skip_cancelled();

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::unordered_set<std::uint64_t> pending_;    ///< live (un-fired) seqs
  std::unordered_set<std::uint64_t> cancelled_;  ///< subset of pending_
};

}  // namespace rif::sim
