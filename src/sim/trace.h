// Event trace recorder.
//
// Protocol components append typed records (message sent, failure detected,
// replica regenerated, ...) which tests assert on and benches summarize.
// Kept as plain structs rather than log strings so invariants ("no message
// delivered to a dead node") are machine-checkable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/time.h"

namespace rif::sim {

enum class TraceKind : std::uint8_t {
  kMessageSent,
  kMessageDelivered,
  kMessageDropped,
  kComputeStart,
  kComputeEnd,
  kNodeFailed,
  kNodeRestored,
  kFailureDetected,
  kReplicaSpawned,
  kReplicaStateTransferred,
  kGroupReconfigured,
  kCustom,
};

const char* trace_kind_name(TraceKind kind);

struct TraceRecord {
  SimTime time = 0;
  TraceKind kind = TraceKind::kCustom;
  std::int64_t a = -1;      ///< kind-specific (e.g. source node / thread id)
  std::int64_t b = -1;      ///< kind-specific (e.g. destination)
  std::int64_t value = 0;   ///< kind-specific (e.g. bytes)
  std::string note;
};

class TraceRecorder {
 public:
  void set_enabled(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  void record(TraceRecord rec) {
    if (enabled_) records_.push_back(std::move(rec));
  }

  [[nodiscard]] const std::vector<TraceRecord>& records() const {
    return records_;
  }

  [[nodiscard]] std::size_t count(TraceKind kind) const {
    std::size_t n = 0;
    for (const auto& r : records_) {
      if (r.kind == kind) ++n;
    }
    return n;
  }

  void clear() { records_.clear(); }

 private:
  bool enabled_ = false;
  std::vector<TraceRecord> records_;
};

}  // namespace rif::sim
