#include "sim/simulation.h"

#include <utility>

namespace rif::sim {

EventId Simulation::schedule_at(SimTime t, Callback cb) {
  RIF_CHECK_MSG(t >= now_, "cannot schedule into the past");
  const std::uint64_t seq = next_seq_++;
  queue_.push(Entry{t, seq, std::move(cb)});
  pending_.insert(seq);
  return EventId{seq};
}

void Simulation::cancel(EventId id) {
  if (pending_.contains(id.value)) {
    cancelled_.insert(id.value);
    pending_.erase(id.value);
  }
}

void Simulation::skip_cancelled() {
  while (!queue_.empty() && cancelled_.contains(queue_.top().seq)) {
    cancelled_.erase(queue_.top().seq);
    queue_.pop();
  }
}

bool Simulation::step() {
  skip_cancelled();
  if (queue_.empty()) return false;
  // priority_queue::top is const; the callback is moved out via const_cast,
  // which is safe because the entry is popped immediately afterwards.
  Entry& top = const_cast<Entry&>(queue_.top());
  RIF_DCHECK(top.time >= now_);
  now_ = top.time;
  Callback cb = std::move(top.cb);
  pending_.erase(top.seq);
  queue_.pop();
  ++executed_;
  cb();
  return true;
}

void Simulation::run() {
  while (step()) {
  }
}

bool Simulation::run_until(SimTime t) {
  for (;;) {
    skip_cancelled();
    if (queue_.empty()) {
      now_ = t;
      return true;
    }
    if (queue_.top().time > t) {
      now_ = t;
      return false;
    }
    step();
  }
}

}  // namespace rif::sim
