#include "sim/trace_export.h"

#include <cstdio>
#include <map>
#include <sstream>

#include "obs/chrome_trace.h"
#include "support/time.h"

namespace rif::sim {

using obs::json_escape;

bool export_trace_jsonl(const TraceRecorder& trace, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  for (const auto& rec : trace.records()) {
    std::fprintf(f,
                 "{\"t\":%.9f,\"kind\":\"%s\",\"a\":%lld,\"b\":%lld,"
                 "\"value\":%lld,\"note\":\"%s\"}\n",
                 to_seconds(rec.time), trace_kind_name(rec.kind),
                 static_cast<long long>(rec.a), static_cast<long long>(rec.b),
                 static_cast<long long>(rec.value),
                 json_escape(rec.note).c_str());
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

bool export_trace_chrome(const TraceRecorder& trace, const std::string& path) {
  obs::ChromeTraceWriter writer;
  writer.set_process_name(1, "rif-sim");
  // Pair compute start/end per `a` track into complete slices; everything
  // else is an instant. Virtual seconds -> microseconds.
  std::map<std::int64_t, double> open_compute;
  const auto args_for = [](const TraceRecord& rec) {
    std::ostringstream os;
    os << "\"a\": " << rec.a << ", \"b\": " << rec.b
       << ", \"value\": " << rec.value;
    if (!rec.note.empty()) {
      os << ", \"note\": \"" << json_escape(rec.note) << "\"";
    }
    return os.str();
  };
  for (const auto& rec : trace.records()) {
    const double ts_us = to_seconds(rec.time) * 1e6;
    const int tid = rec.a >= 0 ? static_cast<int>(rec.a) : 0;
    if (rec.kind == TraceKind::kComputeStart) {
      // A second start on the same track orphans the first; latest wins.
      open_compute[rec.a] = ts_us;
      continue;
    }
    obs::ChromeTraceWriter::Event e;
    e.tid = tid;
    e.args_json = args_for(rec);
    if (rec.kind == TraceKind::kComputeEnd) {
      const auto it = open_compute.find(rec.a);
      if (it == open_compute.end()) continue;  // dangling end: drop
      e.name = "compute";
      e.ph = 'X';
      e.ts_us = it->second;
      e.dur_us = ts_us >= it->second ? ts_us - it->second : 0.0;
      open_compute.erase(it);
    } else {
      e.name = trace_kind_name(rec.kind);
      e.ph = 'i';
      e.ts_us = ts_us;
    }
    writer.add(std::move(e));
  }
  return writer.write(path);
}

std::string summarize_trace(const TraceRecorder& trace) {
  struct Agg {
    std::size_t count = 0;
    long long value_sum = 0;
  };
  std::map<TraceKind, Agg> by_kind;
  for (const auto& rec : trace.records()) {
    auto& agg = by_kind[rec.kind];
    ++agg.count;
    agg.value_sum += rec.value;
  }
  std::ostringstream os;
  for (const auto& [kind, agg] : by_kind) {
    os << trace_kind_name(kind) << ": " << agg.count;
    if (agg.value_sum > 0) os << " (value sum " << agg.value_sum << ")";
    os << "\n";
  }
  return os.str();
}

}  // namespace rif::sim
