#include "sim/trace_export.h"

#include <cstdio>
#include <map>
#include <sstream>

#include "support/time.h"

namespace rif::sim {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

bool export_trace_jsonl(const TraceRecorder& trace, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  for (const auto& rec : trace.records()) {
    std::fprintf(f,
                 "{\"t\":%.9f,\"kind\":\"%s\",\"a\":%lld,\"b\":%lld,"
                 "\"value\":%lld,\"note\":\"%s\"}\n",
                 to_seconds(rec.time), trace_kind_name(rec.kind),
                 static_cast<long long>(rec.a), static_cast<long long>(rec.b),
                 static_cast<long long>(rec.value),
                 json_escape(rec.note).c_str());
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

std::string summarize_trace(const TraceRecorder& trace) {
  struct Agg {
    std::size_t count = 0;
    long long value_sum = 0;
  };
  std::map<TraceKind, Agg> by_kind;
  for (const auto& rec : trace.records()) {
    auto& agg = by_kind[rec.kind];
    ++agg.count;
    agg.value_sum += rec.value;
  }
  std::ostringstream os;
  for (const auto& [kind, agg] : by_kind) {
    os << trace_kind_name(kind) << ": " << agg.count;
    if (agg.value_sum > 0) os << " (value sum " << agg.value_sum << ")";
    os << "\n";
  }
  return os.str();
}

}  // namespace rif::sim
