#include "sim/trace.h"

namespace rif::sim {

const char* trace_kind_name(TraceKind kind) {
  switch (kind) {
    case TraceKind::kMessageSent: return "message_sent";
    case TraceKind::kMessageDelivered: return "message_delivered";
    case TraceKind::kMessageDropped: return "message_dropped";
    case TraceKind::kComputeStart: return "compute_start";
    case TraceKind::kComputeEnd: return "compute_end";
    case TraceKind::kNodeFailed: return "node_failed";
    case TraceKind::kNodeRestored: return "node_restored";
    case TraceKind::kFailureDetected: return "failure_detected";
    case TraceKind::kReplicaSpawned: return "replica_spawned";
    case TraceKind::kReplicaStateTransferred: return "replica_state_transferred";
    case TraceKind::kGroupReconfigured: return "group_reconfigured";
    case TraceKind::kCustom: return "custom";
  }
  return "unknown";
}

}  // namespace rif::sim
