#include "service/remote_exec.h"

#include <algorithm>
#include <cmath>
#include <chrono>
#include <deque>
#include <map>
#include <optional>
#include <utility>

#include "core/color_map.h"
#include "core/distributed/messages.h"
#include "core/pct.h"
#include "core/spectral_angle.h"
#include "hsi/partition.h"
#include "linalg/matrix.h"
#include "linalg/stats.h"
#include "obs/span_tracer.h"
#include "scp/wire.h"
#include "support/check.h"
#include "support/log.h"

namespace rif::service {
namespace {

using Clock = std::chrono::steady_clock;

struct Coordinator {
  Coordinator(cluster::RemoteWorkerPool& pool_in, const RemoteExecParams& p_in)
      : pool(pool_in), p(p_in) {}

  cluster::RemoteWorkerPool& pool;
  const RemoteExecParams& p;
  RemoteExecResult out;

  std::vector<hsi::Tile> tiles;
  std::vector<int> live;  ///< surviving pool worker indices
  int bands = 0;

  // Screening state. holder[t] is the worker whose memory holds tile t's
  // pixels (it will colour it later); merge order is strictly tile index.
  std::vector<int> holder;
  std::vector<bool> merge_done;
  std::vector<bool> colored;
  std::map<int, core::ScreenResultMsg> pending;
  std::optional<core::UniqueSet> global;
  int merged_tiles = 0;
  int next_tile = 0;
  int colored_count = 0;
  int rr = 0;  ///< round-robin cursor for failure reassignment

  // Covariance state. Shard messages are retained so a dead worker's
  // shards can be re-sent verbatim; sums merge in shard-index order.
  std::vector<double> mean;
  std::vector<core::CovShardMsg> shard_msgs;
  std::vector<std::vector<std::uint8_t>> shard_acc;
  std::map<int, std::deque<int>> outstanding;  ///< worker -> shard FIFO
  int shards_received = 0;
  std::optional<core::TransformMsg> transform;

  // Per-item supervision. Every assigned-but-unanswered tile and every
  // outstanding covariance shard carries its own deadline; there is no
  // global silence clock for one chatty worker to reset on a hung one's
  // behalf. attempts counts deadline EXPIRIES (disconnect requeues re-arm
  // without charging the budget — a crash is not the new worker's fault).
  struct Track {
    Clock::time_point deadline;
    int attempts = 0;
    bool active = false;
  };
  std::vector<Track> tile_track;
  std::vector<Track> shard_track;

  void arm(Track& track) {
    if (p.shard_deadline_seconds <= 0.0) return;
    double d = p.shard_deadline_seconds;
    for (int i = 0; i < track.attempts; ++i) d *= p.resend_backoff;
    track.deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(d));
    track.active = true;
  }

  /// Next live worker, preferring one other than `avoid`.
  [[nodiscard]] int pick_other(int avoid) {
    int v = live[static_cast<std::size_t>(rr++) % live.size()];
    if (v == avoid && live.size() > 1) {
      v = live[static_cast<std::size_t>(rr++) % live.size()];
    }
    return v;
  }

  /// Earliest active per-item deadline, or nullopt when nothing is armed.
  [[nodiscard]] std::optional<Clock::time_point> next_deadline() const {
    std::optional<Clock::time_point> next;
    const auto consider = [&](const Track& t) {
      if (t.active && (!next || t.deadline < *next)) next = t.deadline;
    };
    for (const Track& t : tile_track) consider(t);
    for (const Track& t : shard_track) consider(t);
    return next;
  }

  /// Re-send every overdue item; false when an item's budget ran out and
  /// the job must fall back.
  [[nodiscard]] bool check_deadlines() {
    if (p.shard_deadline_seconds <= 0.0 || live.empty()) return true;
    const auto now = Clock::now();
    for (int t = 0; t < static_cast<int>(tile_track.size()); ++t) {
      Track& track = tile_track[static_cast<std::size_t>(t)];
      if (!track.active || now < track.deadline) continue;
      if (++track.attempts > p.resend_limit) return give_up("tile", t);
      const int v = pick_other(holder[t]);
      ++out.tiles_resent;
      if (p.metrics) p.metrics->counter("remote.tile_resends").add(1);
      RIF_TRACE_INSTANT("remote.resend_tile");
      RIF_LOG_EVERY(::rif::LogLevel::kWarn, "remote", 1.0,
                    "job " << p.job_id << ": tile " << t << " overdue (attempt "
                           << track.attempts << "); re-sending to worker "
                           << v);
      assign_tile(v, t);  // re-arms with the backed-off deadline
    }
    for (int s = 0; s < static_cast<int>(shard_track.size()); ++s) {
      Track& track = shard_track[static_cast<std::size_t>(s)];
      if (!track.active || now < track.deadline) continue;
      if (++track.attempts > p.resend_limit) return give_up("shard", s);
      // Move the shard from whichever worker holds it to a fresh one.
      int owner = -1;
      for (auto& [w, fifo] : outstanding) {
        auto pos = std::find(fifo.begin(), fifo.end(), s);
        if (pos != fifo.end()) {
          fifo.erase(pos);
          owner = w;
          break;
        }
      }
      const int v = pick_other(owner);
      outstanding[v].push_back(s);
      ++out.shards_resent;
      if (p.metrics) p.metrics->counter("remote.shard_resends").add(1);
      RIF_TRACE_INSTANT("remote.resend_shard");
      RIF_LOG_EVERY(::rif::LogLevel::kWarn, "remote", 1.0,
                    "job " << p.job_id << ": cov shard " << s
                           << " overdue (attempt " << track.attempts
                           << "); re-sending to worker " << v);
      send_app(v, shard_msgs[static_cast<std::size_t>(s)].encode(0));
      arm(track);
    }
    return true;
  }

  bool give_up(const char* what, int index) {
    ++out.deadline_giveups;
    if (p.metrics) p.metrics->counter("remote.deadline_giveups").add(1);
    RIF_TRACE_INSTANT("remote.deadline_giveup");
    RIF_LOG_WARN("remote", "job " << p.job_id << ": " << what << " " << index
                                  << " exhausted its resend budget; falling "
                                     "back to the host pool");
    return false;
  }

  [[nodiscard]] bool is_live(int w) const {
    return std::find(live.begin(), live.end(), w) != live.end();
  }

  void send_app(int w, const scp::Message& msg) {
    scp::WireEnvelope env;
    env.kind = scp::FrameKind::kApp;
    env.dst_node = pool.node_of(w);
    env.seq = static_cast<std::uint64_t>(p.job_id);  // job tag (see wire.h)
    env.msg_type = msg.type;
    env.declared = msg.declared_bytes;
    env.payload = msg.payload;
    pool.send(w, env);
  }

  void send_control(int w, scp::FrameKind kind,
                    std::vector<std::uint8_t> payload = {}) {
    scp::WireEnvelope env;
    env.kind = kind;
    env.dst_node = pool.node_of(w);
    env.payload = std::move(payload);
    pool.send(w, env);
  }

  void assign_tile(int w, int t) {
    holder[t] = w;
    const hsi::Tile& tile = tiles[static_cast<std::size_t>(t)];
    core::TileAssignMsg assign;
    assign.tile = core::WireTile::from(tile);
    assign.data.reserve(tile.pixels() * tile.bands);
    const std::int64_t first = tile.first_flat_index();
    for (std::int64_t px = first; px < first + tile.pixels(); ++px) {
      const auto v = p.cube->pixel(px);
      assign.data.insert(assign.data.end(), v.begin(), v.end());
    }
    send_app(w, assign.encode(0));
    arm(tile_track[static_cast<std::size_t>(t)]);
  }

  void on_request_work(int w) {
    if (next_tile < static_cast<int>(tiles.size())) {
      assign_tile(w, next_tile++);
    } else {
      send_app(w, scp::Message{core::kNoMoreTiles, {}, 0});
    }
  }

  void on_screen_result(int w, const scp::Message& msg) {
    // Bodies off the wire are untrusted: a corrupt one is dropped (the
    // per-item deadline re-sends the work), never decoded with aborts.
    auto decoded = core::ScreenResultMsg::try_decode(msg);
    if (!decoded) return;
    core::ScreenResultMsg result = std::move(*decoded);
    // The index came off the wire: bound it before it touches any state.
    const int t = result.tile.index;
    if (t < 0 || t >= static_cast<int>(tiles.size())) return;
    // So is the member array: from_flat would abort on a ragged length or
    // a zero/non-finite member, and a peer that computed a valid checksum
    // can still have produced garbage. Reject it while the tile can be
    // re-screened elsewhere.
    if (result.vectors.size() % static_cast<std::size_t>(bands) != 0) return;
    for (const float v : result.vectors) {
      if (!std::isfinite(v)) return;
    }
    for (std::size_t m = 0; m < result.vectors.size();
         m += static_cast<std::size_t>(bands)) {
      const auto* mem = result.vectors.data() + m;
      if (std::all_of(mem, mem + bands, [](float v) { return v == 0.0f; })) {
        return;
      }
    }
    holder[t] = w;
    // Pre-transform, a screen result settles the tile's outstanding work
    // (nothing more is owed until the transform broadcast re-arms it for
    // colour). Post-transform the colour reply is still owed: stay armed.
    if (!transform) tile_track[static_cast<std::size_t>(t)].active = false;
    if (merge_done[t] || pending.contains(t)) return;  // re-screened tile
    out.screen_comparisons += result.comparisons;
    pending.emplace(t, std::move(result));

    // Merge strictly in tile order — same order, same arithmetic, same
    // composite as the sim ManagerActor.
    while (true) {
      auto it = pending.find(merged_tiles);
      if (it == pending.end()) break;
      const core::ScreenResultMsg& r = it->second;
      std::uint64_t comparisons = 0;
      core::UniqueSet tile_set = core::UniqueSet::from_flat(
          bands, p.screening_threshold, std::vector<float>(r.vectors));
      global->merge(tile_set, &comparisons);
      out.merge_comparisons += comparisons;
      merge_done[it->first] = true;
      pending.erase(it);
      ++merged_tiles;
    }
    if (merged_tiles == static_cast<int>(tiles.size())) {
      start_covariance_phase();
    }
  }

  void start_covariance_phase() {
    const auto unique_count = static_cast<std::int64_t>(global->size());
    out.unique_set_size = static_cast<std::size_t>(unique_count);
    linalg::MeanAccumulator acc(bands);
    for (std::size_t i = 0; i < global->size(); ++i) {
      acc.add(global->member(i));
    }
    mean = acc.mean();

    const auto chunks = hsi::partition_range(unique_count, out.shards);
    shard_msgs.resize(static_cast<std::size_t>(out.shards));
    shard_acc.resize(static_cast<std::size_t>(out.shards));
    shard_track.assign(static_cast<std::size_t>(out.shards), {});
    for (int s = 0; s < out.shards; ++s) {
      core::CovShardMsg& shard = shard_msgs[static_cast<std::size_t>(s)];
      shard.shard_index = static_cast<std::uint64_t>(s);
      shard.shard_count = static_cast<std::uint64_t>(chunks[s].size());
      shard.mean = mean;
      shard.vectors.reserve(chunks[s].size() * bands);
      for (std::int64_t i = chunks[s].begin; i < chunks[s].end; ++i) {
        const auto m = global->member(static_cast<std::size_t>(i));
        shard.vectors.insert(shard.vectors.end(), m.begin(), m.end());
      }
      const int w = live[static_cast<std::size_t>(s) % live.size()];
      outstanding[w].push_back(s);
      send_app(w, shard.encode(0));
      arm(shard_track[static_cast<std::size_t>(s)]);
    }
  }

  void on_cov_sum(int w, const scp::Message& msg) {
    auto decoded = core::CovSumMsg::try_decode(msg);
    if (!decoded) return;
    core::CovSumMsg sum = std::move(*decoded);
    // The accumulator inside is wire bytes too: reject it here, while the
    // shard can still be re-sent, not in the shard-order merge later.
    if (!linalg::CovarianceAccumulator::try_decode(sum.accumulator)) return;
    // Pair the reply with its shard by the echoed index, never by FIFO
    // position: a stale or duplicate reply must not land in another
    // shard's slot (the sum was computed against a specific mean).
    if (sum.shard_index >= static_cast<std::uint64_t>(out.shards)) return;
    const int s = static_cast<int>(sum.shard_index);
    auto it = outstanding.find(w);
    if (it == outstanding.end()) return;
    auto pos = std::find(it->second.begin(), it->second.end(), s);
    if (pos == it->second.end()) return;  // not this worker's shard: drop
    it->second.erase(pos);
    shard_acc[static_cast<std::size_t>(s)] = std::move(sum.accumulator);
    shard_track[static_cast<std::size_t>(s)].active = false;
    if (++shards_received == out.shards) broadcast_transform();
  }

  void broadcast_transform() {
    // Merge in shard-index order regardless of which worker computed each
    // sum — this is what keeps the eigenbasis identical across failures.
    linalg::CovarianceAccumulator total(bands, mean);
    for (const auto& bytes : shard_acc) {
      if (!bytes.empty()) {
        total.merge(linalg::CovarianceAccumulator::decode(bytes));
      }
    }
    const linalg::Matrix cov = total.covariance();
    const linalg::EigenResult eig = linalg::jacobi_eigen(cov, p.jacobi);
    out.eigenvalues = eig.values;

    core::TransformMsg tm;
    tm.components = p.output_components;
    tm.bands = bands;
    const linalg::Matrix t =
        core::transform_matrix(eig.vectors, p.output_components);
    tm.matrix.assign(t.data(), t.data() + t.rows() * t.cols());
    tm.mean = mean;
    const auto scales = core::scales_from_eigenvalues(eig.values);
    for (const auto& s : scales) {
      tm.scale_mean.push_back(s.mean);
      tm.scale_gain.push_back(s.gain);
    }
    transform = std::move(tm);
    for (const int w : live) send_app(w, transform->encode(0));
    // Every uncoloured tile is outstanding again — its holder owes a
    // colour reply now that the transform is out.
    for (int t = 0; t < static_cast<int>(tiles.size()); ++t) {
      if (!colored[t]) arm(tile_track[static_cast<std::size_t>(t)]);
    }
  }

  void on_color_tile(const scp::Message& msg) {
    auto decoded = core::ColorTileMsg::try_decode(msg);
    if (!decoded) return;
    core::ColorTileMsg color = std::move(*decoded);
    const int t = color.tile.index;
    if (t < 0 || t >= static_cast<int>(tiles.size())) return;
    if (colored[t]) return;  // duplicate from a re-screened tile
    // Geometry comes from our own partition, never from the wire; a reply
    // whose pixel count disagrees with it is dropped, not trusted.
    const hsi::Tile& tile = tiles[static_cast<std::size_t>(t)];
    if (color.rgb.size() != static_cast<std::size_t>(tile.pixels()) * 3) {
      return;
    }
    const auto dst = static_cast<std::size_t>(tile.first_flat_index()) * 3;
    std::copy(color.rgb.begin(), color.rgb.end(),
              out.composite.data.begin() + dst);
    colored[t] = true;
    tile_track[static_cast<std::size_t>(t)].active = false;
    ++colored_count;
  }

  void on_closed(int w) {
    if (!is_live(w)) return;
    live.erase(std::remove(live.begin(), live.end(), w), live.end());
    ++out.worker_disconnects;
    RIF_LOG_WARN("remote", "worker " << w << " disconnected mid-job "
                                    << p.job_id << "; re-queueing its work");
    if (live.empty()) return;

    // Re-send any covariance shards it had not answered.
    if (auto it = outstanding.find(w); it != outstanding.end()) {
      for (const int s : it->second) {
        const int v = live[static_cast<std::size_t>(rr++) % live.size()];
        outstanding[v].push_back(s);
        send_app(v, shard_msgs[static_cast<std::size_t>(s)].encode(0));
        // Fresh clock, same attempt count: a crash does not charge the
        // item's resend budget.
        arm(shard_track[static_cast<std::size_t>(s)]);
      }
      outstanding.erase(it);
    }

    // Re-assign every tile whose only copy lived in its memory. Survivors
    // re-screen (the duplicate result is dropped) and — once they hold the
    // transform — colour it; merge/colour order is unaffected.
    for (int t = 0; t < static_cast<int>(tiles.size()); ++t) {
      if (holder[t] != w || colored[t]) continue;
      const int v = live[static_cast<std::size_t>(rr++) % live.size()];
      ++out.tiles_requeued;
      assign_tile(v, t);
    }
  }
};

}  // namespace

RemoteExecResult execute_remote_job(cluster::RemoteWorkerPool& pool,
                                    const std::vector<int>& workers,
                                    const RemoteExecParams& p) {
  RIF_CHECK_MSG(p.cube != nullptr, "remote execution requires a cube");
  Coordinator c{pool, p};
  c.bands = p.cube->bands();
  const hsi::CubeShape shape{p.cube->width(), p.cube->height(), c.bands};
  c.tiles = hsi::partition_rows(shape, p.total_tiles);
  for (const int w : workers) {
    if (pool.alive(w)) c.live.push_back(w);
  }
  if (c.live.empty()) return std::move(c.out);

  const int total = static_cast<int>(c.tiles.size());
  c.out.shards = static_cast<int>(c.live.size());
  c.holder.assign(total, -1);
  c.merge_done.assign(total, false);
  c.colored.assign(total, false);
  c.tile_track.assign(static_cast<std::size_t>(total), {});
  c.global.emplace(c.bands, p.screening_threshold);
  c.out.composite = hsi::RgbImage(shape.width, shape.height);

  const scp::JobStartBody body{p.job_id,
                               shape.width,
                               shape.height,
                               shape.bands,
                               p.screening_threshold,
                               p.output_components};
  for (const int w : c.live) {
    c.send_control(w, scp::FrameKind::kJobStart, body.encode());
  }

  // The job deadline is a wall clock from job start — not a silence clock
  // that activity resets, so a hung item is bounded by its OWN deadline
  // (check_deadlines) however chatty the rest of the pool is.
  const auto job_deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(p.deadline_seconds));
  while (c.colored_count < total) {
    const auto now = Clock::now();
    if (now >= job_deadline) {
      RIF_LOG_WARN("remote", "job " << p.job_id
                                    << " hit its wall deadline; falling "
                                       "back to the host pool");
      return std::move(c.out);  // completed stays false: host fallback
    }
    if (!c.check_deadlines()) return std::move(c.out);  // budget exhausted
    // Wake for whichever comes first: the poll cap, the job deadline, or
    // the nearest per-item deadline.
    double wait = std::min(
        p.poll_timeout_seconds,
        std::chrono::duration<double>(job_deadline - now).count());
    if (const auto next = c.next_deadline()) {
      wait = std::min(wait,
                      std::chrono::duration<double>(*next - now).count());
    }
    auto ev = c.pool.poll_event(std::max(wait, 1e-3));
    if (!ev) {
      if (c.live.empty()) return std::move(c.out);
      continue;
    }
    if (ev->kind == cluster::RemoteWorkerPool::Event::Kind::kClosed) {
      c.on_closed(ev->worker);
      if (c.live.empty()) return std::move(c.out);
      continue;
    }
    if (!c.is_live(ev->worker) || ev->env.kind != scp::FrameKind::kApp) {
      continue;
    }
    // Jobs run serially over a shared pool: a frame still in flight from an
    // earlier job (requeue or deadline fallback) carries that job's tag and
    // must not be consumed by this coordinator.
    if (ev->env.seq != static_cast<std::uint64_t>(p.job_id)) continue;
    const scp::Message msg = ev->env.to_message();
    switch (msg.type) {
      case core::kRequestWork:
        c.on_request_work(ev->worker);
        break;
      case core::kScreenResult:
        c.on_screen_result(ev->worker, msg);
        break;
      case core::kCovSum:
        c.on_cov_sum(ev->worker, msg);
        break;
      case core::kColorTile:
        c.on_color_tile(msg);
        break;
      default:
        break;
    }
  }

  for (const int w : c.live) c.send_control(w, scp::FrameKind::kJobEnd);
  c.out.completed = true;
  return std::move(c.out);
}

}  // namespace rif::service
