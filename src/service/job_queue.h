// Priority job queue of the fusion service: strict priority classes with
// FIFO order inside each class. The queue only holds ids plus the bits the
// scheduler ranks on (priority, arrival sequence, worker demand); job bodies
// stay with the service.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <vector>

#include "service/job.h"

namespace rif::service {

class JobQueue {
 public:
  struct Entry {
    JobId id = kNoJob;
    Priority priority = Priority::kNormal;
    std::uint64_t seq = 0;  ///< global arrival order (FIFO tie-break)
    int workers = 0;        ///< worker-node demand
    /// Peak host-memory demand (bytes): the whole cube for Full-mode host
    /// execution, queue_depth chunk buffers for Streaming, 0 for jobs with
    /// no host working set.
    std::uint64_t memory = 0;
    /// Streaming-mode job (bounded-memory demand) — what the kAdaptive
    /// policy prefers under memory pressure.
    bool streaming = false;
  };

  void push(JobId id, Priority priority, int workers,
            std::uint64_t memory = 0, bool streaming = false);

  /// Remove a queued job (it was admitted or abandoned). Returns false if
  /// the id is not queued.
  bool remove(JobId id);

  [[nodiscard]] bool empty() const { return size() == 0; }
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t size(Priority priority) const;

  /// Summed peak host-memory demand of every queued job — the numerator of
  /// the service's admission-pressure gauge (demand waiting vs budget
  /// left).
  [[nodiscard]] std::uint64_t total_memory_demand() const;

  /// Snapshot of all queued entries in admission order: priority class
  /// ascending (kHigh first), FIFO within a class.
  [[nodiscard]] std::vector<Entry> in_order() const;

 private:
  std::array<std::deque<Entry>, kPriorityClasses> classes_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace rif::service
