// Per-tenant ledger of the fusion service, built on the TenantAccount /
// LatencyStats records in support/accounting.h. Every submitted job lands
// in exactly one terminal bucket (completed, rejected, failed), and the
// tenant's charged flops are the sum of its jobs' charged flops — the
// invariant the service tests assert against the per-job records.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "service/job.h"
#include "support/accounting.h"

namespace rif::service {

class Ledger {
 public:
  void record_submitted(const std::string& tenant);
  void record_rejected(const std::string& tenant);
  void record_failed(const JobRecord& record);
  void record_completed(const JobRecord& record);

  /// Move a job previously record_completed() into the failed bucket — a
  /// host-execution failure discovered after its virtual completion (e.g.
  /// a streaming job whose cube file died mid-read). Flops stay charged
  /// (the leased nodes did run) and the wait/service histogram samples
  /// stay (the job really did queue and hold its lease); only the
  /// terminal bucket moves, preserving the one-bucket-per-job invariant.
  void reclassify_completed_as_failed(const JobRecord& record);

  /// Account for `tenant`, or nullptr if it never submitted.
  [[nodiscard]] const TenantAccount* find(const std::string& tenant) const;

  /// All accounts, sorted by tenant name.
  [[nodiscard]] std::vector<TenantAccount> snapshot() const;

 private:
  TenantAccount& account(const std::string& tenant);

  std::map<std::string, TenantAccount> accounts_;
};

}  // namespace rif::service
