// Admission scheduling of the fusion service.
//
// The scheduler decides which queued job to admit next against the free
// worker capacity tracked by the LeaseBook AND the free host-memory budget
// (a job "fits" only when both its worker demand and its peak-memory
// demand fit — the memory demand being the whole cube for a Full-mode host
// job but only queue_depth chunk buffers for a Streaming one, which is how
// larger-than-budget scenes stay admissible). Both policies backfill — a
// job too large for the current free set never blocks smaller jobs behind
// it — so the queue keeps draining at saturation; they differ in *which*
// fitting job goes first:
//
//  * kFirstFit       — the first fitting job in priority-then-FIFO order.
//                      Preserves arrival fairness within a priority class.
//  * kSmallestFirst  — the fitting job with the smallest worker demand
//                      (ties broken priority-then-FIFO). Packs more
//                      concurrent jobs onto the cluster, trading fairness
//                      for throughput; big jobs run when the cluster drains.
//  * kAdaptive       — feedback-driven: behaves like kFirstFit while host
//                      memory is plentiful, but once the free budget drops
//                      below half the total it prefers STREAMING jobs
//                      (first-fit among them) over Full-mode ones. A
//                      streamed job's demand is queue_depth chunk buffers,
//                      not a cube, so under pressure it keeps the cluster
//                      busy with a sliver of the budget while Full jobs
//                      wait for it to loosen; with no memory budget
//                      configured there is no pressure signal and kAdaptive
//                      degenerates to kFirstFit. Paired with the service's
//                      counter-offer (over-budget Full submissions carrying
//                      a cube file are converted to Streaming instead of
//                      rejected kOverMemoryBudget — see service.h).
#pragma once

#include <cstdint>
#include <limits>

#include "service/job_queue.h"

namespace rif::service {

/// `free_memory` value meaning "no memory budgeting".
inline constexpr std::uint64_t kUnlimitedMemory =
    std::numeric_limits<std::uint64_t>::max();

enum class AdmissionPolicy { kFirstFit, kSmallestFirst, kAdaptive };

inline const char* to_string(AdmissionPolicy p) {
  switch (p) {
    case AdmissionPolicy::kFirstFit: return "first-fit";
    case AdmissionPolicy::kSmallestFirst: return "smallest-first";
    case AdmissionPolicy::kAdaptive: return "adaptive";
  }
  return "?";
}

class Scheduler {
 public:
  explicit Scheduler(AdmissionPolicy policy) : policy_(policy) {}

  [[nodiscard]] AdmissionPolicy policy() const { return policy_; }

  /// The job to admit with `free_workers` nodes and `free_memory` bytes of
  /// host budget available, or kNoJob when nothing queued fits both.
  /// `total_memory` (the configured budget) gives kAdaptive its pressure
  /// signal — free/total — and is ignored by the static policies.
  /// `admission_pressure` is the scraper-published demand signal (queued
  /// memory demand / free budget, see service.h): kAdaptive also treats
  /// pressure >= 1.0 — more demand waiting than budget left — as pressured
  /// even while free memory is still above the half-way line, so the
  /// streaming preference kicks in before the budget actually drains. The
  /// static policies ignore it. Does not mutate the queue.
  [[nodiscard]] JobId pick(const JobQueue& queue, int free_workers,
                           std::uint64_t free_memory = kUnlimitedMemory,
                           std::uint64_t total_memory = kUnlimitedMemory,
                           double admission_pressure = 0.0) const;

 private:
  AdmissionPolicy policy_;
};

}  // namespace rif::service
