#include "service/accounting.h"

#include "support/check.h"

namespace rif::service {

TenantAccount& Ledger::account(const std::string& tenant) {
  auto [it, inserted] = accounts_.try_emplace(tenant);
  if (inserted) it->second.tenant = tenant;
  return it->second;
}

void Ledger::record_submitted(const std::string& tenant) {
  ++account(tenant).jobs_submitted;
}

void Ledger::record_rejected(const std::string& tenant) {
  ++account(tenant).jobs_rejected;
}

void Ledger::record_failed(const JobRecord& record) {
  ++account(record.tenant).jobs_failed;
}

void Ledger::record_completed(const JobRecord& record) {
  TenantAccount& acc = account(record.tenant);
  ++acc.jobs_completed;
  acc.flops_charged += record.flops_charged;
  acc.queue_wait.record(record.wait_seconds);
  acc.service_time.record(record.service_seconds);
}

void Ledger::reclassify_completed_as_failed(const JobRecord& record) {
  TenantAccount& acc = account(record.tenant);
  RIF_CHECK(acc.jobs_completed > 0);
  --acc.jobs_completed;
  ++acc.jobs_failed;
}

const TenantAccount* Ledger::find(const std::string& tenant) const {
  auto it = accounts_.find(tenant);
  return it == accounts_.end() ? nullptr : &it->second;
}

std::vector<TenantAccount> Ledger::snapshot() const {
  std::vector<TenantAccount> out;
  out.reserve(accounts_.size());
  for (const auto& [name, acc] : accounts_) out.push_back(acc);
  return out;
}

}  // namespace rif::service
