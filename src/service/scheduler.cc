#include "service/scheduler.h"

namespace rif::service {

JobId Scheduler::pick(const JobQueue& queue, int free_workers) const {
  if (free_workers <= 0) return kNoJob;
  const std::vector<JobQueue::Entry> entries = queue.in_order();

  switch (policy_) {
    case AdmissionPolicy::kFirstFit:
      for (const auto& e : entries) {
        if (e.workers <= free_workers) return e.id;
      }
      return kNoJob;

    case AdmissionPolicy::kSmallestFirst: {
      JobId best = kNoJob;
      int best_workers = 0;
      // entries are already in priority-then-FIFO order, so a strict `<`
      // keeps the earliest candidate among equal demands.
      for (const auto& e : entries) {
        if (e.workers > free_workers) continue;
        if (best == kNoJob || e.workers < best_workers) {
          best = e.id;
          best_workers = e.workers;
        }
      }
      return best;
    }
  }
  return kNoJob;
}

}  // namespace rif::service
