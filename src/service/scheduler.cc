#include "service/scheduler.h"

namespace rif::service {

JobId Scheduler::pick(const JobQueue& queue, int free_workers,
                      std::uint64_t free_memory) const {
  if (free_workers <= 0) return kNoJob;
  const std::vector<JobQueue::Entry> entries = queue.in_order();
  const auto fits = [&](const JobQueue::Entry& e) {
    return e.workers <= free_workers && e.memory <= free_memory;
  };

  switch (policy_) {
    case AdmissionPolicy::kFirstFit:
      for (const auto& e : entries) {
        if (fits(e)) return e.id;
      }
      return kNoJob;

    case AdmissionPolicy::kSmallestFirst: {
      JobId best = kNoJob;
      int best_workers = 0;
      // entries are already in priority-then-FIFO order, so a strict `<`
      // keeps the earliest candidate among equal demands.
      for (const auto& e : entries) {
        if (!fits(e)) continue;
        if (best == kNoJob || e.workers < best_workers) {
          best = e.id;
          best_workers = e.workers;
        }
      }
      return best;
    }
  }
  return kNoJob;
}

}  // namespace rif::service
