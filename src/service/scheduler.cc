#include "service/scheduler.h"

namespace rif::service {

JobId Scheduler::pick(const JobQueue& queue, int free_workers,
                      std::uint64_t free_memory, std::uint64_t total_memory,
                      double admission_pressure) const {
  if (free_workers <= 0) return kNoJob;
  const std::vector<JobQueue::Entry> entries = queue.in_order();
  const auto fits = [&](const JobQueue::Entry& e) {
    return e.workers <= free_workers && e.memory <= free_memory;
  };

  switch (policy_) {
    case AdmissionPolicy::kFirstFit:
      for (const auto& e : entries) {
        if (fits(e)) return e.id;
      }
      return kNoJob;

    case AdmissionPolicy::kAdaptive: {
      // Memory pressure = spent fraction of the budget, OR the published
      // admission-pressure gauge (queued demand / free budget) at or past
      // 1.0 — demand already outruns what is left, so act early. At either
      // signal, prefer the jobs that barely dent the budget: first-fit
      // among streaming entries, falling back to plain first-fit when none
      // fits (an idle cluster helps nobody). No budget => no signal =>
      // kFirstFit.
      const bool pressured =
          total_memory != kUnlimitedMemory && total_memory > 0 &&
          (free_memory <= total_memory / 2 || admission_pressure >= 1.0);
      if (pressured) {
        for (const auto& e : entries) {
          if (e.streaming && fits(e)) return e.id;
        }
      }
      for (const auto& e : entries) {
        if (fits(e)) return e.id;
      }
      return kNoJob;
    }

    case AdmissionPolicy::kSmallestFirst: {
      JobId best = kNoJob;
      int best_workers = 0;
      // entries are already in priority-then-FIFO order, so a strict `<`
      // keeps the earliest candidate among equal demands.
      for (const auto& e : entries) {
        if (!fits(e)) continue;
        if (best == kNoJob || e.workers < best_workers) {
          best = e.id;
          best_workers = e.workers;
        }
      }
      return best;
    }
  }
  return kNoJob;
}

}  // namespace rif::service
