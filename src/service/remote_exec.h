// Coordinator for running one fusion job across real worker processes.
//
// This is the ManagerActor's Full-mode protocol replayed over sockets: the
// same six messages, the same strictly-in-tile-order unique-set merge, the
// same fixed shard partition and shard-order covariance merge. Because
// every arithmetic step happens in the same order on the same shared
// kernels, the composite is byte-identical to the sim-transport run and to
// fuse_parallel with the same tile/shard counts — the sim stays the oracle
// for the real deployment.
//
// Fault handling: when a worker disconnects mid-job, every tile or
// covariance shard it owned is re-queued onto the survivors and the job
// completes without a restart. A worker that HANGS (or whose replies a
// degraded link eats) is caught by per-item deadlines: every assigned tile
// and every outstanding covariance shard has its own clock, and an item
// overdue is re-sent to a different live worker with an exponentially
// backed-off deadline, up to `resend_limit` attempts — then the job gives
// up and the caller falls back to the host pool. One chatty worker can no
// longer keep another worker's stalled work alive, because no global
// silence clock exists to reset. Determinism survives all of this because
// the merge orders are keyed by tile/shard index, never by which worker
// answered — a resent item computed twice lands in the same slot with the
// same bytes.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/remote_pool.h"
#include "hsi/image_cube.h"
#include "hsi/image_io.h"
#include "linalg/jacobi_eig.h"
#include "runtime/metrics.h"

namespace rif::service {

struct RemoteExecParams {
  const hsi::ImageCube* cube = nullptr;
  int total_tiles = 1;
  double screening_threshold = 0.05;
  int output_components = 3;
  linalg::JacobiOptions jacobi;
  std::int64_t job_id = 0;
  /// Upper bound on one poll_event wait (the loop wakes sooner when a
  /// per-item deadline is nearer).
  double poll_timeout_seconds = 2.0;
  /// Per-JOB wall deadline: give up (caller falls back to the host
  /// engine) this long after the job starts, whatever else is happening.
  double deadline_seconds = 300.0;
  /// Per-item clock: an assigned tile or outstanding covariance shard
  /// unanswered this long is re-sent to another live worker. Grows by
  /// `resend_backoff` per attempt. <= 0 disables per-item deadlines
  /// (the job deadline still applies).
  double shard_deadline_seconds = 10.0;
  /// Re-send budget per item; exceeding it fails the job to host fallback.
  int resend_limit = 3;
  double resend_backoff = 2.0;
  /// When set, resend/giveup counters are published here
  /// (remote.tile_resends / remote.shard_resends / remote.deadline_giveups).
  runtime::MetricsRegistry* metrics = nullptr;
};

struct RemoteExecResult {
  bool completed = false;
  hsi::RgbImage composite;
  std::size_t unique_set_size = 0;
  std::vector<double> eigenvalues;
  std::uint64_t screen_comparisons = 0;
  std::uint64_t merge_comparisons = 0;
  int shards = 0;             ///< fixed covariance shard count used
  int tiles_requeued = 0;     ///< tiles reassigned after a disconnect
  int worker_disconnects = 0;
  int tiles_resent = 0;       ///< tiles re-sent after a per-item deadline
  int shards_resent = 0;      ///< cov shards re-sent after a deadline
  int deadline_giveups = 0;   ///< items whose resend budget ran out
};

/// Run one job over `workers` (pool indices). The shard count is fixed to
/// the number of live workers at job start, so the composite matches a sim
/// run with that worker count even if some workers die mid-job.
RemoteExecResult execute_remote_job(cluster::RemoteWorkerPool& pool,
                                    const std::vector<int>& workers,
                                    const RemoteExecParams& params);

}  // namespace rif::service
