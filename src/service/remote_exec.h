// Coordinator for running one fusion job across real worker processes.
//
// This is the ManagerActor's Full-mode protocol replayed over sockets: the
// same six messages, the same strictly-in-tile-order unique-set merge, the
// same fixed shard partition and shard-order covariance merge. Because
// every arithmetic step happens in the same order on the same shared
// kernels, the composite is byte-identical to the sim-transport run and to
// fuse_parallel with the same tile/shard counts — the sim stays the oracle
// for the real deployment.
//
// Fault handling: when a worker disconnects mid-job, every tile or
// covariance shard it owned is re-queued onto the survivors and the job
// completes without a restart. Determinism survives because the merge
// orders are keyed by tile/shard index, never by which worker answered.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/remote_pool.h"
#include "hsi/image_cube.h"
#include "hsi/image_io.h"
#include "linalg/jacobi_eig.h"

namespace rif::service {

struct RemoteExecParams {
  const hsi::ImageCube* cube = nullptr;
  int total_tiles = 1;
  double screening_threshold = 0.05;
  int output_components = 3;
  linalg::JacobiOptions jacobi;
  std::int64_t job_id = 0;
  /// Per-poll wait; total idle time past this with no live worker fails.
  double poll_timeout_seconds = 2.0;
  /// Give up (caller falls back to the host engine) after this much
  /// cumulative silence.
  double deadline_seconds = 300.0;
};

struct RemoteExecResult {
  bool completed = false;
  hsi::RgbImage composite;
  std::size_t unique_set_size = 0;
  std::vector<double> eigenvalues;
  std::uint64_t screen_comparisons = 0;
  std::uint64_t merge_comparisons = 0;
  int shards = 0;             ///< fixed covariance shard count used
  int tiles_requeued = 0;     ///< tiles reassigned after a disconnect
  int worker_disconnects = 0;
};

/// Run one job over `workers` (pool indices). The shard count is fixed to
/// the number of live workers at job start, so the composite matches a sim
/// run with that worker count even if some workers die mid-job.
RemoteExecResult execute_remote_job(cluster::RemoteWorkerPool& pool,
                                    const std::vector<int>& workers,
                                    const RemoteExecParams& params);

}  // namespace rif::service
