#include "service/service.h"

#include "service/remote_exec.h"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <sstream>
#include <thread>
#include <utility>

#include "core/parallel/parallel_pct.h"
#include "hsi/chunked_reader.h"
#include "linalg/kernels.h"
#include "obs/span_tracer.h"
#include "runtime/chunk_geometry.h"
#include "stream/streaming_engine.h"
#include "support/check.h"
#include "support/log.h"

namespace rif::service {

namespace {

/// Node 0 hosts the service head: every job's manager plus the failure
/// detector. Worker nodes are 1..N and form the leasable pool.
constexpr cluster::NodeId kHeadNode = 0;

std::vector<cluster::NodeId> worker_pool(int worker_nodes) {
  std::vector<cluster::NodeId> pool;
  pool.reserve(static_cast<std::size_t>(worker_nodes));
  for (int n = 0; n < worker_nodes; ++n) {
    pool.push_back(static_cast<cluster::NodeId>(n + 1));
  }
  return pool;
}

/// SimTime is already integral nanoseconds — the virtual-trace timestamp
/// directly.
std::uint64_t vt_ns(SimTime t) {
  return t > 0 ? static_cast<std::uint64_t>(t) : 0;
}

/// The job's lifecycle lane in the exported trace (tid on kVirtualPid).
std::int32_t job_track(JobId id) { return static_cast<std::int32_t>(id); }

}  // namespace

FusionService::FusionService(ServiceConfig config)
    : config_(std::move(config)),
      cluster_(sim_),
      injector_(cluster_),
      leases_(worker_pool(config_.worker_nodes)),
      scheduler_(config_.admission) {
  RIF_CHECK(config_.worker_nodes >= 1);
  RIF_CHECK(config_.execution_threads >= 0);
  if (config_.execution_threads > 0) {
    exec_pool_ = std::make_unique<core::ThreadPool>(config_.execution_threads);
    exec_pool_->bind_metrics(metrics_, "host_pool.");
  }
  cluster_.add_nodes(config_.worker_nodes + 1, config_.node);
  network_ =
      core::make_network(cluster_, config_.network, config_.lan, config_.smp);
  runtime_ =
      std::make_unique<scp::Runtime>(cluster_, *network_, config_.runtime);
  runtime_->set_on_group_lost([this](scp::ThreadId tid) {
    const JobId id = runtime_->job_of(tid);
    if (id != kNoJob) fail_job(id);
  });

  // The remote pool and its telemetry collector exist from construction
  // (attach_remote_workers only binds/starts them inside run()): the ops
  // plane's status/flamegraph providers run on their own poll thread and
  // must never race a mid-run pointer materialization.
  if (config_.remote_workers > 0) {
    remote_pool_ = std::make_unique<cluster::RemoteWorkerPool>();
    remote_pool_->bind_metrics(metrics_, "remote.");
    remote_pool_->configure_supervision({config_.remote_heartbeat_seconds,
                                         config_.remote_hung_timeout_seconds});
    if (!config_.remote_faults.empty()) {
      RIF_LOG_WARN("service",
                   "wire fault injection ACTIVE on the remote plane ("
                       << config_.remote_faults.script.size()
                       << " scripted events)");
      remote_pool_->install_faults(config_.remote_faults);
    }
    telemetry_ = std::make_unique<obs::RemoteTelemetryCollector>();
    remote_pool_->set_telemetry_sink(
        [this](cluster::NodeId node, const scp::TelemetryBody& body) {
          telemetry_->on_batch(node, body);
        });
  }

  if (config_.scrape_period_seconds > 0.0) {
    obs::MetricsScraper::Config sc;
    sc.period_seconds = config_.scrape_period_seconds;
    scraper_ = std::make_unique<obs::MetricsScraper>(metrics_, sc);
    // The derive hook runs on the scraper thread concurrently with the sim
    // and pool threads, so it reads only the atomic gauges the sim thread
    // publishes — never queue_/memory_in_use_ directly.
    scraper_->set_derive(
        [this,
         budget = config_.host_memory_budget](runtime::MetricsRegistry& reg) {
          double pressure = 0.0;
          if (budget > 0) {
            const double queued =
                reg.gauge_value("service.queued_memory_demand");
            const double in_use = reg.gauge_value("service.memory_in_use");
            const double free =
                std::max(static_cast<double>(budget) - in_use, 0.0);
            pressure = queued / std::max(free, 1.0);
          }
          reg.gauge("service.admission_pressure", runtime::GaugeKind::kSum)
              .set(pressure);
          // Fold the latest remote-worker shipments in under their
          // per-node prefixes, so the same scrape that samples host series
          // samples the remote plane (idempotent between shipments).
          if (telemetry_ != nullptr) telemetry_->merge_metrics_into(reg);
        });
    scraper_->set_on_scrape(
        [this](const std::string& line) { on_scrape_sample(line); });
  }

  if (config_.ops_enabled) {
    log_ring_ = std::make_unique<LogRing>(config_.ops_log_ring);
    Logger::instance().set_sink(log_ring_.get());
    if (telemetry_ != nullptr) {
      // Shipped worker records land in the same ring as local lines, with
      // node attribution; the timestamp is the honest local arrival stamp
      // (worker steady time is a different clock).
      telemetry_->set_log_sink(
          [this](cluster::NodeId node, const scp::TelemetryLog& l) {
            LogRecord record;
            record.level = static_cast<LogLevel>(l.level);
            record.component = l.component;
            record.message = l.message;
            record.job = l.job;
            record.t_seconds = Logger::instance().now_seconds();
            record.node = static_cast<std::int32_t>(node);
            log_ring_->append(std::move(record));
          });
    }
    obs::OpsServerConfig oc;
    oc.port = config_.ops_port;
    oc.unix_path = config_.ops_socket_path;
    obs::OpsServer::Providers providers;
    providers.status_json = [this] { return status_json(); };
    providers.metrics_json = [this] { return metrics_.to_json(); };
    providers.flamegraph_json = [this] { return flamegraph_json(); };
    providers.log_ring = log_ring_.get();
    ops_server_ =
        std::make_unique<obs::OpsServer>(std::move(oc), std::move(providers));
    RIF_CHECK_MSG(ops_server_->start(), "cannot bind the ops endpoint");
    // With a live endpoint the scraper runs from construction too, so a
    // subscriber attached before (or after) run() still sees samples.
    if (scraper_ != nullptr) scraper_->start();
  }
}

FusionService::~FusionService() {
  if (scraper_ != nullptr) scraper_->stop();
  if (ops_server_ != nullptr) ops_server_->stop();
  if (remote_pool_ != nullptr) remote_pool_->stop();
  if (log_ring_ != nullptr) Logger::instance().remove_sink(log_ring_.get());
}

RejectReason FusionService::validate(const JobRequest& request) const {
  const core::FusionJobConfig& cfg = request.config;
  if (cfg.workers < 1 || cfg.tiles_per_worker < 1 || cfg.replication < 1 ||
      request.arrival < 0) {
    return RejectReason::kBadConfig;
  }
  if (cfg.mode == core::ExecutionMode::kFull && cfg.cube == nullptr) {
    return RejectReason::kBadConfig;
  }
  if (request.mode == JobMode::kStreaming) {
    // Streaming jobs fuse a FILE on the host pool; the simulated actors
    // only play out timing/placement, so an in-memory cube (or Full-mode
    // actor execution) alongside is a contradiction. Chunk-geometry bounds
    // are the engine's own (runtime/chunk_geometry.h): a request the
    // engine would refuse mid-run is refused here, at submission.
    if (request.cube_path.empty() || cfg.cube != nullptr ||
        cfg.mode == core::ExecutionMode::kFull ||
        config_.execution_threads <= 0) {
      return RejectReason::kBadConfig;
    }
    if (const char* error = runtime::validate_chunk_geometry(
            request.chunk_lines, request.queue_depth)) {
      RIF_LOG_WARN("service", "streaming request rejected: " << error);
      return RejectReason::kBadConfig;
    }
  }
  if (cfg.replication > 1 && !config_.runtime.resilient) {
    return RejectReason::kBadConfig;
  }
  // Replicas of one worker must land on distinct leased nodes, or a single
  // crash wipes a whole group and the redundancy the tenant asked for is
  // fiction.
  if (cfg.replication > cfg.workers) {
    return RejectReason::kBadConfig;
  }
  // Remote workers attach during run(), after all submissions — size the
  // bound to the capacity the service EXPECTS, so jobs may target it.
  if (cfg.workers > config_.worker_nodes + config_.remote_workers) {
    return RejectReason::kTooManyWorkers;
  }
  return RejectReason::kNone;
}

SubmitResult FusionService::submit(JobRequest request) {
  RIF_CHECK_MSG(!ran_, "submit after run()");
  const JobId id = static_cast<JobId>(jobs_.size());
  RIF_TRACE_SPAN_JOB("submit", id);
  if (obs::SpanTracer::instance().enabled()) {
    obs::SpanTracer::instance().set_job_tenant(id, request.tenant);
  }

  auto job = std::make_unique<PendingJob>();
  job->record.id = id;
  job->record.tenant = request.tenant;
  job->record.priority = request.priority;
  job->record.mode = request.mode;
  job->record.workers = request.config.workers;
  job->record.submit_time = request.arrival;
  ledger_.record_submitted(request.tenant);

  RejectReason reason = validate(request);

  // The kAdaptive counter-offer: a Full-mode cube that can NEVER fit the
  // memory budget is a guaranteed kOverMemoryBudget — unless the tenant
  // attached a cube_path, which is consent to run the same scene as a
  // Streaming job whose demand is queue_depth chunk buffers instead of
  // the cube. Convert, then let the normal streaming validation/budgeting
  // below treat it like any other streamed submission.
  if (reason == RejectReason::kNone && request.mode == JobMode::kFull &&
      config_.admission == AdmissionPolicy::kAdaptive &&
      config_.host_memory_budget > 0 && exec_pool_ != nullptr &&
      request.config.cube != nullptr && !request.cube_path.empty() &&
      request.config.cube->bytes() > config_.host_memory_budget) {
    request.mode = JobMode::kStreaming;
    request.config.cube = nullptr;
    request.config.mode = core::ExecutionMode::kCostOnly;
    job->record.mode = JobMode::kStreaming;
    job->record.counter_offered = true;
    metrics_.counter("service.counter_offers").add(1);
    RIF_LOG_DEBUG("service", "job " << id
                                    << " counter-offered as streaming ("
                                    << request.cube_path << ")");
    reason = validate(request);
  }

  if (reason == RejectReason::kNone &&
      request.mode == JobMode::kStreaming) {
    // Structural validation of the file itself: parseable header, data
    // length matching the dims (the shared cube_io validation path). The
    // header also gives the job its shape — for the cost-model actors —
    // and its budgeted peak memory: queue_depth chunk buffers, NOT the
    // cube. That is the admission-control point of Streaming mode.
    const auto reader = hsi::ChunkedCubeReader::open(request.cube_path);
    if (!reader) {
      reason = RejectReason::kBadConfig;
    } else {
      request.config.shape = {reader->samples(), reader->lines(),
                              reader->bands()};
      job->record.memory_demand =
          static_cast<std::uint64_t>(request.queue_depth) *
          reader->chunk_bytes(std::min(request.chunk_lines,
                                       reader->lines()));
    }
  } else if (reason == RejectReason::kNone &&
             request.config.cube != nullptr) {
    // A resident cube is the job's host working set, whole.
    job->record.memory_demand = request.config.cube->bytes();
  }
  if (reason == RejectReason::kNone && config_.host_memory_budget > 0 &&
      job->record.memory_demand > config_.host_memory_budget) {
    reason = RejectReason::kOverMemoryBudget;
  }

  metrics_.counter("service.submitted").add(1);
  metrics_.counter("tenant." + request.tenant + ".submitted").add(1);
  if (reason != RejectReason::kNone) {
    job->record.rejected = reason;
    ledger_.record_rejected(request.tenant);
    metrics_.counter("service.rejected").add(1);
    metrics_.counter("tenant." + request.tenant + ".rejected").add(1);
    jobs_.push_back(std::move(job));
    return SubmitResult{id, reason, false};
  }

  const bool counter_offered = job->record.counter_offered;
  ++outstanding_;
  sim_.schedule_at(request.arrival, [this, id] { on_arrival(id); });
  job->request = std::move(request);
  jobs_.push_back(std::move(job));
  return SubmitResult{id, RejectReason::kNone, counter_offered};
}

void FusionService::on_arrival(JobId id) {
  PendingJob& job = *jobs_[static_cast<std::size_t>(id)];
  if (config_.max_queue_length != 0 &&
      queue_.size() >= config_.max_queue_length) {
    job.record.rejected = RejectReason::kQueueFull;
    ledger_.record_rejected(job.record.tenant);
    metrics_.counter("service.rejected").add(1);
    metrics_.counter("tenant." + job.record.tenant + ".rejected").add(1);
    --outstanding_;
    RIF_LOG_WARN("service", "job " << id << " rejected: queue full");
    return;
  }
  queue_.push(id, job.record.priority, job.record.workers,
              job.record.memory_demand,
              job.record.mode == JobMode::kStreaming);
  job.enqueue_time = sim_.now();
  publish_queue_gauges();
  metrics_.gauge("service.queued_memory_demand", runtime::GaugeKind::kSum)
      .set(static_cast<double>(queue_.total_memory_demand()));
  RIF_TRACE_COUNTER("service.queue_occupancy",
                    static_cast<double>(queue_.size()));
  obs::SpanTracer& tracer = obs::SpanTracer::instance();
  if (tracer.enabled()) {
    tracer.virtual_begin("queue_wait", job_track(id), vt_ns(sim_.now()), id);
    job.queue_span_open = true;
  }
  dispatch();
}

void FusionService::dispatch() {
  // Leases are only granted on live nodes: a crashed-and-unrepaired worker
  // returns to the free pool when its lease ends but is skipped over until
  // restored, so capacity loss delays jobs instead of dooming them.
  // A remote worker whose connection dropped is as gone as a crashed sim
  // node — the pool's atomic liveness keeps it out of new leases without
  // the sim thread touching the poll thread's locks.
  const cluster::NodeFilter alive = [this](cluster::NodeId n) {
    return cluster_.node(n).alive() &&
           (remote_pool_ == nullptr || remote_pool_->node_alive(n));
  };
  RIF_TRACE_SPAN("admission");
  while (true) {
    // Recomputed per admission: start_job below spends budget.
    const std::uint64_t free_memory =
        config_.host_memory_budget == 0
            ? kUnlimitedMemory
            : config_.host_memory_budget - memory_in_use_;
    const std::uint64_t total_memory = config_.host_memory_budget == 0
                                           ? kUnlimitedMemory
                                           : config_.host_memory_budget;
    // The same demand-vs-budget signal the scraper publishes as the
    // "service.admission_pressure" gauge, computed from the sim thread's
    // own live values (the gauge itself may be a scrape period stale).
    const double pressure =
        config_.host_memory_budget == 0
            ? 0.0
            : static_cast<double>(queue_.total_memory_demand()) /
                  std::max(static_cast<double>(free_memory), 1.0);
    const JobId id = scheduler_.pick(queue_, leases_.free_nodes(alive),
                                     free_memory, total_memory, pressure);
    if (id == kNoJob) break;
    const bool removed = queue_.remove(id);
    RIF_CHECK(removed);
    publish_queue_gauges();
    metrics_.gauge("service.queued_memory_demand", runtime::GaugeKind::kSum)
        .set(static_cast<double>(queue_.total_memory_demand()));
    RIF_TRACE_COUNTER("service.queue_occupancy",
                      static_cast<double>(queue_.size()));
    start_job(id, alive);
  }
  // The periodic scraper samples on the WALL clock, but queue pressure
  // plays out on the virtual timeline — a whole pressured episode can fit
  // between two wall scrapes and never be seen. When admission leaves
  // demand queued against a budget, take a synchronous scrape so every
  // pressured admission decision lands in the timeline (the sample ring
  // bounds the cost).
  if (scraper_ != nullptr && config_.host_memory_budget != 0 &&
      queue_.total_memory_demand() > 0) {
    scraper_->scrape_now();
  }
}

void FusionService::start_job(JobId id, const cluster::NodeFilter& alive) {
  PendingJob& job = *jobs_[static_cast<std::size_t>(id)];
  job.record.start_time = sim_.now();
  job.record.leased_nodes = leases_.acquire(id, job.record.workers, alive);
  RIF_CHECK_MSG(!job.record.leased_nodes.empty(),
                "scheduler admitted a job that does not fit");
  job.flops_at_start.clear();
  for (const cluster::NodeId n : job.record.leased_nodes) {
    job.flops_at_start.push_back(cluster_.node(n).flops_charged());
  }

  // With a host execution pool, a Full-mode job's pixels are fused on the
  // shared pool (execute_host_jobs, after the virtual run decides timing)
  // and the simulated actors run CostOnly. Placement, leases and message
  // flow are unchanged, but virtual time and flops then follow the cost
  // model's estimates rather than the data-dependent counts a Full-mode
  // actor run would charge — the host pool trades that fidelity for
  // running the arithmetic once instead of twice.
  core::FusionJobConfig sim_config = job.request.config;
  if (exec_pool_ != nullptr &&
      sim_config.mode == core::ExecutionMode::kFull) {
    job.host_execute = true;
    sim_config.mode = core::ExecutionMode::kCostOnly;
    sim_config.cube = nullptr;
  }
  // A Streaming job's actors always run CostOnly (validate guarantees it):
  // placement, leases and message flow play out on the virtual timeline
  // while the pixels stream from disk on the host pool afterwards.
  if (job.request.mode == JobMode::kStreaming) job.stream_execute = true;
  memory_in_use_ += job.record.memory_demand;
  metrics_.gauge("service.memory_in_use", runtime::GaugeKind::kSum)
      .set(static_cast<double>(memory_in_use_));
  RIF_TRACE_COUNTER("service.memory_in_use",
                    static_cast<double>(memory_in_use_));
  // Close the job's queue_wait lane and open its execute lane at the same
  // virtual instant; queue_wait_seconds is exactly that span's length.
  if (job.enqueue_time >= 0) {
    job.record.queue_wait_seconds = to_seconds(sim_.now() - job.enqueue_time);
  }
  obs::SpanTracer& tracer = obs::SpanTracer::instance();
  if (job.queue_span_open) {
    tracer.virtual_end("queue_wait", job_track(id), vt_ns(sim_.now()), id);
    job.queue_span_open = false;
  }
  if (tracer.enabled()) {
    tracer.virtual_begin("execute", job_track(id), vt_ns(sim_.now()), id);
    job.exec_span_open = true;
  }
  job.instance = std::make_unique<core::FusionJobInstance>(sim_config);
  job.instance->spawn(*runtime_, kHeadNode, job.record.leased_nodes, id,
                      [this, id] { on_job_complete(id); });

  ++running_;
  max_concurrent_ = std::max(max_concurrent_, running_);
  publish_queue_gauges();
  RIF_LOG_DEBUG("service", "job " << id << " admitted on "
                                  << job.record.workers << " nodes at t="
                                  << to_seconds(sim_.now()) << "s");
}

void FusionService::on_job_complete(JobId id) {
  PendingJob& job = *jobs_[static_cast<std::size_t>(id)];
  RIF_CHECK(!job.record.completed && !job.record.failed);
  job.record.completed = true;
  job.record.finish_time = sim_.now();
  job.record.wait_seconds =
      to_seconds(job.record.start_time - job.record.submit_time);
  job.record.service_seconds =
      to_seconds(job.record.finish_time - job.record.start_time);
  for (std::size_t i = 0; i < job.record.leased_nodes.size(); ++i) {
    job.record.flops_charged +=
        cluster_.node(job.record.leased_nodes[i]).flops_charged() -
        job.flops_at_start[i];
  }
  job.record.outcome = job.instance->take_outcome();
  if (job.exec_span_open) {
    obs::SpanTracer::instance().virtual_end("execute", job_track(id),
                                            vt_ns(sim_.now()), id);
    job.exec_span_open = false;
  }

  // Tear down the job's (quiescent) actors before the nodes change hands:
  // a retired worker must not heartbeat — or be billed — on a node leased
  // to the next tenant.
  runtime_->retire_job(id);
  leases_.release(id);
  memory_in_use_ -= job.record.memory_demand;
  metrics_.gauge("service.memory_in_use", runtime::GaugeKind::kSum)
      .set(static_cast<double>(memory_in_use_));
  RIF_TRACE_COUNTER("service.memory_in_use",
                    static_cast<double>(memory_in_use_));
  ledger_.record_completed(job.record);
  metrics_.counter("service.completed").add(1);
  metrics_.counter("tenant." + job.record.tenant + ".completed").add(1);
  metrics_.histogram("tenant." + job.record.tenant + ".wait_seconds")
      .observe(job.record.wait_seconds);
  metrics_.histogram("tenant." + job.record.tenant + ".latency_seconds")
      .observe(job.record.wait_seconds + job.record.service_seconds);
  --running_;
  --outstanding_;
  publish_queue_gauges();
  dispatch();
}

void FusionService::on_node_failed(cluster::NodeId node) {
  // With a resilient runtime the failure detector owns recovery (replicas
  // regenerate inside the lease; an unrecoverable group reaches fail_job
  // via on_group_lost). Without it actors are fate-shared with their node
  // and nothing would ever report the loss — fail the leaseholder now so
  // its lease is reclaimed instead of wedging the cluster.
  if (config_.runtime.resilient) return;
  const cluster::LeaseOwner owner = leases_.owner_of(node);
  if (owner == cluster::kNoOwner) return;
  fail_job(static_cast<JobId>(owner));
}

void FusionService::fail_job(JobId id) {
  PendingJob& job = *jobs_[static_cast<std::size_t>(id)];
  if (job.record.completed || job.record.failed) return;
  job.record.failed = true;
  job.record.finish_time = sim_.now();
  job.record.wait_seconds =
      to_seconds(job.record.start_time - job.record.submit_time);
  job.record.service_seconds =
      to_seconds(job.record.finish_time - job.record.start_time);
  if (job.exec_span_open) {
    obs::SpanTracer::instance().virtual_end("execute", job_track(id),
                                            vt_ns(sim_.now()), id);
    job.exec_span_open = false;
  }

  // Abandon whatever survives of the job (manager, sibling worker groups)
  // so nothing keeps running inside a lease about to be reclaimed.
  runtime_->retire_job(id);
  leases_.release(id);
  memory_in_use_ -= job.record.memory_demand;
  metrics_.gauge("service.memory_in_use", runtime::GaugeKind::kSum)
      .set(static_cast<double>(memory_in_use_));
  RIF_TRACE_COUNTER("service.memory_in_use",
                    static_cast<double>(memory_in_use_));
  ledger_.record_failed(job.record);
  metrics_.counter("service.failed").add(1);
  metrics_.counter("tenant." + job.record.tenant + ".failed").add(1);
  --running_;
  --outstanding_;
  publish_queue_gauges();
  RIF_LOG_WARN("service", "job " << id << " failed (replica group lost)");
  dispatch();
}

void FusionService::attach_remote_workers() {
  if (config_.remote_workers <= 0) return;
  RIF_CHECK_MSG(exec_pool_ != nullptr,
                "remote workers require execution_threads > 0 (host fallback)");
  // The pool, its telemetry collector, and both sinks were built in the
  // constructor; here it binds and goes live.
  // Remote node ids continue the cluster's numbering past the host pool.
  const cluster::NodeId first = config_.worker_nodes + 1;
  if (!config_.remote_spawn_local) {
    if (!config_.remote_socket_path.empty()) {
      RIF_CHECK_MSG(remote_pool_->listen_unix(config_.remote_socket_path),
                    "cannot bind remote worker unix socket");
    } else {
      RIF_CHECK_MSG(remote_pool_->listen_tcp(config_.remote_port),
                    "cannot bind remote worker port");
    }
  }
  remote_pool_->start(first);
  if (config_.remote_spawn_local) {
    for (int i = 0; i < config_.remote_workers; ++i) {
      remote_pool_->spawn_local_worker();
    }
  }
  const int attached = remote_pool_->wait_for_workers(
      config_.remote_workers, config_.remote_wait_seconds);
  for (int w = 0; w < attached; ++w) {
    cluster_.add_nodes(1, config_.node);
    const cluster::NodeId node = remote_pool_->node_of(w);
    RIF_CHECK_MSG(node == first + w, "remote node numbering out of step");
    leases_.add_node(node);
    remote_nodes_.push_back(node);
  }
  RIF_LOG_INFO("service", attached << "/" << config_.remote_workers
                                   << " remote workers leased in as nodes "
                                   << first << ".." << (first + attached - 1));
}

ServiceReport FusionService::run() {
  RIF_CHECK_MSG(!ran_, "run() called twice");
  ran_ = true;
  RIF_TRACE_SPAN("service_run");
  RIF_LOG_INFO("service", "run started: " << jobs_.size() << " submissions, "
                                          << config_.worker_nodes
                                          << " host nodes, "
                                          << config_.remote_workers
                                          << " remote workers expected");
  attach_remote_workers();
  publish_queue_gauges();

  if (scraper_ != nullptr) {
    if (!config_.metrics_stream_path.empty()) {
      // Live NDJSON feed: one sample object per line, flushed as it is
      // scraped, so an observer can tail the run in flight (the scraper
      // thread writes through on_scrape_sample under stream_mu_).
      const std::lock_guard<std::mutex> lock(stream_mu_);
      metrics_stream_.open(config_.metrics_stream_path,
                           std::ios::out | std::ios::trunc);
      if (!metrics_stream_) {
        RIF_LOG_WARN("service", "cannot open metrics stream "
                                    << config_.metrics_stream_path);
      }
    }
    scraper_->start();  // no-op when the ops plane already started it
  }

  injector_.schedule(config_.failures);
  // A repair returns capacity the scheduler may be waiting on; re-dispatch
  // just after each restore. The injector schedules the restore lazily
  // when the crash fires, so an event at the exact repair timestamp would
  // precede it — nudge one tick later. The crash itself is scheduled by
  // the injector above, so an event at the same timestamp here runs after
  // it — on_node_failed sees the node already down.
  for (const auto& f : config_.failures) {
    sim_.schedule_at(f.time, [this, node = f.node] { on_node_failed(node); });
    if (f.repair_after >= 0) {
      sim_.schedule_at(f.time + f.repair_after + 1, [this] { dispatch(); });
    }
  }
  runtime_->start();
  {
    RIF_TRACE_SPAN("sim_phase");
    while (outstanding_ > 0 && sim_.now() < config_.deadline) {
      if (!sim_.step()) break;
    }
  }
  // Phase-boundary scrapes bracket host execution, so even a run that
  // outraces the scrape period yields a timeline with distinct sim /
  // host-execution / final intervals.
  if (scraper_ != nullptr) scraper_->scrape_now();
  execute_host_jobs();
  // Goodbye the remote workers (their processes exit) and quiesce the
  // poll thread before reporting.
  if (remote_pool_ != nullptr) remote_pool_->stop();
  if (scraper_ != nullptr) {
    if (ops_server_ != nullptr) {
      // The ops plane outlives run(): keep the scraper streaming so
      // subscribers (and a rif_ops attaching after the run) still see live
      // samples; the destructor stops it. Take one synchronous scrape so
      // the end-of-run state is in the timeline regardless.
      scraper_->scrape_now();
    } else {
      scraper_->stop();  // includes the final scrape
    }
  }
  ServiceReport report = build_report();
  RIF_LOG_INFO("service", "run complete: " << report.jobs_completed << "/"
                                           << report.jobs_submitted
                                           << " jobs completed, "
                                           << report.jobs_failed << " failed, "
                                           << report.jobs_rejected
                                           << " rejected");
  return report;
}

bool FusionService::execute_remote(PendingJob& job) {
  // Pool indices of the job's leased remote nodes that are still connected.
  std::vector<int> workers;
  for (const cluster::NodeId n : job.record.leased_nodes) {
    const int w = remote_pool_->worker_of_node(n);
    if (w >= 0 && remote_pool_->alive(w)) workers.push_back(w);
  }
  if (workers.empty()) return false;

  obs::JobScope job_scope(job.record.id);
  RIF_TRACE_SPAN("remote_execute");
  const auto start = std::chrono::steady_clock::now();
  const core::FusionJobConfig& req = job.request.config;
  RemoteExecParams params;
  params.cube = req.cube;
  params.total_tiles = job.record.workers * req.tiles_per_worker;
  params.screening_threshold = req.screening_threshold;
  params.output_components = req.output_components;
  params.jacobi = req.jacobi;
  params.job_id = job.record.id;
  params.deadline_seconds = config_.remote_job_deadline_seconds;
  params.shard_deadline_seconds = config_.remote_shard_deadline_seconds;
  params.resend_limit = config_.remote_resend_limit;
  params.resend_backoff = config_.remote_resend_backoff;
  params.metrics = &metrics_;
  RemoteExecResult r = execute_remote_job(*remote_pool_, workers, params);
  job.record.remote_disconnects += r.worker_disconnects;
  if (!r.completed) {
    ++remote_fallbacks_;
    metrics_.counter("service.remote_fallbacks").add(1);
    RIF_LOG_WARN("service", "job " << job.record.id
                                   << " lost its remote workers; falling "
                                      "back to the host pool");
    return false;
  }
  core::JobOutcome& out = job.record.outcome;
  out.composite = std::move(r.composite);
  out.eigenvalues = std::move(r.eigenvalues);
  out.unique_set_size = r.unique_set_size;
  out.screen_comparisons = r.screen_comparisons;
  out.merge_comparisons = r.merge_comparisons;
  job.record.remote_executed = true;
  job.record.remote_workers = r.shards;
  job.record.remote_requeued_tiles = r.tiles_requeued;
  job.record.host_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  ++remote_jobs_;
  metrics_.counter("service.remote_jobs").add(1);
  // Telemetry barrier: each worker's job-end flush races our completion
  // (the spans ride the poll thread behind the last result frame). Give
  // every still-live leased worker a short window to land its lane, then
  // pin its ping-echo clock offset so the lane aligns onto our timeline.
  // Best-effort by design: a worker that died or whose telemetry was
  // dropped just leaves a missing lane.
  if (telemetry_ != nullptr) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(500);
    for (;;) {
      const std::vector<cluster::NodeId> seen =
          telemetry_->nodes_with_job_end(job.record.id);
      bool covered = true;
      for (const int w : workers) {
        if (!remote_pool_->alive(w)) continue;
        const cluster::NodeId n = remote_pool_->node_of(w);
        if (std::find(seen.begin(), seen.end(), n) == seen.end()) {
          covered = false;
          break;
        }
      }
      if (covered || std::chrono::steady_clock::now() >= deadline) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    for (const int w : workers) {
      const cluster::NodeId n = remote_pool_->node_of(w);
      telemetry_->set_clock_offset(n, remote_pool_->clock_offset_ns(n));
    }
  }
  return true;
}

void FusionService::execute_host_jobs() {
  if (exec_pool_ == nullptr) return;
  std::vector<PendingJob*> ready;
  for (auto& job : jobs_) {
    if ((job->host_execute || job->stream_execute) && job->record.completed) {
      ready.push_back(job.get());
    }
  }
  if (ready.empty()) return;

  // Jobs leased onto remote workers execute over the socket protocol
  // first, serially — the pool's event queue is shared, so two
  // coordinators cannot drain it at once. A job whose workers all died
  // stays in `ready` and falls back to the host waves below.
  if (remote_pool_ != nullptr) {
    std::vector<PendingJob*> rest;
    rest.reserve(ready.size());
    for (PendingJob* job : ready) {
      if (job->stream_execute || !execute_remote(*job)) {
        rest.push_back(job);
      }
    }
    ready = std::move(rest);
    if (ready.empty()) return;
  }

  // Jobs fan out onto the ONE shared pool; each job's engine nests its
  // own parallel stages inside its task. The per-job budget (tiles it can
  // occupy the pool with) is derived from what the Scheduler admitted:
  // leased workers x tiles_per_worker.
  //
  // The host-memory budget must hold HERE, not just on the virtual
  // timeline: admission serializes virtual concurrency, but host
  // execution happens after the whole virtual run, so two jobs that never
  // overlapped virtually would still have their working sets live at the
  // same wall-clock moment. Partition the ready jobs into waves whose
  // summed demand fits the budget (first-fit in job order; every single
  // job fits alone — over-budget demands were rejected at submit) and run
  // the waves back to back.
  std::vector<std::vector<PendingJob*>> waves;
  if (config_.host_memory_budget == 0) {
    waves.push_back(std::move(ready));
  } else {
    std::vector<std::uint64_t> wave_demand;
    for (PendingJob* job : ready) {
      const std::uint64_t demand = job->record.memory_demand;
      std::size_t w = 0;
      while (w < waves.size() &&
             wave_demand[w] + demand > config_.host_memory_budget) {
        ++w;
      }
      if (w == waves.size()) {
        waves.emplace_back();
        wave_demand.push_back(0);
      }
      waves[w].push_back(job);
      wave_demand[w] += demand;
    }
  }

  using clock = std::chrono::steady_clock;
  const auto seconds_between = [](clock::time_point a, clock::time_point b) {
    return std::chrono::duration<double>(b - a).count();
  };
  const double idle_before = exec_pool_->idle_seconds();
  const auto phase_start = clock::now();
  RIF_TRACE_SPAN("host_execution");
  for (const auto& wave : waves) {
    exec_pool_->parallel_tasks(
        static_cast<int>(wave.size()), [&](int k) {
          PendingJob& job = *wave[static_cast<std::size_t>(k)];
          // Ambient attribution for the task thread: every span and log
          // line below — including the engines' per-chunk/per-tile spans,
          // which capture it at entry and hand it to pool workers and the
          // reader thread — carries this job's id.
          obs::JobScope job_scope(job.record.id);
          RIF_TRACE_SPAN("host_execute");
          const auto job_start = clock::now();
          const core::FusionJobConfig& req = job.request.config;
          core::JobOutcome& out = job.record.outcome;
          if (job.stream_execute) {
            // Out-of-core: the job's cube streams from disk in bounded
            // memory; its pool budget (sub-tiles screened at once) is the
            // same workers x tiles_per_worker the Scheduler admitted.
            stream::StreamingConfig cfg;
            cfg.pct.screening_threshold = req.screening_threshold;
            cfg.pct.output_components = req.output_components;
            cfg.pct.jacobi = req.jacobi;
            cfg.chunk_lines = job.request.chunk_lines;
            cfg.queue_depth = job.request.queue_depth;
            cfg.tiles_per_chunk = job.record.workers * req.tiles_per_worker;
            // Every streamed run's registry merges into the service's under
            // one prefix: concurrent jobs aggregate (counters add, peaks
            // max), and the report's StreamingTotals reads the result.
            cfg.metrics = &metrics_;
            cfg.metrics_prefix = "stream.";
            if (job.request.autotune) {
              runtime::AutotuneConfig tune;
              tune.initial_chunk_lines = 0;  // start from the tenant's value
              // The clamp the tenant already agreed to: the demand the
              // Scheduler admitted. Tuning may reshape chunks vs depth but
              // never outgrow the admitted footprint.
              tune.memory_budget = job.record.memory_demand;
              cfg.autotune = tune;
            }
            auto r = stream::fuse_streaming(job.request.cube_path, *exec_pool_,
                                            cfg);
            if (!r) {
              // Validated at submit, so this is a mid-run I/O failure (file
              // vanished, disk error). The virtual run is already over:
              // record the job failed and keep the service report honest.
              RIF_LOG_WARN("service", "streaming job "
                                          << job.record.id << " lost "
                                          << job.request.cube_path);
              job.record.completed = false;
              job.record.failed = true;
              job.record.host_seconds =
                  seconds_between(job_start, clock::now());
              return;  // ledger reclassified after the waves (single thread)
            }
            out.composite = std::move(r->composite);
            out.eigenvalues = std::move(r->eigenvalues);
            out.unique_set_size = r->unique_set_size;
            out.screen_comparisons = r->screen_comparisons;
            out.merge_comparisons = r->merge_comparisons;
            job.record.stream = r->stats;
            metrics_.counter("stream.jobs").add(1);
          } else {
            core::ParallelPctConfig cfg;
            cfg.pct.screening_threshold = req.screening_threshold;
            cfg.pct.output_components = req.output_components;
            cfg.pct.jacobi = req.jacobi;
            cfg.tiles = job.record.workers * req.tiles_per_worker;
            core::PctResult r =
                core::fuse_parallel_fused(*req.cube, *exec_pool_, cfg);
            out.composite = std::move(r.composite);
            out.eigenvalues = std::move(r.eigenvalues);
            out.unique_set_size = r.unique_set_size;
            out.screen_comparisons = r.screen_comparisons;
            out.merge_comparisons = r.merge_comparisons;
          }
          job.record.host_seconds = seconds_between(job_start, clock::now());
        });
  }

  // A host-execution failure (streaming I/O lost mid-run) was discovered
  // after the job's virtual completion: move it from the tenant's
  // completed bucket to failed so the per-tenant ledger agrees with the
  // job records in the same report.
  for (const auto& wave : waves) {
    for (PendingJob* job : wave) {
      if (job->record.failed) {
        ledger_.reclassify_completed_as_failed(job->record);
      }
    }
  }

  // Busy/idle accounting over the phase: pool capacity is threads * wall,
  // and the pool reports parked (idle) execution-thread time directly.
  host_stats_.threads = exec_pool_->size();
  host_stats_.wall_seconds = seconds_between(phase_start, clock::now());
  const double capacity =
      host_stats_.wall_seconds * static_cast<double>(host_stats_.threads);
  host_stats_.idle_seconds = std::min(
      capacity, std::max(0.0, exec_pool_->idle_seconds() - idle_before));
  host_stats_.busy_seconds = capacity - host_stats_.idle_seconds;
  host_stats_.utilization =
      capacity > 0.0 ? host_stats_.busy_seconds / capacity : 0.0;
  metrics_.gauge("host_pool.busy_seconds").record(host_stats_.busy_seconds);
  metrics_.gauge("host_pool.wall_seconds").record(host_stats_.wall_seconds);
  metrics_.gauge("host_pool.utilization").set(host_stats_.utilization);
}

void FusionService::publish_queue_gauges() {
  metrics_.gauge("service.queue_length", runtime::GaugeKind::kSum)
      .set(static_cast<double>(queue_.size()));
  metrics_.gauge("service.running_jobs", runtime::GaugeKind::kSum)
      .set(static_cast<double>(running_));
}

void FusionService::on_scrape_sample(const std::string& line) {
  {
    const std::lock_guard<std::mutex> lock(stream_mu_);
    if (metrics_stream_.is_open()) {
      metrics_stream_ << line << '\n';
      metrics_stream_.flush();
    }
  }
  if (ops_server_ != nullptr) ops_server_->publish_metrics_sample(line);
}

std::string FusionService::status_json() {
  const double uptime =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_time_)
          .count();
  std::ostringstream os;
  os << "{\"uptime_seconds\": " << uptime;
  os << ", \"jobs\": {\"submitted\": "
     << metrics_.counter_value("service.submitted")
     << ", \"completed\": " << metrics_.counter_value("service.completed")
     << ", \"rejected\": " << metrics_.counter_value("service.rejected")
     << ", \"failed\": " << metrics_.counter_value("service.failed")
     << ", \"queued\": "
     << static_cast<std::int64_t>(
            metrics_.gauge_value("service.queue_length"))
     << ", \"running\": "
     << static_cast<std::int64_t>(
            metrics_.gauge_value("service.running_jobs"))
     << "}";
  os << ", \"workers\": [";
  if (remote_pool_ != nullptr) {
    const int n = remote_pool_->worker_count();
    for (int w = 0; w < n; ++w) {
      const cluster::NodeId node = remote_pool_->node_of(w);
      os << (w > 0 ? ", " : "") << "{\"node\": " << node << ", \"alive\": "
         << (remote_pool_->alive(w) ? "true" : "false")
         << ", \"clock_offset_ns\": " << remote_pool_->clock_offset_ns(node)
         << "}";
    }
  }
  os << "]";
  if (telemetry_ != nullptr) {
    os << ", \"telemetry\": {\"batches\": " << telemetry_->batches()
       << ", \"rejected\": " << telemetry_->rejected()
       << ", \"duplicates\": " << telemetry_->duplicates()
       << ", \"spans\": " << telemetry_->spans()
       << ", \"log_records\": " << telemetry_->log_records() << "}";
  }
  if (log_ring_ != nullptr) {
    os << ", \"logs\": {\"held\": " << log_ring_->size()
       << ", \"total\": " << log_ring_->total()
       << ", \"dropped\": " << log_ring_->dropped() << "}";
  }
  if (ops_server_ != nullptr) {
    os << ", \"ops\": {\"requests\": " << ops_server_->requests()
       << ", \"bad_requests\": " << ops_server_->bad_requests()
       << ", \"subscribers\": " << ops_server_->subscribers()
       << ", \"frames_dropped\": " << ops_server_->frames_dropped() << "}";
  }
  os << "}";
  return os.str();
}

std::string FusionService::flamegraph_json() {
  obs::SpanTracer& tracer = obs::SpanTracer::instance();
  std::vector<obs::FlameSpan> flame;
  if (tracer.enabled()) flame = obs::tracer_flame_spans(tracer);
  if (telemetry_ != nullptr) {
    std::vector<obs::FlameSpan> remote =
        telemetry_->flame_spans(tracer.epoch_ns());
    flame.insert(flame.end(), remote.begin(), remote.end());
  }
  return obs::fold_spans(std::move(flame)).to_json();
}

ServiceReport FusionService::build_report() {
  ServiceReport report;
  report.jobs_submitted = static_cast<int>(jobs_.size());
  report.max_concurrent_jobs = max_concurrent_;

  // Jobs stranded at the deadline still have their virtual lanes open;
  // close them at now() so the exported trace is always balanced.
  obs::SpanTracer& tracer = obs::SpanTracer::instance();
  for (auto& job : jobs_) {
    const JobId id = job->record.id;
    if (job->queue_span_open) {
      tracer.virtual_end("queue_wait", job_track(id), vt_ns(sim_.now()), id);
      job->queue_span_open = false;
      if (job->enqueue_time >= 0) {
        job->record.queue_wait_seconds =
            to_seconds(sim_.now() - job->enqueue_time);
      }
    }
    if (job->exec_span_open) {
      tracer.virtual_end("execute", job_track(id), vt_ns(sim_.now()), id);
      job->exec_span_open = false;
    }
  }

  LatencyStats wait;
  LatencyStats service_time;
  LatencyStats latency;
  SimTime last_finish = 0;
  for (auto& job : jobs_) {
    const JobRecord& r = job->record;
    if (r.rejected != RejectReason::kNone) {
      ++report.jobs_rejected;
    } else if (r.failed) {
      ++report.jobs_failed;
    } else if (r.completed) {
      ++report.jobs_completed;
      wait.record(r.wait_seconds);
      service_time.record(r.service_seconds);
      latency.record(r.wait_seconds + r.service_seconds);
      last_finish = std::max(last_finish, r.finish_time);
    }
    // run() is terminal: hand the records (Full-mode outcomes carry whole
    // composite images) to the report rather than duplicating them.
    report.jobs.push_back(std::move(job->record));
  }
  report.all_completed =
      report.jobs_completed ==
      report.jobs_submitted - report.jobs_rejected;

  report.makespan_seconds = to_seconds(last_finish);
  if (report.makespan_seconds > 0.0) {
    report.throughput_jobs_per_sec =
        static_cast<double>(report.jobs_completed) / report.makespan_seconds;
  }
  report.wait_p50 = wait.quantile(0.50);
  report.wait_p95 = wait.quantile(0.95);
  report.wait_p99 = wait.quantile(0.99);
  report.service_p50 = service_time.quantile(0.50);
  report.service_p95 = service_time.quantile(0.95);
  report.service_p99 = service_time.quantile(0.99);
  report.latency_p50 = latency.quantile(0.50);
  report.latency_p95 = latency.quantile(0.95);
  report.latency_p99 = latency.quantile(0.99);

  // Streaming totals are a VIEW over the service registry: every streamed
  // run merged its series under "stream." in execute_host_jobs, so the
  // report just reads them back (zeros when no streamed job ran).
  report.streaming.jobs =
      static_cast<int>(metrics_.counter_value("stream.jobs"));
  report.streaming.bytes_read = metrics_.counter_value("stream.bytes_read");
  report.streaming.max_peak_buffer_bytes = static_cast<std::uint64_t>(
      metrics_.gauge_value("stream.peak_buffer_bytes"));
  report.streaming.reader_stall_seconds =
      metrics_.gauge_value("stream.reader_stall_seconds");
  report.streaming.compute_stall_seconds =
      metrics_.gauge_value("stream.compute_stall_seconds");

  report.tenants = ledger_.snapshot();
  report.host_pool = host_stats_;
  report.simd_backend = linalg::kernels::backend();
  report.metrics_json = metrics_.to_json();
  if (scraper_ != nullptr) {
    report.metrics_timeline_json = scraper_->timeline_json();
    for (const obs::MetricsSample& s : scraper_->samples()) {
      const auto it = s.values.gauges.find("service.admission_pressure");
      report.admission_pressure.push_back(
          {s.t_seconds, it == s.values.gauges.end() ? 0.0 : it->second});
    }
    if (!config_.metrics_timeline_path.empty() &&
        !scraper_->write_timeline(config_.metrics_timeline_path)) {
      RIF_LOG_WARN("service", "cannot write metrics timeline to "
                                  << config_.metrics_timeline_path);
    }
  }
  report.protocol = runtime_->stats();
  report.network = network_->stats();
  report.sim_events = sim_.events_executed();
  report.remote_workers_attached = static_cast<int>(remote_nodes_.size());
  report.remote_jobs = remote_jobs_;
  report.remote_fallbacks = remote_fallbacks_;
  if (remote_pool_ != nullptr) {
    report.remote_disconnects = remote_pool_->disconnects();
    report.remote_evictions = remote_pool_->evictions();
  }
  if (telemetry_ != nullptr) {
    report.remote_telemetry_batches = telemetry_->batches();
    report.remote_telemetry_rejected = telemetry_->rejected();
    report.remote_telemetry_spans = telemetry_->spans();
    report.remote_log_records = telemetry_->log_records();
  }
  if (ops_server_ != nullptr) {
    report.ops_requests = ops_server_->requests();
    report.ops_bad_requests = ops_server_->bad_requests();
    report.ops_dropped_frames = ops_server_->frames_dropped();
  }
  if (log_ring_ != nullptr) {
    report.log_records_captured = log_ring_->total();
    report.log_records_dropped = log_ring_->dropped();
  }
  // Flamegraph: fold the coordinator's own wall spans together with every
  // clock-aligned remote lane into one self/total-time table.
  if (tracer.enabled()) {
    std::vector<obs::FlameSpan> flame = obs::tracer_flame_spans(tracer);
    if (telemetry_ != nullptr) {
      std::vector<obs::FlameSpan> remote =
          telemetry_->flame_spans(tracer.epoch_ns());
      flame.insert(flame.end(), remote.begin(), remote.end());
    }
    report.flamegraph = obs::fold_spans(std::move(flame));
    report.flamegraph_json = report.flamegraph.to_json();
  }
  return report;
}

}  // namespace rif::service
