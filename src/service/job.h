// Job-level types of the multi-tenant fusion service.
//
// A tenant submits JobRequests (a FusionJobConfig plus identity, priority
// and a virtual arrival time); the service answers with a SubmitResult
// (typed rejection instead of hanging on impossible requests) and, after the
// run, a JobRecord per job — the service-side analog of the single-job
// world's FusionReport.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/node.h"
#include "core/distributed/fusion_job.h"
#include "scp/types.h"
#include "stream/streaming_engine.h"
#include "support/time.h"

namespace rif::service {

using JobId = scp::JobId;
inline constexpr JobId kNoJob = scp::kNoJob;

/// How an admitted job's pixels reach the host execution pool.
///
///  * kFull      — the tenant hands the service an in-memory cube
///                 (FusionJobConfig::cube); host execution runs the fused
///                 shared-memory engine over it. Peak memory: the cube.
///  * kStreaming — the tenant hands the service a cube FILE (cube_path);
///                 host execution streams it out-of-core through the
///                 StreamingFusionEngine in bounded memory. Peak memory:
///                 queue_depth chunk buffers, which is what the Scheduler
///                 budgets instead of the whole-cube footprint — scenes
///                 larger than RAM become admissible.
enum class JobMode { kFull = 0, kStreaming = 1 };

inline const char* to_string(JobMode m) {
  switch (m) {
    case JobMode::kFull: return "full";
    case JobMode::kStreaming: return "streaming";
  }
  return "?";
}

/// Priority classes, strongest first. Queueing is FIFO within a class.
enum class Priority : int { kHigh = 0, kNormal = 1, kBatch = 2 };
inline constexpr int kPriorityClasses = 3;

inline const char* to_string(Priority p) {
  switch (p) {
    case Priority::kHigh: return "high";
    case Priority::kNormal: return "normal";
    case Priority::kBatch: return "batch";
  }
  return "?";
}

/// Why a job was refused. kNone means accepted.
enum class RejectReason {
  kNone = 0,
  /// Malformed request (non-positive workers/tiles, Full mode without a
  /// cube, replication without a resilient service runtime, replication
  /// exceeding workers so replicas could not get distinct nodes, ...).
  kBadConfig,
  /// The job asks for more workers than the cluster will ever have free —
  /// admitting it would queue it forever.
  kTooManyWorkers,
  /// The bounded queue was full when the job arrived.
  kQueueFull,
  /// The job's peak-memory demand (whole cube for Full mode, queue_depth
  /// chunk buffers for Streaming) exceeds the service's host-memory budget
  /// outright — admitting it would queue it forever.
  kOverMemoryBudget,
};

inline const char* to_string(RejectReason r) {
  switch (r) {
    case RejectReason::kNone: return "accepted";
    case RejectReason::kBadConfig: return "bad-config";
    case RejectReason::kTooManyWorkers: return "too-many-workers";
    case RejectReason::kQueueFull: return "queue-full";
    case RejectReason::kOverMemoryBudget: return "over-memory-budget";
  }
  return "?";
}

struct JobRequest {
  std::string tenant;
  core::FusionJobConfig config;
  Priority priority = Priority::kNormal;
  /// Virtual time at which the request reaches the service.
  SimTime arrival = 0;

  JobMode mode = JobMode::kFull;
  /// Streaming mode: the cube file (`<path>` + `<path>.hdr`) to fuse
  /// out-of-core. `config.cube` stays null; the job's shape is read from
  /// the header at submission. Requires ServiceConfig::execution_threads.
  ///
  /// A FULL-mode request may also set this: it marks the tenant's consent
  /// to the kAdaptive counter-offer — when the cube outruns the service's
  /// memory budget, the service converts the job to Streaming over this
  /// file instead of rejecting it kOverMemoryBudget (see service.h).
  std::string cube_path;
  /// Streaming mode: image lines per chunk (the I/O and fold unit).
  /// Bounds shared with the engine: runtime/chunk_geometry.h.
  int chunk_lines = 64;
  /// Streaming mode: chunk buffers in flight (>= 3); with chunk_lines this
  /// IS the job's budgeted peak memory.
  int queue_depth = 4;
  /// Streaming mode: let the runtime's ChunkAutotuner retune
  /// chunk_lines/queue_depth during the run, clamped to the job's ADMITTED
  /// memory demand so tuning never outgrows what the Scheduler let in.
  bool autotune = false;
};

struct SubmitResult {
  JobId id = kNoJob;
  RejectReason rejected = RejectReason::kNone;
  /// The service accepted the job by CONVERTING it: a Full-mode request
  /// whose cube outran the memory budget, admitted as Streaming over its
  /// cube_path (kAdaptive only). The tenant gets bounded-memory execution
  /// instead of a rejection.
  bool counter_offered = false;
  [[nodiscard]] bool accepted() const {
    return rejected == RejectReason::kNone;
  }
};

/// Everything the service knows about one job after the run.
struct JobRecord {
  JobId id = kNoJob;
  std::string tenant;
  Priority priority = Priority::kNormal;
  JobMode mode = JobMode::kFull;
  /// Accepted via the kAdaptive counter-offer: submitted Full, ran
  /// Streaming (mode above reflects what RAN).
  bool counter_offered = false;
  int workers = 0;
  /// Peak host memory the Scheduler budgeted for this job (0 when the job
  /// carries no host working set, e.g. CostOnly simulations).
  std::uint64_t memory_demand = 0;
  RejectReason rejected = RejectReason::kNone;
  bool completed = false;
  /// Accepted and started, but lost to failures before completing.
  bool failed = false;

  SimTime submit_time = -1;
  SimTime start_time = -1;   ///< admission (lease granted); -1 = never ran
  SimTime finish_time = -1;  ///< completion or failure; -1 = never finished
  double wait_seconds = 0.0;     ///< submit -> start
  double service_seconds = 0.0;  ///< start -> finish (the per-job analog of
                                 ///< FusionReport::elapsed_seconds)
  /// Virtual seconds spent queued (enqueue -> admission). Sourced from the
  /// job's "queue_wait" span on the virtual trace timeline when tracing is
  /// on, from the timestamps otherwise; either way it agrees with
  /// wait_seconds (arrival is when the request enters the queue) and with
  /// the Ledger's per-tenant wait histograms.
  double queue_wait_seconds = 0.0;
  /// Worker nodes leased exclusively to this job while it ran.
  std::vector<cluster::NodeId> leased_nodes;
  /// Flops charged to the leased nodes during the job's tenure.
  double flops_charged = 0.0;
  /// Wall-clock seconds of this job's fused run on the shared host
  /// execution pool (0 when the job did not host-execute). Jobs run
  /// concurrently on one pool, so these overlap and may sum past the
  /// phase's wall time.
  double host_seconds = 0.0;
  /// True when the composite was computed by real worker processes over
  /// the socket transport (service/remote_exec.h) rather than the host
  /// pool or the simulated actors.
  bool remote_executed = false;
  int remote_workers = 0;         ///< covariance shards = workers at start
  int remote_requeued_tiles = 0;  ///< tiles reassigned after disconnects
  int remote_disconnects = 0;     ///< workers lost while this job ran
  /// Streaming-mode pipeline counters (zeros for every other job): chunk
  /// count, bytes streamed, per-stage times and stall seconds, peak buffer
  /// footprint. The per-job view of the pipeline's health — reader stall
  /// means backpressure (compute-bound), compute stall means starvation.
  stream::StreamingStats stream;
  core::JobOutcome outcome;
};

}  // namespace rif::service
