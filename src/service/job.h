// Job-level types of the multi-tenant fusion service.
//
// A tenant submits JobRequests (a FusionJobConfig plus identity, priority
// and a virtual arrival time); the service answers with a SubmitResult
// (typed rejection instead of hanging on impossible requests) and, after the
// run, a JobRecord per job — the service-side analog of the single-job
// world's FusionReport.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/node.h"
#include "core/distributed/fusion_job.h"
#include "scp/types.h"
#include "support/time.h"

namespace rif::service {

using JobId = scp::JobId;
inline constexpr JobId kNoJob = scp::kNoJob;

/// Priority classes, strongest first. Queueing is FIFO within a class.
enum class Priority : int { kHigh = 0, kNormal = 1, kBatch = 2 };
inline constexpr int kPriorityClasses = 3;

inline const char* to_string(Priority p) {
  switch (p) {
    case Priority::kHigh: return "high";
    case Priority::kNormal: return "normal";
    case Priority::kBatch: return "batch";
  }
  return "?";
}

/// Why a job was refused. kNone means accepted.
enum class RejectReason {
  kNone = 0,
  /// Malformed request (non-positive workers/tiles, Full mode without a
  /// cube, replication without a resilient service runtime, replication
  /// exceeding workers so replicas could not get distinct nodes, ...).
  kBadConfig,
  /// The job asks for more workers than the cluster will ever have free —
  /// admitting it would queue it forever.
  kTooManyWorkers,
  /// The bounded queue was full when the job arrived.
  kQueueFull,
};

inline const char* to_string(RejectReason r) {
  switch (r) {
    case RejectReason::kNone: return "accepted";
    case RejectReason::kBadConfig: return "bad-config";
    case RejectReason::kTooManyWorkers: return "too-many-workers";
    case RejectReason::kQueueFull: return "queue-full";
  }
  return "?";
}

struct JobRequest {
  std::string tenant;
  core::FusionJobConfig config;
  Priority priority = Priority::kNormal;
  /// Virtual time at which the request reaches the service.
  SimTime arrival = 0;
};

struct SubmitResult {
  JobId id = kNoJob;
  RejectReason rejected = RejectReason::kNone;
  [[nodiscard]] bool accepted() const {
    return rejected == RejectReason::kNone;
  }
};

/// Everything the service knows about one job after the run.
struct JobRecord {
  JobId id = kNoJob;
  std::string tenant;
  Priority priority = Priority::kNormal;
  int workers = 0;
  RejectReason rejected = RejectReason::kNone;
  bool completed = false;
  /// Accepted and started, but lost to failures before completing.
  bool failed = false;

  SimTime submit_time = -1;
  SimTime start_time = -1;   ///< admission (lease granted); -1 = never ran
  SimTime finish_time = -1;  ///< completion or failure; -1 = never finished
  double wait_seconds = 0.0;     ///< submit -> start
  double service_seconds = 0.0;  ///< start -> finish (the per-job analog of
                                 ///< FusionReport::elapsed_seconds)
  /// Worker nodes leased exclusively to this job while it ran.
  std::vector<cluster::NodeId> leased_nodes;
  /// Flops charged to the leased nodes during the job's tenure.
  double flops_charged = 0.0;
  /// Wall-clock seconds of this job's fused run on the shared host
  /// execution pool (0 when the job did not host-execute). Jobs run
  /// concurrently on one pool, so these overlap and may sum past the
  /// phase's wall time.
  double host_seconds = 0.0;
  core::JobOutcome outcome;
};

}  // namespace rif::service
