// FusionService — the multi-tenant fusion service.
//
// ## Architecture
//
// The seed reproduces the paper's single-job world: one sensor, one
// manager, one distributed spectral-screening PCT run, one virtual cluster
// built per call. FusionService inverts that: it owns ONE long-lived
// virtual cluster (node 0 = service head / "sensor", nodes 1..N = worker
// pool), ONE network model and ONE scp runtime, and executes a *stream* of
// fusion jobs submitted by multiple tenants against that shared substrate —
// the shape of ICPP's remote-execution servers, where many independent jobs
// share one runtime.
//
// The pipeline per job:
//
//   submit()  -> structural validation. Impossible requests (more workers
//                than the pool will ever have, malformed configs) are
//                refused with a typed RejectReason instead of queuing
//                forever.
//   arrival   -> the request enters the JobQueue at its virtual arrival
//                time: strict priority classes (high / normal / batch),
//                FIFO within a class; a bounded queue rejects overflow
//                with RejectReason::kQueueFull.
//   admission -> the Scheduler picks the next queued job that fits the
//                free worker capacity (AdmissionPolicy::kFirstFit or
//                kSmallestFirst — see scheduler.h); the LeaseBook grants
//                the job an exclusive lease on `workers` nodes, so
//                concurrent jobs always run on disjoint worker sets.
//   execution -> a FusionJobInstance spawns the job's actor topology on the
//                leased nodes (manager on the head node), keyed by job id
//                in the shared runtime; regeneration of failed replicas is
//                confined to the job's leased nodes.
//   completion-> the manager's completion callback fires at virtual
//                completion time: the lease is released, the per-tenant
//                ledger is charged (flops on leased nodes, queue-wait and
//                service-time histograms), and the scheduler immediately
//                tries to admit more queued work.
//
// ## Report mapping
//
// The paper's single-job FusionReport maps onto the service as follows:
// per job, JobRecord::service_seconds is FusionReport::elapsed_seconds and
// JobRecord::outcome is FusionReport::outcome; protocol/network counters,
// which are properties of the shared substrate, appear once, service-wide,
// in ServiceReport. On top, ServiceReport adds what only exists with many
// jobs: throughput (completed jobs per second of virtual time) and queue
// wait / service time / total latency tails (p50/p95/p99).
//
// ## Semantics notes
//
// * The protocol mode (resilient / regenerate) is a property of the shared
//   runtime (ServiceConfig::runtime), not of individual jobs; a job asking
//   for replication > 1 on a non-resilient service is rejected kBadConfig.
// * All submissions are declared before run(); arrivals then play out on
//   the virtual timeline. This keeps runs bit-reproducible.
// * A job that loses a whole replica group (all replicas dead, regeneration
//   off or impossible) is recorded failed, its lease is reclaimed, and the
//   service keeps going — one tenant's lost job never wedges the cluster.
//   On a non-resilient runtime there is no failure detector, so a crash of
//   a leased node fails the leaseholder immediately (actors are
//   fate-shared with their node).
// * On completion or failure the service retires the job's actors
//   synchronously (Runtime::retire_job) before releasing the lease, so no
//   zombie heartbeats or regenerations land on re-leased nodes and the
//   per-job flops attribution stays exact.
// * Leases are granted on live nodes only; a crashed worker node rejoins
//   the grantable pool when (if) it is repaired.
// * With AdmissionPolicy::kAdaptive the service becomes feedback-driven:
//   under memory pressure (free budget <= half) the Scheduler prefers
//   streaming jobs, and a Full-mode submission whose cube outruns the
//   budget is COUNTER-OFFERED as Streaming over its cube_path (consent =
//   the tenant attached one) instead of rejected kOverMemoryBudget; the
//   conversion is flagged in SubmitResult/JobRecord::counter_offered.
// * Observability is registry-backed: one runtime::MetricsRegistry spans
//   the service (per-tenant admission counters and latency histograms,
//   host-pool series, every streamed run's merged stage/queue series);
//   ServiceReport::streaming is a view over it and metrics_json its JSON
//   snapshot.
#pragma once

#include <chrono>
#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/failure_injector.h"
#include "cluster/lease.h"
#include "cluster/remote_pool.h"
#include "net/fault_injection.h"
#include "core/distributed/fusion_job.h"
#include "core/parallel/thread_pool.h"
#include "net/network.h"
#include "obs/flamegraph.h"
#include "obs/metrics_scraper.h"
#include "obs/ops_server.h"
#include "obs/remote_telemetry.h"
#include "runtime/metrics.h"
#include "scp/runtime.h"
#include "service/accounting.h"
#include "service/job.h"
#include "service/job_queue.h"
#include "service/scheduler.h"
#include "sim/simulation.h"
#include "support/accounting.h"
#include "support/time.h"

namespace rif::service {

struct ServiceConfig {
  /// Size of the leasable worker pool (cluster is this + 1 head node).
  int worker_nodes = 16;

  core::NetworkKind network = core::NetworkKind::kLan;
  net::LanConfig lan;
  net::SmpConfig smp;
  cluster::NodeConfig node;
  /// Shared runtime protocol configuration; `resilient` / `regenerate`
  /// here govern every job.
  scp::RuntimeConfig runtime;

  AdmissionPolicy admission = AdmissionPolicy::kFirstFit;
  /// Queued-job bound; arrivals beyond it are rejected. 0 = unbounded.
  std::size_t max_queue_length = 0;

  /// Host threads for REAL execution of admitted Full-mode jobs on one
  /// shared ThreadPool (0 = off: Full-mode pixels flow through the
  /// simulated actors instead). When on, each admitted Full-mode job's
  /// cube is fused with the single-pass shared-memory engine
  /// (core::fuse_parallel_fused); its parallelism budget — the number of
  /// tiles it may occupy the pool with — is workers * tiles_per_worker,
  /// where `workers` is what the Scheduler actually admitted. Jobs execute
  /// concurrently as nested parallel work on the one pool, which the
  /// help-while-waiting ThreadPool makes deadlock-free.
  int execution_threads = 0;

  /// Host-memory budget (bytes) for the peak working sets of concurrently
  /// admitted jobs. The Scheduler admits a job only when its demand — the
  /// whole cube for a Full-mode host job, queue_depth chunk buffers for a
  /// Streaming job — fits the unspent budget, so co-tenants cannot
  /// collectively blow the host's RAM; a job whose demand exceeds the
  /// budget outright is rejected kOverMemoryBudget at submission.
  /// 0 = unbudgeted (memory is not part of admission).
  std::uint64_t host_memory_budget = 0;

  /// Remote worker plane (requires execution_threads > 0 for the host
  /// fallback). When remote_workers > 0, run() opens the real socket
  /// transport and waits up to remote_wait_seconds for that many worker
  /// processes; each welcomed worker leases itself into the pool as one
  /// extra node (ids above the host pool). Admitted Full-mode jobs whose
  /// lease lands on remote nodes execute over the socket protocol
  /// (service/remote_exec.h); a worker disconnect re-queues its shards
  /// onto survivors, and a job that loses every remote worker falls back
  /// to the host pool. validate() sizes the worker bound to host pool +
  /// expected remote workers, so jobs may target capacity that arrives at
  /// run() — if fewer workers connect, oversized jobs strand in the queue
  /// until the deadline.
  int remote_workers = 0;
  /// Loopback TCP port to listen on (0 = ephemeral, see remote_port()), or
  /// a Unix socket path; ignored when remote_spawn_local is set.
  std::uint16_t remote_port = 0;
  std::string remote_socket_path;
  /// Spawn the remote workers as in-process threads over socketpairs
  /// instead of listening — same protocol, no separate processes (tests,
  /// single-machine runs).
  bool remote_spawn_local = false;
  double remote_wait_seconds = 30.0;

  /// Liveness supervision for the remote plane (cluster/remote_pool.h):
  /// workers idle past the heartbeat get kPing, workers silent past the
  /// hung timeout are evicted into the requeue path. Defaults keep a hung
  /// worker from pinning a job while staying far above any realistic
  /// shard compute time. Zeros disable.
  double remote_heartbeat_seconds = 0.25;
  double remote_hung_timeout_seconds = 5.0;
  /// Per-item (tile / covariance shard) deadline, resend budget and
  /// backoff for the remote coordinator (service/remote_exec.h).
  double remote_shard_deadline_seconds = 10.0;
  int remote_resend_limit = 3;
  double remote_resend_backoff = 2.0;
  /// Per-job wall deadline on the remote path before host fallback.
  double remote_job_deadline_seconds = 300.0;

  /// Wire-level chaos plan for the remote plane (tests / soak drills):
  /// when non-empty it is installed as a net::FaultInjectingTransport
  /// under the worker pool, and its counters appear in the service
  /// registry under "remote.faults.".
  net::WireFaultPlan remote_faults;

  /// Attack script against the shared cluster (virtual timeline).
  std::vector<cluster::FailureEvent> failures;

  /// Hard stop for the whole service run (virtual time).
  SimTime deadline = from_seconds(1.0e7);

  /// Wall period of the background MetricsScraper that samples the service
  /// registry into a time series during run() (obs/metrics_scraper.h).
  /// Every scrape also derives the admission-pressure gauge the kAdaptive
  /// scheduler reads. <= 0 disables the scraper (the report's timeline is
  /// then empty).
  double scrape_period_seconds = 0.05;
  /// When non-empty, run() writes the scraped timeline
  /// (MetricsScraper::timeline_json) to this file as well as embedding it
  /// in ServiceReport::metrics_timeline_json.
  std::string metrics_timeline_path;
  /// When non-empty, every scrape is ALSO appended to this file as one
  /// NDJSON line (obs::metrics_sample_json schema) while the run is still
  /// going — a live feed, where metrics_timeline_path is a post-run
  /// artifact. Remote workers' shipped snapshots appear in the same lines
  /// under "remote.worker.<node>." series.
  std::string metrics_stream_path;

  /// Live ops plane (obs/ops_server.h): a read-only introspection endpoint
  /// answering status / metrics / subscribe-metrics / flamegraph / logs
  /// over RIF1 frames, live from CONSTRUCTION (not just during run()) so a
  /// dashboard can attach before the stream starts and keep watching after
  /// it ends. Enabling it also installs the service's LogRing as the
  /// process-wide structured log sink and routes remote workers' shipped
  /// log records into it with node attribution.
  bool ops_enabled = false;
  /// Loopback TCP port for the ops endpoint (0 = ephemeral, see
  /// FusionService::ops_server()->port()), or a Unix socket path.
  std::uint16_t ops_port = 0;
  std::string ops_socket_path;
  /// Capacity of the in-memory log ring the `logs` command tails.
  std::size_t ops_log_ring = 1024;
};

/// Usage of the shared host execution pool over the host-execution phase
/// (populated only when ServiceConfig::execution_threads > 0 and at least
/// one Full-mode job host-executed). Busy/idle split execution-thread
/// time: a thread is idle while parked waiting for work — including a
/// nested helper that ran out of queued tiles — and busy otherwise.
struct HostPoolStats {
  int threads = 0;
  double wall_seconds = 0.0;  ///< wall span of the host-execution phase
  double busy_seconds = 0.0;  ///< threads * wall - idle
  double idle_seconds = 0.0;  ///< execution-thread time parked in-phase
  double utilization = 0.0;   ///< busy / (threads * wall); 0 when unused
};

/// Aggregated streaming-pipeline counters over the service's completed
/// Streaming-mode jobs (see stream::StreamingStats for the per-job view).
struct StreamingTotals {
  int jobs = 0;                   ///< streaming jobs host-executed
  std::uint64_t bytes_read = 0;   ///< file bytes streamed, all jobs
  /// Largest single-job chunk-buffer high-water — the number that shows
  /// bounded-memory ingest actually held (vs whole-cube footprints).
  std::uint64_t max_peak_buffer_bytes = 0;
  double reader_stall_seconds = 0.0;   ///< backpressure (compute-bound)
  double compute_stall_seconds = 0.0;  ///< starvation (I/O-bound)
};

struct ServiceReport {
  /// Every accepted job completed (none failed, none stranded at deadline).
  bool all_completed = false;
  int jobs_submitted = 0;
  int jobs_completed = 0;
  int jobs_rejected = 0;
  int jobs_failed = 0;
  /// High-water mark of jobs simultaneously holding leases.
  int max_concurrent_jobs = 0;

  double makespan_seconds = 0.0;  ///< virtual time of the last completion
  double throughput_jobs_per_sec = 0.0;

  // Tail latency over completed jobs (virtual seconds).
  double wait_p50 = 0.0, wait_p95 = 0.0, wait_p99 = 0.0;
  double service_p50 = 0.0, service_p95 = 0.0, service_p99 = 0.0;
  double latency_p50 = 0.0, latency_p95 = 0.0, latency_p99 = 0.0;

  std::vector<JobRecord> jobs;         ///< by job id (includes rejects)
  std::vector<TenantAccount> tenants;  ///< sorted by tenant name

  scp::ProtocolStats protocol;  ///< service-wide (shared substrate)
  net::NetworkStats network;
  /// Host-pool busy/idle accounting (ROADMAP: host-pool utilisation).
  HostPoolStats host_pool;
  /// Streaming-pipeline totals (zeros when no Streaming job ran). A view
  /// over the service metrics registry — the per-job engines merge their
  /// run registries into it, and this is the walk of those series.
  StreamingTotals streaming;
  /// ACTIVE SIMD tier of the kernel layer this service executed with
  /// ("avx2" | "sse2" | "neon" | "scalar") — runtime-dispatched (cpuid /
  /// HWCAP / RIF_SIMD), so it attributes every perf number in this report
  /// to the ISA that actually produced it even on portable builds.
  std::string simd_backend;
  /// JSON snapshot of the service metrics registry at report time: every
  /// named counter/gauge/histogram (per-tenant admission and latency,
  /// host-pool utilisation, streaming queue/stage series) in the schema of
  /// runtime::MetricsRegistry::to_json — ready for a dashboard scrape.
  std::string metrics_json;
  /// The scraped registry time series (MetricsScraper::timeline_json
  /// schema), same document run() writes to
  /// ServiceConfig::metrics_timeline_path. Empty when the scraper was
  /// disabled.
  std::string metrics_timeline_json;
  /// The admission-pressure gauge (queued memory demand / free host
  /// budget; 0 when unbudgeted) at each scrape, in scrape order — the
  /// feedback signal kAdaptive reads, as a history a test or dashboard can
  /// replay. t_seconds is wall time since the scraper started.
  struct PressureSample {
    double t_seconds = 0.0;
    double pressure = 0.0;
  };
  std::vector<PressureSample> admission_pressure;
  std::uint64_t sim_events = 0;

  // Remote worker plane (zeros when ServiceConfig::remote_workers == 0).
  int remote_workers_attached = 0;  ///< workers that completed the handshake
  int remote_jobs = 0;              ///< jobs executed over the socket path
  int remote_fallbacks = 0;         ///< remote jobs that fell back to host
  int remote_disconnects = 0;       ///< worker connections lost during run()
  int remote_evictions = 0;         ///< hung workers evicted by supervision

  // Distributed telemetry plane (zeros when no remote workers shipped any).
  std::uint64_t remote_telemetry_batches = 0;   ///< batches merged
  std::uint64_t remote_telemetry_rejected = 0;  ///< dropped: bad/unbalanced
  std::uint64_t remote_telemetry_spans = 0;     ///< span events ingested

  // Live ops plane (zeros when ServiceConfig::ops_enabled == false).
  std::uint64_t ops_requests = 0;        ///< introspection requests answered
  std::uint64_t ops_bad_requests = 0;    ///< hostile/unknown, session closed
  std::uint64_t ops_dropped_frames = 0;  ///< slow-subscriber pushes dropped
  std::uint64_t log_records_captured = 0;  ///< records appended to the ring
  std::uint64_t log_records_dropped = 0;   ///< oldest evicted past capacity
  std::uint64_t remote_log_records = 0;    ///< worker records shipped over
                                           ///< kTelemetry into the ring

  /// Flamegraph fold of the run's wall spans — host tracer lanes plus
  /// every remote worker's shipped spans on the unified timeline
  /// (obs/flamegraph.h). Rows sorted by self time; empty when tracing was
  /// off. `flamegraph_json` is the same table serialized (FLAME_*.json
  /// schema).
  obs::FlameTable flamegraph;
  std::string flamegraph_json;
};

class FusionService {
 public:
  explicit FusionService(ServiceConfig config = {});
  /// Teardown order matters with the ops plane attached: the scraper
  /// thread (whose on-scrape sink fans out to ops subscribers and samples
  /// the member registry) stops FIRST, then the ops poll thread, then the
  /// worker pool, then the global log sink is uninstalled — so no
  /// background thread can touch a member mid-destruction. Member
  /// destruction order alone gets this wrong: ops_server_ is declared
  /// after scraper_, so it would die while the scrape thread still
  /// publishes through it.
  ~FusionService();
  FusionService(const FusionService&) = delete;
  FusionService& operator=(const FusionService&) = delete;

  /// Register a request arriving at `request.arrival` on the virtual
  /// timeline. Must be called before run(). Structurally impossible
  /// requests are rejected synchronously with a typed reason.
  SubmitResult submit(JobRequest request);

  /// Play the submitted stream to completion (or deadline) and report.
  ServiceReport run();

  // --- introspection (tests, benches) --------------------------------------
  [[nodiscard]] int worker_nodes() const { return config_.worker_nodes; }
  [[nodiscard]] std::size_t queued_jobs() const { return queue_.size(); }
  [[nodiscard]] int running_jobs() const { return running_; }
  [[nodiscard]] cluster::Cluster& cluster() { return cluster_; }
  [[nodiscard]] scp::Runtime& runtime() { return *runtime_; }
  [[nodiscard]] const cluster::LeaseBook& leases() const { return leases_; }
  /// The service-lifetime metrics registry (admission, tenants, host pool,
  /// merged streaming runs). Live during run(); snapshot in
  /// ServiceReport::metrics_json.
  [[nodiscard]] runtime::MetricsRegistry& metrics() { return metrics_; }
  /// The remote worker pool, live during run(); nullptr when
  /// ServiceConfig::remote_workers == 0. Tests use it to inject crashes.
  [[nodiscard]] cluster::RemoteWorkerPool* remote_pool() {
    return remote_pool_.get();
  }
  /// Telemetry shipped back by remote workers (spans, metrics, clock
  /// offsets); nullptr when ServiceConfig::remote_workers == 0. Outlives
  /// run() — smokes export the unified trace from it afterwards.
  [[nodiscard]] obs::RemoteTelemetryCollector* remote_telemetry() {
    return telemetry_.get();
  }
  /// The live ops endpoint; nullptr unless ServiceConfig::ops_enabled.
  /// Running from construction until destruction (outlives run(), so a
  /// client can still read status/metrics/logs after the stream finished).
  [[nodiscard]] obs::OpsServer* ops_server() { return ops_server_.get(); }
  /// The structured log ring the ops `logs` command tails; nullptr unless
  /// ServiceConfig::ops_enabled.
  [[nodiscard]] LogRing* log_ring() { return log_ring_.get(); }

 private:
  struct PendingJob {
    JobRequest request;
    JobRecord record;
    std::unique_ptr<core::FusionJobInstance> instance;
    /// flops_charged() of each leased node at admission, for per-job
    /// attribution (leases are exclusive, so the delta is exact).
    std::vector<double> flops_at_start;
    /// Full-mode job whose composite is computed on the shared host pool
    /// (the simulated actors then run CostOnly for timing/placement).
    bool host_execute = false;
    /// Streaming-mode job: host execution fuses request.cube_path
    /// out-of-core through the StreamingFusionEngine.
    bool stream_execute = false;
    /// Open virtual spans on the job's trace track ("queue_wait" /
    /// "execute"), so build_report can close a stranded job's spans at the
    /// deadline — the exported trace must always be balanced.
    bool queue_span_open = false;
    bool exec_span_open = false;
    /// Virtual enqueue time, for span-sourced queue_wait_seconds.
    SimTime enqueue_time = -1;
  };

  [[nodiscard]] RejectReason validate(const JobRequest& request) const;
  void on_arrival(JobId id);
  void on_node_failed(cluster::NodeId node);
  void dispatch();
  void start_job(JobId id, const cluster::NodeFilter& alive);
  void on_job_complete(JobId id);
  void fail_job(JobId id);
  /// Fuse every completed host_execute job's cube on the shared pool (all
  /// jobs concurrently, each within its admitted worker budget).
  void execute_host_jobs();
  /// Open the socket transport and lease connected workers into the
  /// cluster/LeaseBook (run() preamble; no-op when remote_workers == 0).
  void attach_remote_workers();
  /// Execute one admitted job over its leased remote workers; false means
  /// the caller should fall back to the host pool.
  [[nodiscard]] bool execute_remote(PendingJob& job);
  [[nodiscard]] ServiceReport build_report();
  /// Status document for the ops endpoint. Runs on the ops poll thread, so
  /// it reads only thread-safe state: registry atomics (the sim thread
  /// publishes service.queue_length / service.running_jobs gauges for it),
  /// the pool's locked accessors, the collector, and the log ring.
  [[nodiscard]] std::string status_json();
  /// Current span fold for the ops endpoint (same composition as the
  /// report's flamegraph, computed on demand).
  [[nodiscard]] std::string flamegraph_json();
  /// on-scrape sink: append to the NDJSON stream file (when open) and fan
  /// the same line out to ops subscribers. Scraper thread.
  void on_scrape_sample(const std::string& line);
  /// Mirror queue_/running_ into atomic gauges after every mutation, so
  /// the ops thread's status never touches sim-thread state.
  void publish_queue_gauges();

  ServiceConfig config_;
  runtime::MetricsRegistry metrics_;
  sim::Simulation sim_;
  cluster::Cluster cluster_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<scp::Runtime> runtime_;
  cluster::FailureInjector injector_;
  cluster::LeaseBook leases_;
  JobQueue queue_;
  Scheduler scheduler_;
  Ledger ledger_;
  std::unique_ptr<core::ThreadPool> exec_pool_;  ///< when execution_threads>0
  /// Background registry sampler, live during run() (see
  /// ServiceConfig::scrape_period_seconds). Its derive hook publishes the
  /// admission-pressure gauge every scrape.
  std::unique_ptr<obs::MetricsScraper> scraper_;
  /// Real-socket worker plane (see ServiceConfig::remote_workers).
  std::unique_ptr<cluster::RemoteWorkerPool> remote_pool_;
  /// Coordinator-side ingest for the workers' kTelemetry batches; wired as
  /// the pool's telemetry sink before start (outlives the pool so trace
  /// export happens after run()).
  std::unique_ptr<obs::RemoteTelemetryCollector> telemetry_;
  /// Live ops plane (ServiceConfig::ops_enabled): the structured log ring
  /// (installed as the process-wide Logger sink for this service's
  /// lifetime) and the introspection endpoint, both up from construction.
  std::unique_ptr<LogRing> log_ring_;
  std::unique_ptr<obs::OpsServer> ops_server_;
  /// Live NDJSON feed (ServiceConfig::metrics_stream_path), written by the
  /// scraper thread through on_scrape_sample under stream_mu_.
  std::mutex stream_mu_;
  std::ofstream metrics_stream_;
  /// Wall construction instant, the uptime axis of status_json().
  const std::chrono::steady_clock::time_point start_time_ =
      std::chrono::steady_clock::now();
  std::vector<cluster::NodeId> remote_nodes_;  ///< leased-in remote node ids
  int remote_jobs_ = 0;
  int remote_fallbacks_ = 0;
  HostPoolStats host_stats_;  ///< filled by execute_host_jobs()
  std::vector<std::unique_ptr<PendingJob>> jobs_;

  int running_ = 0;        ///< jobs currently holding leases
  int outstanding_ = 0;    ///< accepted jobs not yet completed/failed
  int max_concurrent_ = 0;
  /// Budgeted memory of jobs currently holding leases (admission debits,
  /// completion/failure credits; see ServiceConfig::host_memory_budget).
  std::uint64_t memory_in_use_ = 0;
  bool ran_ = false;
};

}  // namespace rif::service
