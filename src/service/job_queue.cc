#include "service/job_queue.h"

#include "support/check.h"

namespace rif::service {

void JobQueue::push(JobId id, Priority priority, int workers,
                    std::uint64_t memory, bool streaming) {
  const int cls = static_cast<int>(priority);
  RIF_CHECK(cls >= 0 && cls < kPriorityClasses);
  RIF_CHECK(workers >= 1);
  classes_[cls].push_back(
      Entry{id, priority, next_seq_++, workers, memory, streaming});
}

bool JobQueue::remove(JobId id) {
  for (auto& cls : classes_) {
    for (auto it = cls.begin(); it != cls.end(); ++it) {
      if (it->id == id) {
        cls.erase(it);
        return true;
      }
    }
  }
  return false;
}

std::size_t JobQueue::size() const {
  std::size_t n = 0;
  for (const auto& cls : classes_) n += cls.size();
  return n;
}

std::size_t JobQueue::size(Priority priority) const {
  return classes_[static_cast<int>(priority)].size();
}

std::uint64_t JobQueue::total_memory_demand() const {
  std::uint64_t total = 0;
  for (const auto& cls : classes_) {
    for (const auto& e : cls) total += e.memory;
  }
  return total;
}

std::vector<JobQueue::Entry> JobQueue::in_order() const {
  std::vector<Entry> out;
  out.reserve(size());
  for (const auto& cls : classes_) {
    out.insert(out.end(), cls.begin(), cls.end());
  }
  return out;
}

}  // namespace rif::service
