// Cost accounting records shared by the cost model, the benches, the
// multi-tenant fusion service and EXPERIMENTS.md reporting.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace rif {

/// Aggregate resource usage of a (sub)computation on the virtual cluster.
struct CostAccount {
  double flops = 0.0;           ///< floating-point operations charged to CPUs
  std::uint64_t messages = 0;   ///< messages handed to the network
  std::uint64_t bytes = 0;      ///< payload bytes handed to the network

  CostAccount& operator+=(const CostAccount& o) {
    flops += o.flops;
    messages += o.messages;
    bytes += o.bytes;
    return *this;
  }
};

/// Sample-exact latency record with quantile extraction; used by the fusion
/// service for queue-wait and service-time SLO reporting. Samples are kept
/// verbatim (service runs are thousands of jobs, not millions), so the
/// quantiles are exact rather than bucketed.
class LatencyStats {
 public:
  void record(double seconds) {
    samples_.push_back(seconds);
    sorted_ = false;
  }

  void merge(const LatencyStats& o) {
    samples_.insert(samples_.end(), o.samples_.begin(), o.samples_.end());
    sorted_ = false;
  }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }

  [[nodiscard]] double total() const {
    double sum = 0.0;
    for (const double s : samples_) sum += s;
    return sum;
  }

  [[nodiscard]] double mean() const {
    return samples_.empty() ? 0.0 : total() / static_cast<double>(count());
  }

  [[nodiscard]] double max() const {
    return samples_.empty()
               ? 0.0
               : *std::max_element(samples_.begin(), samples_.end());
  }

  /// Nearest-rank quantile, q in [0, 1]; 0 when empty.
  [[nodiscard]] double quantile(double q) const {
    if (samples_.empty()) return 0.0;
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
    const double clamped = std::min(1.0, std::max(0.0, q));
    const auto rank = static_cast<std::size_t>(
        clamped * static_cast<double>(samples_.size() - 1) + 0.5);
    return samples_[rank];
  }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

/// Per-tenant resource ledger of the fusion service: what a tenant asked
/// for, what it received, and what it was charged.
struct TenantAccount {
  std::string tenant;
  std::uint64_t jobs_submitted = 0;
  std::uint64_t jobs_completed = 0;
  std::uint64_t jobs_rejected = 0;
  std::uint64_t jobs_failed = 0;  ///< accepted but lost (group death)
  /// Flops charged to the worker nodes leased to this tenant's jobs.
  double flops_charged = 0.0;
  LatencyStats queue_wait;    ///< arrival -> admission, seconds
  LatencyStats service_time;  ///< admission -> completion, seconds
};

}  // namespace rif
