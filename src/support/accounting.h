// Cost accounting records shared by the cost model, the benches and
// EXPERIMENTS.md reporting.
#pragma once

#include <cstdint>

namespace rif {

/// Aggregate resource usage of a (sub)computation on the virtual cluster.
struct CostAccount {
  double flops = 0.0;           ///< floating-point operations charged to CPUs
  std::uint64_t messages = 0;   ///< messages handed to the network
  std::uint64_t bytes = 0;      ///< payload bytes handed to the network

  CostAccount& operator+=(const CostAccount& o) {
    flops += o.flops;
    messages += o.messages;
    bytes += o.bytes;
    return *this;
  }
};

}  // namespace rif
