#include "support/rng.h"

#include <cmath>

namespace rif {

double Rng::sqrt_neg2log(double s) { return std::sqrt(-2.0 * std::log(s) / s); }

}  // namespace rif
