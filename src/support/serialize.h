// Byte-buffer serialization for actor messages and replica state transfer.
//
// SCPlib-era systems had to move thread state between machines with
// different byte orders and float formats; we keep the explicit
// encode/decode discipline (every message type provides encode()/decode())
// but target a single host format since the simulated cluster is
// homogeneous. The archive is bounds-checked: a malformed buffer trips a
// RIF_CHECK instead of reading out of bounds.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "support/check.h"

namespace rif {

/// Append-only encoder producing a flat byte buffer.
class Writer {
 public:
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void put(const T& v) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
    buf_.insert(buf_.end(), p, p + sizeof(T));
  }

  void put_string(const std::string& s) {
    put<std::uint64_t>(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  /// Length-prefixed bulk array. Capacity is reserved up front so a band
  /// array lands in one growth step instead of doubling per element range.
  /// Wire format is identical to put_vector (u64 count + raw bytes).
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void put_span(std::span<const T> v) {
    buf_.reserve(buf_.size() + sizeof(std::uint64_t) + v.size() * sizeof(T));
    put<std::uint64_t>(v.size());
    const auto* p = reinterpret_cast<const std::uint8_t*>(v.data());
    buf_.insert(buf_.end(), p, p + v.size() * sizeof(T));
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void put_vector(const std::vector<T>& v) {
    put_span(std::span<const T>(v));
  }

  [[nodiscard]] std::vector<std::uint8_t> take() && { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Sequential decoder over a byte buffer produced by Writer.
class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& buf) : buf_(buf) {}

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  T get() {
    RIF_CHECK_MSG(sizeof(T) <= remaining(), "truncated message");
    T v;
    std::memcpy(&v, buf_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  /// Non-aborting variant for payloads that crossed a trust boundary (the
  /// socket plane): false on truncation, leaving `out` untouched.
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  [[nodiscard]] bool try_get(T& out) {
    if (sizeof(T) > remaining()) return false;
    std::memcpy(&out, buf_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  std::string get_string() {
    // Length first, then bound it by what is actually left: a hostile or
    // corrupt length must not index (or allocate) past the buffer.
    const auto n = get<std::uint64_t>();
    RIF_CHECK_MSG(n <= remaining(), "truncated string");
    std::string s(reinterpret_cast<const char*>(buf_.data() + pos_),
                  static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return s;
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  std::vector<T> get_vector() {
    // Divide instead of multiplying: `n * sizeof(T)` on an attacker-chosen
    // 64-bit count wraps around and would pass a naive bound check.
    const auto n = get<std::uint64_t>();
    RIF_CHECK_MSG(n <= remaining() / sizeof(T), "truncated vector");
    std::vector<T> v(static_cast<std::size_t>(n));
    if (!v.empty()) {
      std::memcpy(v.data(), buf_.data() + pos_, v.size() * sizeof(T));
    }
    pos_ += v.size() * sizeof(T);
    return v;
  }

  template <typename T>
    requires std::is_trivially_copyable_v<T>
  [[nodiscard]] bool try_get_vector(std::vector<T>& out) {
    std::uint64_t n = 0;
    if (!try_get(n)) return false;
    if (n > remaining() / sizeof(T)) return false;
    out.resize(static_cast<std::size_t>(n));
    if (!out.empty()) {
      std::memcpy(out.data(), buf_.data() + pos_, out.size() * sizeof(T));
    }
    pos_ += out.size() * sizeof(T);
    return true;
  }

  [[nodiscard]] bool exhausted() const { return pos_ == buf_.size(); }
  [[nodiscard]] std::size_t remaining() const { return buf_.size() - pos_; }

 private:
  const std::vector<std::uint8_t>& buf_;
  std::size_t pos_ = 0;
};

}  // namespace rif
