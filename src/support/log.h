// Minimal leveled logger with a virtual-time hook.
//
// The simulation installs a clock callback so that log lines carry virtual
// seconds rather than wall time, which makes protocol traces directly
// comparable across runs.
//
// The initial level comes from the RIF_LOG environment variable (one of
// trace|debug|info|warn|error, case-insensitive; default warn), read once
// when the logger is first touched. set_level() still overrides it.
//
// Timestamps: every line carries "[%12.6fs]" — virtual seconds when the
// simulation installed its clock, wall seconds since logger construction
// otherwise — so a chaos soak log interleaves meaningfully with the
// metrics timeline.
//
// Rate limiting: RIF_LOG_EVERY(level, component, period_seconds, expr)
// keeps a per-call-site limiter so repetitive chatter (heartbeat misses,
// eviction retries) emits at most one line per period, with a
// "(+N suppressed)" suffix accounting for the rest.
//
// Job context: worker threads executing on behalf of a job install the job
// id via log_set_job_context() (the obs::JobScope RAII does this together
// with trace attribution), and every line logged from that thread gains a
// "[job N] " message prefix. The line format is otherwise unchanged.
//
// Structured capture: alongside the stderr line, every emitted record can
// be captured as data. A process-wide LogRing installed with
// Logger::set_sink() receives every record (the ops plane's `logs`
// endpoint tails it); a per-thread capture hook installed with
// log_set_thread_capture() claims the CALLING THREAD's records instead of
// the global sink (the remote worker serve loop buffers its own lines for
// kTelemetry shipment this way without seeing other threads' chatter).
// With neither installed the stderr fast path pays one relaxed atomic load
// and one thread-local read — guarded by a test, like the tracer's
// disabled path.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

namespace rif {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4 };

/// One emitted log line as structured data. `message` carries the raw text
/// (no "[job N]" prefix — the job travels in its own field); `t_seconds`
/// is the same axis as the stderr timestamp (virtual seconds under a sim
/// clock, wall seconds since logger construction otherwise); `node` is -1
/// for lines this process emitted and the worker's leased node id for
/// records shipped back over kTelemetry.
struct LogRecord {
  LogLevel level = LogLevel::kInfo;
  std::string component;
  std::string message;
  std::int64_t job = -1;
  double t_seconds = 0.0;
  std::int32_t node = -1;
};

/// Bounded in-memory ring of LogRecords: append drops the OLDEST record
/// past the capacity and tallies the drop, so a long run keeps a recent
/// window at fixed memory instead of growing or refusing. Thread-safe.
class LogRing {
 public:
  explicit LogRing(std::size_t capacity = 1024)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  void append(LogRecord record);
  /// The most recent min(n, size) records, oldest first.
  [[nodiscard]] std::vector<LogRecord> tail(std::size_t n) const;
  [[nodiscard]] std::size_t size() const;
  /// Records ever appended / evicted to make room.
  [[nodiscard]] std::uint64_t total() const;
  [[nodiscard]] std::uint64_t dropped() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::deque<LogRecord> ring_;
  std::uint64_t total_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Attach a job id to the calling thread's log lines ("[job N] " prefix).
/// Pass kLogNoJob to clear. Thread-local; prefer obs::JobScope over calling
/// this directly so trace attribution stays in sync.
inline constexpr std::int64_t kLogNoJob = -1;
void log_set_job_context(std::int64_t job);
[[nodiscard]] std::int64_t log_job_context();

/// Route the CALLING THREAD's emitted records to `fn` instead of the
/// global sink (stderr is unaffected). Pass nullptr to restore. The
/// pointed-to function must stay valid until cleared; the canonical user
/// installs a stack-local functor for the scope of a serve loop.
void log_set_thread_capture(const std::function<void(const LogRecord&)>* fn);

/// Parse a RIF_LOG-style level name; false (and *out untouched) when the
/// name is not recognised.
bool parse_log_level(const std::string& name, LogLevel* out);

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }

  /// Install a source for virtual timestamps (seconds). Pass nullptr to clear.
  void set_clock(std::function<double()> clock) { clock_ = std::move(clock); }

  void write(LogLevel level, const std::string& component,
             const std::string& message);

  [[nodiscard]] bool enabled(LogLevel level) const { return level >= level_; }

  /// Install `ring` as the process-wide structured sink: every record at or
  /// above the level threshold is appended (after the stderr write). Pass
  /// nullptr to uninstall; either call synchronizes with in-flight writes,
  /// so the previous ring is safe to destroy on return.
  void set_sink(LogRing* ring);
  /// Uninstall only if `ring` is still the installed sink — the safe form
  /// for an owner tearing down, which must not evict a newer sink.
  void remove_sink(LogRing* ring);
  [[nodiscard]] bool sink_installed() const {
    return sink_.load(std::memory_order_relaxed) != nullptr;
  }

  /// The timestamp a record emitted now would carry (the stderr axis):
  /// virtual seconds under a sim clock, wall seconds since construction
  /// otherwise. The ops plane stamps shipped worker records with it.
  [[nodiscard]] double now_seconds() const;

 private:
  Logger();
  LogLevel level_ = LogLevel::kWarn;
  std::function<double()> clock_;
  std::uint64_t start_ns_ = 0;  ///< steady clock at construction (wall axis)
  /// Relaxed-load fast path; sink_mu_ orders append against (un)install.
  std::atomic<LogRing*> sink_{nullptr};
  std::mutex sink_mu_;
};

/// Per-site token for RIF_LOG_EVERY: at most one allow() per period, the
/// rest counted. Lock-free — safe from any thread, including the pool's
/// socket thread mid-eviction.
class LogRateLimiter {
 public:
  /// True when a line may be emitted now. On true, *suppressed receives
  /// the number of calls swallowed since the last emitted line (and the
  /// internal count resets); on false the call is counted instead.
  bool allow(double period_seconds, std::uint64_t* suppressed);

 private:
  std::atomic<std::uint64_t> next_ns_{0};
  std::atomic<std::uint64_t> suppressed_{0};
};

}  // namespace rif

#define RIF_LOG(level, component, expr)                                  \
  do {                                                                   \
    if (::rif::Logger::instance().enabled(level)) {                      \
      std::ostringstream rif_log_os_;                                    \
      rif_log_os_ << expr;                                               \
      ::rif::Logger::instance().write(level, component, rif_log_os_.str()); \
    }                                                                    \
  } while (0)

/// RIF_LOG, at most once per `period_seconds` PER CALL SITE; swallowed
/// repeats are tallied into a "(+N suppressed)" suffix on the next line.
#define RIF_LOG_EVERY(level, component, period_seconds, expr)                \
  do {                                                                       \
    if (::rif::Logger::instance().enabled(level)) {                          \
      static ::rif::LogRateLimiter rif_log_limiter_;                         \
      std::uint64_t rif_log_suppressed_ = 0;                                 \
      if (rif_log_limiter_.allow(period_seconds, &rif_log_suppressed_)) {    \
        std::ostringstream rif_log_os_;                                      \
        rif_log_os_ << expr;                                                 \
        if (rif_log_suppressed_ > 0) {                                       \
          rif_log_os_ << " (+" << rif_log_suppressed_ << " suppressed)";     \
        }                                                                    \
        ::rif::Logger::instance().write(level, component,                    \
                                        rif_log_os_.str());                  \
      }                                                                      \
    }                                                                        \
  } while (0)

#define RIF_LOG_DEBUG(component, expr) \
  RIF_LOG(::rif::LogLevel::kDebug, component, expr)
#define RIF_LOG_INFO(component, expr) \
  RIF_LOG(::rif::LogLevel::kInfo, component, expr)
#define RIF_LOG_WARN(component, expr) \
  RIF_LOG(::rif::LogLevel::kWarn, component, expr)
#define RIF_LOG_ERROR(component, expr) \
  RIF_LOG(::rif::LogLevel::kError, component, expr)
