// Minimal leveled logger with a virtual-time hook.
//
// The simulation installs a clock callback so that log lines carry virtual
// seconds rather than wall time, which makes protocol traces directly
// comparable across runs.
//
// The initial level comes from the RIF_LOG environment variable (one of
// trace|debug|info|warn|error, case-insensitive; default warn), read once
// when the logger is first touched. set_level() still overrides it.
//
// Job context: worker threads executing on behalf of a job install the job
// id via log_set_job_context() (the obs::JobScope RAII does this together
// with trace attribution), and every line logged from that thread gains a
// "[job N] " message prefix. The line format is otherwise unchanged.
#pragma once

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>

namespace rif {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4 };

/// Attach a job id to the calling thread's log lines ("[job N] " prefix).
/// Pass kLogNoJob to clear. Thread-local; prefer obs::JobScope over calling
/// this directly so trace attribution stays in sync.
inline constexpr std::int64_t kLogNoJob = -1;
void log_set_job_context(std::int64_t job);
[[nodiscard]] std::int64_t log_job_context();

/// Parse a RIF_LOG-style level name; false (and *out untouched) when the
/// name is not recognised.
bool parse_log_level(const std::string& name, LogLevel* out);

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }

  /// Install a source for virtual timestamps (seconds). Pass nullptr to clear.
  void set_clock(std::function<double()> clock) { clock_ = std::move(clock); }

  void write(LogLevel level, const std::string& component,
             const std::string& message);

  [[nodiscard]] bool enabled(LogLevel level) const { return level >= level_; }

 private:
  Logger();
  LogLevel level_ = LogLevel::kWarn;
  std::function<double()> clock_;
};

}  // namespace rif

#define RIF_LOG(level, component, expr)                                  \
  do {                                                                   \
    if (::rif::Logger::instance().enabled(level)) {                      \
      std::ostringstream rif_log_os_;                                    \
      rif_log_os_ << expr;                                               \
      ::rif::Logger::instance().write(level, component, rif_log_os_.str()); \
    }                                                                    \
  } while (0)

#define RIF_LOG_DEBUG(component, expr) \
  RIF_LOG(::rif::LogLevel::kDebug, component, expr)
#define RIF_LOG_INFO(component, expr) \
  RIF_LOG(::rif::LogLevel::kInfo, component, expr)
#define RIF_LOG_WARN(component, expr) \
  RIF_LOG(::rif::LogLevel::kWarn, component, expr)
#define RIF_LOG_ERROR(component, expr) \
  RIF_LOG(::rif::LogLevel::kError, component, expr)
