// Minimal leveled logger with a virtual-time hook.
//
// The simulation installs a clock callback so that log lines carry virtual
// seconds rather than wall time, which makes protocol traces directly
// comparable across runs.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace rif {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4 };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }

  /// Install a source for virtual timestamps (seconds). Pass nullptr to clear.
  void set_clock(std::function<double()> clock) { clock_ = std::move(clock); }

  void write(LogLevel level, const std::string& component,
             const std::string& message);

  [[nodiscard]] bool enabled(LogLevel level) const { return level >= level_; }

 private:
  LogLevel level_ = LogLevel::kWarn;
  std::function<double()> clock_;
};

}  // namespace rif

#define RIF_LOG(level, component, expr)                                  \
  do {                                                                   \
    if (::rif::Logger::instance().enabled(level)) {                      \
      std::ostringstream rif_log_os_;                                    \
      rif_log_os_ << expr;                                               \
      ::rif::Logger::instance().write(level, component, rif_log_os_.str()); \
    }                                                                    \
  } while (0)

#define RIF_LOG_DEBUG(component, expr) \
  RIF_LOG(::rif::LogLevel::kDebug, component, expr)
#define RIF_LOG_INFO(component, expr) \
  RIF_LOG(::rif::LogLevel::kInfo, component, expr)
#define RIF_LOG_WARN(component, expr) \
  RIF_LOG(::rif::LogLevel::kWarn, component, expr)
#define RIF_LOG_ERROR(component, expr) \
  RIF_LOG(::rif::LogLevel::kError, component, expr)
