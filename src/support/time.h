// Virtual-time representation shared by the simulation, network and cluster
// models.
//
// Simulated time is an integral nanosecond count so that event ordering is
// exact and runs are bit-reproducible across platforms; helpers convert to
// and from floating-point seconds at the API boundary only.
#pragma once

#include <cstdint>

namespace rif {

/// A point on (or span of) the virtual timeline, in nanoseconds.
using SimTime = std::int64_t;

inline constexpr SimTime kSimTimeNever = INT64_MAX;

constexpr SimTime from_seconds(double s) {
  return static_cast<SimTime>(s * 1e9);
}
constexpr SimTime from_millis(double ms) {
  return static_cast<SimTime>(ms * 1e6);
}
constexpr SimTime from_micros(double us) {
  return static_cast<SimTime>(us * 1e3);
}
constexpr double to_seconds(SimTime t) { return static_cast<double>(t) * 1e-9; }
constexpr double to_millis(SimTime t) { return static_cast<double>(t) * 1e-6; }

}  // namespace rif
