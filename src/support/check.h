// Lightweight contract checking for the rif libraries.
//
// RIF_CHECK is always on (benchmarks included): violations indicate a bug in
// the caller or in rif itself and abort with a location message.
// RIF_DCHECK compiles away in NDEBUG builds and is used on hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace rif {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "rif: CHECK failed: %s at %s:%d%s%s\n", expr, file,
               line, msg[0] ? ": " : "", msg);
  std::abort();
}

}  // namespace rif

#define RIF_CHECK(expr)                                        \
  do {                                                         \
    if (!(expr)) ::rif::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define RIF_CHECK_MSG(expr, msg)                                  \
  do {                                                            \
    if (!(expr)) ::rif::check_failed(#expr, __FILE__, __LINE__, msg); \
  } while (0)

#ifdef NDEBUG
#define RIF_DCHECK(expr) \
  do {                   \
  } while (0)
#else
#define RIF_DCHECK(expr) RIF_CHECK(expr)
#endif
