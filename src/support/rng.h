// Deterministic pseudo-random number generation.
//
// All stochastic components of the simulator (scene synthesis, failure
// schedules, placement tie-breaking) draw from explicitly seeded generators
// so that every experiment in EXPERIMENTS.md is reproducible bit-for-bit.
// xoshiro256** is used for speed; SplitMix64 seeds it and derives
// independent child streams.
#pragma once

#include <cstdint>

namespace rif {

/// SplitMix64: tiny generator used for seeding and stream derivation.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality 64-bit generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9d2c5680u) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return UINT64_MAX; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_u64(std::uint64_t n) {
    // Lemire's nearly-divisionless method.
    __uint128_t m = static_cast<__uint128_t>(next()) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(next()) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via Marsaglia polar method.
  double normal() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = sqrt_neg2log(s);
    spare_ = v * mul;
    have_spare_ = true;
    return u * mul;
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Derive an independent child stream (e.g. per node, per material).
  Rng fork(std::uint64_t stream_id) {
    SplitMix64 sm(next() ^ (0xa0761d6478bd642fULL * (stream_id + 1)));
    Rng child(0);
    for (auto& s : child.s_) s = sm.next();
    return child;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  static double sqrt_neg2log(double s);

  std::uint64_t s_[4]{};
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace rif
