// Fixed-width ASCII table printer used by the figure-reproduction benches so
// that every bench emits rows in the same shape the paper reports.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

namespace rif {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void print(std::FILE* out = stdout) const {
    std::vector<std::size_t> width(headers_.size(), 0);
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      width[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
        if (row[c].size() > width[c]) width[c] = row[c].size();
      }
    }
    print_row(out, headers_, width);
    std::string sep;
    for (std::size_t c = 0; c < width.size(); ++c) {
      sep += std::string(width[c] + 2, '-');
      if (c + 1 < width.size()) sep += "+";
    }
    std::fprintf(out, "%s\n", sep.c_str());
    for (const auto& row : rows_) print_row(out, row, width);
  }

 private:
  static void print_row(std::FILE* out, const std::vector<std::string>& row,
                        const std::vector<std::size_t>& width) {
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      std::fprintf(out, " %-*s ", static_cast<int>(width[c]), cell.c_str());
      if (c + 1 < width.size()) std::fprintf(out, "|");
    }
    std::fprintf(out, "\n");
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style helper for table cells.
inline std::string strf(const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  return buf;
}

}  // namespace rif
