#include "support/log.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace rif {

namespace {

thread_local std::int64_t t_log_job = kLogNoJob;
thread_local const std::function<void(const LogRecord&)>* t_log_capture =
    nullptr;

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

void log_set_job_context(std::int64_t job) { t_log_job = job; }

std::int64_t log_job_context() { return t_log_job; }

void log_set_thread_capture(
    const std::function<void(const LogRecord&)>* fn) {
  t_log_capture = fn;
}

void LogRing::append(LogRecord record) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++total_;
  ring_.push_back(std::move(record));
  while (ring_.size() > capacity_) {
    ring_.pop_front();
    ++dropped_;
  }
}

std::vector<LogRecord> LogRing::tail(std::size_t n) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t take = std::min(n, ring_.size());
  return {ring_.end() - static_cast<std::ptrdiff_t>(take), ring_.end()};
}

std::size_t LogRing::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return ring_.size();
}

std::uint64_t LogRing::total() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

std::uint64_t LogRing::dropped() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

bool parse_log_level(const std::string& name, LogLevel* out) {
  std::string lower;
  lower.reserve(name.size());
  for (const char c : name) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "trace") {
    *out = LogLevel::kTrace;
  } else if (lower == "debug") {
    *out = LogLevel::kDebug;
  } else if (lower == "info") {
    *out = LogLevel::kInfo;
  } else if (lower == "warn" || lower == "warning") {
    *out = LogLevel::kWarn;
  } else if (lower == "error") {
    *out = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

Logger::Logger() : start_ns_(steady_now_ns()) {
  if (const char* env = std::getenv("RIF_LOG"); env != nullptr) {
    parse_log_level(env, &level_);  // unrecognised names keep the default
  }
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

double Logger::now_seconds() const {
  return clock_ ? clock_()
                : static_cast<double>(steady_now_ns() - start_ns_) / 1e9;
}

void Logger::set_sink(LogRing* ring) {
  const std::lock_guard<std::mutex> lock(sink_mu_);
  sink_.store(ring, std::memory_order_relaxed);
}

void Logger::remove_sink(LogRing* ring) {
  const std::lock_guard<std::mutex> lock(sink_mu_);
  if (sink_.load(std::memory_order_relaxed) == ring) {
    sink_.store(nullptr, std::memory_order_relaxed);
  }
}

void Logger::write(LogLevel level, const std::string& component,
                   const std::string& message) {
  static const char* kNames[] = {"TRACE", "DEBUG", "INFO", "WARN", "ERROR"};
  const char* name = kNames[static_cast<int>(level)];
  std::string line;
  if (t_log_job != kLogNoJob) {
    line = "[job " + std::to_string(t_log_job) + "] " + message;
  } else {
    line = message;
  }
  // Virtual seconds when the simulation drives the clock; wall seconds
  // since logger construction otherwise. Either way every line has a
  // timestamp a timeline tool can align against.
  const double t = clock_
                       ? clock_()
                       : static_cast<double>(steady_now_ns() - start_ns_) /
                             1e9;
  std::fprintf(stderr, "[%12.6fs] %-5s %-12s %s\n", t, name,
               component.c_str(), line.c_str());

  // Structured capture rides behind the stderr write. A thread-local
  // capture claims this thread's records (the worker serve loop shipping
  // its own lines); otherwise a relaxed load gates the global sink so the
  // common uncaptured path costs one atomic read.
  if (t_log_capture == nullptr &&
      sink_.load(std::memory_order_relaxed) == nullptr) {
    return;
  }
  LogRecord record;
  record.level = level;
  record.component = component;
  record.message = message;
  record.job = t_log_job;
  record.t_seconds = t;
  if (t_log_capture != nullptr) {
    (*t_log_capture)(record);
    return;
  }
  // Re-check under the install mutex: set_sink(nullptr) must be able to
  // wait out in-flight appends before the caller destroys the ring.
  const std::lock_guard<std::mutex> lock(sink_mu_);
  if (LogRing* ring = sink_.load(std::memory_order_relaxed)) {
    ring->append(std::move(record));
  }
}

bool LogRateLimiter::allow(double period_seconds, std::uint64_t* suppressed) {
  const std::uint64_t now = steady_now_ns();
  const auto period_ns = static_cast<std::uint64_t>(
      period_seconds > 0.0 ? period_seconds * 1e9 : 0.0);
  std::uint64_t next = next_ns_.load(std::memory_order_relaxed);
  while (now >= next) {
    if (next_ns_.compare_exchange_weak(next, now + period_ns,
                                       std::memory_order_relaxed)) {
      *suppressed = suppressed_.exchange(0, std::memory_order_relaxed);
      return true;
    }
  }
  suppressed_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

}  // namespace rif
