#include "support/log.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace rif {

namespace {

thread_local std::int64_t t_log_job = kLogNoJob;

}  // namespace

void log_set_job_context(std::int64_t job) { t_log_job = job; }

std::int64_t log_job_context() { return t_log_job; }

bool parse_log_level(const std::string& name, LogLevel* out) {
  std::string lower;
  lower.reserve(name.size());
  for (const char c : name) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "trace") {
    *out = LogLevel::kTrace;
  } else if (lower == "debug") {
    *out = LogLevel::kDebug;
  } else if (lower == "info") {
    *out = LogLevel::kInfo;
  } else if (lower == "warn" || lower == "warning") {
    *out = LogLevel::kWarn;
  } else if (lower == "error") {
    *out = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

Logger::Logger() {
  if (const char* env = std::getenv("RIF_LOG"); env != nullptr) {
    parse_log_level(env, &level_);  // unrecognised names keep the default
  }
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, const std::string& component,
                   const std::string& message) {
  static const char* kNames[] = {"TRACE", "DEBUG", "INFO", "WARN", "ERROR"};
  const char* name = kNames[static_cast<int>(level)];
  std::string line;
  if (t_log_job != kLogNoJob) {
    line = "[job " + std::to_string(t_log_job) + "] " + message;
  } else {
    line = message;
  }
  if (clock_) {
    std::fprintf(stderr, "[%12.6fs] %-5s %-12s %s\n", clock_(), name,
                 component.c_str(), line.c_str());
  } else {
    std::fprintf(stderr, "%-5s %-12s %s\n", name, component.c_str(),
                 line.c_str());
  }
}

}  // namespace rif
