#include "support/log.h"

#include <cstdio>

namespace rif {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, const std::string& component,
                   const std::string& message) {
  static const char* kNames[] = {"TRACE", "DEBUG", "INFO", "WARN", "ERROR"};
  const char* name = kNames[static_cast<int>(level)];
  if (clock_) {
    std::fprintf(stderr, "[%12.6fs] %-5s %-12s %s\n", clock_(), name,
                 component.c_str(), message.c_str());
  } else {
    std::fprintf(stderr, "%-5s %-12s %s\n", name, component.c_str(),
                 message.c_str());
  }
}

}  // namespace rif
