// Out-of-core streaming fusion: fuse a cube straight from disk in bounded
// memory, overlapping I/O with compute.
//
// Every other engine in the repo (sequential fuse, the two shared-memory
// engines, the distributed actors) needs the whole hyper-spectral cube
// resident before the first pixel is screened — scene size is capped at
// RAM and load time serializes in front of compute. This engine is the
// pipelined data-flow answer: a dedicated reader thread pulls chunks of
// `chunk_lines` image lines through a ChunkedCubeReader into a fixed pool
// of recycled buffers and hands them to the compute stage over a
// BoundedQueue, whose capacity is the backpressure that keeps in-flight
// memory at `queue_depth` chunk buffers — never the cube — while read-
// ahead (double-buffered prefetch at queue_depth >= 3) hides disk latency
// behind screening.
//
// The algorithm is the fused single-pass engine's, restructured around the
// statistics barrier that out-of-core PCA cannot avoid (eigenvectors need
// the full covariance before any pixel can be transformed):
//
//   pass 1  reader -> [BoundedQueue] -> per-chunk screen + moment sums
//           (SIMD kernels via core::UniqueSet / linalg::MomentAccumulator,
//           sub-tiled across the pool) folded in chunk order through
//           core::fold_unique_moments — the same blocked-concurrent fold
//           as fuse_parallel_fused, so the unique set is identical to an
//           in-memory run with the same tile boundaries;
//   barrier mean + covariance out of the moment sums, Jacobi eigen-solve;
//   pass 2  reader (re-streams the file) -> blocked SIMD transform +
//           colour map per chunk, writing output chunks: composite bytes
//           land in place, component planes go to an optional per-chunk
//           sink instead of ever materializing whole planes.
//
// Contract: with tile boundaries matching an in-memory run
// (chunk_lines x tiles_per_chunk aligned with ParallelPctConfig::tiles),
// the streamed composite agrees with fuse_parallel_fused within the
// existing cross-engine tolerance (composite bytes within one quantisation
// level; identical unique set) — asserted in tests/stream_test.cc.
//
// Deadlock safety with the help-while-waiting ThreadPool: the reader runs
// on its own std::thread and never touches the pool, so the compute stage
// may block on the queue (it parks, it does not help) yet always gets its
// next chunk; nested parallel_for/parallel_tasks inside compute stay
// deadlock-free on any pool size, including 1 (regression-tested).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/parallel/thread_pool.h"
#include "core/pct.h"
#include "hsi/image_io.h"
#include "linalg/matrix.h"
#include "runtime/autotuner.h"
#include "runtime/metrics.h"

namespace rif::stream {

struct StreamingConfig {
  core::PctConfig pct;

  /// Image lines per chunk. The unit of I/O, of screening-fold granularity
  /// and of memory budgeting: peak buffer memory is
  /// queue_depth x chunk_lines x samples x bands x 4 bytes. Bounds shared
  /// with submit-time validation (runtime/chunk_geometry.h); out-of-bounds
  /// values fail the run with a logged error. With `autotune` set this is
  /// only the starting point.
  int chunk_lines = 64;

  /// Total chunk buffers in flight (>= 3): one filling at the reader, one
  /// draining at the compute stage, the rest queued between them as
  /// read-ahead. This bounds the engine's buffer footprint — backpressure
  /// from the full queue throttles the reader when compute falls behind.
  int queue_depth = 4;

  /// Adaptive chunk geometry: when set, a runtime::ChunkAutotuner retunes
  /// chunk_lines BETWEEN CHUNKS of pass 1 from the live stall series
  /// (grow while reader-stalled, shrink while compute-stalled, hysteresis
  /// and memory clamp — see runtime/autotuner.h) and queue_depth at the
  /// pass boundary; pass 2 runs at the converged geometry. The tuned
  /// trajectory lands in StreamingResult::autotune. Chunk boundaries then
  /// differ from any fixed-geometry run, so the unique set matches no
  /// in-memory tiling — the composite is still a valid fusion within the
  /// usual cross-tiling variation.
  std::optional<runtime::AutotuneConfig> autotune;

  /// Optional long-lived registry (e.g. the FusionService's): the run's
  /// private series are folded in under `metrics_prefix` when the run
  /// succeeds — counters add, max-gauges max, histograms merge — so
  /// concurrent jobs aggregate instead of clobbering each other.
  runtime::MetricsRegistry* metrics = nullptr;
  std::string metrics_prefix = "stream.";

  /// Screening sub-tiles per chunk (the compute stage's parallelism);
  /// 0 = pool size. Chunk x sub-tile boundaries define the screening fold
  /// order, exactly like ParallelPctConfig::tiles: choose
  /// chunks * tiles_per_chunk boundaries that match an in-memory engine's
  /// row partition when comparing outputs.
  int tiles_per_chunk = 0;

  /// Optional sink for the raw component planes, called once per chunk in
  /// ascending chunk order from the compute thread:
  /// (first_flat_pixel, pixel_count, comps, planes) with `planes`
  /// pixel-major (pixel_count x comps, valid only during the call). When
  /// unset, component planes are simply not produced — the engine never
  /// holds plane storage for more than one chunk either way.
  std::function<void(std::int64_t first_flat, std::int64_t count, int comps,
                     const float* planes)>
      plane_sink;
};

/// Per-stage observability of one streamed run. Stall seconds tell the
/// bottleneck story without a profiler: reader_stall ~ backpressure
/// (compute-bound), compute_stall ~ starvation (I/O-bound).
///
/// Since the adaptive-runtime PR this struct is a VIEW: the engine
/// records everything into a per-run runtime::MetricsRegistry (per-chunk
/// read/screen/fold/transform latency histograms, stall gauges, queue
/// series) and materializes these fields from it at the end of the run —
/// the registry is the source of truth, this is the stable per-job
/// summary shape JobRecord::stream carries.
struct StreamingStats {
  int chunks = 0;                 ///< chunks consumed in pass 1
  std::uint64_t bytes_read = 0;   ///< file bytes read (both passes)
  /// Largest BIP chunk read — the full-size buffer for fixed geometry,
  /// the widest tuned chunk for autotuned runs.
  std::uint64_t chunk_bytes = 0;
  /// High-water of live chunk-buffer bytes — the engine's whole variable
  /// footprint besides the unique set and the output image. Bounded by
  /// queue_depth x chunk_bytes by construction.
  std::uint64_t peak_buffer_bytes = 0;
  double read_seconds = 0.0;     ///< reader thread inside read_lines
  double reader_stall_seconds = 0.0;   ///< reader blocked (backpressure)
  double compute_stall_seconds = 0.0;  ///< compute blocked (starved)
  double screen_seconds = 0.0;     ///< compute stage, pass 1 (excl. stalls)
  double transform_seconds = 0.0;  ///< compute stage, pass 2 (excl. stalls)
};

/// What fuse() returns, minus whole-cube artifacts: component planes are
/// streamed to StreamingConfig::plane_sink instead of stored.
struct StreamingResult {
  hsi::RgbImage composite;
  std::vector<double> eigenvalues;
  linalg::Matrix eigenvectors;
  std::vector<double> mean;
  std::size_t unique_set_size = 0;
  std::uint64_t screen_comparisons = 0;
  std::uint64_t merge_comparisons = 0;
  int jacobi_sweeps = 0;
  StreamingStats stats;
  /// Tuned trajectory of this run (enabled == false when the run used
  /// fixed geometry).
  runtime::AutotuneReport autotune;
};

/// Fuse the cube at `<cube_path>` (+ `.hdr`) straight from disk on
/// `pool`. nullopt on open/validation failure or an I/O error mid-stream.
std::optional<StreamingResult> fuse_streaming(const std::string& cube_path,
                                              core::ThreadPool& pool,
                                              const StreamingConfig& config);

/// Convenience overload owning a transient pool of `threads`.
std::optional<StreamingResult> fuse_streaming(const std::string& cube_path,
                                              int threads,
                                              const StreamingConfig& config);

}  // namespace rif::stream
