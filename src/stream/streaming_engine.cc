#include "stream/streaming_engine.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <utility>

#include "core/parallel/parallel_pct.h"
#include "hsi/chunked_reader.h"
#include "hsi/partition.h"
#include "linalg/jacobi_eig.h"
#include "linalg/stats.h"
#include "stream/bounded_queue.h"
#include "support/check.h"
#include "support/log.h"

namespace rif::stream {

namespace {

using clock = std::chrono::steady_clock;

double seconds_since(clock::time_point t0) {
  return std::chrono::duration<double>(clock::now() - t0).count();
}

/// One recycled chunk buffer. The engine owns a fixed set of these
/// (queue_depth of them); indices circulate reader -> full queue ->
/// compute -> free queue -> reader, so allocation is bounded for the whole
/// run regardless of file size.
struct ChunkBuffer {
  int line0 = 0;
  int rows = 0;
  std::vector<float> data;         // rows * samples * bands, BIP
  std::uint64_t alloc_bytes = 0;   // capacity high-water (peak tracking)
};

/// Shared state of one reader pass. The reader is a dedicated std::thread:
/// it must never borrow the compute pool, or a pool blocked in pop() could
/// starve the very stage that would refill it (see bounded_queue.h).
struct ReaderPass {
  hsi::ChunkedCubeReader* reader = nullptr;
  std::vector<ChunkBuffer>* buffers = nullptr;
  BoundedQueue<int>* free_q = nullptr;
  BoundedQueue<int>* full_q = nullptr;
  int chunk_lines = 0;
  std::atomic<bool> io_error{false};
  // Written by the reader thread only; read after join().
  double read_seconds = 0.0;
  std::uint64_t bytes_read = 0;
  std::uint64_t live_buffer_bytes = 0;
  std::uint64_t peak_buffer_bytes = 0;

  void run() {
    const int lines = reader->lines();
    for (int line0 = 0; line0 < lines; line0 += chunk_lines) {
      const auto idx = free_q->pop();
      if (!idx) return;  // aborted by the consumer
      ChunkBuffer& buf = (*buffers)[static_cast<std::size_t>(*idx)];
      buf.line0 = line0;
      buf.rows = std::min(chunk_lines, lines - line0);
      const auto t0 = clock::now();
      const bool ok = reader->read_lines(line0, buf.rows, buf.data);
      read_seconds += seconds_since(t0);
      if (!ok) {
        io_error.store(true);
        free_q->push(*idx);
        break;
      }
      bytes_read += reader->chunk_bytes(buf.rows);
      const auto cap_bytes =
          static_cast<std::uint64_t>(buf.data.capacity()) * sizeof(float);
      if (cap_bytes > buf.alloc_bytes) {
        live_buffer_bytes += cap_bytes - buf.alloc_bytes;
        buf.alloc_bytes = cap_bytes;
        peak_buffer_bytes = std::max(peak_buffer_bytes, live_buffer_bytes);
      }
      if (!full_q->push(*idx)) return;  // aborted by the consumer
    }
    full_q->close();  // end-of-stream (or I/O error): drain and stop
  }
};

/// Join-on-destruction wrapper so an early return (I/O error, degenerate
/// scene CHECK) can never leave the reader thread running against queues
/// about to be destroyed.
class ReaderThread {
 public:
  explicit ReaderThread(ReaderPass& pass)
      : pass_(pass), thread_([&pass] { pass.run(); }) {}
  ~ReaderThread() { join(); }

  /// Unblock the reader if necessary and wait for it; the pass counters
  /// are stable (and safely readable) once this returns.
  void join() {
    if (!thread_.joinable()) return;
    pass_.free_q->close();  // releases a reader blocked on a free buffer
    pass_.full_q->close();
    thread_.join();
  }

 private:
  ReaderPass& pass_;
  std::thread thread_;
};

/// One full reader pass over the file: owns the queue pair, feeds every
/// chunk through `consume` (in ascending chunk order, on the calling
/// thread), joins the reader and merges the pass's counters into `stats`.
/// Returns false on a mid-pass I/O error. Shared by both pipeline passes
/// so stall attribution and the error path cannot diverge between them.
bool run_reader_pass(hsi::ChunkedCubeReader& reader,
                     std::vector<ChunkBuffer>& buffers, int chunk_lines,
                     StreamingStats& stats,
                     const std::function<void(const ChunkBuffer&)>& consume) {
  // The free queue holds every buffer; the full queue's capacity is what
  // is left after the slot the reader is filling and the one the compute
  // stage is draining — with queue_depth buffers total, in-flight memory
  // can never exceed queue_depth chunks.
  BoundedQueue<int> free_q(buffers.size());
  BoundedQueue<int> full_q(buffers.size() - 2);
  for (int i = 0; i < static_cast<int>(buffers.size()); ++i) free_q.push(i);

  ReaderPass pass;
  pass.reader = &reader;
  pass.buffers = &buffers;
  pass.free_q = &free_q;
  pass.full_q = &full_q;
  pass.chunk_lines = chunk_lines;
  ReaderThread reader_thread(pass);

  while (const auto idx = full_q.pop()) {
    consume(buffers[static_cast<std::size_t>(*idx)]);
    free_q.push(*idx);
  }
  reader_thread.join();
  stats.compute_stall_seconds += full_q.pop_stall_seconds();
  stats.reader_stall_seconds +=
      free_q.pop_stall_seconds() + full_q.push_stall_seconds();
  stats.read_seconds += pass.read_seconds;
  stats.bytes_read += pass.bytes_read;
  stats.peak_buffer_bytes =
      std::max(stats.peak_buffer_bytes, pass.peak_buffer_bytes);
  return !pass.io_error.load();
}

}  // namespace

std::optional<StreamingResult> fuse_streaming(const std::string& cube_path,
                                              core::ThreadPool& pool,
                                              const StreamingConfig& config) {
  RIF_CHECK(config.pct.output_components >= 3);
  RIF_CHECK(config.chunk_lines >= 1);
  RIF_CHECK_MSG(config.queue_depth >= 3,
                "queue_depth must cover one filling + one draining + one "
                "queued chunk buffer");
  auto reader = hsi::ChunkedCubeReader::open(cube_path);
  if (!reader) return std::nullopt;

  const int W = reader->samples();
  const int H = reader->lines();
  const int B = reader->bands();
  const int chunk_lines = std::min(config.chunk_lines, H);
  const int tiles_per_chunk =
      config.tiles_per_chunk > 0 ? config.tiles_per_chunk : pool.size();

  StreamingResult result;
  result.stats.chunk_bytes = reader->chunk_bytes(chunk_lines);
  result.stats.chunks = (H + chunk_lines - 1) / chunk_lines;

  std::vector<ChunkBuffer> buffers(
      static_cast<std::size_t>(config.queue_depth));

  // --- pass 1: screen + moment sums, folded in chunk order ------------------
  core::UniqueSet unique(B, config.pct.screening_threshold);
  std::optional<linalg::MomentAccumulator> total;
  std::vector<double> origin;  // first pixel of the cube (first chunk)
  std::uint64_t screen_comparisons = 0;
  {
    std::vector<core::UniqueSet> tile_sets;
    std::vector<linalg::MomentAccumulator> tile_moments;
    std::vector<std::uint8_t> dropped;
    bool first_tile = true;
    const auto screen_chunk = [&](const ChunkBuffer& buf) {
      const auto t0 = clock::now();
      if (origin.empty()) {
        origin.assign(buf.data.begin(), buf.data.begin() + B);
      }
      // Sub-tile the chunk exactly as the in-memory engines tile the cube:
      // per-tile unique set + moment sums in one fused sweep (the same
      // 32-row flush cadence as fuse_parallel_fused), then fold tiles in
      // order into the global pair.
      const auto tiles =
          hsi::partition_rows({W, buf.rows, B}, tiles_per_chunk);
      const int tile_count = static_cast<int>(tiles.size());
      tile_sets.clear();
      tile_moments.clear();
      for (int i = 0; i < tile_count; ++i) {
        tile_sets.emplace_back(B, config.pct.screening_threshold);
        tile_moments.emplace_back(B, origin);
      }
      std::atomic<std::uint64_t> comparisons{0};
      pool.parallel_tasks(tile_count, [&](int i) {
        constexpr std::size_t kMomentBlock = 32;
        core::UniqueSet& set = tile_sets[static_cast<std::size_t>(i)];
        linalg::MomentAccumulator& mom =
            tile_moments[static_cast<std::size_t>(i)];
        std::uint64_t local = 0;
        std::size_t flushed = 0;
        const std::int64_t first = tiles[i].first_flat_index();
        const std::int64_t last = tiles[i].end_flat_index();
        for (std::int64_t p = first; p < last; ++p) {
          set.screen({buf.data.data() + p * B, static_cast<std::size_t>(B)},
                     &local);
          if (set.size() - flushed >= kMomentBlock) {
            mom.add_block(set.flat().data() + flushed * B,
                          static_cast<int>(set.size() - flushed));
            flushed = set.size();
          }
        }
        if (set.size() > flushed) {
          mom.add_block(set.flat().data() + flushed * B,
                        static_cast<int>(set.size() - flushed));
        }
        comparisons += local;
      });
      screen_comparisons += comparisons.load();
      for (int i = 0; i < tile_count; ++i) {
        if (first_tile) {
          unique = std::move(tile_sets[static_cast<std::size_t>(i)]);
          total = std::move(tile_moments[static_cast<std::size_t>(i)]);
          first_tile = false;
          continue;
        }
        core::fold_unique_moments(unique, *total,
                                  tile_sets[static_cast<std::size_t>(i)],
                                  tile_moments[static_cast<std::size_t>(i)],
                                  pool, dropped, &result.merge_comparisons);
      }
      result.stats.screen_seconds += seconds_since(t0);
    };
    if (!run_reader_pass(*reader, buffers, chunk_lines, result.stats,
                         screen_chunk)) {
      RIF_LOG_WARN("stream", "I/O error streaming " << cube_path);
      return std::nullopt;
    }
  }
  result.screen_comparisons = screen_comparisons;
  result.unique_set_size = unique.size();
  RIF_CHECK_MSG(unique.size() >= 3, "degenerate scene: unique set too small");
  RIF_CHECK(total.has_value() && total->count() == unique.size());

  // --- barrier: statistics + eigen-solve -------------------------------------
  result.mean = total->mean();
  const linalg::Matrix cov = total->covariance();
  linalg::EigenResult eig = linalg::jacobi_eigen(cov, config.pct.jacobi);
  result.eigenvalues = eig.values;
  result.eigenvectors = eig.vectors;
  result.jacobi_sweeps = eig.sweeps;

  // --- pass 2: streamed blocked transform + colour map -----------------------
  const linalg::Matrix t =
      core::transform_matrix(eig.vectors, config.pct.output_components);
  const std::vector<double> bias = core::projection_bias(t, result.mean);
  const auto scales = core::scales_from_eigenvalues(eig.values);
  const int comps = t.rows();
  result.composite = hsi::RgbImage(W, H);
  std::vector<float> plane_chunk;  // one chunk of components, when sunk
  {
    const auto transform_chunk = [&](const ChunkBuffer& buf) {
      const auto t0 = clock::now();
      const std::int64_t count = static_cast<std::int64_t>(buf.rows) * W;
      const std::int64_t first_flat =
          static_cast<std::int64_t>(buf.line0) * W;
      float* planes = nullptr;
      if (config.plane_sink) {
        plane_chunk.resize(static_cast<std::size_t>(count) * comps);
        planes = plane_chunk.data();
      }
      pool.parallel_for(count, [&](std::int64_t lo, std::int64_t hi) {
        core::transform_and_map_chunk(
            buf.data.data() + lo * B, hi - lo, t, bias, scales,
            planes != nullptr ? planes + lo * comps : nullptr,
            result.composite, first_flat + lo);
      });
      if (config.plane_sink) {
        config.plane_sink(first_flat, count, comps, planes);
      }
      result.stats.transform_seconds += seconds_since(t0);
    };
    if (!run_reader_pass(*reader, buffers, chunk_lines, result.stats,
                         transform_chunk)) {
      RIF_LOG_WARN("stream", "I/O error streaming " << cube_path);
      return std::nullopt;
    }
  }
  return result;
}

std::optional<StreamingResult> fuse_streaming(const std::string& cube_path,
                                              int threads,
                                              const StreamingConfig& config) {
  core::ThreadPool pool(threads);
  return fuse_streaming(cube_path, pool, config);
}

}  // namespace rif::stream
