#include "stream/streaming_engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <utility>

#include "core/parallel/parallel_pct.h"
#include "hsi/chunked_reader.h"
#include "hsi/partition.h"
#include "linalg/jacobi_eig.h"
#include "linalg/stats.h"
#include "obs/span_tracer.h"
#include "runtime/chunk_geometry.h"
#include "stream/bounded_queue.h"
#include "support/check.h"
#include "support/log.h"

namespace rif::stream {

namespace {

using clock = std::chrono::steady_clock;

double seconds_since(clock::time_point t0) {
  return std::chrono::duration<double>(clock::now() - t0).count();
}

/// One recycled chunk buffer. The engine owns a fixed set of these
/// (queue_depth of them); indices circulate reader -> full queue ->
/// compute -> free queue -> reader, so allocation is bounded for the whole
/// run regardless of file size.
struct ChunkBuffer {
  int line0 = 0;
  int rows = 0;
  std::vector<float> data;         // rows * samples * bands, BIP
  std::uint64_t alloc_bytes = 0;   // capacity high-water (peak tracking)
  double read_seconds = 0.0;       // this fill's read_lines time (autotune)
};

/// Registry series of one streamed run, looked up once. The engine always
/// records into a run-private registry; StreamingStats is materialized
/// from it afterwards, and the whole registry merges into an optional
/// long-lived one (StreamingConfig::metrics).
struct RunMetrics {
  runtime::MetricsRegistry& reg;
  runtime::Counter& chunks = reg.counter("chunks");
  runtime::Counter& bytes_read = reg.counter("bytes_read");
  runtime::Gauge& chunk_bytes =
      reg.gauge("chunk_bytes", runtime::GaugeKind::kMax);
  runtime::Gauge& peak_buffer_bytes =
      reg.gauge("peak_buffer_bytes", runtime::GaugeKind::kMax);
  runtime::Gauge& reader_stall =
      reg.gauge("reader_stall_seconds", runtime::GaugeKind::kSum);
  runtime::Gauge& compute_stall =
      reg.gauge("compute_stall_seconds", runtime::GaugeKind::kSum);
  runtime::Histogram& read_hist = reg.histogram("chunk_read_seconds");
  runtime::Histogram& screen_hist = reg.histogram("chunk_screen_seconds");
  runtime::Histogram& fold_hist = reg.histogram("chunk_fold_seconds");
  runtime::Histogram& transform_hist =
      reg.histogram("chunk_transform_seconds");
};

/// The per-job StreamingStats view over the run's registry.
StreamingStats stats_view(const runtime::MetricsRegistry& reg) {
  StreamingStats s;
  s.chunks = static_cast<int>(reg.counter_value("chunks"));
  s.bytes_read = reg.counter_value("bytes_read");
  s.chunk_bytes = static_cast<std::uint64_t>(reg.gauge_value("chunk_bytes"));
  s.peak_buffer_bytes =
      static_cast<std::uint64_t>(reg.gauge_value("peak_buffer_bytes"));
  s.reader_stall_seconds = reg.gauge_value("reader_stall_seconds");
  s.compute_stall_seconds = reg.gauge_value("compute_stall_seconds");
  const auto hist_sum = [&reg](const char* name) {
    const runtime::Histogram* h = reg.find_histogram(name);
    return h == nullptr ? 0.0 : h->sum();
  };
  s.read_seconds = hist_sum("chunk_read_seconds");
  // screen_seconds keeps its pre-registry meaning: the whole pass-1
  // compute stage, screening fan-out plus the in-order fold.
  s.screen_seconds =
      hist_sum("chunk_screen_seconds") + hist_sum("chunk_fold_seconds");
  s.transform_seconds = hist_sum("chunk_transform_seconds");
  return s;
}

/// Shared state of one reader pass. The reader is a dedicated std::thread:
/// it must never borrow the compute pool, or a pool blocked in pop() could
/// starve the very stage that would refill it (see bounded_queue.h).
struct ReaderPass {
  hsi::ChunkedCubeReader* reader = nullptr;
  std::vector<ChunkBuffer>* buffers = nullptr;
  BoundedQueue<int>* free_q = nullptr;
  BoundedQueue<int>* full_q = nullptr;
  /// Lines of the NEXT chunk — reread every iteration, so the autotuner
  /// (on the consumer side) retunes a live pass with at most queue_depth
  /// chunks of lag.
  const std::atomic<int>* chunk_lines = nullptr;
  RunMetrics* metrics = nullptr;
  /// Live chunk-buffer bytes, owned by the engine so it survives (and the
  /// peak gauge spans) both passes and any pass-boundary depth change.
  /// Atomic because during an autotuned pass BOTH sides move it: the
  /// reader grows it as buffers widen while the consumer shrinks it
  /// retiring/trimming buffers and reads it in the activation guard.
  std::atomic<std::uint64_t>* live_buffer_bytes = nullptr;
  /// Job attribution for the reader thread's spans — the reader runs
  /// outside the consumer's JobScope, so the id travels explicitly.
  std::int64_t trace_job = obs::kNoJob;
  std::atomic<bool> io_error{false};

  void run() {
    obs::SpanTracer::instance().set_thread_name("stream-reader");
    const int lines = reader->lines();
    int line0 = 0;
    while (line0 < lines) {
      const int want = std::max(
          1, std::min(chunk_lines->load(std::memory_order_relaxed),
                      lines - line0));
      const auto idx = free_q->pop();
      if (!idx) return;  // aborted by the consumer
      ChunkBuffer& buf = (*buffers)[static_cast<std::size_t>(*idx)];
      buf.line0 = line0;
      buf.rows = want;
      // Grow to EXACTLY the needed footprint: resize()'s geometric growth
      // would otherwise hand a widening (autotuned) chunk up to 2x its
      // nominal bytes and quietly break the memory clamp.
      const auto needed = static_cast<std::size_t>(
          reader->chunk_bytes(buf.rows) / sizeof(float));
      if (buf.data.capacity() < needed) buf.data.reserve(needed);
      const auto t0 = clock::now();
      bool ok;
      {
        RIF_TRACE_SPAN_JOB("chunk_read", trace_job);
        ok = reader->read_lines(line0, buf.rows, buf.data);
      }
      buf.read_seconds = seconds_since(t0);
      metrics->read_hist.observe(buf.read_seconds);
      if (!ok) {
        io_error.store(true);
        free_q->push(*idx);
        break;
      }
      metrics->bytes_read.add(reader->chunk_bytes(buf.rows));
      metrics->chunk_bytes.record(
          static_cast<double>(reader->chunk_bytes(buf.rows)));
      const auto cap_bytes =
          static_cast<std::uint64_t>(buf.data.capacity()) * sizeof(float);
      if (cap_bytes > buf.alloc_bytes) {
        const std::uint64_t live =
            live_buffer_bytes->fetch_add(cap_bytes - buf.alloc_bytes,
                                         std::memory_order_relaxed) +
            (cap_bytes - buf.alloc_bytes);
        buf.alloc_bytes = cap_bytes;
        metrics->peak_buffer_bytes.record(static_cast<double>(live));
      }
      line0 += want;
      if (!full_q->push(*idx)) return;  // aborted by the consumer
    }
    full_q->close();  // end-of-stream (or I/O error): drain and stop
  }
};

/// Join-on-destruction wrapper so an early return (I/O error, degenerate
/// scene CHECK) can never leave the reader thread running against queues
/// about to be destroyed.
class ReaderThread {
 public:
  explicit ReaderThread(ReaderPass& pass)
      : pass_(pass), thread_([&pass] { pass.run(); }) {}
  ~ReaderThread() { join(); }

  /// Unblock the reader if necessary and wait for it; the pass counters
  /// are stable (and safely readable) once this returns.
  void join() {
    if (!thread_.joinable()) return;
    pass_.free_q->close();  // releases a reader blocked on a free buffer
    pass_.full_q->close();
    thread_.join();
  }

 private:
  ReaderPass& pass_;
  std::thread thread_;
};

/// One full reader pass over the file: owns the queue pair, feeds every
/// chunk through `consume` (in ascending chunk order, on the calling
/// thread; returns its compute seconds for that chunk), joins the reader
/// and merges the pass's stall attribution into the run registry. Returns
/// false on a mid-pass I/O error. Shared by both pipeline passes so stall
/// attribution and the error path cannot diverge between them.
///
/// `active_depth` buffers of `buffers` circulate (the rest hold no
/// memory). When `tuner` is set, each consumed chunk's timing deltas feed
/// the controller and BOTH knobs apply live, consumer-side: the new
/// chunk_lines is published to the reader (effective from its next fill,
/// i.e. with at most queue_depth chunks of lag), and a queue-depth move
/// retires the just-consumed buffer (its memory is freed before the wider
/// chunk_lines is published, so a width-for-depth trade never transiently
/// exceeds the memory clamp) or activates an idle one.
bool run_reader_pass(hsi::ChunkedCubeReader& reader,
                     std::vector<ChunkBuffer>& buffers,
                     std::atomic<int>& chunk_lines, RunMetrics& metrics,
                     std::atomic<std::uint64_t>& live_buffer_bytes,
                     int& active_depth,
                     std::uint64_t memory_budget,
                     runtime::ChunkAutotuner* tuner, std::int64_t trace_job,
                     const std::function<double(const ChunkBuffer&)>& consume) {
  // The free queue can hold every buffer; the full queue's capacity is
  // what is left after the slot the reader is filling and the one the
  // compute stage is draining — with active_depth buffers circulating,
  // in-flight memory can never exceed active_depth chunks.
  BoundedQueue<int> free_q(buffers.size());
  BoundedQueue<int> full_q(buffers.size() - 2);
  free_q.bind_metrics(metrics.reg, "free_queue.");
  full_q.bind_metrics(metrics.reg, "full_queue.");
  std::vector<int> idle;  // allocated structs not currently circulating
  for (int i = 0; i < static_cast<int>(buffers.size()); ++i) {
    if (i < active_depth) {
      free_q.push(i);
    } else {
      // Not part of this pass (depth shrank since the buffer last ran):
      // release its memory and drop it from the live accounting.
      ChunkBuffer& buf = buffers[static_cast<std::size_t>(i)];
      live_buffer_bytes.fetch_sub(buf.alloc_bytes, std::memory_order_relaxed);
      buf.alloc_bytes = 0;
      buf.data = {};
      idle.push_back(i);
    }
  }

  ReaderPass pass;
  pass.reader = &reader;
  pass.buffers = &buffers;
  pass.free_q = &free_q;
  pass.full_q = &full_q;
  pass.chunk_lines = &chunk_lines;
  pass.metrics = &metrics;
  pass.live_buffer_bytes = &live_buffer_bytes;
  pass.trace_job = trace_job;
  ReaderThread reader_thread(pass);

  double reader_stall_seen = 0.0;
  double compute_stall_seen = 0.0;
  while (const auto idx = full_q.pop()) {
    ChunkBuffer& buf = buffers[static_cast<std::size_t>(*idx)];
    const double compute_seconds = consume(buf);
    if (tuner != nullptr) {
      // Timing deltas since the previous chunk; the stall accessors take
      // the queue mutex, which at one sample per chunk is noise.
      const double reader_stall =
          free_q.pop_stall_seconds() + full_q.push_stall_seconds();
      const double compute_stall = full_q.pop_stall_seconds();
      runtime::TuneObservation obs;
      obs.read_seconds = buf.read_seconds;
      obs.reader_stall_seconds = reader_stall - reader_stall_seen;
      obs.compute_stall_seconds = compute_stall - compute_stall_seen;
      obs.compute_seconds = compute_seconds;
      obs.lines = buf.rows;
      reader_stall_seen = reader_stall;
      compute_stall_seen = compute_stall;
      tuner->observe(obs);
      if (tuner->queue_depth() < active_depth) {
        // Retire the buffer we exclusively hold: free its memory FIRST,
        // then publish the (possibly wider) chunk_lines below.
        live_buffer_bytes.fetch_sub(buf.alloc_bytes,
                                    std::memory_order_relaxed);
        buf.alloc_bytes = 0;
        buf.data = {};
        idle.push_back(*idx);
        --active_depth;
        chunk_lines.store(tuner->chunk_lines(), std::memory_order_relaxed);
        continue;  // this index does not rejoin the free queue
      }
      // After a shrink decision, recycled buffers still carry their old
      // wider capacity. Trim the one we hold to the CURRENT nominal
      // chunk before it recirculates — otherwise the live accounting
      // stays pinned at the old width and a later depth increase would
      // stack new buffers on top of stale ones, past the memory clamp.
      const std::uint64_t nominal =
          reader.chunk_bytes(chunk_lines.load(std::memory_order_relaxed));
      if (buf.alloc_bytes > nominal) {
        live_buffer_bytes.fetch_sub(buf.alloc_bytes - nominal,
                                    std::memory_order_relaxed);
        std::vector<float>().swap(buf.data);
        buf.data.reserve(static_cast<std::size_t>(nominal / sizeof(float)));
        buf.alloc_bytes = nominal;
      }
      if (tuner->queue_depth() > active_depth && !idle.empty() &&
          (memory_budget == 0 ||
           live_buffer_bytes.load(std::memory_order_relaxed) + nominal <=
               memory_budget)) {
        // Activate read-ahead only when the ACTUAL live bytes (which may
        // still include not-yet-trimmed wide buffers) leave room for one
        // more nominal chunk — the tuner's check is against nominal
        // geometry, this one is against reality.
        free_q.push(idle.back());
        idle.pop_back();
        ++active_depth;
      }
      chunk_lines.store(tuner->chunk_lines(), std::memory_order_relaxed);
    }
    free_q.push(*idx);
  }
  reader_thread.join();
  metrics.compute_stall.record(full_q.pop_stall_seconds());
  metrics.reader_stall.record(free_q.pop_stall_seconds() +
                              full_q.push_stall_seconds());
  return !pass.io_error.load();
}

}  // namespace

std::optional<StreamingResult> fuse_streaming(const std::string& cube_path,
                                              core::ThreadPool& pool,
                                              const StreamingConfig& config) {
  RIF_CHECK(config.pct.output_components >= 3);
  // Shared bounds with submit-time validation: zero/negative and absurdly
  // huge geometry fails the same way everywhere — a logged error, not a
  // crash or a near-cube allocation.
  if (const char* error = runtime::validate_chunk_geometry(
          config.chunk_lines, config.queue_depth)) {
    RIF_LOG_WARN("stream", "rejecting stream of " << cube_path << ": "
                                                  << error);
    return std::nullopt;
  }
  auto reader = hsi::ChunkedCubeReader::open(cube_path);
  if (!reader) return std::nullopt;

  // Ambient job id of the submitting task (the service's JobScope),
  // captured once: per-chunk spans run on pool workers and the reader
  // thread, outside that scope, so the id travels explicitly.
  const std::int64_t trace_job = obs::current_job();

  const int W = reader->samples();
  const int H = reader->lines();
  const int B = reader->bands();
  const int tiles_per_chunk =
      config.tiles_per_chunk > 0 ? config.tiles_per_chunk : pool.size();

  runtime::MetricsRegistry reg;
  RunMetrics metrics{reg};
  std::atomic<std::uint64_t> live_buffer_bytes{0};

  // Autotuned runs start from AutotuneConfig::initial_chunk_lines (the
  // configured chunk_lines when 0); fixed runs keep the configured
  // geometry for the whole run (the atomic is then never written again).
  std::optional<runtime::ChunkAutotuner> tuner;
  if (config.autotune.has_value()) {
    const int start = config.autotune->initial_chunk_lines > 0
                          ? config.autotune->initial_chunk_lines
                          : config.chunk_lines;
    tuner.emplace(*config.autotune, std::min(start, H), config.queue_depth,
                  static_cast<std::uint64_t>(W) * B * sizeof(float));
  }
  std::atomic<int> chunk_lines{
      tuner ? tuner->chunk_lines() : std::min(config.chunk_lines, H)};
  // Autotuned runs allocate buffer STRUCTS up to the depth ceiling (memory
  // only materializes when a buffer circulates), so depth can move live;
  // fixed runs circulate exactly queue_depth.
  int active_depth = tuner ? tuner->queue_depth() : config.queue_depth;
  // Ceiling from the TUNER's clamped config, never the raw caller value:
  // an absurd AutotuneConfig::max_queue_depth must not size a real
  // allocation (the structs are cheap, a billion of them is not).
  const int max_depth =
      tuner ? std::max(tuner->max_queue_depth(), active_depth)
            : config.queue_depth;
  std::vector<ChunkBuffer> buffers(static_cast<std::size_t>(max_depth));

  StreamingResult result;

  // --- pass 1: screen + moment sums, folded in chunk order ------------------
  core::UniqueSet unique(B, config.pct.screening_threshold);
  std::optional<linalg::MomentAccumulator> total;
  std::vector<double> origin;  // first pixel of the cube (first chunk)
  std::uint64_t screen_comparisons = 0;
  {
    std::vector<core::UniqueSet> tile_sets;
    std::vector<linalg::MomentAccumulator> tile_moments;
    std::vector<std::uint8_t> dropped;
    bool first_tile = true;
    const auto screen_chunk = [&](const ChunkBuffer& buf) {
      // Manual begin/end rather than one RAII span: screening and the
      // in-order fold are distinct trace stages of the same chunk.
      obs::SpanTracer& tracer = obs::SpanTracer::instance();
      const bool traced = tracer.enabled();
      if (traced) tracer.begin("chunk_screen", trace_job);
      const auto t0 = clock::now();
      metrics.chunks.add(1);
      if (origin.empty()) {
        origin.assign(buf.data.begin(), buf.data.begin() + B);
      }
      // Sub-tile the chunk exactly as the in-memory engines tile the cube:
      // per-tile unique set + moment sums in one fused sweep (the same
      // 32-row flush cadence as fuse_parallel_fused), then fold tiles in
      // order into the global pair.
      const auto tiles =
          hsi::partition_rows({W, buf.rows, B}, tiles_per_chunk);
      const int tile_count = static_cast<int>(tiles.size());
      tile_sets.clear();
      tile_moments.clear();
      for (int i = 0; i < tile_count; ++i) {
        tile_sets.emplace_back(B, config.pct.screening_threshold);
        tile_moments.emplace_back(B, origin);
      }
      std::atomic<std::uint64_t> comparisons{0};
      pool.parallel_tasks(tile_count, [&](int i) {
        constexpr std::size_t kMomentBlock = 32;
        core::UniqueSet& set = tile_sets[static_cast<std::size_t>(i)];
        linalg::MomentAccumulator& mom =
            tile_moments[static_cast<std::size_t>(i)];
        std::uint64_t local = 0;
        std::size_t flushed = 0;
        const std::int64_t first = tiles[i].first_flat_index();
        const std::int64_t last = tiles[i].end_flat_index();
        for (std::int64_t p = first; p < last; ++p) {
          set.screen({buf.data.data() + p * B, static_cast<std::size_t>(B)},
                     &local);
          if (set.size() - flushed >= kMomentBlock) {
            mom.add_block(set.flat().data() + flushed * B,
                          static_cast<int>(set.size() - flushed));
            flushed = set.size();
          }
        }
        if (set.size() > flushed) {
          mom.add_block(set.flat().data() + flushed * B,
                        static_cast<int>(set.size() - flushed));
        }
        comparisons += local;
      });
      screen_comparisons += comparisons.load();
      const double screen_seconds = seconds_since(t0);
      metrics.screen_hist.observe(screen_seconds);
      if (traced) tracer.end("chunk_screen", trace_job);
      if (traced) tracer.begin("chunk_fold", trace_job);
      const auto t1 = clock::now();
      for (int i = 0; i < tile_count; ++i) {
        if (first_tile) {
          unique = std::move(tile_sets[static_cast<std::size_t>(i)]);
          total = std::move(tile_moments[static_cast<std::size_t>(i)]);
          first_tile = false;
          continue;
        }
        core::fold_unique_moments(unique, *total,
                                  tile_sets[static_cast<std::size_t>(i)],
                                  tile_moments[static_cast<std::size_t>(i)],
                                  pool, dropped, &result.merge_comparisons);
      }
      const double fold_seconds = seconds_since(t1);
      metrics.fold_hist.observe(fold_seconds);
      if (traced) tracer.end("chunk_fold", trace_job);
      return screen_seconds + fold_seconds;
    };
    RIF_TRACE_SPAN_JOB("stream_pass1", trace_job);
    if (!run_reader_pass(*reader, buffers, chunk_lines, metrics,
                         live_buffer_bytes, active_depth,
                         tuner ? config.autotune->memory_budget : 0,
                         tuner ? &*tuner : nullptr, trace_job,
                         screen_chunk)) {
      RIF_LOG_WARN("stream", "I/O error streaming " << cube_path);
      return std::nullopt;
    }
  }
  result.screen_comparisons = screen_comparisons;
  result.unique_set_size = unique.size();
  // A degenerate scene is a property of the INPUT, not a program bug: fail
  // the job (caller sees nullopt and reports it) instead of aborting a
  // service that may have other jobs in flight.
  if (unique.size() < 3) {
    RIF_LOG_WARN("stream", "degenerate scene in "
                               << cube_path << ": unique set has "
                               << unique.size() << " pixels (need >= 3)");
    return std::nullopt;
  }
  RIF_CHECK(total.has_value() && total->count() == unique.size());

  // --- barrier: statistics + eigen-solve -------------------------------------
  result.mean = total->mean();
  linalg::EigenResult eig;
  {
    RIF_TRACE_SPAN_JOB("stream_eigen", trace_job);
    const linalg::Matrix cov = total->covariance();
    eig = linalg::jacobi_eigen(cov, config.pct.jacobi);
  }
  result.eigenvalues = eig.values;
  result.eigenvectors = eig.vectors;
  result.jacobi_sweeps = eig.sweeps;

  // Pass 2 starts at the converged geometry and KEEPS tuning: the
  // per-pixel transform is indifferent to chunk boundaries, so geometry is
  // pure throughput there — and its read/compute balance differs from
  // screening's, so the controller is left in the loop. The boundary is
  // declared to the tuner so the first transform epoch is never judged
  // against a screening-phase rate (a cross-kernel comparison that could
  // veto a perfectly good move).
  if (tuner) {
    tuner->phase_boundary();
    chunk_lines.store(tuner->chunk_lines(), std::memory_order_relaxed);
    active_depth = tuner->queue_depth();
  }

  // --- pass 2: streamed blocked transform + colour map -----------------------
  const linalg::Matrix t =
      core::transform_matrix(eig.vectors, config.pct.output_components);
  const std::vector<double> bias = core::projection_bias(t, result.mean);
  const auto scales = core::scales_from_eigenvalues(eig.values);
  const int comps = t.rows();
  result.composite = hsi::RgbImage(W, H);
  std::vector<float> plane_chunk;  // one chunk of components, when sunk
  {
    const auto transform_chunk = [&](const ChunkBuffer& buf) {
      obs::ScopedSpan transform_span("chunk_transform", trace_job);
      const auto t0 = clock::now();
      const std::int64_t count = static_cast<std::int64_t>(buf.rows) * W;
      const std::int64_t first_flat =
          static_cast<std::int64_t>(buf.line0) * W;
      float* planes = nullptr;
      if (config.plane_sink) {
        plane_chunk.resize(static_cast<std::size_t>(count) * comps);
        planes = plane_chunk.data();
      }
      pool.parallel_for(count, [&](std::int64_t lo, std::int64_t hi) {
        core::transform_and_map_chunk(
            buf.data.data() + lo * B, hi - lo, t, bias, scales,
            planes != nullptr ? planes + lo * comps : nullptr,
            result.composite, first_flat + lo);
      });
      if (config.plane_sink) {
        config.plane_sink(first_flat, count, comps, planes);
      }
      const double transform_seconds = seconds_since(t0);
      metrics.transform_hist.observe(transform_seconds);
      return transform_seconds;
    };
    RIF_TRACE_SPAN_JOB("stream_pass2", trace_job);
    if (!run_reader_pass(*reader, buffers, chunk_lines, metrics,
                         live_buffer_bytes, active_depth,
                         tuner ? config.autotune->memory_budget : 0,
                         tuner ? &*tuner : nullptr, trace_job,
                         transform_chunk)) {
      RIF_LOG_WARN("stream", "I/O error streaming " << cube_path);
      return std::nullopt;
    }
  }

  if (tuner) result.autotune = tuner->report();
  result.stats = stats_view(reg);
  if (config.metrics != nullptr) {
    reg.merge_into(*config.metrics, config.metrics_prefix);
  }
  return result;
}

std::optional<StreamingResult> fuse_streaming(const std::string& cube_path,
                                              int threads,
                                              const StreamingConfig& config) {
  core::ThreadPool pool(threads);
  return fuse_streaming(cube_path, pool, config);
}

}  // namespace rif::stream
