// Blocking MPMC queue with capacity-based backpressure — the coupling
// element of the streaming fusion pipeline (reader stage -> compute stage).
//
// Semantics:
//   * push() blocks while the queue is at capacity. That IS the pipeline's
//     backpressure: a fast producer (disk read-ahead) is throttled to the
//     consumer's pace, so in-flight memory stays bounded at `capacity`
//     items no matter how large the input file is.
//   * pop() blocks while the queue is empty, and drains remaining items
//     after close() before reporting end-of-stream (nullopt).
//   * close() wakes every blocked producer and consumer: subsequent and
//     in-progress pushes return false (the item is NOT enqueued), pops
//     return queued items until empty, then nullopt. This doubles as the
//     poison-pill: the producer closes after its last item, or an aborting
//     consumer closes to release a producer stuck mid-push.
//
// Interaction with the help-while-waiting core::ThreadPool: a thread
// blocked in push()/pop() parks on a condition variable — it does NOT
// execute queued pool tasks while waiting. That is safe as long as the
// stage on the other end of the queue makes progress without needing the
// blocked thread's pool slot. The streaming engine guarantees this by
// giving the producer (file reader) a dedicated std::thread that never
// touches the pool: a pool-borrowed consumer can block on pop() at worst
// until the reader's next chunk lands, never forever. Do NOT run both ends
// of one BoundedQueue as tasks of the same pool — on a 1-thread pool the
// consumer task would wait for a producer task that can never be scheduled
// (regression-tested in tests/stream_test.cc).
//
// The time producers spend blocked on a full queue and consumers on an
// empty one is accumulated (push_stall_seconds / pop_stall_seconds); the
// streaming engine surfaces both per stage, which is how "are we I/O-bound
// or compute-bound?" is answered without a profiler.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <utility>

#include "runtime/metrics.h"
#include "support/check.h"

namespace rif::stream {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    RIF_CHECK(capacity >= 1);
  }
  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Wire the queue into a metrics registry. Creates, under `prefix`:
  ///   <prefix>push_stalls / <prefix>pop_stalls        counters — blocked
  ///                      entries into push()/pop()
  ///   <prefix>push_stall_seconds / <prefix>pop_stall_seconds
  ///                      gauges (sum) — the same stall time the
  ///                      *_stall_seconds() accessors report
  ///   <prefix>max_occupancy  gauge (max) — high-water of queued items
  /// Call before producers/consumers start; the registry must outlive the
  /// queue. Several queues may share a prefix: their series accumulate,
  /// which is exactly what a per-run registry wants from the two pipeline
  /// passes' queue pairs.
  void bind_metrics(runtime::MetricsRegistry& registry,
                    const std::string& prefix) {
    const std::lock_guard<std::mutex> lock(mutex_);
    push_stalls_metric_ = &registry.counter(prefix + "push_stalls");
    pop_stalls_metric_ = &registry.counter(prefix + "pop_stalls");
    push_stall_metric_ = &registry.gauge(prefix + "push_stall_seconds",
                                         runtime::GaugeKind::kSum);
    pop_stall_metric_ = &registry.gauge(prefix + "pop_stall_seconds",
                                        runtime::GaugeKind::kSum);
    occupancy_metric_ =
        &registry.gauge(prefix + "max_occupancy", runtime::GaugeKind::kMax);
  }

  /// Block until there is room (or the queue closes), then enqueue.
  /// Returns false — and drops `item` — iff the queue was closed.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (items_.size() >= capacity_ && !closed_) {
      const auto t0 = std::chrono::steady_clock::now();
      not_full_.wait(lock,
                     [this] { return items_.size() < capacity_ || closed_; });
      const double stalled = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - t0)
                                 .count();
      push_stall_ += stalled;
      if (push_stalls_metric_ != nullptr) push_stalls_metric_->add(1);
      if (push_stall_metric_ != nullptr) push_stall_metric_->record(stalled);
    }
    if (closed_) return false;
    items_.push_back(std::move(item));
    if (occupancy_metric_ != nullptr) {
      occupancy_metric_->record(static_cast<double>(items_.size()));
    }
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Block until an item is available (or the queue closes and drains),
  /// then dequeue it. nullopt means end-of-stream: closed and empty.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    if (items_.empty() && !closed_) {
      const auto t0 = std::chrono::steady_clock::now();
      not_empty_.wait(lock, [this] { return !items_.empty() || closed_; });
      const double stalled = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - t0)
                                 .count();
      pop_stall_ += stalled;
      if (pop_stalls_metric_ != nullptr) pop_stalls_metric_->add(1);
      if (pop_stall_metric_ != nullptr) pop_stall_metric_->record(stalled);
    }
    if (items_.empty()) return std::nullopt;  // closed and drained
    std::optional<T> out(std::move(items_.front()));
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return out;
  }

  /// End the stream: wake every waiter; pushes fail from here on, pops
  /// drain what is queued then return nullopt. Idempotent.
  void close() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }
  [[nodiscard]] bool closed() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  /// Cumulative seconds producers spent blocked on a full queue
  /// (backpressure applied) / consumers on an empty one (starvation).
  [[nodiscard]] double push_stall_seconds() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return push_stall_;
  }
  [[nodiscard]] double pop_stall_seconds() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return pop_stall_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
  double push_stall_ = 0.0;
  double pop_stall_ = 0.0;

  // Optional metrics series (bind_metrics); null = unwired.
  runtime::Counter* push_stalls_metric_ = nullptr;
  runtime::Counter* pop_stalls_metric_ = nullptr;
  runtime::Gauge* push_stall_metric_ = nullptr;
  runtime::Gauge* pop_stall_metric_ = nullptr;
  runtime::Gauge* occupancy_metric_ = nullptr;
};

}  // namespace rif::stream
