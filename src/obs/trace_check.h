// Minimal in-repo JSON parser + Chrome-trace schema validator.
//
// CI and tests must be able to say "this TRACE_*.json will load in
// Perfetto" without a Python toolchain or a JSON dependency: this is a
// ~strict recursive-descent parser for the JSON subset our writers emit
// (objects, arrays, strings with escapes, finite numbers, true/false/null)
// plus a validator for the trace-event schema of obs/chrome_trace.h:
//
//   * document is an object whose "traceEvents" is an array of objects
//   * every event has string "name"/"ph" and numeric "ts"/"pid"/"tid"
//   * ph is one of B E X i I C M
//   * B/E pairs match by name and nest STRICTLY per (pid, tid) track —
//     an E must close the innermost open B of its track, timestamps
//     non-decreasing within the pair
//   * no track has an open B left at end-of-trace
//   * C (counter) events carry a numeric args.value
//
// The validator also tallies per-name B-span counts, counter samples, and
// distinct pids so callers can assert coverage ("the trace contains
// read/screen/fold/transform spans across 3 process lanes") without
// re-parsing.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace rif::obs {

/// Parsed JSON value (tree-owning).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  /// Insertion-ordered key/value pairs (duplicate keys preserved).
  std::vector<std::pair<std::string, JsonValue>> object;

  /// First member named `key`; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(const std::string& key) const;
};

/// Parse a complete JSON document. Returns false (with a position-carrying
/// message in `error`) on any syntax violation or trailing garbage.
bool parse_json(const std::string& text, JsonValue& out, std::string& error);

struct TraceCheckResult {
  bool ok = false;
  std::string error;        ///< first violation, with context
  std::size_t events = 0;   ///< trace events seen (incl. metadata)
  std::size_t spans = 0;    ///< matched B/E pairs
  /// Completed B/E span count per name ("chunk_read" -> 42, ...).
  std::map<std::string, std::size_t> span_counts;
  /// Distinct (pid, tid) tracks that carried at least one event.
  std::size_t tracks = 0;
  /// Distinct pids that carried at least one non-metadata event. A unified
  /// remote trace asserts >= 1 coordinator + N worker lanes here.
  std::size_t pids = 0;
  /// Counter ("C") samples seen.
  std::size_t counters = 0;
};

/// Validate a Chrome-trace JSON document (see file header for the rules).
TraceCheckResult check_chrome_trace(const std::string& json_text);

/// Load `path` and validate. I/O failure reports ok=false with the reason.
TraceCheckResult check_chrome_trace_file(const std::string& path);

/// Pre-merge gate for a telemetry span batch: every (name, phase) event in
/// arrival order, where phase is one of X/i/C/B/E. Returns false (with the
/// first violation in `error`) if B/E events do not balance — an E with no
/// open B, an E crossing a different open name, or a B left open at batch
/// end. A batch that fails must be dropped whole, never merged.
bool check_span_batch(
    const std::vector<std::pair<std::string, char>>& events,
    std::string& error);

}  // namespace rif::obs
