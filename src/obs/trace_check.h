// Minimal in-repo JSON parser + Chrome-trace schema validator.
//
// CI and tests must be able to say "this TRACE_*.json will load in
// Perfetto" without a Python toolchain or a JSON dependency: this is a
// ~strict recursive-descent parser for the JSON subset our writers emit
// (objects, arrays, strings with escapes, finite numbers, true/false/null)
// plus a validator for the trace-event schema of obs/chrome_trace.h:
//
//   * document is an object whose "traceEvents" is an array of objects
//   * every event has string "name"/"ph" and numeric "ts"/"pid"/"tid"
//   * ph is one of B E X i I C M
//   * B/E pairs match by name and nest STRICTLY per (pid, tid) track —
//     an E must close the innermost open B of its track, timestamps
//     non-decreasing within the pair
//   * no track has an open B left at end-of-trace
//
// The validator also tallies per-name B-span counts so callers can assert
// coverage ("the trace contains read/screen/fold/transform spans") without
// re-parsing.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace rif::obs {

/// Parsed JSON value (tree-owning).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  /// Insertion-ordered key/value pairs (duplicate keys preserved).
  std::vector<std::pair<std::string, JsonValue>> object;

  /// First member named `key`; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(const std::string& key) const;
};

/// Parse a complete JSON document. Returns false (with a position-carrying
/// message in `error`) on any syntax violation or trailing garbage.
bool parse_json(const std::string& text, JsonValue& out, std::string& error);

struct TraceCheckResult {
  bool ok = false;
  std::string error;        ///< first violation, with context
  std::size_t events = 0;   ///< trace events seen (incl. metadata)
  std::size_t spans = 0;    ///< matched B/E pairs
  /// Completed B/E span count per name ("chunk_read" -> 42, ...).
  std::map<std::string, std::size_t> span_counts;
  /// Distinct (pid, tid) tracks that carried at least one event.
  std::size_t tracks = 0;
};

/// Validate a Chrome-trace JSON document (see file header for the rules).
TraceCheckResult check_chrome_trace(const std::string& json_text);

/// Load `path` and validate. I/O failure reports ok=false with the reason.
TraceCheckResult check_chrome_trace_file(const std::string& path);

}  // namespace rif::obs
