// Flamegraph folding — per-stage self-time / total-time tables from span
// traces.
//
// A Chrome trace answers "what happened when"; a flamegraph table answers
// "where did the time go" in three numbers per stage: how often it ran,
// how long it was on the stack (total), and how long it was on TOP of the
// stack (self — total minus time attributed to enclosed child spans).
// Folding works on any span source: a live SpanTracer snapshot, a list of
// (start, duration) intervals shipped from remote workers, or a
// TRACE_*.json file re-parsed offline — host and unified remote traces
// fold identically, so the report's table and the exported trace can be
// cross-checked against each other (bench_stream asserts they agree
// within 1%).
//
// Folding is per TRACK (one thread of one process): spans on the same
// track nest by interval containment, spans on different tracks never
// shadow each other. Overlapping-but-not-nested spans on one track (a
// malformed input) are treated as siblings — the earlier span keeps its
// self time; nothing double-counts.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/span_tracer.h"

namespace rif::obs {

/// One completed span interval, ready for folding. `track` must be unique
/// per (process, thread) lane — collisions would invent fake nesting.
struct FlameSpan {
  std::string name;
  double ts_us = 0.0;
  double dur_us = 0.0;
  std::uint64_t track = 0;
};

/// One stage's folded totals.
struct FlameRow {
  std::string name;
  std::uint64_t count = 0;  ///< completed spans folded into this row
  double total_us = 0.0;    ///< sum of span durations (on-stack time)
  double self_us = 0.0;     ///< total minus time inside child spans
};

/// Folded table, rows sorted by self time descending.
struct FlameTable {
  std::vector<FlameRow> rows;

  [[nodiscard]] const FlameRow* find(const std::string& name) const;
  /// {"rows":[{"name":...,"count":N,"total_us":...,"self_us":...},...]}
  [[nodiscard]] std::string to_json() const;
};

/// Fold completed span intervals into a table. Spans are grouped by track,
/// sorted by (ts, -dur) so a parent precedes the children it contains, and
/// swept with an interval stack: a span's self time is its duration minus
/// the durations of its direct children.
FlameTable fold_spans(std::vector<FlameSpan> spans);

/// Extract completed wall-timeline spans from a tracer snapshot: B/E pairs
/// matched per thread (innermost-first, like the trace schema requires).
/// Unmatched begins/ends are skipped — a snapshot taken mid-span must not
/// invent durations.
std::vector<FlameSpan> tracer_flame_spans(const SpanTracer& tracer);

/// fold_spans(tracer_flame_spans(tracer)) — the report-time path.
FlameTable fold_tracer(const SpanTracer& tracer);

/// Fold a Chrome-trace JSON document (B/E pairs and X events, per
/// pid:tid track). nullopt (with the reason in `error`) when the document
/// fails to parse or validate as a trace.
std::optional<FlameTable> fold_chrome_trace(const std::string& json_text,
                                            std::string& error);

/// fold_chrome_trace over a file's contents.
std::optional<FlameTable> fold_chrome_trace_file(const std::string& path,
                                                 std::string& error);

/// Write `table.to_json()` to `path`. False on I/O error.
bool write_flamegraph(const std::string& path, const FlameTable& table);

}  // namespace rif::obs
