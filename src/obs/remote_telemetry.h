// Remote telemetry ingest — one trace from N processes.
//
// Workers record spans and metrics into process-local buffers and ship
// them back as kTelemetry batches (scp::TelemetryBody) over the same
// socket the work travels on. This collector is the coordinator-side
// ingest point: it validates each batch (unbalanced span batches are
// rejected whole — satellite of the trace_check contract), dedupes
// re-shipments by per-session flush index, aligns worker steady-clock
// timestamps onto the coordinator's tracer axis using the ping-echo
// offset estimate, and serves three consumers:
//
//   * ChromeTraceWriter — fill_trace() adds one pid lane per worker
//     ("rif-worker-<node>") to the coordinator's own trace, producing a
//     single unified TRACE_remote.json that passes trace_check.
//   * MetricsRegistry — merge_metrics_into() advances prefixed
//     `remote.worker.<node>.*` series to the workers' latest cumulative
//     totals on every scrape (idempotent under re-shipment).
//   * obs::flamegraph — flame_spans() exports per-worker intervals so the
//     report's flamegraph folds host and remote stages together.
//
// Degradation contract: a malformed, duplicate, or unbalanced batch is
// counted and dropped — the merge never crashes and never garbles; lost
// telemetry reads as a missing lane in the trace, nothing more.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "cluster/node.h"
#include "obs/chrome_trace.h"
#include "obs/flamegraph.h"
#include "scp/wire.h"

namespace rif::runtime {
class MetricsRegistry;
}

namespace rif::obs {

/// Exported pid of worker `node` in a unified trace: distinct from
/// kWallPid/kVirtualPid, stable across runs (pid = base + node id).
inline constexpr int kRemoteWorkerPidBase = 100;

class RemoteTelemetryCollector {
 public:
  /// Ingest one decoded batch from `node`. Returns false when the batch is
  /// dropped (unbalanced spans, stale/duplicate flush index, span-buffer
  /// cap). Thread-safe; called from the pool's socket thread.
  bool on_batch(cluster::NodeId node, const scp::TelemetryBody& body);

  /// Record the ping-echo clock estimate for `node`:
  /// offset_ns = worker_steady_ns - coordinator_steady_ns, so a worker
  /// timestamp maps onto the coordinator clock as worker_ts - offset.
  void set_clock_offset(cluster::NodeId node, std::int64_t offset_ns);
  /// Last recorded offset; 0 when none was measured (same-machine default).
  [[nodiscard]] std::int64_t clock_offset_ns(cluster::NodeId node) const;

  /// Add every worker's lane to `writer`: pid kRemoteWorkerPidBase+node
  /// with process/thread metadata, spans as X events, instants and
  /// counters aligned to the coordinator tracer whose wall epoch (raw
  /// steady ns at construction) is `coordinator_epoch_ns`.
  void fill_trace(ChromeTraceWriter& writer,
                  std::uint64_t coordinator_epoch_ns) const;

  /// Per-worker completed span intervals on the coordinator timeline,
  /// ready for flamegraph folding (track = node<<32 | 1).
  [[nodiscard]] std::vector<FlameSpan> flame_spans(
      std::uint64_t coordinator_epoch_ns) const;

  /// Advance `remote.worker.<node>.*` series in `target` to each worker's
  /// latest shipped cumulative totals: counters catch up by delta, gauges
  /// overwrite, histograms install raw buckets. Additionally installs ONE
  /// cluster-wide distribution per shipped histogram series under
  /// `remote.cluster.<name>`: the raw log2 buckets of every lane's latest
  /// cumulative state summed across nodes (counts/sums add, min/max fold),
  /// so a dashboard reads one `remote.cluster.screen_seconds` instead of N
  /// per-node copies — the per-node series stay alongside. Idempotent —
  /// calling twice with the same shipped state is a no-op.
  void merge_metrics_into(runtime::MetricsRegistry& target) const;

  /// Receiver for shipped log records, invoked by on_batch for every log
  /// in an ACCEPTED batch (rejected/duplicate batches forward nothing, so
  /// re-shipment cannot double-log). Called with the collector lock held —
  /// the sink must be fast and must not call back in. The service routes
  /// these into its LogRing with node attribution.
  void set_log_sink(
      std::function<void(cluster::NodeId, const scp::TelemetryLog&)> sink);

  /// Nodes that have shipped at least one span attributed to `job`.
  [[nodiscard]] std::vector<cluster::NodeId> nodes_with_job(
      std::int64_t job) const;

  /// Nodes whose end-of-job flush for `job` has landed — the batch
  /// carrying the worker's scp::kJobSpanName whole-job span. A mid-job
  /// periodic flush puts a node in nodes_with_job() but NOT here; the
  /// service's telemetry barrier waits on this so the report never
  /// snapshots a lane that is still missing its final batch.
  [[nodiscard]] std::vector<cluster::NodeId> nodes_with_job_end(
      std::int64_t job) const;

  // Ingest health, for the report and tests.
  [[nodiscard]] std::uint64_t batches() const;
  [[nodiscard]] std::uint64_t rejected() const;
  [[nodiscard]] std::uint64_t duplicates() const;
  [[nodiscard]] std::uint64_t spans() const;
  /// Shipped log records forwarded to the log sink (or discarded when no
  /// sink is installed — they are not stored here).
  [[nodiscard]] std::uint64_t log_records() const;

 private:
  struct StoredSpan {
    std::string name;
    std::uint64_t ts_ns = 0;   ///< worker steady clock, absolute
    std::uint64_t dur_ns = 0;  ///< X only
    std::int64_t job = -1;
    double value = 0.0;  ///< C only
    char phase = 'i';    ///< X | i | C (B/E normalized to X at ingest)
  };
  struct WorkerLane {
    bool seen_flush = false;
    std::uint64_t last_flush_index = 0;
    std::int64_t clock_offset_ns = 0;
    std::vector<StoredSpan> spans;
    std::set<std::int64_t> jobs;       ///< jobs with >= 1 span
    std::set<std::int64_t> jobs_ended;  ///< jobs whose kJobSpanName landed
    // Latest cumulative metrics snapshot (monotone by flush index).
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::tuple<std::string, std::uint8_t, double>> gauges;
    std::vector<scp::TelemetryHistogram> histograms;
  };

  /// Per-worker stored-span cap — bounds coordinator memory against a
  /// chatty or hostile worker; excess batches are counted rejected.
  static constexpr std::size_t kMaxSpansPerWorker = 1 << 20;

  mutable std::mutex mutex_;
  std::map<cluster::NodeId, WorkerLane> lanes_;
  std::uint64_t batches_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint64_t spans_ = 0;
  std::uint64_t log_records_ = 0;
  std::function<void(cluster::NodeId, const scp::TelemetryLog&)> log_sink_;
};

/// Export one unified trace: the coordinator tracer's own wall/virtual
/// lanes plus every remote worker lane, clock-aligned. False on I/O error.
bool write_unified_trace(const std::string& path, const SpanTracer& tracer,
                         const RemoteTelemetryCollector& collector);

}  // namespace rif::obs
