// MetricsScraper — periodic time-series sampling of a MetricsRegistry.
//
// The registry alone answers "what is the total"; the scraper answers
// "when did it move". A background thread snapshots the registry every
// `period_seconds` into an in-memory ring of timestamped samples, each
// carrying both the raw values and the DELTAS against the previous scrape
// (computed at scrape time, so they stay correct even after the ring drops
// old samples). timeline_json() serializes the ring as the
// METRICS_timeline.json artifact CI uploads — a poor man's Prometheus
// scrape log, loadable by any JSON tool.
//
// A derive hook runs at the start of every scrape ON THE SCRAPER THREAD:
// the service uses it to publish gauges computed from other series (the
// admission-pressure signal = queued memory demand vs free budget). The
// hook must only touch the registry's atomic series — it runs concurrently
// with every writer.
//
// scrape_now() takes a sample synchronously from any thread (start/stop
// do one automatically), so phase boundaries are always represented even
// when a phase outruns the period; tests drive the scraper entirely
// through it for determinism.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "runtime/metrics.h"

namespace rif::obs {

/// One scrape: wall time since scraper construction, raw snapshot, and
/// per-series deltas vs the previous scrape (counter increments, gauge
/// movement, histogram count/sum increments). First scrape's deltas equal
/// its raw values (previous = empty registry).
struct MetricsSample {
  double t_seconds = 0.0;
  runtime::RegistrySnapshot values;
  std::map<std::string, std::uint64_t> counter_deltas;
  std::map<std::string, double> gauge_deltas;
  std::map<std::string, std::uint64_t> histogram_count_deltas;
  std::map<std::string, double> histogram_sum_deltas;
};

/// One sample as a single-line JSON object — the element shape of
/// timeline_json()'s "samples" array, and the line format of the NDJSON
/// live stream (ServiceConfig::metrics_stream_path).
std::string metrics_sample_json(const MetricsSample& sample);

class MetricsScraper {
 public:
  struct Config {
    double period_seconds = 0.05;
    /// Ring bound: oldest samples drop past it (deltas stay valid — they
    /// were computed against the immediately preceding scrape).
    std::size_t max_samples = 4096;
  };

  /// Does not start scraping; call start(). The registry must outlive the
  /// scraper.
  explicit MetricsScraper(runtime::MetricsRegistry& registry)
      : MetricsScraper(registry, Config{}) {}
  MetricsScraper(runtime::MetricsRegistry& registry, Config config);
  ~MetricsScraper();
  MetricsScraper(const MetricsScraper&) = delete;
  MetricsScraper& operator=(const MetricsScraper&) = delete;

  /// Hook run at the start of every scrape (scraper thread!) to publish
  /// derived gauges. Set before start().
  void set_derive(std::function<void(runtime::MetricsRegistry&)> derive) {
    derive_ = std::move(derive);
  }

  /// Incremental sink: invoked after EVERY scrape (periodic or
  /// scrape_now), on the scraping thread, under the sample lock, with the
  /// sample rendered by metrics_sample_json(). Appending each call to a
  /// file yields a live NDJSON timeline while the run is still going; the
  /// ops plane fans the same line out to subscribe-metrics sessions.
  /// Installable (or replaceable) at any time, including while the
  /// periodic thread runs — the swap is ordered against scrapes by the
  /// sample lock. The sink must not call back into the scraper.
  void set_on_scrape(std::function<void(const std::string&)> sink) {
    const std::lock_guard<std::mutex> lock(mutex_);
    on_scrape_ = std::move(sink);
  }

  /// Launch the background thread; the first scrape is immediate.
  void start();

  /// Take one final scrape and stop the thread. Idempotent; the destructor
  /// calls it.
  void stop();

  /// Synchronous scrape from any thread (ordered with periodic scrapes by
  /// the sample mutex).
  void scrape_now();

  [[nodiscard]] std::vector<MetricsSample> samples() const;
  [[nodiscard]] std::size_t sample_count() const;

  /// {"period_seconds":..., "samples":[{"t":..., "counters":{name:
  /// {"v":total,"d":delta}}, "gauges":{name:{"v":..,"d":..}},
  /// "histograms":{name:{"count":..,"d_count":..,"sum":..,"d_sum":..,
  /// "mean":..,"p50":..,"p95":..,"p99":..}}}, ...]}
  [[nodiscard]] std::string timeline_json() const;

  /// timeline_json() to a file; false on I/O error.
  bool write_timeline(const std::string& path) const;

 private:
  void scrape_locked();
  void loop();

  runtime::MetricsRegistry& registry_;
  Config config_;
  std::function<void(runtime::MetricsRegistry&)> derive_;
  std::function<void(const std::string&)> on_scrape_;
  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mutex_;  ///< guards ring_, prev_, running_, on_scrape_
  std::condition_variable cv_;
  std::deque<MetricsSample> ring_;
  runtime::RegistrySnapshot prev_;
  bool running_ = false;
  std::thread thread_;
};

}  // namespace rif::obs
