// OpsServer — the live ops plane: a read-only network introspection
// endpoint for a running FusionService.
//
// Everything the service knows about itself used to be reachable only
// post-hoc through files (METRICS_timeline.json, the NDJSON stream path,
// FLAME_*.json). The ops endpoint answers "what are you doing right now?"
// over a real socket while jobs execute: it binds its own TCP or Unix
// listener on a dedicated net::SocketServer poll loop and speaks the same
// RIF1 length-prefixed frame codec as the worker plane — but the payloads
// are plain text, not WireEnvelopes, so the ops vocabulary stays
// independent of the actor protocol and a one-line CLI (tools/rif_ops) or
// ten lines of Python can drive it.
//
// Request vocabulary (one UTF-8 command per frame):
//
//   status             -> one JSON frame: uptime, job counts (queued /
//                         running / completed / ...), leased workers with
//                         liveness + clock offsets, ops-plane health.
//   metrics            -> one JSON frame: the full registry snapshot
//                         (runtime::MetricsRegistry::to_json schema),
//                         including the remote.worker.<node>.* and merged
//                         remote.cluster.* series.
//   subscribe-metrics  -> one ack frame {"subscribed":true}, then one
//                         NDJSON frame per MetricsScraper scrape
//                         (obs::metrics_sample_json schema) pushed until
//                         the client disconnects. Multiple concurrent
//                         subscribers are independent; a subscriber that
//                         stops reading gets frames DROPPED (counted) —
//                         the scraper is never backpressured.
//   flamegraph         -> one JSON frame: the current span fold
//                         (obs::FlameTable::to_json schema), computed on
//                         demand.
//   logs [N]           -> one frame of NDJSON lines: the newest N records
//                         (default OpsServerConfig::default_log_tail) of
//                         the service's structured log ring, oldest first.
//                         Worker-shipped records carry their node id.
//
// Trust boundary: the listener is read-only and session-isolated. An
// unknown, oversized, or non-text request closes THAT session (counted as
// a bad request); a corrupt RIF1 frame poisons only its own session's
// assembler (net/frame.h) and the SocketServer closes it — either way the
// service and every other subscriber keep running, asserted under seeded
// wire faults in tests/ops_test.cc.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "net/socket_transport.h"
#include "support/log.h"

namespace rif::obs {

struct OpsServerConfig {
  /// TCP port to bind on 127.0.0.1 (0 = ephemeral, see port()) — used
  /// unless `unix_path` is set.
  std::uint16_t port = 0;
  std::string unix_path;
  /// Requests longer than this are hostile by construction (the longest
  /// legal command is a short word plus a count) and close the session.
  std::size_t max_request_bytes = 256;
  /// Unsent-byte backlog above which a subscriber's next pushed sample is
  /// dropped instead of queued (see SocketServer::send_limited).
  std::size_t max_subscriber_backlog_bytes = 1 << 20;
  /// `logs` with no count returns this many records.
  std::size_t default_log_tail = 100;
};

/// One shipped-or-local log record as a single-line JSON object — the line
/// shape of the `logs` response.
std::string log_record_json(const LogRecord& record);

class OpsServer {
 public:
  /// Data sources, supplied by the service. The JSON providers run ON THE
  /// OPS POLL THREAD concurrently with the service's own threads, so they
  /// must only touch thread-safe state (atomic registry series, the
  /// pool's locked accessors, the collector). Null providers answer with
  /// an {"error": ...} object instead of closing the session.
  struct Providers {
    std::function<std::string()> status_json;
    std::function<std::string()> metrics_json;
    std::function<std::string()> flamegraph_json;
    /// Tail source for `logs`; may be null (answers with an error object).
    LogRing* log_ring = nullptr;
  };

  OpsServer(OpsServerConfig config, Providers providers);
  ~OpsServer();
  OpsServer(const OpsServer&) = delete;
  OpsServer& operator=(const OpsServer&) = delete;

  /// Bind (unix_path if set, else TCP) and start the poll loop. False on
  /// bind failure.
  [[nodiscard]] bool start();
  void stop();
  [[nodiscard]] std::uint16_t port() const { return server_.port(); }

  /// Fan one scraped NDJSON sample out to every subscribe-metrics session.
  /// Called from the scraper thread on every scrape; never blocks on a
  /// slow subscriber — a session whose backlog exceeds the configured cap
  /// just loses this frame (counted in frames_dropped()).
  void publish_metrics_sample(const std::string& line);

  // Ops-plane health, for the report and tests.
  [[nodiscard]] std::uint64_t requests() const { return requests_.load(); }
  [[nodiscard]] std::uint64_t bad_requests() const {
    return bad_requests_.load();
  }
  [[nodiscard]] std::uint64_t frames_dropped() const {
    return frames_dropped_.load();
  }
  [[nodiscard]] std::size_t subscribers() const;

 private:
  void on_frame(net::SessionId session, std::vector<std::uint8_t> frame);
  void on_closed(net::SessionId session);
  void reply(net::SessionId session, const std::string& text);
  /// Count a hostile request and close its session (session-only).
  void reject(net::SessionId session);

  OpsServerConfig config_;
  Providers providers_;
  net::SocketServer server_;
  bool started_ = false;

  mutable std::mutex mu_;
  std::set<net::SessionId> subscribers_;

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> bad_requests_{0};
  std::atomic<std::uint64_t> frames_dropped_{0};
};

}  // namespace rif::obs
