#include "obs/trace_check.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace rif::obs {

namespace {

/// Recursive-descent parser over the full input. Positions are byte
/// offsets, good enough to locate a violation in a generated file.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  bool parse(JsonValue& out, std::string& error) {
    skip_ws();
    if (!parse_value(out)) {
      error = error_;
      return false;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      error = fail("trailing characters after document");
      return false;
    }
    return true;
  }

 private:
  std::string fail(const std::string& what) {
    if (error_.empty()) {
      error_ = what + " at offset " + std::to_string(pos_);
    }
    return error_;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool literal(const char* word, std::size_t len) {
    if (text_.compare(pos_, len, word) != 0) {
      fail("invalid literal");
      return false;
    }
    pos_ += len;
    return true;
  }

  bool parse_value(JsonValue& out) {
    // Parser depth is bounded to keep adversarial inputs from exhausting
    // the stack; our generated traces nest 3-4 levels.
    if (depth_ > 64) {
      fail("nesting too deep");
      return false;
    }
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return false;
    }
    const char c = text_[pos_];
    switch (c) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"':
        out.kind = JsonValue::Kind::kString;
        return parse_string(out.string);
      case 't':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = true;
        return literal("true", 4);
      case 'f':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = false;
        return literal("false", 5);
      case 'n':
        out.kind = JsonValue::Kind::kNull;
        return literal("null", 4);
      default: return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out) {
    out.kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    ++depth_;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      --depth_;
      return true;
    }
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        fail("expected object key");
        return false;
      }
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        fail("expected ':'");
        return false;
      }
      ++pos_;
      skip_ws();
      JsonValue value;
      if (!parse_value(value)) return false;
      out.object.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) {
        fail("unterminated object");
        return false;
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        --depth_;
        return true;
      }
      fail("expected ',' or '}'");
      return false;
    }
  }

  bool parse_array(JsonValue& out) {
    out.kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    ++depth_;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      --depth_;
      return true;
    }
    while (true) {
      skip_ws();
      JsonValue value;
      if (!parse_value(value)) return false;
      out.array.push_back(std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) {
        fail("unterminated array");
        return false;
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        --depth_;
        return true;
      }
      fail("expected ',' or ']'");
      return false;
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // '"'
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
        return false;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 >= text_.size()) {
              fail("truncated \\u escape");
              return false;
            }
            unsigned code = 0;
            for (int i = 1; i <= 4; ++i) {
              const char h = text_[pos_ + static_cast<std::size_t>(i)];
              if (!std::isxdigit(static_cast<unsigned char>(h))) {
                fail("invalid \\u escape");
                return false;
              }
              code = code * 16 +
                     static_cast<unsigned>(
                         std::isdigit(static_cast<unsigned char>(h))
                             ? h - '0'
                             : std::tolower(h) - 'a' + 10);
            }
            pos_ += 4;
            // Generated traces only escape control characters; transcode
            // the BMP code point as UTF-8 without surrogate handling.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            fail("invalid escape");
            return false;
        }
        ++pos_;
        continue;
      }
      out += c;
      ++pos_;
    }
    fail("unterminated string");
    return false;
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      fail("invalid value");
      return false;
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    out.number = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      pos_ = start;
      fail("malformed number");
      return false;
    }
    out.kind = JsonValue::Kind::kNumber;
    return true;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  std::string error_;
};

const JsonValue* require(const JsonValue& event, const std::string& key,
                         JsonValue::Kind kind) {
  const JsonValue* v = event.find(key);
  return (v != nullptr && v->kind == kind) ? v : nullptr;
}

}  // namespace

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool parse_json(const std::string& text, JsonValue& out, std::string& error) {
  Parser parser(text);
  return parser.parse(out, error);
}

TraceCheckResult check_chrome_trace(const std::string& json_text) {
  TraceCheckResult result;
  JsonValue doc;
  if (!parse_json(json_text, doc, result.error)) {
    result.error = "invalid JSON: " + result.error;
    return result;
  }
  const JsonValue* events = doc.find("traceEvents");
  if (events == nullptr || events->kind != JsonValue::Kind::kArray) {
    result.error = "document has no traceEvents array";
    return result;
  }

  struct OpenSpan {
    std::string name;
    double ts = 0.0;
  };
  // Track key: pid * 2^32 + tid would collide for negative tids; use a
  // string key — validation is offline, clarity wins.
  std::map<std::string, std::vector<OpenSpan>> stacks;
  std::map<std::string, bool> seen_tracks;
  std::map<long long, bool> seen_pids;

  for (std::size_t i = 0; i < events->array.size(); ++i) {
    const JsonValue& e = events->array[i];
    const auto at = [&] { return " (event " + std::to_string(i) + ")"; };
    if (e.kind != JsonValue::Kind::kObject) {
      result.error = "trace event is not an object" + at();
      return result;
    }
    const JsonValue* name = require(e, "name", JsonValue::Kind::kString);
    const JsonValue* ph = require(e, "ph", JsonValue::Kind::kString);
    const JsonValue* ts = require(e, "ts", JsonValue::Kind::kNumber);
    const JsonValue* pid = require(e, "pid", JsonValue::Kind::kNumber);
    const JsonValue* tid = require(e, "tid", JsonValue::Kind::kNumber);
    if (name == nullptr || ph == nullptr || pid == nullptr ||
        tid == nullptr || (ts == nullptr && ph->string != "M")) {
      result.error = "event missing name/ph/ts/pid/tid" + at();
      return result;
    }
    ++result.events;
    if (ph->string.size() != 1 ||
        std::string("BEXiICM").find(ph->string[0]) == std::string::npos) {
      result.error = "unknown ph '" + ph->string + "'" + at();
      return result;
    }
    const char kind = ph->string[0];
    const std::string track = std::to_string(static_cast<long long>(
                                  pid->number)) +
                              ":" +
                              std::to_string(
                                  static_cast<long long>(tid->number));
    if (kind != 'M') {
      seen_tracks[track] = true;
      seen_pids[static_cast<long long>(pid->number)] = true;
    }
    if (kind == 'B') {
      stacks[track].push_back({name->string, ts->number});
    } else if (kind == 'E') {
      auto& stack = stacks[track];
      if (stack.empty()) {
        result.error =
            "E '" + name->string + "' with no open span on " + track + at();
        return result;
      }
      if (stack.back().name != name->string) {
        result.error = "E '" + name->string + "' crosses open '" +
                       stack.back().name + "' on " + track + at();
        return result;
      }
      if (ts->number + 1e-9 < stack.back().ts) {
        result.error = "E '" + name->string + "' ends before its B" + at();
        return result;
      }
      stack.pop_back();
      ++result.spans;
      ++result.span_counts[name->string];
    } else if (kind == 'X') {
      const JsonValue* dur = require(e, "dur", JsonValue::Kind::kNumber);
      if (dur == nullptr || dur->number < 0.0) {
        result.error = "X event without non-negative dur" + at();
        return result;
      }
      ++result.spans;
      ++result.span_counts[name->string];
    } else if (kind == 'C') {
      // Counter samples must carry a numeric value arg, or Perfetto draws
      // an empty lane and downstream folds divide by nothing.
      const JsonValue* args = require(e, "args", JsonValue::Kind::kObject);
      const JsonValue* value =
          args == nullptr ? nullptr
                          : require(*args, "value", JsonValue::Kind::kNumber);
      if (value == nullptr) {
        result.error = "C event without numeric args.value" + at();
        return result;
      }
      ++result.counters;
    }
  }
  for (const auto& [track, stack] : stacks) {
    if (!stack.empty()) {
      result.error = "span '" + stack.back().name + "' never closed on " +
                     track;
      return result;
    }
  }
  result.tracks = seen_tracks.size();
  result.pids = seen_pids.size();
  result.ok = true;
  return result;
}

bool check_span_batch(
    const std::vector<std::pair<std::string, char>>& events,
    std::string& error) {
  std::vector<const std::string*> stack;
  for (const auto& [name, phase] : events) {
    switch (phase) {
      case 'X':
      case 'i':
      case 'C':
        break;
      case 'B':
        stack.push_back(&name);
        break;
      case 'E':
        if (stack.empty()) {
          error = "E '" + name + "' with no open span in batch";
          return false;
        }
        if (*stack.back() != name) {
          error = "E '" + name + "' crosses open '" + *stack.back() + "'";
          return false;
        }
        stack.pop_back();
        break;
      default:
        error = std::string("unknown phase '") + phase + "' in batch";
        return false;
    }
  }
  if (!stack.empty()) {
    error = "span '" + *stack.back() + "' left open at batch end";
    return false;
  }
  return true;
}

TraceCheckResult check_chrome_trace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    TraceCheckResult result;
    result.error = "cannot open " + path;
    return result;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return check_chrome_trace(buf.str());
}

}  // namespace rif::obs
