#include "obs/flamegraph.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string_view>

#include "obs/chrome_trace.h"
#include "obs/trace_check.h"

namespace rif::obs {

namespace {

// Tolerance when comparing span boundaries, in microseconds. Timestamps
// come from ns counters divided by 1000, so anything below 1 ns is noise.
constexpr double kEpsUs = 1e-6;

struct OpenSpan {
  double end_us = 0.0;
  double child_us = 0.0;  ///< time attributed to enclosed spans
  const FlameSpan* span = nullptr;
};

void close_top(std::vector<OpenSpan>& stack,
               std::map<std::string, FlameRow>& acc) {
  const OpenSpan top = stack.back();
  stack.pop_back();
  FlameRow& row = acc[top.span->name];
  if (row.name.empty()) row.name = top.span->name;
  row.count += 1;
  row.total_us += top.span->dur_us;
  row.self_us += std::max(0.0, top.span->dur_us - top.child_us);
  if (!stack.empty()) stack.back().child_us += top.span->dur_us;
}

}  // namespace

const FlameRow* FlameTable::find(const std::string& name) const {
  for (const FlameRow& row : rows) {
    if (row.name == name) return &row;
  }
  return nullptr;
}

std::string FlameTable::to_json() const {
  std::ostringstream out;
  out << "{\"rows\": [";
  bool first = true;
  char buf[64];
  for (const FlameRow& row : rows) {
    if (!first) out << ", ";
    first = false;
    out << "{\"name\": \"" << json_escape(row.name) << "\", \"count\": "
        << row.count;
    std::snprintf(buf, sizeof(buf), "%.3f", row.total_us);
    out << ", \"total_us\": " << buf;
    std::snprintf(buf, sizeof(buf), "%.3f", row.self_us);
    out << ", \"self_us\": " << buf << "}";
  }
  out << "]}";
  return out.str();
}

FlameTable fold_spans(std::vector<FlameSpan> spans) {
  // Parent-before-child order within a track: earlier start first; at
  // equal starts the LONGER span is the parent and must be pushed first.
  std::sort(spans.begin(), spans.end(),
            [](const FlameSpan& a, const FlameSpan& b) {
              if (a.track != b.track) return a.track < b.track;
              if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
              return a.dur_us > b.dur_us;
            });

  std::map<std::string, FlameRow> acc;
  std::vector<OpenSpan> stack;
  std::uint64_t track = 0;
  bool have_track = false;
  for (const FlameSpan& s : spans) {
    if (!have_track || s.track != track) {
      while (!stack.empty()) close_top(stack, acc);
      track = s.track;
      have_track = true;
    }
    // A span stays on the stack only while it can contain s (ends at or
    // after s's end). This closes both finished spans and — for malformed
    // input — spans that overlap s without containing it, which are then
    // siblings; either way every microsecond is attributed exactly once.
    while (!stack.empty() &&
           stack.back().end_us < s.ts_us + s.dur_us - kEpsUs) {
      close_top(stack, acc);
    }
    stack.push_back({s.ts_us + s.dur_us, 0.0, &s});
  }
  while (!stack.empty()) close_top(stack, acc);

  FlameTable table;
  table.rows.reserve(acc.size());
  for (auto& [name, row] : acc) table.rows.push_back(std::move(row));
  std::sort(table.rows.begin(), table.rows.end(),
            [](const FlameRow& a, const FlameRow& b) {
              if (a.self_us != b.self_us) return a.self_us > b.self_us;
              return a.name < b.name;
            });
  return table;
}

std::vector<FlameSpan> tracer_flame_spans(const SpanTracer& tracer) {
  struct PendingBegin {
    const char* name = nullptr;
    std::uint64_t ts_ns = 0;
  };
  std::map<std::int32_t, std::vector<PendingBegin>> stacks;
  std::vector<FlameSpan> out;
  for (const SpanEvent& e : tracer.collect()) {
    if (e.timeline != Timeline::kWall) continue;
    if (e.phase == Phase::kBegin) {
      stacks[e.tid].push_back({e.name, e.ts_ns});
    } else if (e.phase == Phase::kEnd) {
      auto& stack = stacks[e.tid];
      // Only a well-matched innermost end closes a span; a stray end
      // (begin predates the snapshot window) is skipped, never guessed.
      if (stack.empty() ||
          std::string_view(stack.back().name) != std::string_view(e.name)) {
        continue;
      }
      FlameSpan s;
      s.name = e.name;
      s.ts_us = static_cast<double>(stack.back().ts_ns) / 1000.0;
      s.dur_us =
          static_cast<double>(e.ts_ns - stack.back().ts_ns) / 1000.0;
      s.track = static_cast<std::uint64_t>(
          static_cast<std::uint32_t>(e.tid));
      stack.pop_back();
      out.push_back(std::move(s));
    }
  }
  return out;
}

FlameTable fold_tracer(const SpanTracer& tracer) {
  return fold_spans(tracer_flame_spans(tracer));
}

std::optional<FlameTable> fold_chrome_trace(const std::string& json_text,
                                            std::string& error) {
  JsonValue doc;
  if (!parse_json(json_text, doc, error)) return std::nullopt;
  const JsonValue* events = doc.find("traceEvents");
  if (events == nullptr || events->kind != JsonValue::Kind::kArray) {
    error = "document has no traceEvents array";
    return std::nullopt;
  }

  struct PendingBegin {
    std::string name;
    double ts_us = 0.0;
  };
  std::map<std::string, std::uint64_t> track_ids;
  std::map<std::string, std::vector<PendingBegin>> stacks;
  std::vector<FlameSpan> spans;
  for (const JsonValue& e : events->array) {
    const JsonValue* name = e.find("name");
    const JsonValue* ph = e.find("ph");
    const JsonValue* ts = e.find("ts");
    const JsonValue* pid = e.find("pid");
    const JsonValue* tid = e.find("tid");
    if (name == nullptr || name->kind != JsonValue::Kind::kString ||
        ph == nullptr || ph->kind != JsonValue::Kind::kString ||
        ph->string.size() != 1 || ts == nullptr ||
        ts->kind != JsonValue::Kind::kNumber || pid == nullptr ||
        pid->kind != JsonValue::Kind::kNumber || tid == nullptr ||
        tid->kind != JsonValue::Kind::kNumber) {
      continue;  // metadata / counters / malformed — not foldable spans
    }
    const std::string track =
        std::to_string(static_cast<long long>(pid->number)) + ":" +
        std::to_string(static_cast<long long>(tid->number));
    const auto track_id = [&] {
      auto [it, _] = track_ids.try_emplace(
          track, static_cast<std::uint64_t>(track_ids.size()));
      return it->second;
    };
    const char kind = ph->string[0];
    if (kind == 'B') {
      stacks[track].push_back({name->string, ts->number});
    } else if (kind == 'E') {
      auto& stack = stacks[track];
      if (stack.empty() || stack.back().name != name->string) continue;
      spans.push_back({name->string, stack.back().ts_us,
                       ts->number - stack.back().ts_us, track_id()});
      stack.pop_back();
    } else if (kind == 'X') {
      const JsonValue* dur = e.find("dur");
      if (dur == nullptr || dur->kind != JsonValue::Kind::kNumber) continue;
      spans.push_back({name->string, ts->number, dur->number, track_id()});
    }
  }
  return fold_spans(std::move(spans));
}

std::optional<FlameTable> fold_chrome_trace_file(const std::string& path,
                                                 std::string& error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    error = "cannot open " + path;
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return fold_chrome_trace(buf.str(), error);
}

bool write_flamegraph(const std::string& path, const FlameTable& table) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << table.to_json() << "\n";
  return static_cast<bool>(out);
}

}  // namespace rif::obs
