#include "obs/span_tracer.h"

#include <chrono>

#include "support/log.h"

namespace rif::obs {

namespace {

thread_local std::int64_t t_current_job = kNoJob;

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::int64_t resolve(std::int64_t job) {
  return job == kCurrentJob ? t_current_job : job;
}

}  // namespace

std::int64_t current_job() { return t_current_job; }

JobScope::JobScope(std::int64_t job) : prev_(t_current_job) {
  t_current_job = job;
  log_set_job_context(job);
}

JobScope::~JobScope() {
  t_current_job = prev_;
  log_set_job_context(prev_);
}

SpanTracer::SpanTracer() : epoch_ns_(steady_ns()) {}

SpanTracer& SpanTracer::instance() {
  // Heap-allocated and never freed: pool worker threads may still emit
  // (cheaply, disabled) while statics are being torn down.
  static SpanTracer* tracer = new SpanTracer();
  return *tracer;
}

std::uint64_t SpanTracer::now_ns() const { return steady_ns() - epoch_ns_; }

SpanTracer::ThreadBuffer& SpanTracer::local_buffer() {
  // The raw pointer stays valid for the process lifetime: buffers_ owns the
  // ThreadBuffer and the tracer is never destroyed.
  thread_local ThreadBuffer* buffer = nullptr;
  if (buffer == nullptr) {
    const std::lock_guard<std::mutex> lock(registry_mutex_);
    auto owned = std::make_unique<ThreadBuffer>();
    owned->tid = static_cast<std::int32_t>(buffers_.size()) + 1;
    buffer = owned.get();
    buffers_.push_back(std::move(owned));
  }
  return *buffer;
}

void SpanTracer::emit(SpanEvent e) {
  // End events pass even while disabled: every closer (ScopedSpan, the
  // service's virtual-span flags) only ends spans it actually began, so
  // letting the E through keeps the trace balanced when tracing is flipped
  // off mid-span. Begins/instants/counters stop at the flip.
  if (e.phase != Phase::kEnd && !enabled()) return;
  ThreadBuffer& buf = local_buffer();
  if (e.timeline == Timeline::kWall) e.tid = buf.tid;
  EventBlock* blk = buf.current;
  std::size_t n = blk == nullptr ? kBlockEvents
                                 : blk->count.load(std::memory_order_relaxed);
  if (n == kBlockEvents) {
    const std::lock_guard<std::mutex> lock(buf.mutex);
    if (buf.blocks.size() >= max_blocks_.load(std::memory_order_relaxed)) {
      buf.dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    buf.blocks.push_back(std::make_unique<EventBlock>());
    buf.current = buf.blocks.back().get();
    blk = buf.current;
    n = 0;
  }
  blk->events[n] = e;
  blk->count.store(n + 1, std::memory_order_release);
}

void SpanTracer::begin(const char* name, std::int64_t job) {
  SpanEvent e;
  e.name = name;
  e.ts_ns = now_ns();
  e.job = resolve(job);
  e.phase = Phase::kBegin;
  emit(e);
}

void SpanTracer::end(const char* name, std::int64_t job) {
  SpanEvent e;
  e.name = name;
  e.ts_ns = now_ns();
  e.job = resolve(job);
  e.phase = Phase::kEnd;
  emit(e);
}

void SpanTracer::instant(const char* name, std::int64_t job) {
  SpanEvent e;
  e.name = name;
  e.ts_ns = now_ns();
  e.job = resolve(job);
  e.phase = Phase::kInstant;
  emit(e);
}

void SpanTracer::counter(const char* name, double value, std::int64_t job) {
  SpanEvent e;
  e.name = name;
  e.ts_ns = now_ns();
  e.job = resolve(job);
  e.value = value;
  e.phase = Phase::kCounter;
  emit(e);
}

void SpanTracer::virtual_begin(const char* name, std::int32_t track,
                               std::uint64_t vt_ns, std::int64_t job) {
  SpanEvent e;
  e.name = name;
  e.ts_ns = vt_ns;
  e.job = job;
  e.tid = track;
  e.timeline = Timeline::kVirtual;
  e.phase = Phase::kBegin;
  emit(e);
}

void SpanTracer::virtual_end(const char* name, std::int32_t track,
                             std::uint64_t vt_ns, std::int64_t job) {
  SpanEvent e;
  e.name = name;
  e.ts_ns = vt_ns;
  e.job = job;
  e.tid = track;
  e.timeline = Timeline::kVirtual;
  e.phase = Phase::kEnd;
  emit(e);
}

void SpanTracer::virtual_instant(const char* name, std::int32_t track,
                                 std::uint64_t vt_ns, std::int64_t job) {
  SpanEvent e;
  e.name = name;
  e.ts_ns = vt_ns;
  e.job = job;
  e.tid = track;
  e.timeline = Timeline::kVirtual;
  e.phase = Phase::kInstant;
  emit(e);
}

void SpanTracer::set_job_tenant(std::int64_t job, const std::string& tenant) {
  const std::lock_guard<std::mutex> lock(registry_mutex_);
  job_tenants_[job] = tenant;
}

void SpanTracer::set_thread_name(const std::string& name) {
  const std::int32_t tid = local_buffer().tid;
  const std::lock_guard<std::mutex> lock(registry_mutex_);
  thread_names_[tid] = name;
}

std::vector<SpanEvent> SpanTracer::collect() const {
  // Pin the buffer list, then each buffer's block list; the per-block
  // count (published with release) bounds how far we read.
  std::vector<const ThreadBuffer*> buffers;
  {
    const std::lock_guard<std::mutex> lock(registry_mutex_);
    buffers.reserve(buffers_.size());
    for (const auto& b : buffers_) buffers.push_back(b.get());
  }
  std::vector<SpanEvent> out;
  for (const ThreadBuffer* buf : buffers) {
    const std::lock_guard<std::mutex> lock(buf->mutex);
    for (const auto& blk : buf->blocks) {
      const std::size_t n = blk->count.load(std::memory_order_acquire);
      out.insert(out.end(), blk->events.begin(), blk->events.begin() + n);
    }
  }
  return out;
}

std::map<std::int64_t, std::string> SpanTracer::job_tenants() const {
  const std::lock_guard<std::mutex> lock(registry_mutex_);
  return job_tenants_;
}

std::map<std::int32_t, std::string> SpanTracer::thread_names() const {
  const std::lock_guard<std::mutex> lock(registry_mutex_);
  return thread_names_;
}

std::uint64_t SpanTracer::dropped_events() const {
  std::uint64_t total = 0;
  const std::lock_guard<std::mutex> lock(registry_mutex_);
  for (const auto& b : buffers_) {
    total += b->dropped.load(std::memory_order_relaxed);
  }
  return total;
}

void SpanTracer::clear() {
  const std::lock_guard<std::mutex> lock(registry_mutex_);
  for (const auto& b : buffers_) {
    const std::lock_guard<std::mutex> buf_lock(b->mutex);
    b->blocks.clear();
    b->current = nullptr;
    b->dropped.store(0, std::memory_order_relaxed);
  }
  job_tenants_.clear();
}

}  // namespace rif::obs
