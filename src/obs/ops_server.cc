#include "obs/ops_server.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "net/frame.h"
#include "obs/chrome_trace.h"

namespace rif::obs {

namespace {

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

std::string fmt_seconds(double t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", t);
  return buf;
}

/// Command text is a short ASCII word (plus an optional count) — anything
/// with control bytes or stray binary is not a client mistake, it is a
/// different protocol (or an attack) and the session is closed. Plain
/// whitespace is tolerated so a human driving the socket by hand (trailing
/// newline from a line-buffered client) is not treated as hostile.
bool printable_ascii(const std::vector<std::uint8_t>& bytes) {
  for (std::uint8_t b : bytes) {
    if ((b < 0x20 || b > 0x7e) && std::isspace(b) == 0) return false;
  }
  return true;
}

std::string trimmed(const std::vector<std::uint8_t>& bytes) {
  std::size_t begin = 0;
  std::size_t end = bytes.size();
  while (begin < end && std::isspace(bytes[begin]) != 0) ++begin;
  while (end > begin && std::isspace(bytes[end - 1]) != 0) --end;
  return std::string(bytes.begin() + static_cast<std::ptrdiff_t>(begin),
                     bytes.begin() + static_cast<std::ptrdiff_t>(end));
}

}  // namespace

std::string log_record_json(const LogRecord& record) {
  std::string out = "{\"t\":";
  out += fmt_seconds(record.t_seconds);
  out += ",\"level\":\"";
  out += level_name(record.level);
  out += "\",\"component\":\"";
  out += json_escape(record.component);
  out += "\",\"node\":";
  out += std::to_string(record.node);
  out += ",\"job\":";
  out += std::to_string(record.job);
  out += ",\"msg\":\"";
  out += json_escape(record.message);
  out += "\"}";
  return out;
}

OpsServer::OpsServer(OpsServerConfig config, Providers providers)
    : config_(std::move(config)), providers_(std::move(providers)) {}

OpsServer::~OpsServer() { stop(); }

bool OpsServer::start() {
  if (started_) return true;
  const bool bound = config_.unix_path.empty()
                         ? server_.listen_tcp(config_.port)
                         : server_.listen_unix(config_.unix_path);
  if (!bound) return false;
  server_.start(
      [this](net::SessionId session, std::vector<std::uint8_t> frame) {
        on_frame(session, std::move(frame));
      },
      [this](net::SessionId session) { on_closed(session); });
  started_ = true;
  return true;
}

void OpsServer::stop() {
  if (!started_) return;
  server_.stop();
  {
    const std::lock_guard<std::mutex> lock(mu_);
    subscribers_.clear();
  }
  started_ = false;
}

void OpsServer::publish_metrics_sample(const std::string& line) {
  std::vector<net::SessionId> targets;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    targets.assign(subscribers_.begin(), subscribers_.end());
  }
  if (targets.empty()) return;
  const std::vector<std::uint8_t> payload(line.begin(), line.end());
  for (const net::SessionId session : targets) {
    if (!server_.send_limited(session, payload,
                              config_.max_subscriber_backlog_bytes)) {
      frames_dropped_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

std::size_t OpsServer::subscribers() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return subscribers_.size();
}

void OpsServer::reply(net::SessionId session, const std::string& text) {
  server_.send(session, std::vector<std::uint8_t>(text.begin(), text.end()));
}

void OpsServer::reject(net::SessionId session) {
  bad_requests_.fetch_add(1, std::memory_order_relaxed);
  server_.abort_session(session);
}

void OpsServer::on_frame(net::SessionId session,
                         std::vector<std::uint8_t> frame) {
  if (frame.size() > config_.max_request_bytes || !printable_ascii(frame)) {
    reject(session);
    return;
  }
  const std::string command = trimmed(frame);
  requests_.fetch_add(1, std::memory_order_relaxed);

  if (command == "status") {
    reply(session, providers_.status_json
                       ? providers_.status_json()
                       : std::string("{\"error\":\"status unavailable\"}"));
    return;
  }
  if (command == "metrics") {
    reply(session, providers_.metrics_json
                       ? providers_.metrics_json()
                       : std::string("{\"error\":\"metrics unavailable\"}"));
    return;
  }
  if (command == "flamegraph") {
    reply(session,
          providers_.flamegraph_json
              ? providers_.flamegraph_json()
              : std::string("{\"error\":\"flamegraph unavailable\"}"));
    return;
  }
  if (command == "subscribe-metrics") {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      subscribers_.insert(session);
    }
    reply(session, "{\"subscribed\":true}");
    return;
  }
  if (command == "logs" || command.rfind("logs ", 0) == 0) {
    if (providers_.log_ring == nullptr) {
      reply(session, "{\"error\":\"logs unavailable\"}");
      return;
    }
    std::size_t n = config_.default_log_tail;
    if (command.size() > 5) {
      char* end = nullptr;
      const unsigned long parsed =
          std::strtoul(command.c_str() + 5, &end, 10);
      if (end == nullptr || *end != '\0' || parsed == 0) {
        reject(session);
        return;
      }
      n = static_cast<std::size_t>(parsed);
    }
    std::string body;
    for (const LogRecord& record : providers_.log_ring->tail(n)) {
      body += log_record_json(record);
      body += '\n';
    }
    reply(session, body);
    return;
  }
  // Unknown vocabulary: not a read-only introspection request.
  requests_.fetch_sub(1, std::memory_order_relaxed);
  reject(session);
}

void OpsServer::on_closed(net::SessionId session) {
  const std::lock_guard<std::mutex> lock(mu_);
  subscribers_.erase(session);
}

}  // namespace rif::obs
