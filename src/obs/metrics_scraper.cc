#include "obs/metrics_scraper.h"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "obs/chrome_trace.h"

namespace rif::obs {

namespace {

std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

}  // namespace

std::string metrics_sample_json(const MetricsSample& s) {
  std::ostringstream os;
  os << "{\"t\": " << json_number(s.t_seconds) << ", \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : s.values.counters) {
    os << (first ? "" : ", ") << "\"" << json_escape(name)
       << "\": {\"v\": " << v << ", \"d\": " << s.counter_deltas.at(name)
       << "}";
    first = false;
  }
  os << "}, \"gauges\": {";
  first = true;
  for (const auto& [name, v] : s.values.gauges) {
    os << (first ? "" : ", ") << "\"" << json_escape(name)
       << "\": {\"v\": " << json_number(v)
       << ", \"d\": " << json_number(s.gauge_deltas.at(name)) << "}";
    first = false;
  }
  os << "}, \"histograms\": {";
  first = true;
  for (const auto& [name, h] : s.values.histograms) {
    os << (first ? "" : ", ") << "\"" << json_escape(name)
       << "\": {\"count\": " << h.count
       << ", \"d_count\": " << s.histogram_count_deltas.at(name)
       << ", \"sum\": " << json_number(h.sum)
       << ", \"d_sum\": " << json_number(s.histogram_sum_deltas.at(name))
       << ", \"mean\": " << json_number(h.mean)
       << ", \"p50\": " << json_number(h.p50)
       << ", \"p95\": " << json_number(h.p95)
       << ", \"p99\": " << json_number(h.p99) << "}";
    first = false;
  }
  os << "}}";
  return os.str();
}

MetricsScraper::MetricsScraper(runtime::MetricsRegistry& registry,
                               Config config)
    : registry_(registry),
      config_(config),
      epoch_(std::chrono::steady_clock::now()) {
  if (config_.period_seconds <= 0.0) config_.period_seconds = 0.05;
  if (config_.max_samples == 0) config_.max_samples = 1;
}

MetricsScraper::~MetricsScraper() { stop(); }

void MetricsScraper::start() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (running_) return;
    running_ = true;
  }
  scrape_now();
  thread_ = std::thread([this] { loop(); });
}

void MetricsScraper::stop() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!running_ && !thread_.joinable()) return;
    running_ = false;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  scrape_now();  // final sample: the end-of-run state is always in the ring
}

void MetricsScraper::loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (running_) {
    const auto wake = std::chrono::steady_clock::now() +
                      std::chrono::duration<double>(config_.period_seconds);
    cv_.wait_until(lock, wake, [this] { return !running_; });
    if (!running_) break;
    scrape_locked();
  }
}

void MetricsScraper::scrape_now() {
  const std::lock_guard<std::mutex> lock(mutex_);
  scrape_locked();
}

void MetricsScraper::scrape_locked() {
  // The derive hook publishes gauges computed from live series; writers
  // are concurrent, so it may only perform atomic series reads/writes.
  if (derive_) derive_(registry_);
  MetricsSample sample;
  sample.t_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch_)
          .count();
  sample.values = registry_.snapshot();
  for (const auto& [name, v] : sample.values.counters) {
    const auto it = prev_.counters.find(name);
    const std::uint64_t before = it == prev_.counters.end() ? 0 : it->second;
    // Counters are monotone; a concurrent merge_into can only grow them.
    sample.counter_deltas[name] = v >= before ? v - before : 0;
  }
  for (const auto& [name, v] : sample.values.gauges) {
    const auto it = prev_.gauges.find(name);
    sample.gauge_deltas[name] =
        v - (it == prev_.gauges.end() ? 0.0 : it->second);
  }
  for (const auto& [name, h] : sample.values.histograms) {
    const auto it = prev_.histograms.find(name);
    const std::uint64_t count_before =
        it == prev_.histograms.end() ? 0 : it->second.count;
    const double sum_before =
        it == prev_.histograms.end() ? 0.0 : it->second.sum;
    sample.histogram_count_deltas[name] =
        h.count >= count_before ? h.count - count_before : 0;
    sample.histogram_sum_deltas[name] = h.sum - sum_before;
  }
  prev_ = sample.values;
  if (on_scrape_) on_scrape_(metrics_sample_json(sample));
  ring_.push_back(std::move(sample));
  while (ring_.size() > config_.max_samples) ring_.pop_front();
}

std::vector<MetricsSample> MetricsScraper::samples() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return {ring_.begin(), ring_.end()};
}

std::size_t MetricsScraper::sample_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return ring_.size();
}

std::string MetricsScraper::timeline_json() const {
  const std::vector<MetricsSample> samples = this->samples();
  std::ostringstream os;
  os << "{\n  \"period_seconds\": " << json_number(config_.period_seconds)
     << ",\n  \"samples\": [";
  bool first_sample = true;
  for (const MetricsSample& s : samples) {
    os << (first_sample ? "\n" : ",\n");
    first_sample = false;
    os << "    " << metrics_sample_json(s);
  }
  os << "\n  ]\n}\n";
  return os.str();
}

bool MetricsScraper::write_timeline(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string doc = timeline_json();
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size() &&
                  std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

}  // namespace rif::obs
