#include "obs/remote_telemetry.h"

#include <algorithm>
#include <cstdio>

#include "obs/trace_check.h"
#include "runtime/metrics.h"

namespace rif::obs {

namespace {

// The wire promises exactly runtime-sized histograms; keep the two layers
// honest at the one point that knows both.
static_assert(scp::kTelemetryHistogramBuckets ==
              static_cast<std::size_t>(runtime::Histogram::kBuckets));

std::string fmt_number(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

/// Worker steady timestamp -> microseconds on the coordinator tracer's
/// axis, clamped at zero (an offset estimate can land a pre-epoch event
/// fractionally negative; Perfetto rejects negative ts).
double aligned_us(std::uint64_t worker_ts_ns, std::int64_t offset_ns,
                  std::uint64_t epoch_ns) {
  const double coord_ns = static_cast<double>(worker_ts_ns) -
                          static_cast<double>(offset_ns) -
                          static_cast<double>(epoch_ns);
  return std::max(0.0, coord_ns / 1000.0);
}

}  // namespace

bool RemoteTelemetryCollector::on_batch(cluster::NodeId node,
                                        const scp::TelemetryBody& body) {
  // Validate before taking any state: an unbalanced batch (torn flush,
  // hostile producer) is dropped whole so a half-open span can never leak
  // into the merged trace.
  std::vector<std::pair<std::string, char>> events;
  events.reserve(body.spans.size());
  for (const scp::TelemetrySpan& s : body.spans) {
    events.emplace_back(s.name, s.phase);
  }
  std::string error;
  const bool balanced = check_span_batch(events, error);

  const std::lock_guard<std::mutex> lock(mutex_);
  ++batches_;
  if (!balanced) {
    ++rejected_;
    return false;
  }
  WorkerLane& lane = lanes_[node];
  if (lane.seen_flush && body.flush_index <= lane.last_flush_index) {
    // Re-shipment (duplicate fault) or reordered-older batch: the newer
    // cumulative state already won. Dropping keeps counters exact.
    ++duplicates_;
    return false;
  }
  if (lane.spans.size() + body.spans.size() > kMaxSpansPerWorker) {
    ++rejected_;
    return false;
  }
  lane.seen_flush = true;
  lane.last_flush_index = body.flush_index;

  // Normalize B/E pairs to X at ingest (the batch is balanced, so a local
  // stack matches them exactly); storage then holds only X / i / C.
  std::vector<std::size_t> open;
  for (const scp::TelemetrySpan& s : body.spans) {
    if (s.phase == 'B') {
      open.push_back(lane.spans.size());
      lane.spans.push_back({s.name, s.ts_ns, 0, s.job, 0.0, 'X'});
      continue;
    }
    if (s.phase == 'E') {
      StoredSpan& begun = lane.spans[open.back()];
      begun.dur_ns = s.ts_ns >= begun.ts_ns ? s.ts_ns - begun.ts_ns : 0;
      open.pop_back();
      continue;
    }
    lane.spans.push_back(
        {s.name, s.ts_ns, s.phase == 'X' ? s.dur_ns : 0, s.job, s.value,
         s.phase});
  }
  for (const scp::TelemetrySpan& s : body.spans) {
    if (s.job >= 0 && s.phase != 'C') lane.jobs.insert(s.job);
    if (s.job >= 0 && s.name == scp::kJobSpanName) {
      lane.jobs_ended.insert(s.job);
    }
  }
  spans_ += body.spans.size();

  if (!body.counters.empty() || !body.gauges.empty() ||
      !body.histograms.empty()) {
    lane.counters = body.counters;
    lane.gauges = body.gauges;
    lane.histograms = body.histograms;
  }

  // Forward shipped log records only once the batch passed every gate
  // above — a duplicate or unbalanced batch must not double-log.
  if (!body.logs.empty()) {
    log_records_ += body.logs.size();
    if (log_sink_) {
      for (const scp::TelemetryLog& l : body.logs) log_sink_(node, l);
    }
  }
  return true;
}

void RemoteTelemetryCollector::set_log_sink(
    std::function<void(cluster::NodeId, const scp::TelemetryLog&)> sink) {
  const std::lock_guard<std::mutex> lock(mutex_);
  log_sink_ = std::move(sink);
}

void RemoteTelemetryCollector::set_clock_offset(cluster::NodeId node,
                                                std::int64_t offset_ns) {
  const std::lock_guard<std::mutex> lock(mutex_);
  lanes_[node].clock_offset_ns = offset_ns;
}

std::int64_t RemoteTelemetryCollector::clock_offset_ns(
    cluster::NodeId node) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = lanes_.find(node);
  return it == lanes_.end() ? 0 : it->second.clock_offset_ns;
}

void RemoteTelemetryCollector::fill_trace(
    ChromeTraceWriter& writer, std::uint64_t coordinator_epoch_ns) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [node, lane] : lanes_) {
    if (lane.spans.empty()) continue;
    const int pid = kRemoteWorkerPidBase + static_cast<int>(node);
    writer.set_process_name(pid,
                            "rif-worker-" + std::to_string(node));
    writer.set_thread_name(pid, 1, "serve");
    for (const StoredSpan& s : lane.spans) {
      ChromeTraceWriter::Event e;
      e.name = s.name;
      e.ph = s.phase;
      e.ts_us = aligned_us(s.ts_ns, lane.clock_offset_ns,
                           coordinator_epoch_ns);
      e.pid = pid;
      e.tid = 1;
      if (s.phase == 'X') {
        e.dur_us = static_cast<double>(s.dur_ns) / 1000.0;
      }
      if (s.phase == 'C') {
        e.args_json = "\"value\": " + fmt_number(s.value);
      } else if (s.job >= 0) {
        e.args_json = "\"job\": " + std::to_string(s.job);
      }
      writer.add(std::move(e));
    }
  }
}

std::vector<FlameSpan> RemoteTelemetryCollector::flame_spans(
    std::uint64_t coordinator_epoch_ns) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<FlameSpan> out;
  for (const auto& [node, lane] : lanes_) {
    const std::uint64_t track =
        (static_cast<std::uint64_t>(node) << 32) | 1u;
    for (const StoredSpan& s : lane.spans) {
      if (s.phase != 'X') continue;
      out.push_back({s.name,
                     aligned_us(s.ts_ns, lane.clock_offset_ns,
                                coordinator_epoch_ns),
                     static_cast<double>(s.dur_ns) / 1000.0, track});
    }
  }
  return out;
}

void RemoteTelemetryCollector::merge_metrics_into(
    runtime::MetricsRegistry& target) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [node, lane] : lanes_) {
    const std::string prefix =
        "remote.worker." + std::to_string(node) + ".";
    for (const auto& [name, total] : lane.counters) {
      // Catch the target up to the shipped cumulative total. Never
      // subtract: a re-install after the worker restarts (fresh, lower
      // totals under a NEW node id) cannot happen within one lane, and a
      // stale batch was already dropped by the flush-index gate.
      runtime::Counter& c = target.counter(prefix + name);
      const std::uint64_t current = c.value();
      if (total > current) c.add(total - current);
    }
    for (const auto& [name, kind, value] : lane.gauges) {
      target
          .gauge(prefix + name, kind == 1 ? runtime::GaugeKind::kMax
                                          : runtime::GaugeKind::kSum)
          .set(value);
    }
    for (const scp::TelemetryHistogram& h : lane.histograms) {
      if (h.count == 0) continue;
      target.install_histogram(prefix + h.name, h.count, h.sum, h.min,
                               h.max, h.buckets);
    }
  }

  // Cluster-wide distributions: sum every lane's latest cumulative raw
  // buckets per series name. Bucket sums commute with the registry's
  // bucket-edge quantile estimate, so `remote.cluster.<name>` quantiles
  // equal those recomputed from all workers' observations (at bucket
  // resolution). Recomputed from scratch each call and installed by
  // overwrite, so repeats are idempotent like the per-node series.
  std::map<std::string, scp::TelemetryHistogram> cluster;
  for (const auto& [node, lane] : lanes_) {
    for (const scp::TelemetryHistogram& h : lane.histograms) {
      if (h.count == 0) continue;
      const auto [it, fresh] = cluster.try_emplace(h.name, h);
      if (fresh) continue;
      scp::TelemetryHistogram& c = it->second;
      c.count += h.count;
      c.sum += h.sum;
      c.min = std::min(c.min, h.min);
      c.max = std::max(c.max, h.max);
      const std::size_t n = std::min(c.buckets.size(), h.buckets.size());
      for (std::size_t b = 0; b < n; ++b) c.buckets[b] += h.buckets[b];
    }
  }
  for (const auto& [name, h] : cluster) {
    target.install_histogram("remote.cluster." + name, h.count, h.sum,
                             h.min, h.max, h.buckets);
  }
}

std::vector<cluster::NodeId> RemoteTelemetryCollector::nodes_with_job(
    std::int64_t job) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<cluster::NodeId> out;
  for (const auto& [node, lane] : lanes_) {
    if (lane.jobs.count(job) > 0) out.push_back(node);
  }
  return out;
}

std::vector<cluster::NodeId> RemoteTelemetryCollector::nodes_with_job_end(
    std::int64_t job) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<cluster::NodeId> out;
  for (const auto& [node, lane] : lanes_) {
    if (lane.jobs_ended.count(job) > 0) out.push_back(node);
  }
  return out;
}

std::uint64_t RemoteTelemetryCollector::batches() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return batches_;
}
std::uint64_t RemoteTelemetryCollector::rejected() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return rejected_;
}
std::uint64_t RemoteTelemetryCollector::duplicates() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return duplicates_;
}
std::uint64_t RemoteTelemetryCollector::spans() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}
std::uint64_t RemoteTelemetryCollector::log_records() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return log_records_;
}

bool write_unified_trace(const std::string& path, const SpanTracer& tracer,
                         const RemoteTelemetryCollector& collector) {
  ChromeTraceWriter writer;
  fill_from_tracer(writer, tracer);
  collector.fill_trace(writer, tracer.epoch_ns());
  return writer.write(path);
}

}  // namespace rif::obs
