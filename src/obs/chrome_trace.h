// Chrome trace-event JSON writer — the one serialization point for every
// timeline the repo exports.
//
// Output is the Trace Event Format that Perfetto and chrome://tracing load
// directly: {"traceEvents":[...],"displayTimeUnit":"ms"}, one object per
// event with name/ph/ts(us)/pid/tid and optional args/dur. Three producers
// share this writer so their schemas cannot drift:
//
//   * obs::SpanTracer      — real wall-clock execution (write_chrome_trace)
//   * sim::TraceRecorder   — the virtual protocol timeline
//                            (sim::export_trace_chrome)
//   * anything else that wants a timeline artifact
//
// Event kinds emitted: "B"/"E" duration pairs (strictly nested per tid),
// "X" complete events (pre-paired, with dur), "i" instants, "C" counters,
// and "M" process_name/thread_name metadata. obs/trace_check.h validates
// exactly this schema.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/span_tracer.h"

namespace rif::obs {

/// Escape a string for embedding in a JSON document (no surrounding
/// quotes). Shared by every JSON producer in the tree.
std::string json_escape(const std::string& s);

class ChromeTraceWriter {
 public:
  struct Event {
    std::string name;
    char ph = 'i';       ///< B | E | X | i | C | M
    double ts_us = 0.0;  ///< microseconds on the event's timeline
    double dur_us = -1.0;  ///< X only; < 0 = omitted
    int pid = 1;
    int tid = 0;
    /// Pre-rendered JSON object body WITHOUT braces, e.g.
    /// "\"job\": 3, \"tenant\": \"alpha\"". Empty = no args.
    std::string args_json;
  };

  /// Emit "M" process_name / thread_name metadata (sorts before ts-equal
  /// real events on the same track).
  void set_process_name(int pid, const std::string& name);
  void set_thread_name(int pid, int tid, const std::string& name);

  void add(Event event) { events_.push_back(std::move(event)); }

  /// Serialize all events, stably sorted by (pid, tid, ts) — stable so
  /// same-timestamp events keep their per-track emission order (an E at
  /// the instant of the next B stays before it).
  [[nodiscard]] std::string to_json() const;

  /// to_json() to a file. False on I/O error.
  bool write(const std::string& path) const;

  [[nodiscard]] std::size_t size() const { return events_.size(); }

 private:
  std::vector<Event> events_;
  std::vector<Event> metadata_;
};

/// Exported pids of the two SpanTracer timelines.
inline constexpr int kWallPid = 1;     ///< "rif-host" — real threads
inline constexpr int kVirtualPid = 2;  ///< "rif-service" — one track per job

/// Convert a SpanTracer snapshot into writer events: wall events on
/// kWallPid (tid = thread, named via set_thread_name), virtual events on
/// kVirtualPid (tid = job track, named "job N"), every attributed event
/// carrying {"job": id, "tenant": "..."} args from the tracer's job map.
void fill_from_tracer(ChromeTraceWriter& writer, const SpanTracer& tracer);

/// One-call export of the process tracer: collect, convert, write `path`.
/// False on I/O error.
bool write_chrome_trace(const std::string& path,
                        const SpanTracer& tracer = SpanTracer::instance());

}  // namespace rif::obs
