#include "obs/chrome_trace.h"

#include <algorithm>
#include <cstdio>
#include <set>
#include <sstream>

namespace rif::obs {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void ChromeTraceWriter::set_process_name(int pid, const std::string& name) {
  Event e;
  e.name = "process_name";
  e.ph = 'M';
  e.pid = pid;
  e.tid = 0;
  e.args_json = "\"name\": \"" + json_escape(name) + "\"";
  metadata_.push_back(std::move(e));
}

void ChromeTraceWriter::set_thread_name(int pid, int tid,
                                        const std::string& name) {
  Event e;
  e.name = "thread_name";
  e.ph = 'M';
  e.pid = pid;
  e.tid = tid;
  e.args_json = "\"name\": \"" + json_escape(name) + "\"";
  metadata_.push_back(std::move(e));
}

std::string ChromeTraceWriter::to_json() const {
  std::vector<const Event*> order;
  order.reserve(metadata_.size() + events_.size());
  for (const auto& e : metadata_) order.push_back(&e);
  // Metadata first, then events sorted stably by (pid, tid, ts): a
  // same-timestamp E/B sequence on one track keeps its emission order, so
  // the file replays strictly nested per track.
  std::vector<const Event*> timed;
  timed.reserve(events_.size());
  for (const auto& e : events_) timed.push_back(&e);
  std::stable_sort(timed.begin(), timed.end(),
                   [](const Event* a, const Event* b) {
                     if (a->pid != b->pid) return a->pid < b->pid;
                     if (a->tid != b->tid) return a->tid < b->tid;
                     return a->ts_us < b->ts_us;
                   });
  order.insert(order.end(), timed.begin(), timed.end());

  std::ostringstream os;
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  bool first = true;
  for (const Event* e : order) {
    os << (first ? "" : ",\n");
    first = false;
    char head[64];
    std::snprintf(head, sizeof head, "\", \"ph\": \"%c\", \"ts\": %.3f",
                  e->ph, e->ts_us);
    os << "{\"name\": \"" << json_escape(e->name) << head;
    if (e->ph == 'X' && e->dur_us >= 0.0) {
      char dur[32];
      std::snprintf(dur, sizeof dur, ", \"dur\": %.3f", e->dur_us);
      os << dur;
    }
    os << ", \"pid\": " << e->pid << ", \"tid\": " << e->tid;
    if (!e->args_json.empty()) os << ", \"args\": {" << e->args_json << "}";
    os << "}";
  }
  os << "\n]}\n";
  return os.str();
}

bool ChromeTraceWriter::write(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string doc = to_json();
  const bool ok =
      std::fwrite(doc.data(), 1, doc.size(), f) == doc.size() &&
      std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

void fill_from_tracer(ChromeTraceWriter& writer, const SpanTracer& tracer) {
  const std::vector<SpanEvent> events = tracer.collect();
  const auto tenants = tracer.job_tenants();
  const auto thread_names = tracer.thread_names();

  writer.set_process_name(kWallPid, "rif-host");
  writer.set_process_name(kVirtualPid, "rif-service");

  std::set<std::int32_t> wall_tids;
  std::set<std::int32_t> job_tracks;
  for (const SpanEvent& e : events) {
    ChromeTraceWriter::Event out;
    out.name = e.name;
    out.ph = static_cast<char>(e.phase);
    out.ts_us = static_cast<double>(e.ts_ns) / 1e3;
    out.pid = e.timeline == Timeline::kWall ? kWallPid : kVirtualPid;
    out.tid = e.tid;
    (e.timeline == Timeline::kWall ? wall_tids : job_tracks).insert(e.tid);
    std::ostringstream args;
    if (e.phase == Phase::kCounter) {
      args << "\"value\": " << e.value;
    }
    if (e.job != kNoJob) {
      if (args.tellp() > 0) args << ", ";
      args << "\"job\": " << e.job;
      const auto it = tenants.find(e.job);
      if (it != tenants.end()) {
        args << ", \"tenant\": \"" << json_escape(it->second) << "\"";
      }
    }
    out.args_json = args.str();
    writer.add(std::move(out));
  }

  for (const std::int32_t tid : wall_tids) {
    const auto it = thread_names.find(tid);
    writer.set_thread_name(kWallPid, tid,
                           it != thread_names.end()
                               ? it->second
                               : "thread-" + std::to_string(tid));
  }
  for (const std::int32_t track : job_tracks) {
    writer.set_thread_name(kVirtualPid, track,
                           "job " + std::to_string(track));
  }
}

bool write_chrome_trace(const std::string& path, const SpanTracer& tracer) {
  ChromeTraceWriter writer;
  fill_from_tracer(writer, tracer);
  return writer.write(path);
}

}  // namespace rif::obs
