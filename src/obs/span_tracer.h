// SpanTracer — low-overhead wall-clock tracing of real job execution.
//
// The MetricsRegistry answers "how much / how many"; this answers "where
// did job 17's 900 ms go". Instrumented code emits begin/end/instant span
// events (plus counter samples) carrying a job id; the service registers
// job -> tenant once at submission, so every span in the export is
// attributed without the hot path ever touching a string.
//
// ## Two timelines, one trace
//
// The service is half simulation, half real machine: admission and queue
// wait play out on the VIRTUAL timeline (sim nanoseconds) while host-pool
// execution — chunk reads, screening, folds, transforms — runs on real
// threads under the wall clock. Both kinds of event land in the same
// tracer, tagged with a Timeline, and the Chrome-trace exporter
// (obs/chrome_trace.h) emits them as two processes of one trace:
// pid "rif-host" with one track per real thread, pid "rif-service" with
// one track per job. Perfetto / chrome://tracing loads the file directly.
//
// ## Hot-path design
//
// Per-thread buffers, lock-free on the emission path: each thread owns a
// chain of fixed-size event blocks; an append is one bounds check, one
// 48-byte store and one release-store of the block's count. The only
// locks are per-thread block allocation (every kBlockEvents events) and
// the registry mutex on first use of a thread. Disabled tracing costs a
// single relaxed atomic load per RIF_TRACE_SPAN site — cheap enough to
// leave the macros in the per-chunk and per-tile paths permanently.
//
// Buffers are drained by collect(), which takes the per-thread mutex only
// to pin the block list; concurrently emitted events are either fully
// visible (count published with release) or not yet part of the snapshot.
// clear() requires quiescence (no concurrent emission) — flip enabled off
// first, which stops every RIF_TRACE_* site at its entry check.
//
// Span names must be string literals (or otherwise outlive the tracer):
// events store the pointer, never a copy.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace rif::obs {

/// Which clock an event's timestamp belongs to.
enum class Timeline : std::uint8_t {
  kWall = 0,     ///< steady_clock ns since tracer construction; tid = thread
  kVirtual = 1,  ///< simulation ns since t=0; tid = job id (one track/job)
};

enum class Phase : char {
  kBegin = 'B',
  kEnd = 'E',
  kInstant = 'i',
  kCounter = 'C',
};

/// No job attribution.
inline constexpr std::int64_t kNoJob = -1;
/// Sentinel default: resolve to the thread's current JobScope.
inline constexpr std::int64_t kCurrentJob = INT64_MIN;

struct SpanEvent {
  const char* name = nullptr;  ///< static-lifetime string
  std::uint64_t ts_ns = 0;
  std::int64_t job = kNoJob;
  double value = 0.0;  ///< kCounter only
  std::int32_t tid = 0;
  Timeline timeline = Timeline::kWall;
  Phase phase = Phase::kInstant;
};

/// The thread's ambient job attribution (see JobScope); kNoJob outside any
/// scope. Spans default to it, and engines capture it once at entry to
/// attribute work they hand to other threads (e.g. the streaming reader).
[[nodiscard]] std::int64_t current_job();

class SpanTracer {
 public:
  static constexpr std::size_t kBlockEvents = 4096;

  /// Process-wide tracer. Never destroyed (worker threads may emit during
  /// static teardown).
  static SpanTracer& instance();

  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Wall timestamp: steady-clock ns since tracer construction.
  [[nodiscard]] std::uint64_t now_ns() const;

  /// Raw steady-clock ns at construction — the zero point of every kWall
  /// timestamp. Remote telemetry uses it to map a peer's absolute
  /// steady-clock timestamps (offset-corrected) onto this tracer's axis.
  [[nodiscard]] std::uint64_t epoch_ns() const { return epoch_ns_; }

  // --- wall-clock emission (tid = calling thread) --------------------------
  // `job` defaults to the thread's JobScope. Emission is a no-op while
  // disabled (the RAII/macro layer additionally pre-checks enabled()) —
  // EXCEPT end(), which always records so a span begun before tracing was
  // flipped off still closes; only call end() for a begin() you emitted.
  void begin(const char* name, std::int64_t job = kCurrentJob);
  void end(const char* name, std::int64_t job = kCurrentJob);
  void instant(const char* name, std::int64_t job = kCurrentJob);
  void counter(const char* name, double value, std::int64_t job = kCurrentJob);

  // --- virtual-timeline emission (explicit track + timestamp) --------------
  // The simulation thread stamps events with virtual time; `track` is the
  // exported tid (the service uses the job id, giving one lifecycle lane
  // per job).
  void virtual_begin(const char* name, std::int32_t track,
                     std::uint64_t vt_ns, std::int64_t job = kNoJob);
  void virtual_end(const char* name, std::int32_t track, std::uint64_t vt_ns,
                   std::int64_t job = kNoJob);
  void virtual_instant(const char* name, std::int32_t track,
                       std::uint64_t vt_ns, std::int64_t job = kNoJob);

  /// Register job -> tenant for export-time attribution (idempotent;
  /// cheap, mutex-protected — call once per job, not per event).
  void set_job_tenant(std::int64_t job, const std::string& tenant);

  /// Name the calling thread's track in the export ("reader", ...).
  void set_thread_name(const std::string& name);

  /// Snapshot every thread's events, in per-thread emission order (buffers
  /// concatenated in thread-registration order). Safe concurrently with
  /// emission: an in-flight event is either fully included or absent.
  [[nodiscard]] std::vector<SpanEvent> collect() const;

  [[nodiscard]] std::map<std::int64_t, std::string> job_tenants() const;
  [[nodiscard]] std::map<std::int32_t, std::string> thread_names() const;

  /// Events dropped because a thread hit max_blocks_per_thread.
  [[nodiscard]] std::uint64_t dropped_events() const;

  /// Per-thread buffer cap, in blocks of kBlockEvents events (bounds trace
  /// memory on runaway instrumentation; excess events are counted dropped).
  void set_max_blocks_per_thread(std::size_t blocks) {
    max_blocks_.store(blocks, std::memory_order_relaxed);
  }

  /// Discard all recorded events (thread buffers stay registered, job and
  /// thread names are kept). Callers must guarantee no concurrent
  /// emission — disable first.
  void clear();

 private:
  struct EventBlock {
    std::array<SpanEvent, kBlockEvents> events;
    std::atomic<std::size_t> count{0};
  };
  struct ThreadBuffer {
    std::int32_t tid = 0;
    /// Guards the block LIST (allocation, collect, clear) — never the
    /// event append itself.
    mutable std::mutex mutex;
    std::vector<std::unique_ptr<EventBlock>> blocks;
    EventBlock* current = nullptr;  ///< last entry of blocks
    std::atomic<std::uint64_t> dropped{0};
  };

  SpanTracer();
  void emit(SpanEvent e);
  ThreadBuffer& local_buffer();

  std::atomic<bool> enabled_{false};
  std::atomic<std::size_t> max_blocks_{256};  // 1M events/thread
  std::uint64_t epoch_ns_ = 0;                // steady_clock at construction

  mutable std::mutex registry_mutex_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::map<std::int64_t, std::string> job_tenants_;
  std::map<std::int32_t, std::string> thread_names_;
};

/// RAII begin/end pair. Captures enabled() once at entry, so a span open
/// when tracing is flipped off still emits its end (no dangling begins).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, std::int64_t job = kCurrentJob) {
    SpanTracer& t = SpanTracer::instance();
    if (t.enabled()) {
      name_ = name;
      job_ = job;
      t.begin(name, job);
    }
  }
  ~ScopedSpan() {
    if (name_ != nullptr) SpanTracer::instance().end(name_, job_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_ = nullptr;
  std::int64_t job_ = kCurrentJob;
};

/// Sets the thread's ambient job id for spans AND the logger's job-context
/// prefix (support/log.h) for the scope's lifetime. Nested scopes restore
/// the outer job on exit.
class JobScope {
 public:
  explicit JobScope(std::int64_t job);
  ~JobScope();
  JobScope(const JobScope&) = delete;
  JobScope& operator=(const JobScope&) = delete;

 private:
  std::int64_t prev_;
};

}  // namespace rif::obs

#define RIF_TRACE_CAT2(a, b) a##b
#define RIF_TRACE_CAT(a, b) RIF_TRACE_CAT2(a, b)

/// RAII span over the enclosing scope, attributed to the thread's JobScope.
#define RIF_TRACE_SPAN(name) \
  ::rif::obs::ScopedSpan RIF_TRACE_CAT(rif_trace_span_, __LINE__)(name)

/// RAII span with explicit job attribution (for work executed on threads
/// outside the job's scope, e.g. the streaming reader).
#define RIF_TRACE_SPAN_JOB(name, job) \
  ::rif::obs::ScopedSpan RIF_TRACE_CAT(rif_trace_span_, __LINE__)(name, job)

#define RIF_TRACE_INSTANT(name)                                         \
  do {                                                                  \
    if (::rif::obs::SpanTracer::instance().enabled())                   \
      ::rif::obs::SpanTracer::instance().instant(name);                 \
  } while (0)

#define RIF_TRACE_COUNTER(name, value)                                  \
  do {                                                                  \
    if (::rif::obs::SpanTracer::instance().enabled())                   \
      ::rif::obs::SpanTracer::instance().counter(name, value);          \
  } while (0)
