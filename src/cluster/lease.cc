#include "cluster/lease.h"

#include "support/check.h"

namespace rif::cluster {

LeaseBook::LeaseBook(std::vector<NodeId> pool) {
  for (const NodeId n : pool) {
    RIF_CHECK_MSG(n != kNoNode, "invalid node in lease pool");
    const bool inserted = free_.insert(n).second;
    RIF_CHECK_MSG(inserted, "duplicate node in lease pool");
  }
  total_ = static_cast<int>(free_.size());
}

void LeaseBook::add_node(NodeId node) {
  RIF_CHECK_MSG(node != kNoNode, "invalid node in lease pool");
  const bool inserted = free_.insert(node).second;
  RIF_CHECK_MSG(inserted, "node already in lease pool");
  ++total_;
}

int LeaseBook::free_nodes(const NodeFilter& eligible) const {
  if (!eligible) return free_nodes();
  int n = 0;
  for (const NodeId node : free_) {
    if (eligible(node)) ++n;
  }
  return n;
}

std::vector<NodeId> LeaseBook::acquire(LeaseOwner owner, int n,
                                       const NodeFilter& eligible) {
  RIF_CHECK(n >= 1);
  RIF_CHECK_MSG(!leases_.contains(owner), "owner already holds a lease");
  std::vector<NodeId> granted;
  granted.reserve(static_cast<std::size_t>(n));
  for (const NodeId node : free_) {
    if (eligible && !eligible(node)) continue;
    granted.push_back(node);
    if (static_cast<int>(granted.size()) == n) break;
  }
  if (static_cast<int>(granted.size()) < n) return {};
  for (const NodeId node : granted) free_.erase(node);
  leases_.emplace(owner, granted);
  return granted;
}

void LeaseBook::release(LeaseOwner owner) {
  auto it = leases_.find(owner);
  if (it == leases_.end()) return;
  for (const NodeId n : it->second) free_.insert(n);
  leases_.erase(it);
}

std::vector<NodeId> LeaseBook::leased_to(LeaseOwner owner) const {
  auto it = leases_.find(owner);
  return it == leases_.end() ? std::vector<NodeId>{} : it->second;
}

LeaseOwner LeaseBook::owner_of(NodeId node) const {
  for (const auto& [owner, nodes] : leases_) {
    for (const NodeId n : nodes) {
      if (n == node) return owner;
    }
  }
  return kNoOwner;
}

}  // namespace rif::cluster
