#include "cluster/node.h"

#include <algorithm>
#include <utility>

namespace rif::cluster {

void Node::submit_compute(double flops, std::function<void()> done) {
  RIF_CHECK_MSG(alive_, "compute submitted to dead node");
  RIF_CHECK_MSG(flops >= 0, "negative flops");
  flops_charged_ += flops;
  const SimTime start = std::max(busy_until_, sim_.now());
  busy_until_ = start + compute_time(flops);
  const std::uint64_t epoch = epoch_;
  sim_.schedule_at(busy_until_, [this, epoch, done = std::move(done)] {
    if (alive_ && epoch_ == epoch) done();
  });
}

void Node::run_after(SimTime delay, std::function<void()> fn) {
  RIF_CHECK_MSG(alive_, "timer set on dead node");
  const std::uint64_t epoch = epoch_;
  sim_.schedule_after(delay, [this, epoch, fn = std::move(fn)] {
    if (alive_ && epoch_ == epoch) fn();
  });
}

void Node::fail() {
  if (!alive_) return;
  alive_ = false;
  ++epoch_;
  busy_until_ = sim_.now();
}

void Node::restore() {
  if (alive_) return;
  alive_ = true;
  ++epoch_;
  busy_until_ = sim_.now();
}

}  // namespace rif::cluster
