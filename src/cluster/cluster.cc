#include "cluster/cluster.h"

namespace rif::cluster {

NodeId Cluster::add_node(NodeConfig config) {
  const auto id = static_cast<NodeId>(nodes_.size());
  if (config.name.empty()) config.name = "node" + std::to_string(id);
  nodes_.push_back(std::make_unique<Node>(sim_, id, std::move(config)));
  return id;
}

void Cluster::add_nodes(int n, const NodeConfig& config) {
  for (int i = 0; i < n; ++i) add_node(config);
}

std::vector<NodeId> Cluster::alive_nodes() const {
  std::vector<NodeId> out;
  for (const auto& n : nodes_) {
    if (n->alive()) out.push_back(n->id());
  }
  return out;
}

int Cluster::alive_count() const {
  int n = 0;
  for (const auto& node : nodes_) {
    if (node->alive()) ++n;
  }
  return n;
}

void Cluster::fail_node(NodeId id) {
  Node& n = node(id);
  if (!n.alive()) return;
  n.fail();
  trace_.record({sim_.now(), sim::TraceKind::kNodeFailed, id, -1, 0, {}});
}

void Cluster::restore_node(NodeId id) {
  Node& n = node(id);
  if (n.alive()) return;
  n.restore();
  trace_.record({sim_.now(), sim::TraceKind::kNodeRestored, id, -1, 0, {}});
}

}  // namespace rif::cluster
