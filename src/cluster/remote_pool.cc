#include "cluster/remote_pool.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <utility>

#include "cluster/remote_worker.h"
#include "obs/span_tracer.h"
#include "support/check.h"
#include "support/log.h"
#include "support/serialize.h"

namespace rif::cluster {

bool RemoteWorkerPool::listen_tcp(std::uint16_t port) {
  return server_.listen_tcp(port);
}

bool RemoteWorkerPool::listen_unix(const std::string& path) {
  return server_.listen_unix(path);
}

void RemoteWorkerPool::configure_supervision(const SupervisionConfig& config) {
  RIF_CHECK_MSG(!started_, "configure_supervision after start");
  sup_ = config;
}

void RemoteWorkerPool::install_faults(net::WireFaultPlan plan) {
  RIF_CHECK_MSG(!started_, "install_faults after start");
  faults_ =
      std::make_unique<net::FaultInjectingTransport>(server_, std::move(plan));
  // install_faults and bind_metrics may arrive in either order.
  if (metrics_ != nullptr) {
    faults_->bind_metrics(*metrics_, metrics_prefix_ + "faults.");
  }
}

void RemoteWorkerPool::bind_metrics(runtime::MetricsRegistry& registry,
                                    const std::string& prefix) {
  RIF_CHECK_MSG(!started_, "bind_metrics after start");
  metrics_ = &registry;
  metrics_prefix_ = prefix;
  if (faults_ != nullptr) {
    faults_->bind_metrics(registry, prefix + "faults.");
  }
}

void RemoteWorkerPool::set_telemetry_sink(
    std::function<void(NodeId, const scp::TelemetryBody&)> sink) {
  RIF_CHECK_MSG(!started_, "set_telemetry_sink after start");
  telemetry_sink_ = std::move(sink);
}

void RemoteWorkerPool::start(NodeId first_node_id) {
  first_node_ = first_node_id;
  started_ = true;
  auto frame_cb = [this](net::SessionId s, std::vector<std::uint8_t> f) {
    on_frame(s, std::move(f));
  };
  auto closed_cb = [this](net::SessionId s) { on_closed(s); };
  if (faults_ != nullptr) {
    faults_->start(std::move(frame_cb), std::move(closed_cb));
  } else {
    server_.start(std::move(frame_cb), std::move(closed_cb));
  }
  if (sup_.heartbeat_seconds > 0.0 || sup_.hung_timeout_seconds > 0.0) {
    {
      std::lock_guard lock(mu_);
      sup_running_ = true;
    }
    sup_thread_ = std::thread([this] { supervision_loop(); });
  }
}

bool RemoteWorkerPool::route_send(net::SessionId session,
                                  const std::vector<std::uint8_t>& bytes) {
  if (faults_ != nullptr) return faults_->send(session, bytes);
  return server_.send(session, bytes);
}

void RemoteWorkerPool::supervision_loop() {
  // Tick a few times per period so a deadline is never missed by more
  // than a fraction of itself.
  double tick = 0.05;
  if (sup_.heartbeat_seconds > 0.0) {
    tick = std::min(tick, sup_.heartbeat_seconds / 4.0);
  }
  if (sup_.hung_timeout_seconds > 0.0) {
    tick = std::min(tick, sup_.hung_timeout_seconds / 4.0);
  }
  tick = std::max(tick, 0.002);

  for (;;) {
    std::vector<net::SessionId> evict;
    std::vector<std::pair<net::SessionId, NodeId>> ping;
    {
      std::unique_lock lock(mu_);
      sup_cv_.wait_for(lock, std::chrono::duration<double>(tick),
                       [&] { return !sup_running_; });
      if (!sup_running_) return;
      const auto now = Clock::now();
      for (Slot& s : slots_) {
        if (!s.alive->load()) continue;
        const double idle =
            std::chrono::duration<double>(now - s.last_activity).count();
        if (sup_.hung_timeout_seconds > 0.0 &&
            idle >= sup_.hung_timeout_seconds) {
          evict.push_back(s.session);
        } else if (sup_.heartbeat_seconds > 0.0 &&
                   idle >= sup_.heartbeat_seconds &&
                   std::chrono::duration<double>(now - s.last_ping).count() >=
                       sup_.heartbeat_seconds) {
          s.last_ping = now;
          ping.push_back({s.session, s.node});
        }
      }
    }
    for (const net::SessionId session : evict) {
      evictions_.fetch_add(1);
      if (metrics_ != nullptr) {
        metrics_->counter(metrics_prefix_ + "evictions").add(1);
      }
      RIF_TRACE_INSTANT("remote.evict");
      // Rate-limited: a chaos soak can evict in bursts, and the eviction
      // counter already carries the exact tally.
      RIF_LOG_EVERY(::rif::LogLevel::kWarn, "remote", 1.0,
                    "evicting hung worker on session "
                        << session << " (silent past "
                        << sup_.hung_timeout_seconds << "s)");
      // abort, not close: a hung peer may have stopped reading, and a
      // graceful drain would then never finish.
      server_.abort_session(session);
    }
    for (const auto& [session, node] : ping) {
      pings_.fetch_add(1);
      if (metrics_ != nullptr) {
        metrics_->counter(metrics_prefix_ + "pings").add(1);
      }
      send_timed_ping(session, node);
    }
  }
}

void RemoteWorkerPool::send_timed_ping(net::SessionId session, NodeId node) {
  scp::WireEnvelope env;
  env.kind = scp::FrameKind::kPing;
  env.dst_node = node;
  env.seq = ping_seq_.fetch_add(1) + 1;
  const auto now_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now().time_since_epoch())
          .count());
  {
    std::lock_guard lock(mu_);
    const auto it = by_session_.find(session);
    if (it != by_session_.end()) {
      auto& pending =
          slots_[static_cast<std::size_t>(it->second)].pending_pings;
      pending[env.seq] = now_ns;
      // Bound in-flight entries: a worker that never answers must not
      // grow this map forever.
      while (pending.size() > 32) pending.erase(pending.begin());
    }
  }
  route_send(session, env.encode());
}

void RemoteWorkerPool::spawn_local_worker() {
  RIF_CHECK_MSG(started_, "pool not started");
  int sv[2];
  RIF_CHECK_MSG(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) == 0,
                "socketpair failed");
  server_.adopt(sv[0]);
  local_threads_.emplace_back([fd = sv[1]] {
    net::SocketClient client;
    client.adopt(fd);
    serve_remote_worker(client);
    client.close();
  });
}

void RemoteWorkerPool::adopt_fd(int fd) {
  RIF_CHECK_MSG(started_, "pool not started");
  server_.adopt(fd);
}

void RemoteWorkerPool::kick(int worker) {
  net::SessionId session = net::kNoSession;
  {
    std::lock_guard lock(mu_);
    if (worker < 0 || worker >= static_cast<int>(slots_.size())) return;
    session = slots_[worker].session;
  }
  server_.close_session(session);
}

void RemoteWorkerPool::on_frame(net::SessionId session,
                                std::vector<std::uint8_t> frame) {
  // Trust boundary: anything can connect to the listener, so a malformed
  // envelope drops the session instead of aborting the poll thread.
  const std::optional<scp::WireEnvelope> decoded =
      scp::WireEnvelope::try_decode(frame);
  if (!decoded) {
    RIF_LOG_EVERY(::rif::LogLevel::kWarn, "remote", 1.0,
                  "malformed envelope on session " << session
                                                   << "; closing");
    if (metrics_ != nullptr) {
      metrics_->counter(metrics_prefix_ + "malformed").add(1);
    }
    server_.close_session(session);
    return;
  }
  const scp::WireEnvelope& env = *decoded;
  std::unique_lock lock(mu_);
  auto it = by_session_.find(session);
  if (it == by_session_.end()) {
    // First frame on a fresh session must be the handshake.
    if (env.kind != scp::FrameKind::kHello) return;
    const int worker = static_cast<int>(slots_.size());
    Slot slot;
    slot.session = session;
    slot.node = first_node_ + worker;
    slot.alive = std::make_unique<std::atomic<bool>>(true);
    slot.last_activity = Clock::now();
    slot.last_ping = slot.last_activity;
    by_session_[session] = worker;
    by_node_[slot.node] = worker;
    scp::WireEnvelope welcome;
    welcome.kind = scp::FrameKind::kWelcome;
    welcome.dst_node = slot.node;
    rif::Writer w;
    w.put<std::int32_t>(slot.node);
    welcome.payload = std::move(w).take();
    const NodeId node = slot.node;
    slots_.push_back(std::move(slot));
    lock.unlock();
    route_send(session, welcome.encode());
    // Clock-alignment burst: a handful of seq-tagged pings right at lease
    // time, so the median offset estimate exists before the first job's
    // telemetry arrives (supervision pings keep refining it later).
    for (int i = 0; i < 5; ++i) send_timed_ping(session, node);
    RIF_LOG_INFO("remote", "worker " << worker << " leased node " << node);
    cv_.notify_all();
    return;
  }
  // Any decoded frame proves the worker is alive.
  Slot& slot = slots_[static_cast<std::size_t>(it->second)];
  slot.last_activity = Clock::now();
  if (env.kind == scp::FrameKind::kPong) {
    // Liveness echo: refreshed the stamp above, never reaches the
    // coordinator — a pong mid-job must not look like protocol traffic.
    // A timestamped pong additionally yields one clock-offset sample:
    // the worker's steady clock minus the midpoint of our send/receive
    // stamps (the classic ping-echo estimate; the RTT bounds its error).
    pongs_.fetch_add(1);
    const auto t0 = slot.pending_pings.find(env.seq);
    if (t0 != slot.pending_pings.end() &&
        env.payload.size() == sizeof(std::uint64_t)) {
      rif::Reader r(env.payload);
      std::uint64_t worker_ns = 0;
      if (r.try_get(worker_ns) && r.exhausted()) {
        const auto t1 = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                slot.last_activity.time_since_epoch())
                .count());
        const std::uint64_t mid = t0->second + (t1 - t0->second) / 2;
        slot.clock_offsets.push_back(static_cast<std::int64_t>(worker_ns) -
                                     static_cast<std::int64_t>(mid));
        if (slot.clock_offsets.size() > 128) {
          slot.clock_offsets.erase(slot.clock_offsets.begin());
        }
      }
      slot.pending_pings.erase(t0);
    }
    lock.unlock();
    if (metrics_ != nullptr) {
      metrics_->counter(metrics_prefix_ + "pongs").add(1);
    }
    return;
  }
  if (env.kind == scp::FrameKind::kTelemetry) {
    // Telemetry bypasses the event queue: batches arrive between jobs too,
    // when nothing drains events, and must never stall or stale-poison the
    // protocol stream. Decode here (second trust boundary: the envelope
    // was sound, the body may not be) and hand the batch to the sink.
    const NodeId node = slot.node;
    lock.unlock();
    const std::optional<scp::TelemetryBody> body =
        scp::TelemetryBody::try_decode(env.payload);
    if (!body) {
      telemetry_rejected_.fetch_add(1);
      if (metrics_ != nullptr) {
        metrics_->counter(metrics_prefix_ + "telemetry_rejected").add(1);
      }
      RIF_LOG_EVERY(::rif::LogLevel::kWarn, "remote", 1.0,
                    "undecodable telemetry body from node "
                        << node << "; batch dropped");
      return;
    }
    telemetry_batches_.fetch_add(1);
    if (metrics_ != nullptr) {
      metrics_->counter(metrics_prefix_ + "telemetry_batches").add(1);
    }
    if (telemetry_sink_) telemetry_sink_(node, *body);
    return;
  }
  events_.push_back(Event{Event::Kind::kFrame, it->second, env});
  lock.unlock();
  cv_.notify_all();
}

std::int64_t RemoteWorkerPool::clock_offset_ns(NodeId node) const {
  std::lock_guard lock(mu_);
  const auto it = by_node_.find(node);
  if (it == by_node_.end()) return 0;
  const Slot& slot = slots_[static_cast<std::size_t>(it->second)];
  if (slot.clock_offsets.empty()) return 0;
  std::vector<std::int64_t> samples = slot.clock_offsets;
  const std::size_t mid = samples.size() / 2;
  std::nth_element(samples.begin(), samples.begin() + mid, samples.end());
  return samples[static_cast<std::size_t>(mid)];
}

void RemoteWorkerPool::on_closed(net::SessionId session) {
  std::unique_lock lock(mu_);
  auto it = by_session_.find(session);
  if (it == by_session_.end()) return;
  const int worker = it->second;
  // Only an UNEXPECTED closure counts as a disconnect — shutdown_workers
  // marks sessions dead before closing them.
  if (slots_[worker].alive->exchange(false)) {
    disconnects_.fetch_add(1);
    if (metrics_ != nullptr) {
      metrics_->counter(metrics_prefix_ + "disconnects").add(1);
    }
  }
  events_.push_back(Event{Event::Kind::kClosed, worker, {}});
  lock.unlock();
  cv_.notify_all();
}

double RemoteWorkerPool::seconds_since_activity(int worker) const {
  std::lock_guard lock(mu_);
  if (worker < 0 || worker >= static_cast<int>(slots_.size())) return -1.0;
  return std::chrono::duration<double>(
             Clock::now() - slots_[static_cast<std::size_t>(worker)]
                                .last_activity)
      .count();
}

int RemoteWorkerPool::wait_for_workers(int n, double timeout_seconds) {
  std::unique_lock lock(mu_);
  cv_.wait_for(lock,
               std::chrono::duration<double>(timeout_seconds),
               [&] { return static_cast<int>(slots_.size()) >= n; });
  return static_cast<int>(slots_.size());
}

int RemoteWorkerPool::worker_count() const {
  std::lock_guard lock(mu_);
  return static_cast<int>(slots_.size());
}

bool RemoteWorkerPool::alive(int worker) const {
  std::lock_guard lock(mu_);
  return worker >= 0 && worker < static_cast<int>(slots_.size()) &&
         slots_[worker].alive->load();
}

bool RemoteWorkerPool::node_alive(NodeId node) const {
  std::lock_guard lock(mu_);
  auto it = by_node_.find(node);
  if (it == by_node_.end()) return true;
  return slots_[it->second].alive->load();
}

NodeId RemoteWorkerPool::node_of(int worker) const {
  std::lock_guard lock(mu_);
  RIF_CHECK(worker >= 0 && worker < static_cast<int>(slots_.size()));
  return slots_[worker].node;
}

int RemoteWorkerPool::worker_of_node(NodeId node) const {
  std::lock_guard lock(mu_);
  auto it = by_node_.find(node);
  return it == by_node_.end() ? -1 : it->second;
}

bool RemoteWorkerPool::send(int worker, const scp::WireEnvelope& env) {
  net::SessionId session = net::kNoSession;
  {
    std::lock_guard lock(mu_);
    if (worker < 0 || worker >= static_cast<int>(slots_.size())) return false;
    if (!slots_[worker].alive->load()) return false;
    session = slots_[worker].session;
  }
  return route_send(session, env.encode());
}

std::optional<RemoteWorkerPool::Event> RemoteWorkerPool::poll_event(
    double timeout_seconds) {
  std::unique_lock lock(mu_);
  cv_.wait_for(lock, std::chrono::duration<double>(timeout_seconds),
               [&] { return !events_.empty(); });
  if (events_.empty()) return std::nullopt;
  Event e = std::move(events_.front());
  events_.pop_front();
  return e;
}

void RemoteWorkerPool::shutdown_workers() {
  scp::WireEnvelope bye;
  bye.kind = scp::FrameKind::kGoodbye;
  std::vector<net::SessionId> open;
  {
    std::lock_guard lock(mu_);
    for (const Slot& s : slots_) {
      if (s.alive->exchange(false)) open.push_back(s.session);
    }
  }
  const std::vector<std::uint8_t> frame = bye.encode();
  for (net::SessionId s : open) {
    server_.send(s, frame);
    server_.close_session(s);
  }
}

void RemoteWorkerPool::stop() {
  if (!started_) return;
  {
    std::lock_guard lock(mu_);
    sup_running_ = false;
  }
  sup_cv_.notify_all();
  if (sup_thread_.joinable()) sup_thread_.join();
  shutdown_workers();
  server_.stop();
  for (std::thread& t : local_threads_) {
    if (t.joinable()) t.join();
  }
  local_threads_.clear();
  started_ = false;
}

}  // namespace rif::cluster
