#include "cluster/remote_pool.h"

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <utility>

#include "cluster/remote_worker.h"
#include "support/check.h"
#include "support/log.h"
#include "support/serialize.h"

namespace rif::cluster {

bool RemoteWorkerPool::listen_tcp(std::uint16_t port) {
  return server_.listen_tcp(port);
}

bool RemoteWorkerPool::listen_unix(const std::string& path) {
  return server_.listen_unix(path);
}

void RemoteWorkerPool::start(NodeId first_node_id) {
  first_node_ = first_node_id;
  started_ = true;
  server_.start(
      [this](net::SessionId s, std::vector<std::uint8_t> f) {
        on_frame(s, std::move(f));
      },
      [this](net::SessionId s) { on_closed(s); });
}

void RemoteWorkerPool::spawn_local_worker() {
  RIF_CHECK_MSG(started_, "pool not started");
  int sv[2];
  RIF_CHECK_MSG(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) == 0,
                "socketpair failed");
  server_.adopt(sv[0]);
  local_threads_.emplace_back([fd = sv[1]] {
    net::SocketClient client;
    client.adopt(fd);
    serve_remote_worker(client);
    client.close();
  });
}

void RemoteWorkerPool::adopt_fd(int fd) {
  RIF_CHECK_MSG(started_, "pool not started");
  server_.adopt(fd);
}

void RemoteWorkerPool::kick(int worker) {
  net::SessionId session = net::kNoSession;
  {
    std::lock_guard lock(mu_);
    if (worker < 0 || worker >= static_cast<int>(slots_.size())) return;
    session = slots_[worker].session;
  }
  server_.close_session(session);
}

void RemoteWorkerPool::on_frame(net::SessionId session,
                                std::vector<std::uint8_t> frame) {
  // Trust boundary: anything can connect to the listener, so a malformed
  // envelope drops the session instead of aborting the poll thread.
  const std::optional<scp::WireEnvelope> decoded =
      scp::WireEnvelope::try_decode(frame);
  if (!decoded) {
    RIF_LOG_WARN("remote", "malformed envelope on session " << session
                                                            << "; closing");
    server_.close_session(session);
    return;
  }
  const scp::WireEnvelope& env = *decoded;
  std::unique_lock lock(mu_);
  auto it = by_session_.find(session);
  if (it == by_session_.end()) {
    // First frame on a fresh session must be the handshake.
    if (env.kind != scp::FrameKind::kHello) return;
    const int worker = static_cast<int>(slots_.size());
    Slot slot;
    slot.session = session;
    slot.node = first_node_ + worker;
    slot.alive = std::make_unique<std::atomic<bool>>(true);
    by_session_[session] = worker;
    by_node_[slot.node] = worker;
    scp::WireEnvelope welcome;
    welcome.kind = scp::FrameKind::kWelcome;
    welcome.dst_node = slot.node;
    rif::Writer w;
    w.put<std::int32_t>(slot.node);
    welcome.payload = std::move(w).take();
    const NodeId node = slot.node;
    slots_.push_back(std::move(slot));
    lock.unlock();
    server_.send(session, welcome.encode());
    RIF_LOG_INFO("remote", "worker " << worker << " leased node " << node);
    cv_.notify_all();
    return;
  }
  events_.push_back(Event{Event::Kind::kFrame, it->second, env});
  lock.unlock();
  cv_.notify_all();
}

void RemoteWorkerPool::on_closed(net::SessionId session) {
  std::unique_lock lock(mu_);
  auto it = by_session_.find(session);
  if (it == by_session_.end()) return;
  const int worker = it->second;
  // Only an UNEXPECTED closure counts as a disconnect — shutdown_workers
  // marks sessions dead before closing them.
  if (slots_[worker].alive->exchange(false)) disconnects_.fetch_add(1);
  events_.push_back(Event{Event::Kind::kClosed, worker, {}});
  lock.unlock();
  cv_.notify_all();
}

int RemoteWorkerPool::wait_for_workers(int n, double timeout_seconds) {
  std::unique_lock lock(mu_);
  cv_.wait_for(lock,
               std::chrono::duration<double>(timeout_seconds),
               [&] { return static_cast<int>(slots_.size()) >= n; });
  return static_cast<int>(slots_.size());
}

int RemoteWorkerPool::worker_count() const {
  std::lock_guard lock(mu_);
  return static_cast<int>(slots_.size());
}

bool RemoteWorkerPool::alive(int worker) const {
  std::lock_guard lock(mu_);
  return worker >= 0 && worker < static_cast<int>(slots_.size()) &&
         slots_[worker].alive->load();
}

bool RemoteWorkerPool::node_alive(NodeId node) const {
  std::lock_guard lock(mu_);
  auto it = by_node_.find(node);
  if (it == by_node_.end()) return true;
  return slots_[it->second].alive->load();
}

NodeId RemoteWorkerPool::node_of(int worker) const {
  std::lock_guard lock(mu_);
  RIF_CHECK(worker >= 0 && worker < static_cast<int>(slots_.size()));
  return slots_[worker].node;
}

int RemoteWorkerPool::worker_of_node(NodeId node) const {
  std::lock_guard lock(mu_);
  auto it = by_node_.find(node);
  return it == by_node_.end() ? -1 : it->second;
}

bool RemoteWorkerPool::send(int worker, const scp::WireEnvelope& env) {
  net::SessionId session = net::kNoSession;
  {
    std::lock_guard lock(mu_);
    if (worker < 0 || worker >= static_cast<int>(slots_.size())) return false;
    if (!slots_[worker].alive->load()) return false;
    session = slots_[worker].session;
  }
  return server_.send(session, env.encode());
}

std::optional<RemoteWorkerPool::Event> RemoteWorkerPool::poll_event(
    double timeout_seconds) {
  std::unique_lock lock(mu_);
  cv_.wait_for(lock, std::chrono::duration<double>(timeout_seconds),
               [&] { return !events_.empty(); });
  if (events_.empty()) return std::nullopt;
  Event e = std::move(events_.front());
  events_.pop_front();
  return e;
}

void RemoteWorkerPool::shutdown_workers() {
  scp::WireEnvelope bye;
  bye.kind = scp::FrameKind::kGoodbye;
  std::vector<net::SessionId> open;
  {
    std::lock_guard lock(mu_);
    for (const Slot& s : slots_) {
      if (s.alive->exchange(false)) open.push_back(s.session);
    }
  }
  const std::vector<std::uint8_t> frame = bye.encode();
  for (net::SessionId s : open) {
    server_.send(s, frame);
    server_.close_session(s);
  }
}

void RemoteWorkerPool::stop() {
  if (!started_) return;
  shutdown_workers();
  server_.stop();
  for (std::thread& t : local_threads_) {
    if (t.joinable()) t.join();
  }
  local_threads_.clear();
  started_ = false;
}

}  // namespace rif::cluster
