#include "cluster/failure_injector.h"

#include <cmath>

namespace rif::cluster {

void FailureInjector::schedule_crash(SimTime t, NodeId node,
                                     SimTime repair_after) {
  cluster_.simulation().schedule_at(t, [this, node, repair_after] {
    if (!cluster_.node(node).alive()) return;
    cluster_.fail_node(node);
    ++crashes_injected_;
    if (repair_after >= 0) {
      cluster_.simulation().schedule_after(
          repair_after, [this, node] { cluster_.restore_node(node); });
    }
  });
}

void FailureInjector::schedule(const std::vector<FailureEvent>& script) {
  for (const auto& ev : script) {
    schedule_crash(ev.time, ev.node, ev.repair_after);
  }
}

std::vector<FailureEvent> FailureInjector::schedule_poisson(
    Rng& rng, SimTime start, SimTime end, SimTime mean_interarrival,
    const std::vector<NodeId>& victims, SimTime repair_after) {
  RIF_CHECK(mean_interarrival > 0);
  RIF_CHECK(!victims.empty());
  std::vector<FailureEvent> script;
  SimTime t = start;
  for (;;) {
    const double gap =
        -std::log(1.0 - rng.uniform()) * to_seconds(mean_interarrival);
    t += from_seconds(gap);
    if (t >= end) break;
    const NodeId victim =
        victims[rng.uniform_u64(victims.size())];
    script.push_back({t, victim, repair_after});
  }
  schedule(script);
  return script;
}

}  // namespace rif::cluster
