// A simulated workstation.
//
// The paper's testbed is 16 Sun 300 MHz workstations; we model each as a
// single CPU that executes submitted compute requests FIFO at a configured
// flop rate. FIFO sharing is what makes co-located replicas cost what they
// cost in the paper: placing two worker replicas on one node doubles the
// virtual compute time, which is exactly the "factor of two" the evaluation
// expects from replication level 2.
//
// Failure is modelled with an epoch counter: fail() invalidates every
// in-flight compute completion scheduled under the previous epoch, so no
// callback of a dead process ever fires.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "sim/simulation.h"
#include "support/check.h"
#include "support/time.h"

namespace rif::cluster {

using NodeId = std::int32_t;
inline constexpr NodeId kNoNode = -1;

struct NodeConfig {
  /// Sustained floating-point rate. Default approximates a 300 MHz
  /// UltraSPARC running the paper's unoptimized, pointer-heavy C kernels.
  double flops_per_second = 20e6;
  /// Fixed per-compute-dispatch overhead (OS scheduling, cache refill).
  SimTime dispatch_overhead = from_micros(5);
  std::string name;
};

class Node {
 public:
  Node(sim::Simulation& sim, NodeId id, NodeConfig config)
      : sim_(sim), id_(id), config_(std::move(config)) {
    RIF_CHECK(config_.flops_per_second > 0);
  }

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] const NodeConfig& config() const { return config_; }
  [[nodiscard]] bool alive() const { return alive_; }
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

  /// Enqueue a compute request of `flops` floating-point operations; `done`
  /// runs when the CPU has executed it. Requests are serialized FIFO. The
  /// completion is silently discarded if the node fails in the meantime.
  void submit_compute(double flops, std::function<void()> done);

  /// Run `fn` on this node after `delay`, unless the node fails first.
  /// Does not occupy the CPU (models timers/interrupt context).
  void run_after(SimTime delay, std::function<void()> fn);

  /// Virtual time the CPU would need for `flops` with an idle queue.
  [[nodiscard]] SimTime compute_time(double flops) const {
    return config_.dispatch_overhead +
           from_seconds(flops / config_.flops_per_second);
  }

  /// Time at which the CPU queue drains (>= now when busy).
  [[nodiscard]] SimTime busy_until() const { return busy_until_; }

  /// Crash the node: all queued compute and timers die with it.
  void fail();

  /// Bring the node back (fresh epoch, empty CPU queue). Processes that
  /// lived here do NOT come back — the scp runtime must re-place them.
  void restore();

  /// Total flops this node has been asked to execute (accounting).
  [[nodiscard]] double flops_charged() const { return flops_charged_; }

 private:
  sim::Simulation& sim_;
  NodeId id_;
  NodeConfig config_;
  bool alive_ = true;
  std::uint64_t epoch_ = 0;
  SimTime busy_until_ = 0;
  double flops_charged_ = 0.0;
};

}  // namespace rif::cluster
