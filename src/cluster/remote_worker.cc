#include "cluster/remote_worker.h"

#include <map>
#include <string>
#include <optional>
#include <utility>
#include <vector>

#include "core/distributed/messages.h"
#include "core/distributed/shard_ops.h"
#include "obs/span_tracer.h"
#include "scp/wire.h"
#include "support/serialize.h"

namespace rif::cluster {
namespace {

/// One tile the worker has screened and keeps resident for the colour pass.
struct HeldTile {
  core::WireTile tile;
  std::vector<float> data;
  bool colored = false;
};

struct WorkerState {
  net::SocketClient& client;
  NodeId node = kNoNode;
  std::optional<scp::JobStartBody> job;
  std::map<std::int32_t, HeldTile> tiles;  ///< by tile index
  std::optional<core::TransformMsg> transform;
  RemoteWorkerStats stats;

  [[nodiscard]] bool send_app(scp::Message msg) {
    scp::WireEnvelope env;
    env.kind = scp::FrameKind::kApp;
    env.src_node = node;
    env.dst_node = 0;
    if (job) env.seq = static_cast<std::uint64_t>(job->job_id);  // job tag
    env.msg_type = msg.type;
    env.declared = msg.declared_bytes;
    env.payload = std::move(msg.payload);
    return client.send_frame(env.encode());
  }

  [[nodiscard]] bool request_work() {
    return send_app(scp::Message{core::kRequestWork, {}, 0});
  }

  [[nodiscard]] bool color_and_send(HeldTile& held) {
    RIF_TRACE_SPAN("remote.color_shard");
    core::ColorTileMsg color =
        core::color_shard(held.tile, held.data.data(), *transform);
    held.colored = true;
    ++stats.tiles_colored;
    return send_app(color.encode(0));
  }

  /// Corrupt body on a well-formed envelope: the frame is garbage but the
  /// stream is intact. Drop it — the coordinator's per-item deadline
  /// re-sends whatever it was carrying. (Contrast with an undecodable
  /// ENVELOPE, where framing itself can no longer be trusted and the serve
  /// loop disconnects.)
  [[nodiscard]] bool on_app(const scp::WireEnvelope& env) {
    const scp::Message msg = env.to_message();
    switch (msg.type) {
      case core::kTileAssign: {
        auto decoded = core::TileAssignMsg::try_decode(msg);
        if (!decoded) return true;
        core::TileAssignMsg assign = std::move(*decoded);
        // Ask for the next tile before computing this one — same
        // overlap idiom as the sim WorkerActor.
        if (!request_work()) return false;
        RIF_TRACE_SPAN("remote.screen_shard");
        core::ScreenResultMsg result = core::screen_shard(
            assign.tile, assign.data.data(), job->screening_threshold);
        ++stats.tiles_screened;
        HeldTile& held = tiles[assign.tile.index];
        held.tile = assign.tile;
        held.data = std::move(assign.data);
        held.colored = false;
        if (!send_app(result.encode(0))) return false;
        // A tile reassigned after the transform went out is coloured
        // immediately; nobody will send kTransform again.
        if (transform && !color_and_send(held)) return false;
        return true;
      }
      case core::kNoMoreTiles:
        return true;
      case core::kCovShard: {
        auto shard = core::CovShardMsg::try_decode(msg);
        if (!shard) return true;
        RIF_TRACE_SPAN("remote.cov_shard_sum");
        core::CovSumMsg sum = core::cov_shard_sum(*shard, job->bands);
        ++stats.shards_summed;
        return send_app(sum.encode(0));
      }
      case core::kTransform: {
        auto decoded = core::TransformMsg::try_decode(msg);
        if (!decoded) return true;
        transform = std::move(*decoded);
        for (auto& [index, held] : tiles) {
          if (!held.colored && !color_and_send(held)) return false;
        }
        return true;
      }
      default:
        return true;  // unknown application traffic: ignore
    }
  }
};

}  // namespace

RemoteWorkerStats serve_remote_worker(net::SocketClient& client) {
  WorkerState st{client};
  scp::WireEnvelope hello;
  hello.kind = scp::FrameKind::kHello;
  hello.payload = scp::HelloBody{}.encode();
  if (!client.send_frame(hello.encode())) return st.stats;

  std::vector<std::uint8_t> frame;
  while (client.read_frame(frame)) {
    // The service end of this socket is a peer process: a malformed frame
    // means a broken or hostile peer, so disconnect rather than abort.
    const std::optional<scp::WireEnvelope> decoded =
        scp::WireEnvelope::try_decode(frame);
    if (!decoded) return st.stats;
    const scp::WireEnvelope& env = *decoded;
    switch (env.kind) {
      case scp::FrameKind::kWelcome: {
        if (env.payload.size() != sizeof(std::int32_t)) return st.stats;
        rif::Reader r(env.payload);
        st.node = r.get<std::int32_t>();
        st.stats.node = st.node;
        // Each worker session gets its own named lane in the trace
        // export (the serve loop owns this thread).
        obs::SpanTracer::instance().set_thread_name(
            "remote-worker-" + std::to_string(st.node));
        break;
      }
      case scp::FrameKind::kJobStart: {
        auto job = scp::JobStartBody::try_decode(env.payload);
        if (!job) break;  // corrupt body: per-shard deadlines recover
        st.job = *job;
        st.tiles.clear();
        st.transform.reset();
        ++st.stats.jobs;
        if (!st.request_work()) return st.stats;
        break;
      }
      case scp::FrameKind::kApp:
        if (!st.job) break;  // stale traffic outside a job: drop
        // Drop frames tagged with another job's id (coordinator fell back
        // or moved on while this one was in flight).
        if (env.seq != static_cast<std::uint64_t>(st.job->job_id)) break;
        if (!st.on_app(env)) return st.stats;
        break;
      case scp::FrameKind::kJobEnd:
        st.job.reset();
        st.tiles.clear();
        st.transform.reset();
        break;
      case scp::FrameKind::kPing: {
        // Answer even mid-job: the pool evicts workers that go silent, and
        // an idle worker blocked in read_frame has nothing else to say.
        scp::WireEnvelope pong;
        pong.kind = scp::FrameKind::kPong;
        pong.src_node = st.node;
        pong.seq = env.seq;  // echo, so the pool could RTT-match if it cares
        if (!client.send_frame(pong.encode())) return st.stats;
        ++st.stats.pings_answered;
        break;
      }
      case scp::FrameKind::kGoodbye:
        st.stats.clean_exit = true;
        return st.stats;
      default:
        break;  // actor-runtime kinds never reach workers
    }
  }
  return st.stats;
}

}  // namespace rif::cluster
