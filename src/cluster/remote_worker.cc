#include "cluster/remote_worker.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/distributed/messages.h"
#include "core/distributed/shard_ops.h"
#include "runtime/metrics.h"
#include "scp/wire.h"
#include "support/log.h"
#include "support/serialize.h"

namespace rif::cluster {
namespace {

/// Absolute steady-clock ns — the worker's span clock. Shipped raw; the
/// coordinator's ping-echo offset estimate maps it onto its own timeline.
std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Pending-span backlog cap: a coordinator that stops draining telemetry
/// (or a partition that blocks sends) must not grow worker memory without
/// bound. Excess spans are dropped and counted.
constexpr std::size_t kMaxPendingSpans = 8192;

/// Histograms the worker ships with raw buckets (RegistrySnapshot only
/// carries summaries, so the flush walks the live series by name).
constexpr const char* kShippedHistograms[] = {
    "screen_seconds", "cov_seconds", "color_seconds"};

/// One tile the worker has screened and keeps resident for the colour pass.
struct HeldTile {
  core::WireTile tile;
  std::vector<float> data;
  bool colored = false;
};

struct WorkerState {
  net::SocketClient& client;
  RemoteWorkerOptions options;
  NodeId node = kNoNode;
  std::optional<scp::JobStartBody> job;
  std::map<std::int32_t, HeldTile> tiles;  ///< by tile index
  std::optional<core::TransformMsg> transform;
  RemoteWorkerStats stats;

  // Local telemetry: spans buffered for shipment, metrics accumulated in a
  // process-local registry (merged coordinator-side under
  // "remote.worker.<node>.").
  runtime::MetricsRegistry metrics;
  std::vector<scp::TelemetrySpan> pending_spans;
  std::vector<scp::TelemetryLog> pending_logs;
  std::uint64_t flush_index = 0;
  std::uint64_t last_flush_ns = 0;
  std::uint64_t job_start_ns = 0;

  /// Per-thread RIF_LOG capture target: the serve thread's own lines land
  /// here as structured records (bounded; excess dropped and counted) and
  /// ship on the next flush's final batch. Lines still reach stderr.
  void capture_log(const LogRecord& record) {
    if (!options.telemetry) return;
    if (pending_logs.size() >= options.max_pending_logs) {
      metrics.counter("logs_dropped").add();
      return;
    }
    scp::TelemetryLog l;
    l.level = static_cast<std::uint8_t>(record.level);
    l.component = record.component;
    l.message = record.message;
    l.job = record.job >= 0 ? record.job : current_job();
    l.ts_ns = steady_ns();
    pending_logs.push_back(std::move(l));
  }

  [[nodiscard]] bool send_app(scp::Message msg) {
    scp::WireEnvelope env;
    env.kind = scp::FrameKind::kApp;
    env.src_node = node;
    env.dst_node = 0;
    if (job) env.seq = static_cast<std::uint64_t>(job->job_id);  // job tag
    env.msg_type = msg.type;
    env.declared = msg.declared_bytes;
    env.payload = std::move(msg.payload);
    return client.send_frame(env.encode());
  }

  [[nodiscard]] bool request_work() {
    return send_app(scp::Message{core::kRequestWork, {}, 0});
  }

  // --- telemetry recording -------------------------------------------------

  [[nodiscard]] std::int64_t current_job() const {
    return job ? job->job_id : -1;
  }

  /// Record a completed interval as an 'X' span and fold its duration into
  /// the matching latency histogram (when one is wired for the stage).
  void record_span(const char* name, std::uint64_t t0,
                   const char* histogram = nullptr) {
    const std::uint64_t t1 = steady_ns();
    if (histogram != nullptr) {
      metrics.histogram(histogram)
          .observe(static_cast<double>(t1 - t0) / 1e9);
    }
    if (!options.telemetry) return;
    if (pending_spans.size() >= kMaxPendingSpans) {
      metrics.counter("spans_dropped").add();
      return;
    }
    pending_spans.push_back(
        {name, t0, t1 - t0, current_job(), 0.0, 'X'});
  }

  /// Ship pending spans and the cumulative metrics state. `force` is the
  /// job-end path (always flush); the periodic path rate-limits itself.
  /// Send failure is surfaced so the serve loop exits like any other send.
  [[nodiscard]] bool flush_telemetry(bool force) {
    if (!options.telemetry || node == kNoNode) return true;
    const std::uint64_t now = steady_ns();
    const auto period_ns = static_cast<std::uint64_t>(
        options.telemetry_flush_seconds > 0.0
            ? options.telemetry_flush_seconds * 1e9
            : 0.0);
    if (!force && now - last_flush_ns < period_ns) return true;
    if (!force && pending_spans.empty() && pending_logs.empty()) return true;
    last_flush_ns = now;

    const std::size_t batch_cap =
        options.max_batch_spans > 0 ? options.max_batch_spans : 1;
    std::size_t sent = 0;
    do {
      scp::TelemetryBody body;
      body.job_id = current_job();
      body.flush_index = ++flush_index;
      const std::size_t n =
          std::min(batch_cap, pending_spans.size() - sent);
      body.spans.assign(pending_spans.begin() + sent,
                        pending_spans.begin() + sent + n);
      sent += n;
      if (sent >= pending_spans.size()) {
        // Metrics and buffered log records ride on the final batch only:
        // metrics are cumulative totals, so one copy per flush is enough;
        // logs ship once each.
        stats.logs_shipped += pending_logs.size();
        if (!pending_logs.empty()) {
          metrics.counter("logs_shipped")
              .add(static_cast<std::uint64_t>(pending_logs.size()));
        }
        body.logs = std::move(pending_logs);
        pending_logs.clear();
        const runtime::RegistrySnapshot snap = metrics.snapshot();
        for (const auto& [name, value] : snap.counters) {
          body.counters.emplace_back(name, value);
        }
        for (const char* name : kShippedHistograms) {
          const runtime::Histogram* h = metrics.find_histogram(name);
          if (h == nullptr || h->count() == 0) continue;
          scp::TelemetryHistogram th;
          th.name = name;
          th.count = h->count();
          th.sum = h->sum();
          th.min = h->min();
          th.max = h->max();
          th.buckets.resize(scp::kTelemetryHistogramBuckets);
          for (int b = 0; b < runtime::Histogram::kBuckets; ++b) {
            th.buckets[static_cast<std::size_t>(b)] = h->bucket(b);
          }
          body.histograms.push_back(std::move(th));
        }
      }
      scp::WireEnvelope env;
      env.kind = scp::FrameKind::kTelemetry;
      env.src_node = node;
      env.dst_node = 0;
      if (body.job_id >= 0) {
        env.seq = static_cast<std::uint64_t>(body.job_id);
      }
      env.payload = body.encode();
      if (!client.send_frame(env.encode())) return false;
      ++stats.telemetry_flushes;
      metrics.counter("telemetry_flushes").add();
    } while (sent < pending_spans.size());
    pending_spans.clear();
    return true;
  }

  // --- application traffic -------------------------------------------------

  [[nodiscard]] bool color_and_send(HeldTile& held) {
    const std::uint64_t t0 = steady_ns();
    core::ColorTileMsg color =
        core::color_shard(held.tile, held.data.data(), *transform);
    held.colored = true;
    ++stats.tiles_colored;
    metrics.counter("tiles_colored").add();
    record_span("remote.color_shard", t0, "color_seconds");
    return send_app(color.encode(0));
  }

  /// Corrupt body on a well-formed envelope: the frame is garbage but the
  /// stream is intact. Drop it — the coordinator's per-item deadline
  /// re-sends whatever it was carrying. (Contrast with an undecodable
  /// ENVELOPE, where framing itself can no longer be trusted and the serve
  /// loop disconnects.)
  [[nodiscard]] bool on_app(const scp::WireEnvelope& env) {
    const scp::Message msg = env.to_message();
    switch (msg.type) {
      case core::kTileAssign: {
        auto decoded = core::TileAssignMsg::try_decode(msg);
        if (!decoded) return true;
        core::TileAssignMsg assign = std::move(*decoded);
        // Ask for the next tile before computing this one — same
        // overlap idiom as the sim WorkerActor.
        if (!request_work()) return false;
        const std::uint64_t t0 = steady_ns();
        core::ScreenResultMsg result = core::screen_shard(
            assign.tile, assign.data.data(), job->screening_threshold);
        ++stats.tiles_screened;
        metrics.counter("tiles_screened").add();
        record_span("remote.screen_shard", t0, "screen_seconds");
        HeldTile& held = tiles[assign.tile.index];
        held.tile = assign.tile;
        held.data = std::move(assign.data);
        held.colored = false;
        if (!send_app(result.encode(0))) return false;
        // A tile reassigned after the transform went out is coloured
        // immediately; nobody will send kTransform again.
        if (transform && !color_and_send(held)) return false;
        return true;
      }
      case core::kNoMoreTiles:
        return true;
      case core::kCovShard: {
        auto shard = core::CovShardMsg::try_decode(msg);
        if (!shard) return true;
        const std::uint64_t t0 = steady_ns();
        core::CovSumMsg sum = core::cov_shard_sum(*shard, job->bands);
        ++stats.shards_summed;
        metrics.counter("shards_summed").add();
        record_span("remote.cov_shard_sum", t0, "cov_seconds");
        return send_app(sum.encode(0));
      }
      case core::kTransform: {
        auto decoded = core::TransformMsg::try_decode(msg);
        if (!decoded) return true;
        transform = std::move(*decoded);
        for (auto& [index, held] : tiles) {
          if (!held.colored && !color_and_send(held)) return false;
        }
        return true;
      }
      default:
        return true;  // unknown application traffic: ignore
    }
  }
};

}  // namespace

/// Routes the serve thread's RIF_LOG lines into WorkerState::capture_log
/// for the life of the loop; restores on every exit path. Per-thread, so
/// in-process workers (spawn_local_worker) never capture each other's or
/// the coordinator's lines.
class LogCaptureScope {
 public:
  explicit LogCaptureScope(WorkerState& st)
      : fn_([&st](const LogRecord& record) { st.capture_log(record); }) {
    log_set_thread_capture(&fn_);
  }
  ~LogCaptureScope() { log_set_thread_capture(nullptr); }
  LogCaptureScope(const LogCaptureScope&) = delete;
  LogCaptureScope& operator=(const LogCaptureScope&) = delete;

 private:
  std::function<void(const LogRecord&)> fn_;
};

RemoteWorkerStats serve_remote_worker(net::SocketClient& client,
                                      const RemoteWorkerOptions& options) {
  WorkerState st{client, options};
  LogCaptureScope log_capture(st);
  scp::WireEnvelope hello;
  hello.kind = scp::FrameKind::kHello;
  hello.payload = scp::HelloBody{}.encode();
  if (!client.send_frame(hello.encode())) return st.stats;

  std::vector<std::uint8_t> frame;
  while (client.read_frame(frame)) {
    // The service end of this socket is a peer process: a malformed frame
    // means a broken or hostile peer, so disconnect rather than abort.
    const std::optional<scp::WireEnvelope> decoded =
        scp::WireEnvelope::try_decode(frame);
    if (!decoded) return st.stats;
    const scp::WireEnvelope& env = *decoded;
    switch (env.kind) {
      case scp::FrameKind::kWelcome: {
        if (env.payload.size() != sizeof(std::int32_t)) return st.stats;
        rif::Reader r(env.payload);
        st.node = r.get<std::int32_t>();
        st.stats.node = st.node;
        RIF_LOG_INFO("worker", "leased in as node " << st.node);
        break;
      }
      case scp::FrameKind::kJobStart: {
        auto job = scp::JobStartBody::try_decode(env.payload);
        if (!job) break;  // corrupt body: per-shard deadlines recover
        st.job = *job;
        st.tiles.clear();
        st.transform.reset();
        ++st.stats.jobs;
        st.metrics.counter("jobs").add();
        st.job_start_ns = steady_ns();
        RIF_LOG_INFO("worker", "job " << st.job->job_id << " start ("
                                      << st.job->width << "x"
                                      << st.job->height << "x"
                                      << st.job->bands << ")");
        if (!st.request_work()) return st.stats;
        break;
      }
      case scp::FrameKind::kApp:
        if (!st.job) break;  // stale traffic outside a job: drop
        // Drop frames tagged with another job's id (coordinator fell back
        // or moved on while this one was in flight).
        if (env.seq != static_cast<std::uint64_t>(st.job->job_id)) break;
        if (!st.on_app(env)) return st.stats;
        break;
      case scp::FrameKind::kJobEnd:
        // Record the whole-job span and force-flush before forgetting the
        // job: the coordinator is about to finish the job and wants its
        // lane complete.
        if (st.job) {
          st.record_span(scp::kJobSpanName, st.job_start_ns);
          RIF_LOG_INFO("worker",
                       "job " << st.job->job_id << " end: screened "
                              << st.stats.tiles_screened << ", summed "
                              << st.stats.shards_summed << ", colored "
                              << st.stats.tiles_colored);
        }
        if (!st.flush_telemetry(/*force=*/true)) return st.stats;
        st.job.reset();
        st.tiles.clear();
        st.transform.reset();
        break;
      case scp::FrameKind::kPing: {
        // Answer even mid-job: the pool evicts workers that go silent, and
        // an idle worker blocked in read_frame has nothing else to say.
        // The payload carries our steady clock so the pool's ping-echo
        // estimator can place our span timestamps on its own timeline.
        scp::WireEnvelope pong;
        pong.kind = scp::FrameKind::kPong;
        pong.src_node = st.node;
        pong.seq = env.seq;  // echo; the pool RTT-matches by seq
        rif::Writer w;
        w.put(steady_ns());
        pong.payload = std::move(w).take();
        if (!client.send_frame(pong.encode())) return st.stats;
        ++st.stats.pings_answered;
        st.metrics.counter("pings_answered").add();
        break;
      }
      case scp::FrameKind::kGoodbye:
        st.stats.clean_exit = true;
        return st.stats;
      default:
        break;  // actor-runtime kinds never reach workers
    }
    // Periodic shipment rides the frame loop: between frames the worker is
    // blocked in read_frame with nothing to say anyway.
    if (!st.flush_telemetry(/*force=*/false)) return st.stats;
  }
  return st.stats;
}

}  // namespace rif::cluster
