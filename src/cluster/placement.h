// Replica placement policies.
//
// When the resiliency layer regenerates a lost replica it must choose a
// host "with sufficient resources" (paper §2, Resource Management). The
// paper uses a simple manager/worker scheme; we provide the two policies it
// implies — round-robin for initial placement and least-loaded for
// regeneration — behind one interface so alternatives can be ablated.
#pragma once

#include <unordered_map>
#include <vector>

#include "cluster/cluster.h"

namespace rif::cluster {

/// Tracks how many logical processes each node hosts and answers placement
/// queries. The scp runtime updates the load book-keeping as processes are
/// spawned, killed and regenerated.
class PlacementPolicy {
 public:
  explicit PlacementPolicy(Cluster& cluster) : cluster_(cluster) {}
  virtual ~PlacementPolicy() = default;

  void add_load(NodeId node) { ++load_[node]; }
  void remove_load(NodeId node) {
    auto it = load_.find(node);
    if (it != load_.end() && it->second > 0) --it->second;
  }
  [[nodiscard]] int load(NodeId node) const {
    auto it = load_.find(node);
    return it == load_.end() ? 0 : it->second;
  }

  /// Pick an alive node not in `excluded`; kNoNode if none qualifies.
  [[nodiscard]] virtual NodeId pick(
      const std::vector<NodeId>& excluded) = 0;

 protected:
  [[nodiscard]] bool eligible(NodeId id,
                              const std::vector<NodeId>& excluded) const;

  Cluster& cluster_;
  std::unordered_map<NodeId, int> load_;
};

/// Cycles through nodes in id order. Deterministic initial layout.
class RoundRobinPlacement final : public PlacementPolicy {
 public:
  using PlacementPolicy::PlacementPolicy;
  [[nodiscard]] NodeId pick(const std::vector<NodeId>& excluded) override;

 private:
  NodeId cursor_ = 0;
};

/// Picks the alive node with the fewest hosted processes (lowest id breaks
/// ties). This is the regeneration policy: it spreads re-created replicas
/// away from hot spots.
class LeastLoadedPlacement final : public PlacementPolicy {
 public:
  using PlacementPolicy::PlacementPolicy;
  [[nodiscard]] NodeId pick(const std::vector<NodeId>& excluded) override;
};

}  // namespace rif::cluster
