// The simulated machine room: a set of nodes plus the shared trace recorder.
#pragma once

#include <memory>
#include <vector>

#include "cluster/node.h"
#include "sim/simulation.h"
#include "sim/trace.h"
#include "support/check.h"

namespace rif::cluster {

class Cluster {
 public:
  explicit Cluster(sim::Simulation& sim) : sim_(sim) {}

  /// Add one node; returns its id (dense, starting at 0).
  NodeId add_node(NodeConfig config = {});

  /// Add `n` identical nodes.
  void add_nodes(int n, const NodeConfig& config = {});

  [[nodiscard]] Node& node(NodeId id) {
    RIF_CHECK(id >= 0 && static_cast<std::size_t>(id) < nodes_.size());
    return *nodes_[id];
  }
  [[nodiscard]] const Node& node(NodeId id) const {
    RIF_CHECK(id >= 0 && static_cast<std::size_t>(id) < nodes_.size());
    return *nodes_[id];
  }

  [[nodiscard]] int size() const { return static_cast<int>(nodes_.size()); }
  [[nodiscard]] sim::Simulation& simulation() { return sim_; }
  [[nodiscard]] sim::TraceRecorder& trace() { return trace_; }

  [[nodiscard]] std::vector<NodeId> alive_nodes() const;
  [[nodiscard]] int alive_count() const;

  /// Crash a node now, recording a trace event.
  void fail_node(NodeId id);
  /// Restore a node now, recording a trace event.
  void restore_node(NodeId id);

 private:
  sim::Simulation& sim_;
  sim::TraceRecorder trace_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

}  // namespace rif::cluster
