// Server side of the remote-worker plane: accepts rif_worker connections,
// runs the kHello -> kWelcome handshake that leases each worker a NodeId,
// and funnels every inbound frame / disconnect into one event queue the
// coordinator drains synchronously. Liveness is tracked with atomics so the
// scheduler's placement filter can consult it without touching the poll
// thread's locks.
//
// Liveness supervision (opt-in via configure_supervision): every decoded
// frame from a worker refreshes its last-activity stamp; a worker idle past
// the heartbeat period is sent kPing (the serve loop answers kPong, which
// refreshes the stamp and is swallowed here — the coordinator never sees
// it); a worker silent past the hung timeout is EVICTED — its session is
// aborted, which fires the same on_closed path as a real disconnect, so the
// coordinator's requeue machinery handles a hang exactly like a crash. The
// distinction survives in the counters: evictions() counts workers we gave
// up on, disconnects() counts every unexpected closure (evictions
// included). A hung timeout must exceed the longest single shard
// computation — a worker crunching a covariance shard reads no pings until
// it finishes.
//
// Chaos testing (opt-in via install_faults): a net::FaultInjectingTransport
// is interposed at the frame boundary, so every scripted drop / delay /
// corruption / partition / kill exercises the exact supervision and
// requeue paths above.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "net/fault_injection.h"
#include "net/socket_transport.h"
#include "runtime/metrics.h"
#include "scp/wire.h"

namespace rif::cluster {

/// Liveness knobs. Zeros disable the corresponding behaviour; with both
/// zero no supervision thread runs at all (the seed's behaviour).
struct SupervisionConfig {
  /// Ping a worker that has been silent this long (seconds). 0 = no pings.
  double heartbeat_seconds = 0.0;
  /// Evict a worker silent this long (seconds). 0 = never evict. Must
  /// comfortably exceed the heartbeat period AND the longest shard compute.
  double hung_timeout_seconds = 0.0;
};

class RemoteWorkerPool {
 public:
  struct Event {
    enum class Kind { kFrame, kClosed };
    Kind kind = Kind::kFrame;
    int worker = -1;               ///< pool index, dense from 0
    scp::WireEnvelope env;         ///< kFrame only
  };

  RemoteWorkerPool() = default;
  ~RemoteWorkerPool() { stop(); }
  RemoteWorkerPool(const RemoteWorkerPool&) = delete;
  RemoteWorkerPool& operator=(const RemoteWorkerPool&) = delete;

  /// Bind before start(). Port 0 picks an ephemeral port (see port()).
  [[nodiscard]] bool listen_tcp(std::uint16_t port);
  [[nodiscard]] bool listen_unix(const std::string& path);
  [[nodiscard]] std::uint16_t port() const { return server_.port(); }

  /// Begin accepting workers. Welcomed workers are assigned NodeIds
  /// `first_node_id`, `first_node_id + 1`, ... in connection order.
  void start(NodeId first_node_id);

  /// Enable heartbeat/eviction supervision. Call before start().
  void configure_supervision(const SupervisionConfig& config);

  /// Interpose a fault-injection layer at the frame boundary (chaos
  /// tests). Call before start(); the plan is fixed for the pool's life.
  void install_faults(net::WireFaultPlan plan);

  /// Publish supervision counters (`<prefix>pings`, `<prefix>pongs`,
  /// `<prefix>evictions`, `<prefix>disconnects`, `<prefix>malformed`) and,
  /// when faults are installed, the fault layer's counters under
  /// `<prefix>faults.`. Call before start().
  void bind_metrics(runtime::MetricsRegistry& registry,
                    const std::string& prefix = "remote.");

  /// Receiver for decoded kTelemetry batches. Called on the poll thread,
  /// outside the pool lock, with the sender's leased NodeId. Telemetry
  /// never enters the event queue — it flows whether or not a job is
  /// draining events. A batch whose BODY fails to decode is counted
  /// (telemetry_rejected) and dropped with the session kept: degraded
  /// telemetry must not kill a healthy compute session. Set before start().
  void set_telemetry_sink(
      std::function<void(NodeId, const scp::TelemetryBody&)> sink);

  /// Spawn an in-process worker over a socketpair (tests, local fallback
  /// capacity). Runs serve_remote_worker() on its own thread.
  void spawn_local_worker();

  /// Adopt an already-connected fd as a worker session (the other end runs
  /// its own client — e.g. a test worker with scripted failures).
  void adopt_fd(int fd);

  /// Forcibly drop a worker's connection (crash injection in tests).
  void kick(int worker);

  /// Block until `n` workers have completed the handshake (or timeout).
  /// Returns the number welcomed so far.
  int wait_for_workers(int n, double timeout_seconds);

  [[nodiscard]] int worker_count() const;
  [[nodiscard]] bool alive(int worker) const;
  /// Liveness keyed by the leased NodeId; true for ids this pool never
  /// issued so host nodes pass the filter untouched.
  [[nodiscard]] bool node_alive(NodeId node) const;
  [[nodiscard]] NodeId node_of(int worker) const;
  [[nodiscard]] int worker_of_node(NodeId node) const;
  [[nodiscard]] int disconnects() const { return disconnects_.load(); }
  /// Workers evicted by supervision (a subset of disconnects()).
  [[nodiscard]] int evictions() const { return evictions_.load(); }
  [[nodiscard]] std::uint64_t pings_sent() const { return pings_.load(); }
  [[nodiscard]] std::uint64_t pongs_received() const { return pongs_.load(); }
  /// kTelemetry batches whose body decoded (handed to the sink) / didn't.
  [[nodiscard]] std::uint64_t telemetry_batches() const {
    return telemetry_batches_.load();
  }
  [[nodiscard]] std::uint64_t telemetry_rejected() const {
    return telemetry_rejected_.load();
  }
  /// Ping-echo clock estimate for a leased node: median over the session's
  /// samples of (worker steady ns − coordinator steady ns), so a worker
  /// timestamp t maps onto the coordinator clock as t − offset. 0 until a
  /// timestamped pong arrives (the same-machine truth).
  [[nodiscard]] std::int64_t clock_offset_ns(NodeId node) const;
  /// Seconds since the last decoded frame from `worker` (tests).
  [[nodiscard]] double seconds_since_activity(int worker) const;

  /// Frame and queue one envelope to a worker. False if it is gone.
  bool send(int worker, const scp::WireEnvelope& env);

  /// Wait up to `timeout_seconds` for the next frame or disconnect.
  std::optional<Event> poll_event(double timeout_seconds);

  /// kGoodbye to every live worker, then drain their sockets.
  void shutdown_workers();

  void stop();

 private:
  using Clock = std::chrono::steady_clock;

  struct Slot {
    net::SessionId session = net::kNoSession;
    NodeId node = kNoNode;
    std::unique_ptr<std::atomic<bool>> alive;
    Clock::time_point last_activity;  ///< last decoded frame (under mu_)
    Clock::time_point last_ping;      ///< last kPing sent (under mu_)
    /// In-flight seq-tagged pings: seq -> coordinator send stamp (ns).
    /// Bounded; a pong that misses the window contributes no sample.
    std::map<std::uint64_t, std::uint64_t> pending_pings;
    /// Ping-echo offset samples (worker ns - coordinator midpoint ns).
    std::vector<std::int64_t> clock_offsets;
  };

  void on_frame(net::SessionId session, std::vector<std::uint8_t> frame);
  void on_closed(net::SessionId session);
  void supervision_loop();
  /// Route one framed envelope to a session — through the fault layer
  /// when one is installed.
  bool route_send(net::SessionId session,
                  const std::vector<std::uint8_t>& bytes);
  /// Send one seq-tagged kPing and record its send stamp for the
  /// ping-echo clock estimator. Takes mu_ briefly; call unlocked.
  void send_timed_ping(net::SessionId session, NodeId node);

  net::SocketServer server_;
  std::unique_ptr<net::FaultInjectingTransport> faults_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Slot> slots_;                  ///< by worker index
  std::map<net::SessionId, int> by_session_;
  std::map<NodeId, int> by_node_;
  std::deque<Event> events_;
  NodeId first_node_ = kNoNode;
  std::atomic<int> disconnects_{0};
  std::atomic<int> evictions_{0};
  std::atomic<std::uint64_t> pings_{0};
  std::atomic<std::uint64_t> pongs_{0};
  std::atomic<std::uint64_t> ping_seq_{0};
  std::atomic<std::uint64_t> telemetry_batches_{0};
  std::atomic<std::uint64_t> telemetry_rejected_{0};
  std::function<void(NodeId, const scp::TelemetryBody&)> telemetry_sink_;
  std::vector<std::thread> local_threads_;
  bool started_ = false;

  SupervisionConfig sup_;
  std::thread sup_thread_;
  std::condition_variable sup_cv_;
  bool sup_running_ = false;  ///< under mu_

  runtime::MetricsRegistry* metrics_ = nullptr;
  std::string metrics_prefix_;
};

}  // namespace rif::cluster
