// Server side of the remote-worker plane: accepts rif_worker connections,
// runs the kHello -> kWelcome handshake that leases each worker a NodeId,
// and funnels every inbound frame / disconnect into one event queue the
// coordinator drains synchronously. Liveness is tracked with atomics so the
// scheduler's placement filter can consult it without touching the poll
// thread's locks.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "net/socket_transport.h"
#include "scp/wire.h"

namespace rif::cluster {

class RemoteWorkerPool {
 public:
  struct Event {
    enum class Kind { kFrame, kClosed };
    Kind kind = Kind::kFrame;
    int worker = -1;               ///< pool index, dense from 0
    scp::WireEnvelope env;         ///< kFrame only
  };

  RemoteWorkerPool() = default;
  ~RemoteWorkerPool() { stop(); }
  RemoteWorkerPool(const RemoteWorkerPool&) = delete;
  RemoteWorkerPool& operator=(const RemoteWorkerPool&) = delete;

  /// Bind before start(). Port 0 picks an ephemeral port (see port()).
  [[nodiscard]] bool listen_tcp(std::uint16_t port);
  [[nodiscard]] bool listen_unix(const std::string& path);
  [[nodiscard]] std::uint16_t port() const { return server_.port(); }

  /// Begin accepting workers. Welcomed workers are assigned NodeIds
  /// `first_node_id`, `first_node_id + 1`, ... in connection order.
  void start(NodeId first_node_id);

  /// Spawn an in-process worker over a socketpair (tests, local fallback
  /// capacity). Runs serve_remote_worker() on its own thread.
  void spawn_local_worker();

  /// Adopt an already-connected fd as a worker session (the other end runs
  /// its own client — e.g. a test worker with scripted failures).
  void adopt_fd(int fd);

  /// Forcibly drop a worker's connection (crash injection in tests).
  void kick(int worker);

  /// Block until `n` workers have completed the handshake (or timeout).
  /// Returns the number welcomed so far.
  int wait_for_workers(int n, double timeout_seconds);

  [[nodiscard]] int worker_count() const;
  [[nodiscard]] bool alive(int worker) const;
  /// Liveness keyed by the leased NodeId; true for ids this pool never
  /// issued so host nodes pass the filter untouched.
  [[nodiscard]] bool node_alive(NodeId node) const;
  [[nodiscard]] NodeId node_of(int worker) const;
  [[nodiscard]] int worker_of_node(NodeId node) const;
  [[nodiscard]] int disconnects() const { return disconnects_.load(); }

  /// Frame and queue one envelope to a worker. False if it is gone.
  bool send(int worker, const scp::WireEnvelope& env);

  /// Wait up to `timeout_seconds` for the next frame or disconnect.
  std::optional<Event> poll_event(double timeout_seconds);

  /// kGoodbye to every live worker, then drain their sockets.
  void shutdown_workers();

  void stop();

 private:
  struct Slot {
    net::SessionId session = net::kNoSession;
    NodeId node = kNoNode;
    std::unique_ptr<std::atomic<bool>> alive;
  };

  void on_frame(net::SessionId session, std::vector<std::uint8_t> frame);
  void on_closed(net::SessionId session);

  net::SocketServer server_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Slot> slots_;                  ///< by worker index
  std::map<net::SessionId, int> by_session_;
  std::map<NodeId, int> by_node_;
  std::deque<Event> events_;
  NodeId first_node_ = kNoNode;
  std::atomic<int> disconnects_{0};
  std::vector<std::thread> local_threads_;
  bool started_ = false;
};

}  // namespace rif::cluster
