// The worker side of the remote fusion protocol — the serve loop shared by
// the `rif_worker` executable and by in-process test workers (which run it
// on one end of a socketpair). Strictly reactive: the worker sends kHello,
// then answers whatever the service asks until kGoodbye or disconnect.
//
// The shard computations are the exact same kernels the sim's WorkerActor
// runs (core/distributed/shard_ops.h), so a composite assembled from remote
// replies is byte-identical to the sim-transport run by construction.
#pragma once

#include <cstdint>

#include "net/socket_transport.h"

namespace rif::cluster {

struct RemoteWorkerStats {
  std::int32_t node = -1;  ///< node id the service welcomed us as
  std::uint64_t jobs = 0;
  std::uint64_t tiles_screened = 0;
  std::uint64_t shards_summed = 0;
  std::uint64_t tiles_colored = 0;
  std::uint64_t pings_answered = 0;  ///< liveness probes echoed back
  std::uint64_t telemetry_flushes = 0;  ///< kTelemetry batches shipped
  std::uint64_t logs_shipped = 0;  ///< structured log records shipped
  bool clean_exit = false;  ///< true when the service said kGoodbye
};

struct RemoteWorkerOptions {
  /// Ship telemetry (spans + local metrics) back to the service. Spans are
  /// recorded in-process and flushed as kTelemetry batches on job end and
  /// on the periodic timer — fire-and-forget, the serve loop never blocks
  /// on telemetry.
  bool telemetry = true;
  /// Minimum seconds between periodic flushes (job end always flushes).
  double telemetry_flush_seconds = 0.25;
  /// Spans per kTelemetry batch; a longer backlog ships as several batches.
  std::size_t max_batch_spans = 2048;
  /// Structured RIF_LOG records buffered between flushes (the serve loop's
  /// own lines, captured per-thread). The cap rate-limits shipment: excess
  /// records are dropped and counted (logs_dropped), never queued.
  std::size_t max_pending_logs = 256;
};

/// Run the worker protocol on an already-connected client until the service
/// says goodbye or the connection drops. Blocking; single-threaded.
RemoteWorkerStats serve_remote_worker(net::SocketClient& client,
                                      const RemoteWorkerOptions& options = {});

}  // namespace rif::cluster
