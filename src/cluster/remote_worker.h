// The worker side of the remote fusion protocol — the serve loop shared by
// the `rif_worker` executable and by in-process test workers (which run it
// on one end of a socketpair). Strictly reactive: the worker sends kHello,
// then answers whatever the service asks until kGoodbye or disconnect.
//
// The shard computations are the exact same kernels the sim's WorkerActor
// runs (core/distributed/shard_ops.h), so a composite assembled from remote
// replies is byte-identical to the sim-transport run by construction.
#pragma once

#include <cstdint>

#include "net/socket_transport.h"

namespace rif::cluster {

struct RemoteWorkerStats {
  std::int32_t node = -1;  ///< node id the service welcomed us as
  std::uint64_t jobs = 0;
  std::uint64_t tiles_screened = 0;
  std::uint64_t shards_summed = 0;
  std::uint64_t tiles_colored = 0;
  std::uint64_t pings_answered = 0;  ///< liveness probes echoed back
  bool clean_exit = false;  ///< true when the service said kGoodbye
};

/// Run the worker protocol on an already-connected client until the service
/// says goodbye or the connection drops. Blocking; single-threaded.
RemoteWorkerStats serve_remote_worker(net::SocketClient& client);

}  // namespace rif::cluster
