#include "cluster/placement.h"

#include <algorithm>

namespace rif::cluster {

bool PlacementPolicy::eligible(NodeId id,
                               const std::vector<NodeId>& excluded) const {
  if (!cluster_.node(id).alive()) return false;
  return std::find(excluded.begin(), excluded.end(), id) == excluded.end();
}

NodeId RoundRobinPlacement::pick(const std::vector<NodeId>& excluded) {
  const int n = cluster_.size();
  for (int i = 0; i < n; ++i) {
    const NodeId candidate = static_cast<NodeId>((cursor_ + i) % n);
    if (eligible(candidate, excluded)) {
      cursor_ = static_cast<NodeId>((candidate + 1) % n);
      return candidate;
    }
  }
  return kNoNode;
}

NodeId LeastLoadedPlacement::pick(const std::vector<NodeId>& excluded) {
  NodeId best = kNoNode;
  int best_load = 0;
  for (NodeId id = 0; id < cluster_.size(); ++id) {
    if (!eligible(id, excluded)) continue;
    const int l = load(id);
    if (best == kNoNode || l < best_load) {
      best = id;
      best_load = l;
    }
  }
  return best;
}

}  // namespace rif::cluster
