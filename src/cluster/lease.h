// Node reservation ("lease") tracking for multi-tenant scheduling.
//
// A LeaseBook partitions a fixed pool of worker nodes among concurrently
// running jobs: a job acquires an exclusive lease on the nodes it will run
// its actors on, and releases them all when it completes. Free nodes are
// handed out in ascending id order, so a schedule is a pure function of the
// submission stream — the same determinism contract the rest of the
// simulator keeps.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "cluster/node.h"

namespace rif::cluster {

using LeaseOwner = std::int64_t;
inline constexpr LeaseOwner kNoOwner = -1;

/// Predicate restricting which free nodes may be granted (typically "the
/// node is alive"). An empty filter accepts every node.
using NodeFilter = std::function<bool(NodeId)>;

class LeaseBook {
 public:
  /// The pool of leasable nodes (typically the worker nodes of a cluster;
  /// the head/sensor node is kept out of the pool).
  explicit LeaseBook(std::vector<NodeId> pool);

  [[nodiscard]] int total_nodes() const { return total_; }
  [[nodiscard]] int free_nodes() const { return static_cast<int>(free_.size()); }
  [[nodiscard]] bool fits(int n) const { return n >= 0 && n <= free_nodes(); }

  /// Free nodes passing `eligible` (e.g. alive nodes only).
  [[nodiscard]] int free_nodes(const NodeFilter& eligible) const;

  /// Grow the pool with one more leasable node (a remote worker that just
  /// completed its handshake). The node starts free.
  void add_node(NodeId node);

  /// Lease `n` nodes exclusively to `owner`; returns the leased node ids in
  /// ascending order, or an empty vector when fewer than `n` free nodes
  /// pass `eligible`. An owner may hold at most one lease at a time.
  std::vector<NodeId> acquire(LeaseOwner owner, int n,
                              const NodeFilter& eligible = {});

  /// Return every node held by `owner` to the free pool. No-op for an
  /// unknown owner.
  void release(LeaseOwner owner);

  /// Nodes currently leased to `owner` (empty if none).
  [[nodiscard]] std::vector<NodeId> leased_to(LeaseOwner owner) const;

  [[nodiscard]] bool is_leased(NodeId node) const {
    return owner_of(node) != kNoOwner;
  }

  /// Owner currently holding `node`, or kNoOwner.
  [[nodiscard]] LeaseOwner owner_of(NodeId node) const;

 private:
  int total_ = 0;
  std::set<NodeId> free_;                            ///< ascending id order
  std::map<LeaseOwner, std::vector<NodeId>> leases_;
};

}  // namespace rif::cluster
