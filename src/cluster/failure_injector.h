// Failure / attack injection.
//
// The paper frames failures as information-warfare attacks on hosts. For
// evaluation purposes an attack is the loss of a workstation at some point
// in virtual time; this component schedules those losses, either from an
// explicit script (deterministic experiments) or from a seeded Poisson
// process (stress tests), and optionally restores nodes after a repair
// delay.
#pragma once

#include <vector>

#include "cluster/cluster.h"
#include "support/rng.h"
#include "support/time.h"

namespace rif::cluster {

struct FailureEvent {
  SimTime time = 0;
  NodeId node = kNoNode;
  /// If >= 0, the node is restored this long after the failure.
  SimTime repair_after = -1;
};

class FailureInjector {
 public:
  explicit FailureInjector(Cluster& cluster) : cluster_(cluster) {}

  /// Crash `node` at absolute virtual time `t`.
  void schedule_crash(SimTime t, NodeId node, SimTime repair_after = -1);

  /// Apply a whole script of failures.
  void schedule(const std::vector<FailureEvent>& script);

  /// Schedule crashes as a Poisson process with the given mean inter-arrival
  /// time over [start, end); victims are drawn uniformly from `victims`.
  /// Returns the generated script (for logging / reproduction).
  std::vector<FailureEvent> schedule_poisson(Rng& rng, SimTime start,
                                             SimTime end,
                                             SimTime mean_interarrival,
                                             const std::vector<NodeId>& victims,
                                             SimTime repair_after = -1);

  [[nodiscard]] int crashes_injected() const { return crashes_injected_; }

 private:
  Cluster& cluster_;
  int crashes_injected_ = 0;
};

}  // namespace rif::cluster
