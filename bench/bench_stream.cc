// Streaming-vs-resident fusion bench: out-of-core chunked ingest against
// sequential load-then-fuse.
//
// Writes a scene cube to disk, then times
//   * load-then-fuse — load_cube() followed by fuse_parallel_fused(), the
//     whole-cube baseline every non-streaming engine implies, and
//   * streamed      — stream::fuse_streaming() at several chunk sizes,
//     where the reader thread overlaps disk I/O with screening/transform
//     and in-flight memory is queue_depth chunk buffers.
//
// The acceptance bar: streamed fusion beats load-then-fuse wall time on
// the bench scene (the load is serialized in front of compute in the
// baseline and hidden behind it in the pipeline), while the tracked peak
// buffer footprint stays a small fraction of the cube.
//
// Peak RSS is sampled from /proc/self/status VmHWM (Linux; 0 elsewhere).
// VmHWM is a process-LIFETIME high-water mark, so two precautions keep the
// streamed numbers honest: the scene is generated and saved by a child
// process (re-exec with --write-cube) so the cube is never resident here
// before the timed runs, and the streamed phases run before load-then-fuse,
// which materializes the cube. Machine-readable results go to
// BENCH_stream.json; `--smoke` shrinks the scene for CI.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "core/parallel/parallel_pct.h"
#include "hsi/cube_io.h"
#include "hsi/scene.h"
#include "linalg/kernels.h"
#include "obs/chrome_trace.h"
#include "obs/flamegraph.h"
#include "obs/span_tracer.h"
#include "obs/trace_check.h"
#include "runtime/autotuner.h"
#include "runtime/metrics.h"
#include "service/service.h"
#include "stream/streaming_engine.h"

using namespace rif;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Process RSS high-water mark in bytes (Linux /proc; 0 if unavailable).
std::uint64_t peak_rss_bytes() {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::strtoull(line.c_str() + 6, nullptr, 10) * 1024ull;
    }
  }
  return 0;
}

struct StreamRow {
  int chunk_lines = 0;
  double wall_ms = 0.0;
  stream::StreamingStats stats;
  std::uint64_t rss_after = 0;
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool write_cube = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--write-cube") == 0) write_cube = true;
  }

  hsi::SceneConfig scene_cfg;
  scene_cfg.width = smoke ? 128 : 320;
  scene_cfg.height = smoke ? 128 : 320;
  scene_cfg.bands = smoke ? 32 : 105;

  const std::string path =
      (std::filesystem::temp_directory_path() / "rif_bench_stream.dat")
          .string();

  // Child mode: generate + save the scene, then exit. Run as a separate
  // process so the parent's VmHWM — a process-lifetime high-water mark —
  // never includes a resident copy of the very cube whose NON-residency
  // the streamed phases' RSS numbers are meant to demonstrate.
  if (write_cube) {
    const hsi::Scene scene = hsi::generate_scene(scene_cfg);
    return hsi::save_cube(path, scene.cube, hsi::Interleave::kBip,
                          scene.wavelengths)
               ? 0
               : 1;
  }
  const std::string child =
      std::string("\"") + argv[0] + "\" --write-cube" + (smoke ? " --smoke" : "");
  if (std::system(child.c_str()) != 0) {
    std::printf("cannot write bench cube %s\n", path.c_str());
    return 1;
  }
  const std::uint64_t cube_bytes =
      static_cast<std::uint64_t>(scene_cfg.width) * scene_cfg.height *
      scene_cfg.bands * sizeof(float);

  const int threads = 4;
  const std::vector<int> chunk_sizes =
      smoke ? std::vector<int>{16, 48} : std::vector<int>{16, 48, 128};

  std::printf("bench_stream: %dx%dx%d cube (%.1f MB), %d threads, "
              "backend=%s\n",
              scene_cfg.width, scene_cfg.height, scene_cfg.bands,
              static_cast<double>(cube_bytes) / 1e6, threads,
              linalg::kernels::backend());

  // Streamed runs first: VmHWM is monotone, and the streamed phases are
  // the ones whose memory ceiling the numbers must vouch for.
  core::ThreadPool pool(threads);
  std::vector<StreamRow> rows;
  for (const int chunk_lines : chunk_sizes) {
    stream::StreamingConfig cfg;
    cfg.chunk_lines = chunk_lines;
    const auto t0 = std::chrono::steady_clock::now();
    const auto r = stream::fuse_streaming(path, pool, cfg);
    const double wall = seconds_since(t0);
    if (!r) {
      std::printf("streaming run failed (chunk_lines=%d)\n", chunk_lines);
      return 1;
    }
    StreamRow row;
    row.chunk_lines = chunk_lines;
    row.wall_ms = wall * 1e3;
    row.stats = r->stats;
    row.rss_after = peak_rss_bytes();
    rows.push_back(row);
    std::printf(
        "  streamed chunk=%3d lines: %7.1f ms  peak-buffers %.2f MB "
        "(%4.1f%% of cube)  reader-stall %.0f ms  compute-stall %.0f ms\n",
        chunk_lines, row.wall_ms,
        static_cast<double>(row.stats.peak_buffer_bytes) / 1e6,
        100.0 * static_cast<double>(row.stats.peak_buffer_bytes) /
            static_cast<double>(cube_bytes),
        row.stats.reader_stall_seconds * 1e3,
        row.stats.compute_stall_seconds * 1e3);
  }

  // Adaptive leg: no chunk-size hint — the run starts from the engine's
  // default geometry and the ChunkAutotuner retunes it live from the stall
  // series. The bar (asserted offline, tracked here): within 10% of the
  // best fixed chunk size above, strictly better than the worst.
  runtime::MetricsRegistry adaptive_reg;
  stream::StreamingConfig adaptive_cfg;
  adaptive_cfg.autotune = runtime::AutotuneConfig{};
  adaptive_cfg.metrics = &adaptive_reg;
  const auto ta = std::chrono::steady_clock::now();
  const auto adaptive = stream::fuse_streaming(path, pool, adaptive_cfg);
  const double adaptive_ms = seconds_since(ta) * 1e3;
  if (!adaptive) {
    std::printf("adaptive streaming run failed\n");
    return 1;
  }
  const auto& tuned = adaptive->autotune;
  std::printf(
      "  streamed adaptive:        %7.1f ms  chunk %d -> %d lines, depth "
      "%d -> %d, %zu decisions\n",
      adaptive_ms, tuned.initial_chunk_lines, tuned.final_chunk_lines,
      tuned.initial_queue_depth, tuned.final_queue_depth,
      tuned.trajectory.size());

  // --- Traced legs: the observability acceptance artifacts ------------------
  // First the tracing-overhead probe: best-of-3 untraced vs best-of-3 traced
  // at chunk=48, back to back so both see the same cache state. Only a GROSS
  // regression (>1.5x) fails the bench — the smoke scene is milliseconds of
  // work and tight wall ratios would be CI noise; the tracing-OFF cost (one
  // relaxed atomic load per span site) is guarded separately in obs_test.
  obs::SpanTracer& tracer = obs::SpanTracer::instance();
  const auto best_of3 = [&]() {
    double best = 1e300;
    for (int i = 0; i < 3; ++i) {
      stream::StreamingConfig cfg;
      cfg.chunk_lines = 48;
      const auto t = std::chrono::steady_clock::now();
      const auto r = stream::fuse_streaming(path, pool, cfg);
      if (!r) return -1.0;
      best = std::min(best, seconds_since(t) * 1e3);
    }
    return best;
  };
  tracer.set_enabled(false);
  const double untraced48_ms = best_of3();
  tracer.set_enabled(true);
  const double traced48_ms = best_of3();
  tracer.set_enabled(false);
  if (untraced48_ms < 0 || traced48_ms < 0) {
    std::printf("tracing-overhead probe run failed\n");
    return 1;
  }
  const double trace_overhead = traced48_ms / untraced48_ms;
  std::printf("  tracing overhead:         x%.3f (traced %.1f ms vs %.1f ms)\n",
              trace_overhead, traced48_ms, untraced48_ms);
  if (trace_overhead > 1.5) {
    std::printf("tracing overhead grossly regressed (x%.3f > x1.5)\n",
                trace_overhead);
    return 1;
  }

  // Then the traced multi-tenant service run: three streaming tenants, the
  // host-memory budget sized so two jobs fit concurrently and the third
  // queues — nonzero queue-wait spans on the virtual timeline and a nonzero
  // admission-pressure gauge in the scraped series. Artifacts:
  // TRACE_stream.json (validated in-process with the in-repo checker — the
  // "will Perfetto load this" gate) and METRICS_timeline.json (>= 3 scrape
  // samples). The probe runs above are cleared first so the trace holds
  // exactly the service run.
  tracer.clear();
  tracer.set_enabled(true);
  double service_ms = 0.0;
  double max_pressure = 0.0;
  std::size_t timeline_samples = 0;
  std::size_t pressure_samples = 0;
  obs::TraceCheckResult trace_check;
  {
    const std::uint64_t job_demand = 4ull * 48 *
                                     static_cast<std::uint64_t>(scene_cfg.width) *
                                     scene_cfg.bands * sizeof(float);
    service::ServiceConfig scfg;
    scfg.worker_nodes = 8;
    scfg.execution_threads = threads;
    scfg.admission = service::AdmissionPolicy::kAdaptive;
    scfg.host_memory_budget = job_demand * 2 + job_demand / 2;
    scfg.scrape_period_seconds = 0.005;
    scfg.metrics_timeline_path = "METRICS_timeline.json";
    scfg.metrics_stream_path = "METRICS_stream.ndjson";
    service::FusionService svc(scfg);
    const char* tenants[3] = {"alpha", "beta", "gamma"};
    for (int i = 0; i < 3; ++i) {
      service::JobRequest req;
      req.tenant = tenants[i];
      req.config.mode = core::ExecutionMode::kCostOnly;
      req.config.workers = 2;
      req.config.tiles_per_worker = 2;
      req.mode = service::JobMode::kStreaming;
      req.cube_path = path;
      req.chunk_lines = 48;
      req.queue_depth = 4;
      req.arrival = from_seconds(0.001 * i);
      const service::SubmitResult sr = svc.submit(req);
      if (!sr.accepted()) {
        std::printf("traced service leg: job %d rejected (%s)\n", i,
                    service::to_string(sr.rejected));
        return 1;
      }
    }
    const auto ts = std::chrono::steady_clock::now();
    const service::ServiceReport sreport = svc.run();
    service_ms = seconds_since(ts) * 1e3;
    tracer.set_enabled(false);
    if (!sreport.all_completed) {
      std::printf("traced service leg: not all jobs completed\n");
      return 1;
    }
    if (!obs::write_chrome_trace("TRACE_stream.json")) {
      std::printf("cannot write TRACE_stream.json\n");
      return 1;
    }
    trace_check = obs::check_chrome_trace_file("TRACE_stream.json");
    if (!trace_check.ok) {
      std::printf("TRACE_stream.json failed validation: %s\n",
                  trace_check.error.c_str());
      return 1;
    }
    // The lifecycle must be on the trace end to end: submission, queue wait
    // and admission around host execution...
    for (const char* name : {"submit", "queue_wait", "admission", "execute",
                             "host_execute", "service_run"}) {
      if (trace_check.span_counts.count(name) == 0) {
        std::printf("TRACE_stream.json missing \"%s\" spans\n", name);
        return 1;
      }
    }
    // ...plus at least four distinct execution stages inside the jobs.
    int stages = 0;
    for (const char* name :
         {"chunk_read", "chunk_screen", "chunk_fold", "chunk_transform",
          "stream_pass1", "stream_eigen", "stream_pass2"}) {
      if (trace_check.span_counts.count(name) != 0) ++stages;
    }
    if (stages < 4) {
      std::printf("TRACE_stream.json has %d distinct exec stages, need 4\n",
                  stages);
      return 1;
    }
    obs::JsonValue timeline;
    std::string jerr;
    if (!obs::parse_json(sreport.metrics_timeline_json, timeline, jerr)) {
      std::printf("METRICS_timeline.json does not parse: %s\n", jerr.c_str());
      return 1;
    }
    const obs::JsonValue* samples = timeline.find("samples");
    if (samples == nullptr ||
        samples->kind != obs::JsonValue::Kind::kArray ||
        samples->array.size() < 3) {
      std::printf("METRICS_timeline.json needs >= 3 scrape samples\n");
      return 1;
    }
    timeline_samples = samples->array.size();
    pressure_samples = sreport.admission_pressure.size();
    for (const auto& p : sreport.admission_pressure) {
      max_pressure = std::max(max_pressure, p.pressure);
    }

    // The live NDJSON feed must have been written DURING the run (one
    // parseable sample object per line, at least as many as the timeline
    // floor) — this is the "tail the run in flight" artifact.
    {
      std::ifstream ndjson("METRICS_stream.ndjson");
      std::size_t lines = 0;
      for (std::string line; std::getline(ndjson, line);) {
        if (line.empty()) continue;
        obs::JsonValue sample;
        std::string serr;
        if (!obs::parse_json(line, sample, serr)) {
          std::printf("METRICS_stream.ndjson line %zu invalid: %s\n",
                      lines + 1, serr.c_str());
          return 1;
        }
        ++lines;
      }
      if (lines < 3) {
        std::printf("METRICS_stream.ndjson has %zu samples, need >= 3\n",
                    lines);
        return 1;
      }
    }

    // Flamegraph: the fold must conserve time — each row's total must
    // agree with the raw per-name span-duration sum within 1%.
    if (sreport.flamegraph.rows.empty()) {
      std::printf("service report carries no flamegraph\n");
      return 1;
    }
    {
      std::map<std::string, double> span_totals_us;
      for (const obs::FlameSpan& s : obs::tracer_flame_spans(tracer)) {
        span_totals_us[s.name] += s.dur_us;
      }
      for (const obs::FlameRow& row : sreport.flamegraph.rows) {
        const double expect = span_totals_us[row.name];
        const double tolerance = std::max(expect * 0.01, 1.0);
        if (std::abs(row.total_us - expect) > tolerance) {
          std::printf("flamegraph row \"%s\" total %.1fus disagrees with "
                      "span sum %.1fus (>1%%)\n",
                      row.name.c_str(), row.total_us, expect);
          return 1;
        }
        if (row.self_us > row.total_us + 1e-6) {
          std::printf("flamegraph row \"%s\" self %.1fus exceeds total "
                      "%.1fus\n",
                      row.name.c_str(), row.self_us, row.total_us);
          return 1;
        }
      }
    }
    if (!obs::write_flamegraph("FLAME_stream.json", sreport.flamegraph)) {
      std::printf("cannot write FLAME_stream.json\n");
      return 1;
    }

    std::printf(
        "  traced service run:       %7.1f ms  %d jobs, %zu trace events "
        "(%zu spans), %zu scrape samples, peak pressure %.2f, "
        "%zu flame rows\n",
        service_ms, sreport.jobs_completed, trace_check.events,
        trace_check.spans, timeline_samples, max_pressure,
        sreport.flamegraph.rows.size());
    std::printf(
        "wrote TRACE_stream.json\nwrote METRICS_timeline.json\n"
        "wrote METRICS_stream.ndjson\nwrote FLAME_stream.json\n");
  }

  // Baseline: sequential load, then the in-memory fused engine.
  const auto t0 = std::chrono::steady_clock::now();
  const auto cube = hsi::load_cube(path);
  const double load_s = seconds_since(t0);
  if (!cube) {
    std::printf("load_cube failed\n");
    return 1;
  }
  core::ParallelPctConfig fused_cfg;
  fused_cfg.tiles = threads * 2;
  const core::PctResult fused =
      core::fuse_parallel_fused(*cube, pool, fused_cfg);
  const double total_s = seconds_since(t0);
  const std::uint64_t rss_loaded = peak_rss_bytes();
  std::printf(
      "  load-then-fuse:           %7.1f ms  (load %.1f ms + fuse %.1f ms)"
      "  unique-set %zu\n",
      total_s * 1e3, load_s * 1e3, (total_s - load_s) * 1e3,
      fused.unique_set_size);

  const double best_stream_ms =
      std::min_element(rows.begin(), rows.end(),
                       [](const StreamRow& a, const StreamRow& b) {
                         return a.wall_ms < b.wall_ms;
                       })
          ->wall_ms;
  const double worst_stream_ms =
      std::max_element(rows.begin(), rows.end(),
                       [](const StreamRow& a, const StreamRow& b) {
                         return a.wall_ms < b.wall_ms;
                       })
          ->wall_ms;
  std::printf("  best streamed vs load-then-fuse: %.2fx\n",
              total_s * 1e3 / best_stream_ms);
  std::printf(
      "  adaptive vs best fixed: %.2fx  vs worst fixed: %.2fx\n",
      best_stream_ms / adaptive_ms, worst_stream_ms / adaptive_ms);

  std::FILE* out = std::fopen("BENCH_stream.json", "w");
  if (out == nullptr) {
    std::printf("cannot write BENCH_stream.json\n");
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"stream\",\n");
  std::fprintf(out, "  \"backend\": \"%s\",\n", linalg::kernels::backend());
  std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out, "  \"threads\": %d,\n", threads);
  std::fprintf(out,
               "  \"scene\": \"%dx%dx%d\",\n  \"cube_bytes\": %llu,\n",
               scene_cfg.width, scene_cfg.height, scene_cfg.bands,
               static_cast<unsigned long long>(cube_bytes));
  std::fprintf(out, "  \"streamed\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    std::fprintf(
        out,
        "    {\"chunk_lines\": %d, \"wall_ms\": %.3f, "
        "\"peak_buffer_bytes\": %llu, \"chunks\": %d, "
        "\"read_ms\": %.3f, \"reader_stall_ms\": %.3f, "
        "\"compute_stall_ms\": %.3f, \"screen_ms\": %.3f, "
        "\"transform_ms\": %.3f, \"peak_rss_bytes\": %llu}%s\n",
        r.chunk_lines, r.wall_ms,
        static_cast<unsigned long long>(r.stats.peak_buffer_bytes),
        r.stats.chunks, r.stats.read_seconds * 1e3,
        r.stats.reader_stall_seconds * 1e3,
        r.stats.compute_stall_seconds * 1e3, r.stats.screen_seconds * 1e3,
        r.stats.transform_seconds * 1e3,
        static_cast<unsigned long long>(r.rss_after),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  // The adaptive leg and its tuned trajectory: chunk_lines/queue_depth
  // after every controller decision, plus the stall fractions that drove
  // it — the "how did it get there" record the acceptance bar asks for.
  std::fprintf(out,
               "  \"adaptive\": {\"wall_ms\": %.3f, "
               "\"initial_chunk_lines\": %d, \"final_chunk_lines\": %d, "
               "\"initial_queue_depth\": %d, \"final_queue_depth\": %d, "
               "\"peak_buffer_bytes\": %llu,\n    \"trajectory\": [\n",
               adaptive_ms, tuned.initial_chunk_lines,
               tuned.final_chunk_lines, tuned.initial_queue_depth,
               tuned.final_queue_depth,
               static_cast<unsigned long long>(
                   adaptive->stats.peak_buffer_bytes));
  for (std::size_t i = 0; i < tuned.trajectory.size(); ++i) {
    const auto& d = tuned.trajectory[i];
    std::fprintf(out,
                 "      {\"chunk\": %d, \"direction\": %d, "
                 "\"chunk_lines\": %d, \"queue_depth\": %d, "
                 "\"reader_stall_frac\": %.4f, "
                 "\"compute_stall_frac\": %.4f}%s\n",
                 d.chunk_index, d.direction, d.chunk_lines, d.queue_depth,
                 d.reader_stall_frac, d.compute_stall_frac,
                 i + 1 < tuned.trajectory.size() ? "," : "");
  }
  std::fprintf(out, "    ]},\n");
  // The observability legs: tracing overhead ratio (best-of-3 vs best-of-3)
  // and the traced service run's artifact stats.
  std::fprintf(out,
               "  \"traced\": {\"overhead_ratio\": %.3f, "
               "\"traced_ms\": %.3f, \"untraced_ms\": %.3f, "
               "\"service_ms\": %.3f, \"trace_events\": %zu, "
               "\"trace_spans\": %zu, \"timeline_samples\": %zu, "
               "\"pressure_samples\": %zu, \"max_pressure\": %.4f},\n",
               trace_overhead, traced48_ms, untraced48_ms, service_ms,
               trace_check.events, trace_check.spans, timeline_samples,
               pressure_samples, max_pressure);
  std::fprintf(out,
               "  \"load_then_fuse\": {\"wall_ms\": %.3f, \"load_ms\": "
               "%.3f, \"peak_rss_bytes\": %llu},\n",
               total_s * 1e3, load_s * 1e3,
               static_cast<unsigned long long>(rss_loaded));
  std::fprintf(out, "  \"best_streamed_speedup\": %.3f,\n",
               total_s * 1e3 / best_stream_ms);
  std::fprintf(out, "  \"adaptive_vs_best_fixed\": %.3f,\n",
               best_stream_ms / adaptive_ms);
  std::fprintf(out, "  \"adaptive_vs_worst_fixed\": %.3f\n",
               worst_stream_ms / adaptive_ms);
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote BENCH_stream.json\n");

  // Registry snapshot of the adaptive run (queue stalls, per-chunk stage
  // latency histograms) — the dashboard-shaped artifact CI uploads.
  std::FILE* metrics_out = std::fopen("METRICS_stream.json", "w");
  if (metrics_out != nullptr) {
    const std::string snapshot = adaptive_reg.to_json();
    std::fwrite(snapshot.data(), 1, snapshot.size(), metrics_out);
    std::fclose(metrics_out);
    std::printf("wrote METRICS_stream.json\n");
  }

  std::filesystem::remove(path);
  std::filesystem::remove(path + ".hdr");
  return 0;
}
