// Streaming-vs-resident fusion bench: out-of-core chunked ingest against
// sequential load-then-fuse.
//
// Writes a scene cube to disk, then times
//   * load-then-fuse — load_cube() followed by fuse_parallel_fused(), the
//     whole-cube baseline every non-streaming engine implies, and
//   * streamed      — stream::fuse_streaming() at several chunk sizes,
//     where the reader thread overlaps disk I/O with screening/transform
//     and in-flight memory is queue_depth chunk buffers.
//
// The acceptance bar: streamed fusion beats load-then-fuse wall time on
// the bench scene (the load is serialized in front of compute in the
// baseline and hidden behind it in the pipeline), while the tracked peak
// buffer footprint stays a small fraction of the cube.
//
// Peak RSS is sampled from /proc/self/status VmHWM (Linux; 0 elsewhere).
// VmHWM is a process-LIFETIME high-water mark, so two precautions keep the
// streamed numbers honest: the scene is generated and saved by a child
// process (re-exec with --write-cube) so the cube is never resident here
// before the timed runs, and the streamed phases run before load-then-fuse,
// which materializes the cube. Machine-readable results go to
// BENCH_stream.json; `--smoke` shrinks the scene for CI.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/parallel/parallel_pct.h"
#include "hsi/cube_io.h"
#include "hsi/scene.h"
#include "linalg/kernels.h"
#include "runtime/autotuner.h"
#include "runtime/metrics.h"
#include "stream/streaming_engine.h"

using namespace rif;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Process RSS high-water mark in bytes (Linux /proc; 0 if unavailable).
std::uint64_t peak_rss_bytes() {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::strtoull(line.c_str() + 6, nullptr, 10) * 1024ull;
    }
  }
  return 0;
}

struct StreamRow {
  int chunk_lines = 0;
  double wall_ms = 0.0;
  stream::StreamingStats stats;
  std::uint64_t rss_after = 0;
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool write_cube = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--write-cube") == 0) write_cube = true;
  }

  hsi::SceneConfig scene_cfg;
  scene_cfg.width = smoke ? 128 : 320;
  scene_cfg.height = smoke ? 128 : 320;
  scene_cfg.bands = smoke ? 32 : 105;

  const std::string path =
      (std::filesystem::temp_directory_path() / "rif_bench_stream.dat")
          .string();

  // Child mode: generate + save the scene, then exit. Run as a separate
  // process so the parent's VmHWM — a process-lifetime high-water mark —
  // never includes a resident copy of the very cube whose NON-residency
  // the streamed phases' RSS numbers are meant to demonstrate.
  if (write_cube) {
    const hsi::Scene scene = hsi::generate_scene(scene_cfg);
    return hsi::save_cube(path, scene.cube, hsi::Interleave::kBip,
                          scene.wavelengths)
               ? 0
               : 1;
  }
  const std::string child =
      std::string("\"") + argv[0] + "\" --write-cube" + (smoke ? " --smoke" : "");
  if (std::system(child.c_str()) != 0) {
    std::printf("cannot write bench cube %s\n", path.c_str());
    return 1;
  }
  const std::uint64_t cube_bytes =
      static_cast<std::uint64_t>(scene_cfg.width) * scene_cfg.height *
      scene_cfg.bands * sizeof(float);

  const int threads = 4;
  const std::vector<int> chunk_sizes =
      smoke ? std::vector<int>{16, 48} : std::vector<int>{16, 48, 128};

  std::printf("bench_stream: %dx%dx%d cube (%.1f MB), %d threads, "
              "backend=%s\n",
              scene_cfg.width, scene_cfg.height, scene_cfg.bands,
              static_cast<double>(cube_bytes) / 1e6, threads,
              linalg::kernels::backend());

  // Streamed runs first: VmHWM is monotone, and the streamed phases are
  // the ones whose memory ceiling the numbers must vouch for.
  core::ThreadPool pool(threads);
  std::vector<StreamRow> rows;
  for (const int chunk_lines : chunk_sizes) {
    stream::StreamingConfig cfg;
    cfg.chunk_lines = chunk_lines;
    const auto t0 = std::chrono::steady_clock::now();
    const auto r = stream::fuse_streaming(path, pool, cfg);
    const double wall = seconds_since(t0);
    if (!r) {
      std::printf("streaming run failed (chunk_lines=%d)\n", chunk_lines);
      return 1;
    }
    StreamRow row;
    row.chunk_lines = chunk_lines;
    row.wall_ms = wall * 1e3;
    row.stats = r->stats;
    row.rss_after = peak_rss_bytes();
    rows.push_back(row);
    std::printf(
        "  streamed chunk=%3d lines: %7.1f ms  peak-buffers %.2f MB "
        "(%4.1f%% of cube)  reader-stall %.0f ms  compute-stall %.0f ms\n",
        chunk_lines, row.wall_ms,
        static_cast<double>(row.stats.peak_buffer_bytes) / 1e6,
        100.0 * static_cast<double>(row.stats.peak_buffer_bytes) /
            static_cast<double>(cube_bytes),
        row.stats.reader_stall_seconds * 1e3,
        row.stats.compute_stall_seconds * 1e3);
  }

  // Adaptive leg: no chunk-size hint — the run starts from the engine's
  // default geometry and the ChunkAutotuner retunes it live from the stall
  // series. The bar (asserted offline, tracked here): within 10% of the
  // best fixed chunk size above, strictly better than the worst.
  runtime::MetricsRegistry adaptive_reg;
  stream::StreamingConfig adaptive_cfg;
  adaptive_cfg.autotune = runtime::AutotuneConfig{};
  adaptive_cfg.metrics = &adaptive_reg;
  const auto ta = std::chrono::steady_clock::now();
  const auto adaptive = stream::fuse_streaming(path, pool, adaptive_cfg);
  const double adaptive_ms = seconds_since(ta) * 1e3;
  if (!adaptive) {
    std::printf("adaptive streaming run failed\n");
    return 1;
  }
  const auto& tuned = adaptive->autotune;
  std::printf(
      "  streamed adaptive:        %7.1f ms  chunk %d -> %d lines, depth "
      "%d -> %d, %zu decisions\n",
      adaptive_ms, tuned.initial_chunk_lines, tuned.final_chunk_lines,
      tuned.initial_queue_depth, tuned.final_queue_depth,
      tuned.trajectory.size());

  // Baseline: sequential load, then the in-memory fused engine.
  const auto t0 = std::chrono::steady_clock::now();
  const auto cube = hsi::load_cube(path);
  const double load_s = seconds_since(t0);
  if (!cube) {
    std::printf("load_cube failed\n");
    return 1;
  }
  core::ParallelPctConfig fused_cfg;
  fused_cfg.tiles = threads * 2;
  const core::PctResult fused =
      core::fuse_parallel_fused(*cube, pool, fused_cfg);
  const double total_s = seconds_since(t0);
  const std::uint64_t rss_loaded = peak_rss_bytes();
  std::printf(
      "  load-then-fuse:           %7.1f ms  (load %.1f ms + fuse %.1f ms)"
      "  unique-set %zu\n",
      total_s * 1e3, load_s * 1e3, (total_s - load_s) * 1e3,
      fused.unique_set_size);

  const double best_stream_ms =
      std::min_element(rows.begin(), rows.end(),
                       [](const StreamRow& a, const StreamRow& b) {
                         return a.wall_ms < b.wall_ms;
                       })
          ->wall_ms;
  const double worst_stream_ms =
      std::max_element(rows.begin(), rows.end(),
                       [](const StreamRow& a, const StreamRow& b) {
                         return a.wall_ms < b.wall_ms;
                       })
          ->wall_ms;
  std::printf("  best streamed vs load-then-fuse: %.2fx\n",
              total_s * 1e3 / best_stream_ms);
  std::printf(
      "  adaptive vs best fixed: %.2fx  vs worst fixed: %.2fx\n",
      best_stream_ms / adaptive_ms, worst_stream_ms / adaptive_ms);

  std::FILE* out = std::fopen("BENCH_stream.json", "w");
  if (out == nullptr) {
    std::printf("cannot write BENCH_stream.json\n");
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"stream\",\n");
  std::fprintf(out, "  \"backend\": \"%s\",\n", linalg::kernels::backend());
  std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out, "  \"threads\": %d,\n", threads);
  std::fprintf(out,
               "  \"scene\": \"%dx%dx%d\",\n  \"cube_bytes\": %llu,\n",
               scene_cfg.width, scene_cfg.height, scene_cfg.bands,
               static_cast<unsigned long long>(cube_bytes));
  std::fprintf(out, "  \"streamed\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    std::fprintf(
        out,
        "    {\"chunk_lines\": %d, \"wall_ms\": %.3f, "
        "\"peak_buffer_bytes\": %llu, \"chunks\": %d, "
        "\"read_ms\": %.3f, \"reader_stall_ms\": %.3f, "
        "\"compute_stall_ms\": %.3f, \"screen_ms\": %.3f, "
        "\"transform_ms\": %.3f, \"peak_rss_bytes\": %llu}%s\n",
        r.chunk_lines, r.wall_ms,
        static_cast<unsigned long long>(r.stats.peak_buffer_bytes),
        r.stats.chunks, r.stats.read_seconds * 1e3,
        r.stats.reader_stall_seconds * 1e3,
        r.stats.compute_stall_seconds * 1e3, r.stats.screen_seconds * 1e3,
        r.stats.transform_seconds * 1e3,
        static_cast<unsigned long long>(r.rss_after),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  // The adaptive leg and its tuned trajectory: chunk_lines/queue_depth
  // after every controller decision, plus the stall fractions that drove
  // it — the "how did it get there" record the acceptance bar asks for.
  std::fprintf(out,
               "  \"adaptive\": {\"wall_ms\": %.3f, "
               "\"initial_chunk_lines\": %d, \"final_chunk_lines\": %d, "
               "\"initial_queue_depth\": %d, \"final_queue_depth\": %d, "
               "\"peak_buffer_bytes\": %llu,\n    \"trajectory\": [\n",
               adaptive_ms, tuned.initial_chunk_lines,
               tuned.final_chunk_lines, tuned.initial_queue_depth,
               tuned.final_queue_depth,
               static_cast<unsigned long long>(
                   adaptive->stats.peak_buffer_bytes));
  for (std::size_t i = 0; i < tuned.trajectory.size(); ++i) {
    const auto& d = tuned.trajectory[i];
    std::fprintf(out,
                 "      {\"chunk\": %d, \"direction\": %d, "
                 "\"chunk_lines\": %d, \"queue_depth\": %d, "
                 "\"reader_stall_frac\": %.4f, "
                 "\"compute_stall_frac\": %.4f}%s\n",
                 d.chunk_index, d.direction, d.chunk_lines, d.queue_depth,
                 d.reader_stall_frac, d.compute_stall_frac,
                 i + 1 < tuned.trajectory.size() ? "," : "");
  }
  std::fprintf(out, "    ]},\n");
  std::fprintf(out,
               "  \"load_then_fuse\": {\"wall_ms\": %.3f, \"load_ms\": "
               "%.3f, \"peak_rss_bytes\": %llu},\n",
               total_s * 1e3, load_s * 1e3,
               static_cast<unsigned long long>(rss_loaded));
  std::fprintf(out, "  \"best_streamed_speedup\": %.3f,\n",
               total_s * 1e3 / best_stream_ms);
  std::fprintf(out, "  \"adaptive_vs_best_fixed\": %.3f,\n",
               best_stream_ms / adaptive_ms);
  std::fprintf(out, "  \"adaptive_vs_worst_fixed\": %.3f\n",
               worst_stream_ms / adaptive_ms);
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote BENCH_stream.json\n");

  // Registry snapshot of the adaptive run (queue stalls, per-chunk stage
  // latency histograms) — the dashboard-shaped artifact CI uploads.
  std::FILE* metrics_out = std::fopen("METRICS_stream.json", "w");
  if (metrics_out != nullptr) {
    const std::string snapshot = adaptive_reg.to_json();
    std::fwrite(snapshot.data(), 1, snapshot.size(), metrics_out);
    std::fclose(metrics_out);
    std::printf("wrote METRICS_stream.json\n");
  }

  std::filesystem::remove(path);
  std::filesystem::remove(path + ".hdr");
  return 0;
}
