// Figure 2 reproduction: two raw band frames (400 nm and 1998 nm) of the
// synthetic HYDICE scene, written as PGM images, plus the per-band
// target-visibility numbers that motivate fusion: no single band shows the
// camouflaged vehicle well, and different bands show different things.
#include <cstdio>

#include "hsi/image_io.h"
#include "hsi/metrics.h"
#include "hsi/scene.h"
#include "support/table.h"

using namespace rif;

int main() {
  std::printf("=== Figure 2: raw band frames (400 nm and 1998 nm) ===\n");
  hsi::SceneConfig config;
  config.width = 320;
  config.height = 320;
  config.bands = 210;
  config.seed = 2000;
  const hsi::Scene scene = hsi::generate_scene(config);

  Table table({"wavelength(nm)", "band", "mean", "stddev",
               "camo contrast", "open-vehicle contrast"});
  for (const double wl : {400.0, 550.0, 700.0, 860.0, 1450.0, 1998.0, 2400.0}) {
    const int band = scene.band_near(wl);
    const auto plane = hsi::extract_band(scene.cube, band);
    const auto stats = hsi::band_statistics(scene.cube)[band];
    table.add_row(
        {strf("%.0f", wl), strf("%d", band), strf("%.3f", stats.mean),
         strf("%.3f", stats.stddev),
         strf("%.2f", hsi::class_contrast(plane, scene.labels,
                                          hsi::Material::kCamouflage)),
         strf("%.2f", hsi::class_contrast(plane, scene.labels,
                                          hsi::Material::kVehicle))});
  }
  table.print();

  const int b400 = scene.band_near(400.0);
  const int b1998 = scene.band_near(1998.0);
  const bool ok1 = hsi::write_pgm("fig2_band_400nm.pgm",
                                  hsi::extract_band(scene.cube, b400),
                                  config.width, config.height);
  const bool ok2 = hsi::write_pgm("fig2_band_1998nm.pgm",
                                  hsi::extract_band(scene.cube, b1998),
                                  config.width, config.height);
  std::printf("\nwrote fig2_band_400nm.pgm (%s), fig2_band_1998nm.pgm (%s)\n",
              ok1 ? "ok" : "FAILED", ok2 ? "ok" : "FAILED");
  std::printf("paper: two frames of the 210-band HYDICE set; individual "
              "bands carry\ncomplementary, individually insufficient "
              "target information.\n");
  return (ok1 && ok2) ? 0 : 1;
}
