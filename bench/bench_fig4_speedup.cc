// Figure 4 reproduction: elapsed time vs. processor count, with and without
// resiliency (worker replication level 2, regeneration armed, no failures
// injected — the paper measures pure overhead here).
//
// Paper findings this bench must reproduce in shape:
//   * the concurrent algorithm stays within ~20% of linear speed-up;
//   * resiliency costs about the replication factor (x2) plus ~10%
//     protocol overhead, uniformly across processor counts.
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"

using namespace rif;

int main() {
  std::printf("=== Figure 4: speed-up with and without resiliency ===\n");
  std::printf("problem: 320x320x105 HYDICE cube, sub-cubes = 2P, "
              "replication level 2 when resilient\n\n");

  Table table({"P", "t_plain(s)", "log2(t)", "speedup", "eff(%)",
               "t_resilient(s)", "ratio", "overhead_beyond_2x(%)"});

  double t1_plain = 0.0;
  for (const int p : {1, 2, 4, 8, 16}) {
    core::FusionJobConfig plain = bench::paper_testbed(p);
    const core::FusionReport rp = run_fusion_job(plain);
    if (!rp.completed) {
      std::printf("P=%d plain run did not complete!\n", p);
      return 1;
    }

    core::FusionJobConfig resilient = bench::paper_testbed(p);
    resilient.resilient = true;
    resilient.replication = 2;
    const core::FusionReport rr = run_fusion_job(resilient);
    if (!rr.completed) {
      std::printf("P=%d resilient run did not complete!\n", p);
      return 1;
    }

    if (p == 1) t1_plain = rp.elapsed_seconds;
    const double speedup = t1_plain / rp.elapsed_seconds;
    const double eff = 100.0 * speedup / p;
    const double ratio = rr.elapsed_seconds / rp.elapsed_seconds;
    const double overhead = 100.0 * (ratio / 2.0 - 1.0);

    table.add_row({strf("%d", p), strf("%.1f", rp.elapsed_seconds),
                   strf("%.2f", std::log2(rp.elapsed_seconds)),
                   strf("%.2f", speedup), strf("%.0f", eff),
                   strf("%.1f", rr.elapsed_seconds), strf("%.2f", ratio),
                   strf("%+.0f", overhead)});
  }
  table.print();

  std::printf("\npaper: within 20%% of linear speed-up in both cases;\n"
              "       resilient overhead ~= cost of replication (x2) plus "
              "~10%%, uniformly.\n");
  return 0;
}
