// Figure 4 reproduction: elapsed time vs. processor count, with and without
// resiliency (worker replication level 2, regeneration armed, no failures
// injected — the paper measures pure overhead here).
//
// Paper findings this bench must reproduce in shape:
//   * the concurrent algorithm stays within ~20% of linear speed-up;
//   * resiliency costs about the replication factor (x2) plus ~10%
//     protocol overhead, uniformly across processor counts.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench/bench_util.h"

using namespace rif;

int main(int argc, char** argv) {
  // --smoke: tiny scene, fewest processor counts — a CI-sized run that
  // still exercises the full manager/worker pipeline end to end.
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;

  std::printf("=== Figure 4: speed-up with and without resiliency ===\n");
  std::printf("problem: %s cube, sub-cubes = 2P, "
              "replication level 2 when resilient\n\n",
              smoke ? "64x64x16 (smoke)" : "320x320x105 HYDICE");

  Table table({"P", "t_plain(s)", "log2(t)", "speedup", "eff(%)",
               "t_resilient(s)", "ratio", "overhead_beyond_2x(%)"});

  const std::vector<int> procs = smoke ? std::vector<int>{1, 2}
                                       : std::vector<int>{1, 2, 4, 8, 16};
  double t1_plain = 0.0;
  for (const int p : procs) {
    core::FusionJobConfig plain = bench::paper_testbed(p);
    if (smoke) plain.shape = {64, 64, 16};
    const core::FusionReport rp = run_fusion_job(plain);
    if (!rp.completed) {
      std::printf("P=%d plain run did not complete!\n", p);
      return 1;
    }

    core::FusionJobConfig resilient = bench::paper_testbed(p);
    if (smoke) resilient.shape = {64, 64, 16};
    resilient.resilient = true;
    resilient.replication = 2;
    const core::FusionReport rr = run_fusion_job(resilient);
    if (!rr.completed) {
      std::printf("P=%d resilient run did not complete!\n", p);
      return 1;
    }

    if (p == 1) t1_plain = rp.elapsed_seconds;
    const double speedup = t1_plain / rp.elapsed_seconds;
    const double eff = 100.0 * speedup / p;
    const double ratio = rr.elapsed_seconds / rp.elapsed_seconds;
    const double overhead = 100.0 * (ratio / 2.0 - 1.0);

    table.add_row({strf("%d", p), strf("%.1f", rp.elapsed_seconds),
                   strf("%.2f", std::log2(rp.elapsed_seconds)),
                   strf("%.2f", speedup), strf("%.0f", eff),
                   strf("%.1f", rr.elapsed_seconds), strf("%.2f", ratio),
                   strf("%+.0f", overhead)});
  }
  table.print();

  std::printf("\npaper: within 20%% of linear speed-up in both cases;\n"
              "       resilient overhead ~= cost of replication (x2) plus "
              "~10%%, uniformly.\n");
  return 0;
}
