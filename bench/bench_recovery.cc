// Recovery ablation (extension; quantifies the paper's §2 resiliency
// argument, which the paper states but does not plot).
//
// Compares three fault-handling policies under information-warfare attack
// scripts on the paper testbed:
//   * none        — plain manager/worker (the paper's baseline);
//   * replicate   — level-2 replication WITHOUT regeneration (the classic
//                   primary/backup strawman of the paper's Figure 1);
//   * resilient   — level-2 replication WITH dynamic regeneration (the
//                   paper's contribution).
// Attack scripts escalate from a single lost workstation to a rolling
// attack that eventually revisits regenerated replicas.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

using namespace rif;

namespace {

struct Policy {
  const char* name;
  bool resilient;
  int replication;
  bool regenerate;
};

struct Attack {
  const char* name;
  std::vector<cluster::FailureEvent> script;
};

}  // namespace

int main() {
  std::printf("=== Recovery under attack (extension ablation) ===\n");
  std::printf("testbed: 8 workers, 320x320x105 cube, sub-cubes = 2P\n\n");

  const Policy policies[] = {
      {"none", false, 1, false},
      {"replicate-only", true, 2, false},
      {"resilient", true, 2, true},
  };
  // Node 0 is the manager ("the sensor itself was not replicated"); worker
  // hosts are 1..8.
  const Attack attacks[] = {
      {"no attack", {}},
      {"single strike (1 host)", {{from_seconds(20), 3, -1}}},
      {"double strike, same worker's hosts",
       {{from_seconds(20), 3, -1}, {from_seconds(60), 4, -1}}},
      {"rolling attack (4 hosts)",
       {{from_seconds(15), 1, -1},
        {from_seconds(45), 5, -1},
        {from_seconds(75), 7, -1},
        {from_seconds(105), 2, -1}}},
  };

  Table table({"attack", "policy", "completed", "time(s)", "detected",
               "regenerated", "migrated", "state moved(MB)"});
  for (const Attack& attack : attacks) {
    for (const Policy& policy : policies) {
      core::FusionJobConfig config = bench::paper_testbed(8);
      config.resilient = policy.resilient;
      config.replication = policy.replication;
      config.regenerate = policy.regenerate;
      config.runtime.heartbeat_period = from_millis(250);
      config.runtime.failure_timeout = from_seconds(1);
      config.failures = attack.script;
      config.deadline = from_seconds(2500);

      const core::FusionReport r = run_fusion_job(config);
      table.add_row(
          {attack.name, policy.name, r.completed ? "yes" : "NO",
           r.completed ? strf("%.1f", r.elapsed_seconds) : "-",
           strf("%llu", static_cast<unsigned long long>(
                            r.protocol.failures_detected)),
           strf("%llu", static_cast<unsigned long long>(
                            r.protocol.replicas_regenerated)),
           strf("%llu", static_cast<unsigned long long>(
                            r.protocol.replicas_migrated)),
           strf("%.1f", r.protocol.state_transfer_bytes / 1e6)});
    }

    // Forewarned variant: attack assessment issues an evacuation order for
    // each target 5 s before the strike — the paper's mobility response.
    if (!attack.script.empty()) {
      core::FusionJobConfig config = bench::paper_testbed(8);
      config.resilient = true;
      config.replication = 2;
      config.runtime.heartbeat_period = from_millis(250);
      config.runtime.failure_timeout = from_seconds(1);
      config.failures = attack.script;
      for (const auto& strike : attack.script) {
        config.evacuations.push_back(
            {strike.time - from_seconds(5), strike.node});
      }
      config.deadline = from_seconds(2500);
      const core::FusionReport r = run_fusion_job(config);
      table.add_row(
          {attack.name, "forewarned (evacuate)", r.completed ? "yes" : "NO",
           r.completed ? strf("%.1f", r.elapsed_seconds) : "-",
           strf("%llu", static_cast<unsigned long long>(
                            r.protocol.failures_detected)),
           strf("%llu", static_cast<unsigned long long>(
                            r.protocol.replicas_regenerated)),
           strf("%llu", static_cast<unsigned long long>(
                            r.protocol.replicas_migrated)),
           strf("%.1f", r.protocol.state_transfer_bytes / 1e6)});
    }
  }
  table.print();

  std::printf(
      "\nexpected: 'none' fails on any strike; 'replicate-only' survives a\n"
      "single strike but dies when both hosts of one worker are hit;\n"
      "'resilient' completes every scenario by regenerating replicas, at a\n"
      "modest elapsed-time cost (detection timeout + state transfer).\n");
  return 0;
}
