// Figure 5 reproduction: granularity control.
//
// Time vs. processors for sub-cube counts {P, 2P, 3P} on the 320x320x105
// cube. Paper findings this bench must reproduce in shape:
//   * splitting the cube into more sub-cubes than processors lets
//     computation and communication overlap, improving elapsed time;
//   * performance tails off once the cube is split into more than ~32
//     sub-cubes at this problem size (per-tile overheads and duplicate
//     unique-set vectors returned to the manager's sequential merge).
#include <cstdio>

#include "bench/bench_util.h"

using namespace rif;

int main() {
  std::printf("=== Figure 5: granularity control ===\n");
  std::printf("problem: 320x320x105 cube, no resiliency\n\n");

  Table table({"P", "#sub=P", "#sub=2P", "#sub=3P", "best"});
  for (const int p : {2, 4, 8, 16}) {
    double times[3] = {};
    for (int m = 1; m <= 3; ++m) {
      core::FusionJobConfig config = bench::paper_testbed(p);
      config.tiles_per_worker = m;
      const core::FusionReport r = run_fusion_job(config);
      if (!r.completed) {
        std::printf("P=%d m=%d did not complete!\n", p, m);
        return 1;
      }
      times[m - 1] = r.elapsed_seconds;
    }
    int best = 0;
    for (int i = 1; i < 3; ++i) {
      if (times[i] < times[best]) best = i;
    }
    table.add_row({strf("%d", p), strf("%.1f", times[0]),
                   strf("%.1f", times[1]), strf("%.1f", times[2]),
                   strf("#sub=%dP (%d sub-cubes)", best + 1, (best + 1) * p)});
  }
  table.print();

  std::printf("\npaper: more sub-cubes than processors overlaps compute and "
              "communication;\n       tail-off beyond ~32 sub-cubes at this "
              "problem size.\n");
  return 0;
}
