// Shared configuration for the figure-reproduction benches.
//
// The "paper testbed" factory encodes the calibration documented in
// EXPERIMENTS.md: 16 Sun 300 MHz workstations (sustained ~20 Mflop/s on
// these kernels), 100BaseT with 1999-era effective bandwidth and software
// overheads, and the spectral statistics of a HYDICE foliage collect
// (unique sets saturating in the low thousands).
#pragma once

#include <string>

#include "core/distributed/fusion_job.h"
#include "support/table.h"

namespace rif::bench {

/// The virtual testbed of the paper's §4 evaluation.
inline core::FusionJobConfig paper_testbed(int workers) {
  core::FusionJobConfig config;
  config.mode = core::ExecutionMode::kCostOnly;
  config.shape = {320, 320, 105};  // the Fig. 4/5 problem size
  config.workers = workers;
  config.tiles_per_worker = 2;

  // The defaults of NodeConfig / LanConfig / CostModelParams ARE the paper
  // calibration (300 MHz workstations at ~20 Mflop/s sustained, 100BaseT at
  // ~3 MB/s effective through the messaging stack, unique sets in the low
  // thousands); restated here so the bench is explicit about what it runs.
  config.node.flops_per_second = 20e6;
  config.lan.bandwidth_bytes_per_sec = 3.0e6;
  config.lan.per_message_overhead = from_millis(1);
  config.lan.latency = from_micros(100);

  config.deadline = from_seconds(500000);
  return config;
}

inline std::string fmt_seconds(double s) { return rif::strf("%.1f", s); }

}  // namespace rif::bench
