// Ablation: network architecture under the fusion workload.
//
// The paper's testbed is a *switched* 100BaseT LAN. This ablation swaps the
// transport model while holding everything else fixed: shared-bus Ethernet
// (every transfer serializes on one wire — the pre-switch architecture),
// the switched LAN, and the shared-memory hand-off transport, with and
// without level-2 resiliency. Quantifies how much the paper's results owe
// to switching, and what the SMP remark (§4) is worth.
#include <cstdio>

#include "bench/bench_util.h"

using namespace rif;

int main() {
  std::printf("=== Ablation: network architecture ===\n");
  std::printf("8 workers, 320x320x105 cube, sub-cubes = 2P\n\n");

  struct Row {
    const char* name;
    core::NetworkKind kind;
  };
  const Row rows[] = {
      {"shared bus (hub era)", core::NetworkKind::kSharedBus},
      {"switched LAN (paper)", core::NetworkKind::kLan},
      {"shared memory", core::NetworkKind::kSmp},
  };

  Table table({"transport", "t_plain(s)", "t_resilient_lvl2(s)", "ratio",
               "net MB"});
  for (const Row& row : rows) {
    core::FusionJobConfig plain = bench::paper_testbed(8);
    plain.network = row.kind;
    const core::FusionReport rp = run_fusion_job(plain);

    core::FusionJobConfig res = bench::paper_testbed(8);
    res.network = row.kind;
    res.resilient = true;
    res.replication = 2;
    const core::FusionReport rr = run_fusion_job(res);

    if (!rp.completed || !rr.completed) {
      std::printf("%s did not complete!\n", row.name);
      return 1;
    }
    table.add_row({row.name, strf("%.1f", rp.elapsed_seconds),
                   strf("%.1f", rr.elapsed_seconds),
                   strf("%.2f", rr.elapsed_seconds / rp.elapsed_seconds),
                   strf("%.0f", rp.network.bytes_sent / 1e6)});
  }
  table.print();

  std::printf(
      "\nfinding: the three transports are within a few percent of each\n"
      "other, because the fusion workload's traffic is a star centred on\n"
      "the manager — every bulk transfer serializes on the manager's\n"
      "uplink (distribution) or downlink (collection) under ANY topology.\n"
      "Switching would matter for peer-to-peer patterns; for this\n"
      "manager/worker decomposition the communication architecture is not\n"
      "the lever, which is consistent with the paper achieving its\n"
      "results on commodity 100BaseT.\n");
  return 0;
}
