// Ablation: eigen-decomposition strategy for step 6.
//
// The paper computes the full eigen-decomposition of the band-covariance
// matrix with an O(n^3) method and notes it does not dominate at 210
// bands. The colour pipeline only consumes the three leading pairs, so
// power iteration with deflation is the natural alternative. This bench
// measures both for real (wall clock) across band counts, checks they
// agree, and reports the crossover the paper's remark implies.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>

#include "linalg/jacobi_eig.h"
#include "linalg/power_iteration.h"
#include "support/rng.h"
#include "support/table.h"

using namespace rif;
using Clock = std::chrono::steady_clock;

namespace {

linalg::Matrix random_covariance(int n, std::uint64_t seed) {
  // Realistic spectral covariance: strongly correlated neighbours.
  Rng rng(seed);
  linalg::Matrix cov(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j <= i; ++j) {
      const double corr = std::exp(-std::abs(i - j) / 25.0);
      const double v = corr + 0.01 * rng.uniform(-1.0, 1.0);
      cov(i, j) = v;
      cov(j, i) = v;
    }
    cov(i, i) += 0.05;
  }
  return cov;
}

double time_ms(const std::function<void()>& fn, int repeats) {
  const auto start = Clock::now();
  for (int r = 0; r < repeats; ++r) fn();
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
             .count() /
         repeats;
}

}  // namespace

int main() {
  std::printf("=== Ablation: full Jacobi vs top-3 power iteration ===\n\n");
  Table table({"bands", "jacobi(ms)", "power3(ms)", "speedup",
               "max |dlambda|/l1", "sim sequential share @P=16"});

  for (const int n : {32, 64, 105, 210}) {
    const linalg::Matrix cov = random_covariance(n, 40 + n);
    linalg::EigenResult jac;
    linalg::PowerIterationResult pow;
    const int repeats = n <= 64 ? 20 : 5;
    const double jac_ms =
        time_ms([&] { jac = linalg::jacobi_eigen(cov); }, repeats);
    const double pow_ms =
        time_ms([&] { pow = linalg::power_eigen(cov, 3); }, repeats);

    double max_rel = 0.0;
    for (int k = 0; k < 3; ++k) {
      max_rel = std::max(max_rel, std::abs(pow.values[k] - jac.values[k]) /
                                      jac.values[0]);
    }

    // Virtual-time view: fraction of a P=16 run the sequential eigen step
    // would occupy at 20 Mflop/s, per the cost model.
    const double virtual_share =
        100.0 * (linalg::jacobi_flops(n, 8) / 20e6) /
        (75.0 /* approx T16 of the paper testbed */);

    table.add_row({strf("%d", n), strf("%.2f", jac_ms),
                   strf("%.2f", pow_ms), strf("%.1fx", jac_ms / pow_ms),
                   strf("%.1e", max_rel), strf("%.1f%%", virtual_share)});
  }
  table.print();

  std::printf(
      "\nexpected: the two agree on the leading eigenvalues to high\n"
      "precision; power iteration wins by a growing factor with band\n"
      "count. The paper's observation that step 6 'does not dominate' at\n"
      "210 bands holds in the virtual-share column — but only because the\n"
      "screening work is so large; the optimization matters for smaller\n"
      "scenes or faster kernels.\n");
  return 0;
}
