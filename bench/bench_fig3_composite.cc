// Figure 3 reproduction: the fused colour-composite image.
//
// Runs the real spectral-screening PCT pipeline (shared-memory parallel
// implementation) on the synthetic 320x320x210 HYDICE scene and writes the
// composite as PPM. The paper's qualitative claims are quantified:
//   * the composite carries more target/background separation than the
//     best single band (the camouflaged vehicle is "significantly
//     enhanced against its background");
//   * the first three principal components capture nearly all variance.
#include <cstdio>

#include "core/parallel/parallel_pct.h"
#include "hsi/image_io.h"
#include "hsi/metrics.h"
#include "hsi/scene.h"
#include "support/table.h"

using namespace rif;

int main() {
  std::printf("=== Figure 3: fused colour composite ===\n");
  hsi::SceneConfig config;
  config.width = 320;
  config.height = 320;
  config.bands = 210;
  config.seed = 2000;
  const hsi::Scene scene = hsi::generate_scene(config);

  core::ParallelPctConfig pct;
  pct.threads = 8;
  pct.tiles = 16;
  const core::PctResult result = core::fuse_parallel(scene.cube, pct);

  double total_var = 0.0;
  double top3 = 0.0;
  for (std::size_t i = 0; i < result.eigenvalues.size(); ++i) {
    total_var += std::max(result.eigenvalues[i], 0.0);
    if (i < 3) top3 += std::max(result.eigenvalues[i], 0.0);
  }

  std::printf("unique set size K = %zu (of %lld pixels)\n",
              result.unique_set_size,
              static_cast<long long>(scene.cube.pixel_count()));
  std::printf("top-3 principal components carry %.1f%% of unique-set "
              "variance\n\n",
              100.0 * top3 / total_var);

  // The paper's claim is enhancement of each target against the background
  // it hides in: the camouflaged vehicle against the surrounding forest,
  // the open vehicles against the field they are parked on.
  Table table({"target vs its background", "best single band",
               "fused composite", "gain"});
  const std::pair<hsi::Material, hsi::Material> pairs[] = {
      {hsi::Material::kCamouflage, hsi::Material::kForest},
      {hsi::Material::kVehicle, hsi::Material::kGrass},
  };
  bool camo_enhanced = false;
  for (const auto& [target, background] : pairs) {
    const double best = hsi::best_band_pair_contrast(scene.cube, scene.labels,
                                                     target, background);
    const double fused = hsi::pair_contrast(result.composite, scene.labels,
                                            target, background);
    if (target == hsi::Material::kCamouflage) camo_enhanced = fused > best;
    table.add_row({strf("%s vs %s", hsi::material_name(target),
                        hsi::material_name(background)),
                   strf("%.2f", best), strf("%.2f", fused),
                   strf("%.2fx", fused / best)});
  }
  table.print();
  std::printf("camouflaged vehicle enhanced beyond any single band: %s\n",
              camo_enhanced ? "yes" : "NO");

  const bool ok = hsi::write_ppm("fig3_composite.ppm", result.composite);
  std::printf("\nwrote fig3_composite.ppm (%s)\n", ok ? "ok" : "FAILED");
  std::printf("paper: improved contrast; camouflaged vehicle in the lower "
              "left\nsignificantly enhanced against the foliage.\n");
  return ok ? 0 : 1;
}
