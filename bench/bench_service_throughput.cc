// Service throughput under offered load.
//
// One 16-worker cluster serves a Poisson stream of 4-worker cost-only
// fusion jobs from two tenants. The cluster fits 4 such jobs concurrently,
// so the saturation rate is mu = 4 / t_job; the sweep drives offered load
// rho = lambda / mu from well below to past saturation and reports
// throughput and tail latency. Past saturation the queue grows but
// admission must keep draining — every job still completes (the
// no-deadlock acceptance bar for the service).
//
// Machine-readable results go to BENCH_service.json so later PRs can track
// the perf trajectory.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "service/service.h"
#include "support/rng.h"

using namespace rif;

namespace {

constexpr int kClusterWorkers = 16;
constexpr int kJobWorkers = 4;
constexpr int kJobsPerLoad = 80;

core::FusionJobConfig job_config() {
  core::FusionJobConfig cfg;
  cfg.mode = core::ExecutionMode::kCostOnly;
  cfg.shape = {320, 320, 105};
  cfg.workers = kJobWorkers;
  cfg.tiles_per_worker = 2;
  return cfg;
}

service::ServiceConfig service_config() {
  service::ServiceConfig cfg;
  cfg.worker_nodes = kClusterWorkers;
  cfg.deadline = from_seconds(5.0e6);
  return cfg;
}

struct LoadPoint {
  double rho = 0.0;
  double lambda = 0.0;
  service::ServiceReport report;
};

}  // namespace

int main() {
  std::printf("=== Service throughput vs offered load ===\n");
  std::printf("cluster: %d workers; jobs: %d workers each (4 concurrent at "
              "full packing), 2 tenants, Poisson arrivals\n\n",
              kClusterWorkers, kJobWorkers);

  // Reference: one job alone on the service gives the base service time.
  double t_job = 0.0;
  {
    service::FusionService service(service_config());
    service::JobRequest r;
    r.tenant = "ref";
    r.config = job_config();
    service.submit(std::move(r));
    const auto report = service.run();
    if (!report.all_completed) {
      std::printf("reference job did not complete!\n");
      return 1;
    }
    t_job = report.jobs[0].service_seconds;
  }
  const double mu = static_cast<double>(kClusterWorkers / kJobWorkers) / t_job;
  std::printf("base service time %.1fs -> saturation rate %.4f jobs/s\n\n",
              t_job, mu);

  std::vector<LoadPoint> points;
  for (const double rho : {0.25, 0.5, 0.75, 0.9, 1.1, 1.5}) {
    LoadPoint point;
    point.rho = rho;
    point.lambda = rho * mu;

    service::FusionService service(service_config());
    Rng rng(/*seed=*/1234);
    double t = 0.0;
    for (int i = 0; i < kJobsPerLoad; ++i) {
      t += -std::log(1.0 - rng.uniform()) / point.lambda;
      service::JobRequest r;
      r.tenant = (i % 2 == 0) ? "tenant-a" : "tenant-b";
      r.config = job_config();
      r.priority =
          (i % 2 == 0) ? service::Priority::kNormal : service::Priority::kBatch;
      r.arrival = from_seconds(t);
      service.submit(std::move(r));
    }
    point.report = service.run();
    if (!point.report.all_completed) {
      std::printf("rho=%.2f: %d/%d jobs stranded — admission deadlock!\n",
                  rho, kJobsPerLoad - point.report.jobs_completed,
                  kJobsPerLoad);
      return 1;
    }
    points.push_back(std::move(point));
  }

  Table table({"rho", "lambda(j/s)", "throughput(j/s)", "wait_p50(s)",
               "wait_p95(s)", "wait_p99(s)", "svc_p50(s)", "lat_p99(s)",
               "peak_conc"});
  for (const auto& p : points) {
    table.add_row({strf("%.2f", p.rho), strf("%.4f", p.lambda),
                   strf("%.4f", p.report.throughput_jobs_per_sec),
                   strf("%.1f", p.report.wait_p50),
                   strf("%.1f", p.report.wait_p95),
                   strf("%.1f", p.report.wait_p99),
                   strf("%.1f", p.report.service_p50),
                   strf("%.1f", p.report.latency_p99),
                   strf("%d", p.report.max_concurrent_jobs)});
  }
  table.print();
  std::printf("\nexpect: throughput tracks lambda below saturation, "
              "plateaus near %.4f jobs/s above it;\n"
              "        wait tails explode past rho=1 while every job still "
              "completes (queue keeps draining).\n", mu);

  // Machine-readable trajectory record.
  std::FILE* out = std::fopen("BENCH_service.json", "w");
  if (out == nullptr) {
    std::printf("cannot write BENCH_service.json\n");
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"service_throughput\",\n");
  std::fprintf(out, "  \"cluster_workers\": %d,\n", kClusterWorkers);
  std::fprintf(out, "  \"job_workers\": %d,\n", kJobWorkers);
  std::fprintf(out, "  \"jobs_per_load\": %d,\n", kJobsPerLoad);
  std::fprintf(out, "  \"reference_service_seconds\": %.6f,\n", t_job);
  std::fprintf(out, "  \"saturation_jobs_per_sec\": %.6f,\n", mu);
  std::fprintf(out, "  \"rows\": [\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    std::fprintf(
        out,
        "    {\"offered_load\": %.2f, \"lambda_jobs_per_sec\": %.6f, "
        "\"throughput_jobs_per_sec\": %.6f, \"wait_p50_s\": %.3f, "
        "\"wait_p95_s\": %.3f, \"wait_p99_s\": %.3f, \"service_p50_s\": "
        "%.3f, \"latency_p99_s\": %.3f, \"max_concurrent\": %d, "
        "\"completed\": %d}%s\n",
        p.rho, p.lambda, p.report.throughput_jobs_per_sec, p.report.wait_p50,
        p.report.wait_p95, p.report.wait_p99, p.report.service_p50,
        p.report.latency_p99, p.report.max_concurrent_jobs,
        p.report.jobs_completed, i + 1 < points.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("\nwrote BENCH_service.json\n");
  return 0;
}
