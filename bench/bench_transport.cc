// Microbench: the byte-transport codec path — frame encode + reassembly
// and wire-envelope encode/decode — plus a live socketpair round-trip and
// an ops-endpoint status probe over loopback TCP.
//
// These are the per-hop costs every remote-execution message pays on top
// of the sim transport's free virtual delivery; the numbers bound how much
// of a real deployment's wall clock goes to serialization rather than
// screening arithmetic. `--smoke` shrinks the timing budget for CI.
#include <sys/socket.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.h"
#include "net/socket_transport.h"
#include "obs/ops_server.h"
#include "scp/wire.h"
#include "support/table.h"

using namespace rif;
using Clock = std::chrono::steady_clock;

namespace {

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Frame `payload_bytes`-sized envelopes, feed them through a reassembler,
/// return MB/s of payload processed.
double codec_throughput(std::size_t payload_bytes, int repeats) {
  scp::WireEnvelope env;
  env.kind = scp::FrameKind::kApp;
  env.src_node = 1;
  env.msg_type = 2;
  env.payload.resize(payload_bytes);
  std::iota(env.payload.begin(), env.payload.end(), std::uint8_t{0});

  net::FrameAssembler assembler;
  std::uint64_t decoded = 0;
  const auto start = Clock::now();
  for (int i = 0; i < repeats; ++i) {
    const auto frame = net::encode_frame(env.encode());
    const bool ok = assembler.feed(
        frame.data(), frame.size(), [&](std::vector<std::uint8_t> p) {
          const scp::WireEnvelope back = scp::WireEnvelope::decode(p);
          decoded += back.payload.size();
        });
    if (!ok) {
      std::fprintf(stderr, "assembler poisoned\n");
      std::abort();
    }
  }
  const double secs = seconds_since(start);
  if (decoded != static_cast<std::uint64_t>(repeats) * payload_bytes) {
    std::fprintf(stderr, "decode mismatch\n");
    std::abort();
  }
  return static_cast<double>(decoded) / 1e6 / secs;
}

/// Round-trip `payload_bytes` frames over a socketpair between two
/// threads; returns round-trips per second.
double socketpair_rtt(std::size_t payload_bytes, int repeats) {
  int sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
    std::perror("socketpair");
    std::abort();
  }
  std::thread echo([fd = sv[1]] {
    net::SocketClient peer;
    peer.adopt(fd);
    std::vector<std::uint8_t> frame;
    while (peer.read_frame(frame)) {
      if (!peer.send_frame(frame)) break;
    }
    peer.close();
  });

  net::SocketClient client;
  client.adopt(sv[0]);
  std::vector<std::uint8_t> payload(payload_bytes, 0x7E);
  std::vector<std::uint8_t> reply;
  const auto start = Clock::now();
  for (int i = 0; i < repeats; ++i) {
    if (!client.send_frame(payload) || !client.read_frame(reply)) {
      std::fprintf(stderr, "socketpair exchange failed\n");
      std::abort();
    }
  }
  const double secs = seconds_since(start);
  client.close();
  echo.join();
  return repeats / secs;
}

/// Ops-request round-trips per second against a live OpsServer over
/// loopback TCP: the cost a monitoring poller pays per `status` probe
/// (frame codec + poll-loop dispatch + provider call + reply frame).
double ops_request_rtt(int repeats) {
  obs::OpsServerConfig cfg;
  obs::OpsServer::Providers providers;
  providers.status_json = [] {
    return std::string("{\"uptime_seconds\": 1.0, \"jobs\": {}}");
  };
  obs::OpsServer server(cfg, providers);
  if (!server.start()) {
    std::fprintf(stderr, "ops server bind failed\n");
    std::abort();
  }
  net::SocketClient client;
  if (!client.connect_tcp("127.0.0.1", server.port())) {
    std::fprintf(stderr, "ops connect failed\n");
    std::abort();
  }
  const std::vector<std::uint8_t> request = {'s', 't', 'a', 't', 'u', 's'};
  std::vector<std::uint8_t> reply;
  const auto start = Clock::now();
  for (int i = 0; i < repeats; ++i) {
    if (!client.send_frame(request) || !client.read_frame(reply)) {
      std::fprintf(stderr, "ops exchange failed\n");
      std::abort();
    }
  }
  const double secs = seconds_since(start);
  client.close();
  server.stop();
  return repeats / secs;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";
  std::printf("=== Byte-transport codec microbench%s ===\n\n",
              smoke ? " (smoke)" : "");

  Table table({"payload", "codec MB/s", "round-trips/s"});
  struct Case {
    const char* label;
    std::size_t bytes;
  };
  // A kRequestWork-sized control frame, a covariance-sum-sized reply, and
  // a full 105-band tile of a 320-wide scene (20 rows).
  const Case cases[] = {
      {"64 B", 64},
      {"45 KB", 45 * 1024},
      {"2.6 MB", static_cast<std::size_t>(20) * 320 * 105 * 4},
  };
  for (const Case& c : cases) {
    const int codec_reps =
        smoke ? 20 : (c.bytes < 1024 ? 20000 : c.bytes < 1 << 20 ? 2000 : 100);
    const int rtt_reps = smoke ? 20 : (c.bytes < 1 << 20 ? 2000 : 100);
    table.add_row({c.label, strf("%.1f", codec_throughput(c.bytes, codec_reps)),
                   strf("%.0f", socketpair_rtt(c.bytes, rtt_reps))});
  }
  table.print();
  std::printf("\ncodec = envelope encode + frame + reassemble + decode; "
              "round-trip = framed echo over a socketpair.\n");

  const int ops_reps = smoke ? 50 : 5000;
  std::printf("\nops status probe: %.0f requests/s over loopback TCP "
              "(frame + dispatch + provider + reply)\n",
              ops_request_rtt(ops_reps));
  return 0;
}
